// Breaking-news scenario (paper §1, example 1): an HTML story page with
// embedded photo and video-clip objects.  The story and its media are
// updated together at the origin; the proxy must keep the *group*
// mutually consistent or users see a new headline with yesterday's photo.
//
//   build/examples/news_site [--delta-mutual-min=2] [--hours=24]
//
// Demonstrates:
//   - syntactic group discovery by parsing the page's embedded links
//     (paper §5.2) via GroupRegistry;
//   - Mt-consistency with the triggered-poll coordinator on top of
//     per-object LIMD;
//   - client-observed staleness with and without mutual consistency.
#include <iostream>
#include <memory>

#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "harness/reporting.h"
#include "metrics/fidelity.h"
#include "metrics/mutual_fidelity.h"
#include "origin/origin_server.h"
#include "proxy/client.h"
#include "proxy/group_registry.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace broadway;

struct NewsRun {
  std::size_t polls = 0;
  std::size_t triggered = 0;
  double mutual_fidelity = 1.0;
  double story_fidelity = 1.0;
  ClientMetrics clients;
};

// The three related objects: story text updates most often; the photo and
// clip are replaced on a subset of story updates (correlated streams).
struct Workload {
  UpdateTrace story;
  UpdateTrace photo;
  UpdateTrace clip;
};

Workload make_workload(double hours_total, std::uint64_t seed) {
  Rng rng(seed);
  const Duration duration = hours(hours_total);
  // Story updates ~ every 5 minutes in bursts (a developing story).
  BurstConfig bursts;
  bursts.burst_rate = 1.0 / minutes(3.0);
  bursts.calm_rate = 1.0 / minutes(30.0);
  bursts.mean_burst_length = minutes(45.0);
  bursts.mean_calm_length = hours(2.0);
  std::vector<TimePoint> story_times =
      generate_bursty(rng, bursts, duration);
  // Media change on ~1/3 of story updates, a few seconds later (editors
  // attach new footage to the rewritten story).
  std::vector<TimePoint> photo_times, clip_times;
  for (TimePoint t : story_times) {
    if (rng.bernoulli(1.0 / 3.0)) {
      photo_times.push_back(std::min(duration * (1 - 1e-9), t + 20.0));
    }
    if (rng.bernoulli(1.0 / 4.0)) {
      clip_times.push_back(std::min(duration * (1 - 1e-9), t + 45.0));
    }
  }
  return Workload{
      UpdateTrace("/news/story.html", sort_unique(story_times), duration),
      UpdateTrace("/news/scene.jpg", sort_unique(photo_times), duration),
      UpdateTrace("/news/report.rm", sort_unique(clip_times), duration)};
}

NewsRun simulate(const Workload& workload, bool mutual,
                 Duration delta_individual, Duration delta_mutual) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine proxy(sim, origin);

  // Origin: the story page embeds the photo and the clip.
  VersionedObject& story =
      origin.attach_update_trace(workload.story.name(), workload.story);
  story.set_embedded_links(
      {workload.photo.name(), workload.clip.name()});
  origin.attach_update_trace(workload.photo.name(), workload.photo);
  origin.attach_update_trace(workload.clip.name(), workload.clip);

  // Discover the group *syntactically* from the page body (paper §5.2).
  // Binding the registry to the origin's intern table records the group's
  // ObjectIds alongside the uris (the id-keyed dispatch representation).
  GroupRegistry registry(origin.uri_table());
  const ObjectGroup* group = registry.add_syntactic_group(
      workload.story.name(), story.render_body(), delta_mutual);

  // Track every group member with LIMD.
  for (const std::string& uri : group->members) {
    proxy.add_temporal_object(
        uri, std::make_unique<LimdPolicy>(LimdPolicy::Config::paper_defaults(
                 delta_individual, minutes(30.0))));
  }
  if (mutual) {
    proxy.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
        group->members, group->delta_mutual));
  }

  // Readers hammer the story page; media fetched alongside.  The uris
  // resolve to interned ids here — a typo'd uri throws instead of
  // silently getting zero traffic.
  ClientWorkload clients(
      sim, proxy.cache(), origin,
      ClientWorkload::Config::from_uris(origin, /*request_rate=*/0.2,
                                        {{workload.story.name(), 4.0},
                                         {workload.photo.name(), 1.0},
                                         {workload.clip.name(), 1.0}}));

  proxy.start();
  clients.start();
  sim.run_until(workload.story.duration());

  NewsRun out;
  out.polls = proxy.polls_performed();
  out.triggered = proxy.triggered_polls();
  const auto story_polls =
      successful_polls(proxy.poll_log(), workload.story.name());
  const auto photo_polls =
      successful_polls(proxy.poll_log(), workload.photo.name());
  out.mutual_fidelity =
      evaluate_mutual_temporal(workload.story, story_polls, workload.photo,
                               photo_polls, delta_mutual,
                               workload.story.duration())
          .fidelity_time();
  out.story_fidelity =
      evaluate_temporal_fidelity(workload.story, story_polls,
                                 delta_individual,
                                 workload.story.duration())
          .fidelity_time();
  out.clients = clients.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double delta_mutual_min = 2.0;
  double hours_total = 24.0;
  long long seed = 11;
  Flags flags;
  flags.add_double("delta-mutual-min", &delta_mutual_min,
                   "group tolerance delta in minutes");
  flags.add_double("hours", &hours_total, "simulated duration in hours");
  flags.add_int("seed", &seed, "workload seed");
  if (!flags.parse(argc, argv)) return 1;

  const Workload workload =
      make_workload(hours_total, static_cast<std::uint64_t>(seed));
  print_banner(std::cout,
               "news_site: breaking story + embedded media (syntactic "
               "group, triggered polls)");
  std::cout << "story updates: " << workload.story.count()
            << ", photo updates: " << workload.photo.count()
            << ", clip updates: " << workload.clip.count() << "\n";

  const NewsRun without =
      simulate(workload, /*mutual=*/false, minutes(5.0),
               minutes(delta_mutual_min));
  const NewsRun with = simulate(workload, /*mutual=*/true, minutes(5.0),
                                minutes(delta_mutual_min));

  TextTable table;
  table.set_header({"metric", "LIMD only", "LIMD + triggered polls"});
  table.add_row({"polls", std::to_string(without.polls),
                 std::to_string(with.polls)});
  table.add_row({"triggered polls", std::to_string(without.triggered),
                 std::to_string(with.triggered)});
  table.add_row({"story/photo mutual fidelity",
                 fmt(without.mutual_fidelity, 4),
                 fmt(with.mutual_fidelity, 4)});
  table.add_row({"story individual fidelity",
                 fmt(without.story_fidelity, 4),
                 fmt(with.story_fidelity, 4)});
  table.add_row({"client requests", std::to_string(without.clients.requests),
                 std::to_string(with.clients.requests)});
  table.add_row({"stale responses", std::to_string(without.clients.stale),
                 std::to_string(with.clients.stale)});
  table.print(std::cout);

  std::cout << "\nThe triggered-poll coordinator re-fetches the photo and "
               "clip the moment a story\nupdate is observed, closing the "
               "window where a fresh headline is served with a\nstale "
               "image — at a modest extra poll cost.\n";
  return 0;
}

// Quickstart: cache one frequently-updated web object with the adaptive
// LIMD refresh policy and measure what users got.
//
//   build/examples/quickstart [--delta-min=10] [--hours=12] [--seed=7]
//
// Walks through the core API end to end:
//   1. build a simulator and an origin server;
//   2. give the origin an object driven by a synthetic update trace;
//   3. register the object with a proxy polling engine under LIMD;
//   4. run, then evaluate ground-truth fidelity with the metrics library.
#include <iostream>
#include <memory>

#include "consistency/limd.h"
#include "harness/reporting.h"
#include "metrics/fidelity.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/update_trace.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace broadway;

  double delta_min = 10.0;
  double trace_hours = 12.0;
  long long seed = 7;
  Flags flags;
  flags.add_double("delta-min", &delta_min, "Delta-t tolerance in minutes");
  flags.add_double("hours", &trace_hours, "simulated duration in hours");
  flags.add_int("seed", &seed, "workload seed");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Simulation substrate.
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine proxy(sim, origin);

  // 2. An object updated roughly every 7 minutes (Poisson).
  Rng rng(static_cast<std::uint64_t>(seed));
  const Duration duration = hours(trace_hours);
  const UpdateTrace trace(
      "/news/front-page",
      generate_poisson(rng, 1.0 / minutes(7.0), duration), duration);
  origin.attach_update_trace(trace.name(), trace);

  // 3. Track it with LIMD at the requested tolerance.
  const Duration delta = minutes(delta_min);
  proxy.add_temporal_object(
      trace.name(),
      std::make_unique<LimdPolicy>(LimdPolicy::Config::paper_defaults(
          delta, /*ttr_max=*/minutes(60.0))));
  proxy.start();

  // 4. Run and evaluate.
  sim.run_until(duration);
  const auto report = evaluate_temporal_fidelity(
      trace, successful_polls(proxy.poll_log(), trace.name()), delta,
      duration);

  print_banner(std::cout, "quickstart: LIMD-tracked object");
  TextTable table;
  table.add_row({"object", trace.name()});
  table.add_row({"updates at origin", std::to_string(trace.count())});
  table.add_row({"tolerance Delta", format_duration(delta)});
  add_poll_breakdown_rows(table, proxy.poll_log());
  table.add_row(
      {"polls if fixed every Delta",
       std::to_string(static_cast<std::size_t>(duration / delta))});
  table.add_row({"fidelity (violations, Eq.13)",
                 fmt(report.fidelity_violations(), 3)});
  table.add_row({"fidelity (out-of-sync time, Eq.14)",
                 fmt(report.fidelity_time(), 3)});
  table.add_row({"time out of tolerance",
                 format_duration(report.out_sync_time)});
  table.print(std::cout);

  std::cout << "\nLIMD learned the object's update rate and polled at "
               "roughly that frequency instead\nof every Delta — compare "
               "the two poll counts above.\n";
  return 0;
}

// Financial-data scenario (paper §1, example 2 and §6.2.3): a proxy
// disseminates two stock quotes to users who compare them ("does Yahoo
// outperform AT&T by more than delta?").  The *difference* of the cached
// quotes must stay within delta of the difference at the server — Mv
// consistency with f = difference.
//
//   build/examples/stock_ticker [--delta=0.6]
//
// Runs both §4.2 approaches side by side on the Table 3 workloads and
// shows the partitioned tolerances adapting to the two stocks' rates.
#include <iostream>
#include <memory>

#include "consistency/function.h"
#include "consistency/partitioned.h"
#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "trace/trace_stats.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace broadway;

  double delta = 0.6;
  Flags flags;
  flags.add_double("delta", &delta, "Mv tolerance on f = difference ($)");
  if (!flags.parse(argc, argv)) return 1;

  const ValueTrace att = make_att_stock_trace();
  const ValueTrace yahoo = make_yahoo_stock_trace();

  print_banner(std::cout, "stock_ticker: Mv-consistent quote pair");
  {
    TextTable table;
    table.set_header({"stock", "ticks", "range", "mean |tick|"});
    for (const ValueTrace* trace : {&att, &yahoo}) {
      const ValueTraceStats stats = compute_stats(*trace);
      table.add_row({trace->name(), std::to_string(stats.num_updates),
                     "$" + fmt(stats.min_value, 2) + " - $" +
                         fmt(stats.max_value, 2),
                     "$" + fmt(stats.mean_abs_change, 3)});
    }
    table.print(std::cout);
  }

  // Run both approaches through the shared experiment harness.
  MutualValueRunConfig config;
  config.delta = delta;
  config.approach = MutualValueApproach::kAdaptive;
  const auto adaptive = run_mutual_value(att, yahoo, config);
  config.approach = MutualValueApproach::kPartitioned;
  const auto partitioned = run_mutual_value(att, yahoo, config);

  std::cout << "\n";
  TextTable results;
  results.set_header({"approach", "polls", "Mv fidelity (time)",
                      "Mv violations"});
  results.add_row({"adaptive (f as virtual object)",
                   std::to_string(adaptive.polls),
                   fmt(adaptive.mutual.fidelity_time(), 3),
                   std::to_string(adaptive.mutual.violations)});
  results.add_row({"partitioned (delta split)",
                   std::to_string(partitioned.polls),
                   fmt(partitioned.mutual.fidelity_time(), 3),
                   std::to_string(partitioned.mutual.violations)});
  results.print(std::cout);

  // Show how the partitioned policy would split delta as rates evolve.
  print_banner(std::cout,
               "delta apportioning (faster stock gets the tighter share)");
  const ValueTraceStats att_stats = compute_stats(att);
  const ValueTraceStats yahoo_stats = compute_stats(yahoo);
  const double rate_att =
      att_stats.mean_abs_change / att_stats.mean_update_interval;
  const double rate_yahoo =
      yahoo_stats.mean_abs_change / yahoo_stats.mean_update_interval;
  const auto split = apportion_tolerances(delta, {rate_att, rate_yahoo},
                                          {1.0, -1.0});
  TextTable split_table;
  split_table.set_header({"stock", "rate ($/s)", "tolerance share"});
  split_table.add_row({"AT&T", fmt(rate_att, 5), "$" + fmt(split[0], 3)});
  split_table.add_row(
      {"Yahoo", fmt(rate_yahoo, 5), "$" + fmt(split[1], 3)});
  split_table.print(std::cout);
  std::cout << "\n(sum of shares = $" << fmt(split[0] + split[1], 3)
            << " = delta; triangle inequality then guarantees the Mv bound"
               " — paper footnote 3)\n";
  return 0;
}

// Sports-score scenario (paper §1, example 2): a proxy disseminates
// up-to-the-minute scores — per-player points and the team total.  The
// cached total must stay consistent with the cached player scores: the
// n-object generalisation of Mv-consistency with f = sum of player
// scores, tracked with the partitioned approach.
//
//   build/examples/sports_scores [--delta=6] [--crash]
//
// Also demonstrates failure handling: lossy links between proxy and
// origin, and (with --crash) a mid-game proxy crash whose recovery resets
// every TTR to TTR_min (paper §3.1).
#include <iostream>
#include <memory>

#include "consistency/function.h"
#include "consistency/partitioned.h"
#include "harness/reporting.h"
#include "metrics/fidelity.h"
#include "metrics/value_fidelity.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace broadway;

// A basketball-like scoring process: each player scores in bursts; the
// value trace is the player's cumulative points over a 2.5 h game.
ValueTrace make_player_trace(const std::string& name, double points_per_min,
                             Rng& rng) {
  const Duration game = hours(2.5);
  std::vector<ValueTrace::Step> steps;
  double points = 0.0;
  TimePoint t = 0.0;
  while (true) {
    t += rng.exponential(points_per_min / 60.0);
    if (t >= game) break;
    points += rng.bernoulli(0.25) ? 3.0 : 2.0;  // threes and twos
    steps.push_back(ValueTrace::Step{t, points});
  }
  return ValueTrace(name, 0.0, std::move(steps), game);
}

}  // namespace

int main(int argc, char** argv) {
  double delta = 6.0;
  bool crash = false;
  Flags flags;
  flags.add_double("delta", &delta,
                   "Mv tolerance on the cached team total (points)");
  flags.add_bool("crash", &crash, "crash the proxy mid-game and recover");
  if (!flags.parse(argc, argv)) return 1;

  Rng rng(2024);
  const ValueTrace players[3] = {
      make_player_trace("/scores/player/guard", 0.35, rng),
      make_player_trace("/scores/player/forward", 0.30, rng),
      make_player_trace("/scores/player/center", 0.15, rng),
  };
  const Duration game = players[0].duration();

  Simulator sim;
  OriginServer origin(sim);
  EngineConfig engine_config;
  engine_config.loss_probability = 0.05;  // flaky stadium uplink
  engine_config.retry_delay = 2.0;
  PollingEngine proxy(sim, origin, engine_config);

  std::vector<std::string> uris;
  for (const ValueTrace& player : players) {
    origin.attach_value_trace(player.name(), player);
    uris.push_back(player.name());
  }

  // Team total = sum of player scores; partitioned Mv across 3 objects.
  PartitionedTolerancePolicy::Config policy_config;
  policy_config.delta = delta;
  policy_config.bounds = {2.0, 120.0};
  proxy.add_partitioned_group(
      uris, std::make_unique<PartitionedTolerancePolicy>(
                std::make_unique<WeightedSumFunction>(
                    std::vector<double>{1.0, 1.0, 1.0}),
                policy_config));
  proxy.start();

  if (crash) {
    sim.run_until(game / 2.0);
    proxy.crash_and_recover();
    std::cout << "(proxy crashed and recovered at half-time: every TTR "
                 "reset to TTR_min)\n";
  }
  sim.run_until(game);

  print_banner(std::cout, "sports_scores: team total via partitioned Mv");
  WeightedSumFunction total({1.0, 1.0, 1.0});
  std::vector<const ValueTrace*> traces;
  std::vector<std::vector<PollInstant>> polls;
  for (const ValueTrace& player : players) {
    traces.push_back(&player);
    polls.push_back(successful_polls(proxy.poll_log(), player.name()));
  }
  const std::vector<PollInstant>* poll_ptrs[] = {&polls[0], &polls[1],
                                                 &polls[2]};
  const auto report = evaluate_mutual_value(
      std::span<const ValueTrace* const>(traces.data(), traces.size()),
      std::span<const std::vector<PollInstant>* const>(poll_ptrs, 3), total,
      delta, game);

  TextTable table;
  table.set_header({"player", "scoring events", "final points", "polls"});
  double final_total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double final_points = players[i].value_at(game * (1 - 1e-12));
    final_total += final_points;
    table.add_row({players[i].name(), std::to_string(players[i].count()),
                   fmt(final_points, 0),
                   std::to_string(proxy.polls_performed(players[i].name()))});
  }
  table.print(std::cout);

  TextTable summary;
  summary.add_row({"final team total", fmt(final_total, 0)});
  summary.add_row({"tolerance delta on total", fmt(delta, 0) + " points"});
  add_poll_breakdown_rows(summary, proxy.poll_log());
  summary.add_row({"Mv fidelity (time)", fmt(report.fidelity_time(), 3)});
  summary.add_row({"Mv violation episodes",
                   std::to_string(report.violations)});
  summary.print(std::cout);

  std::cout << "\nThe partitioned policy splits the " << fmt(delta, 0)
            << "-point budget across players by scoring rate —\nthe hot "
               "hand gets the tight share and the frequent polls.  Lost "
               "polls were retried\nautomatically"
            << (crash ? "; the crash recovery needed no persistent policy "
                        "state (TTR reset only)."
                      : ".")
            << "\n";
  return 0;
}

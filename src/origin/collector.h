// Trace collection — the paper's own workload methodology, reproduced.
//
// §6.1.2: "we collected several traces from newspaper web sites using a
// program that fetched these pages from the server once every minute and
// determined if the object was updated since the previous poll (by
// parsing the time-stamp embedded in the html page)".
//
// TraceCollector is that program, run against our origin model: it polls
// an object at a fixed period and reconstructs the update trace from the
// Last-Modified values it observes.  The reconstruction is inherently
// quantised — updates closer together than the sampling period collapse,
// exactly as in the paper's real traces — which the tests quantify.
#pragma once

#include <string>
#include <vector>

#include "origin/origin_server.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "util/time.h"

namespace broadway {

/// Polls one object periodically and records observed modification
/// instants.  Start it, run the simulator, then take the trace.
class TraceCollector {
 public:
  /// Poll `uri` at `origin` every `period` (the paper used one minute).
  TraceCollector(Simulator& sim, OriginServer& origin, std::string uri,
                 Duration period = 60.0);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Begin polling at the current simulation time.
  void start();

  /// Stop polling.
  void stop();

  /// Number of polls performed so far.
  std::size_t polls() const { return polls_; }

  /// Build the reconstructed trace over [0, horizon).  Each entry is the
  /// Last-Modified of a version first seen by some poll — i.e. the newest
  /// update per sampling interval; intermediate updates are invisible,
  /// as with the paper's collection program.
  UpdateTrace reconstructed_trace(Duration horizon,
                                  double start_hour = 0.0) const;

  /// Raw observed modification instants (ascending, deduplicated).
  const std::vector<TimePoint>& observations() const {
    return observations_;
  }

 private:
  Simulator& sim_;
  OriginServer& origin_;
  std::string uri_;
  Duration period_;
  PeriodicTask task_;
  std::vector<TimePoint> observations_;
  TimePoint last_poll_ = 0.0;
  std::size_t polls_ = 0;

  void poll();
};

/// How faithfully a reconstruction captured the truth: the fraction of
/// true updates visible in the reconstruction (updates within `period` of
/// a later one collapse) and the count difference.
struct ReconstructionQuality {
  std::size_t true_updates = 0;
  std::size_t observed_updates = 0;
  /// Fraction of true update instants that appear in the reconstruction.
  double recall = 1.0;
};

ReconstructionQuality compare_reconstruction(const UpdateTrace& truth,
                                             const UpdateTrace& observed);

}  // namespace broadway

// Object store: the origin server's collection of versioned objects.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "origin/object.h"

namespace broadway {

/// Owning map of uri -> VersionedObject.  Pointers returned by `find` stay
/// valid for the life of the store (objects are never removed; a web origin
/// in this model retires content by updating it, not deleting it).
class ObjectStore {
 public:
  /// Create an object; throws via BROADWAY_CHECK if the uri already exists.
  VersionedObject& create(const std::string& uri, TimePoint creation_time,
                          std::optional<double> value = std::nullopt);

  /// Lookup; nullptr if absent.
  VersionedObject* find(const std::string& uri);
  const VersionedObject* find(const std::string& uri) const;

  /// Lookup that requires presence.
  VersionedObject& at(const std::string& uri);
  const VersionedObject& at(const std::string& uri) const;

  bool contains(const std::string& uri) const;

  std::size_t size() const { return objects_.size(); }

  /// All uris, sorted (deterministic iteration for tests and reports).
  std::vector<std::string> uris() const;

 private:
  std::map<std::string, std::unique_ptr<VersionedObject>> objects_;
};

}  // namespace broadway

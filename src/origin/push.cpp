#include "origin/push.h"

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

PushChannel::PushChannel(Simulator& sim, OriginServer& origin,
                         Duration coalesce_window)
    : sim_(sim), origin_(origin), coalesce_window_(coalesce_window) {
  BROADWAY_CHECK_MSG(coalesce_window_ >= 0.0,
                     "coalesce window " << coalesce_window_);
}

void PushChannel::subscribe(const std::string& uri, Delivery delivery) {
  BROADWAY_CHECK(delivery != nullptr);
  BROADWAY_CHECK_MSG(origin_.store().contains(uri),
                     "no such object " << uri);
  BROADWAY_CHECK_MSG(
      subscriptions_.find(uri) == subscriptions_.end(),
      "duplicate subscription for " << uri);
  Subscription subscription;
  subscription.delivery = std::move(delivery);
  subscriptions_.emplace(uri, std::move(subscription));
}

void PushChannel::on_update(const std::string& uri) {
  auto it = subscriptions_.find(uri);
  if (it == subscriptions_.end()) return;  // nobody subscribed
  Subscription& subscription = it->second;
  if (subscription.push_pending) {
    // An in-flight push will carry this update too.
    ++updates_coalesced_;
    return;
  }
  subscription.push_pending = true;
  if (coalesce_window_ <= 0.0) {
    deliver(uri);
    return;
  }
  subscription.pending_event =
      sim_.schedule_after(coalesce_window_, [this, uri] { deliver(uri); });
}

void PushChannel::deliver(const std::string& uri) {
  auto it = subscriptions_.find(uri);
  BROADWAY_CHECK(it != subscriptions_.end());
  Subscription& subscription = it->second;
  subscription.push_pending = false;
  subscription.pending_event = kInvalidEventId;

  // The push payload is exactly what an unconditional poll would return.
  Request request;
  request.uri = uri;
  const Response response = origin_.handle(request);
  // Delivery-ordering invariant: a coalesced push carries every update
  // that rode along, and X-Modification-History must list them newest-last
  // (strictly ascending) — exactly the order a poll at this instant would
  // have returned.  Consumers (violation inference, fleet relays) index
  // the newest update as history.back().
  if (const auto history = get_modification_history(response.headers)) {
    for (std::size_t i = 1; i < history->size(); ++i) {
      BROADWAY_CHECK_MSG((*history)[i - 1] < (*history)[i],
                         "push history out of order for " << uri << ": "
                             << (*history)[i - 1] << " !< " << (*history)[i]);
    }
  }
  ++pushes_delivered_;
  subscription.delivery(uri, response);
}

void PushChannel::attach_pushed_trace(const std::string& uri,
                                      const UpdateTrace& trace) {
  origin_.attach_update_trace(uri, trace);
  for (TimePoint t : trace.updates()) {
    // After the origin applies the update at t (FIFO order: the origin's
    // event was scheduled first), notify the channel.
    sim_.schedule_at(t, [this, uri] { on_update(uri); });
  }
}

void PushChannel::attach_pushed_trace(const std::string& uri,
                                      const ValueTrace& trace) {
  origin_.attach_value_trace(uri, trace);
  for (const auto& step : trace.steps()) {
    sim_.schedule_at(step.time, [this, uri] { on_update(uri); });
  }
}

}  // namespace broadway

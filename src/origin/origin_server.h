// The origin web server model.
//
// Applies trace-driven updates to its object store on the simulator's
// timeline and answers HTTP requests with the conditional-GET semantics the
// paper's mechanisms rely on (paper §5): an `if-modified-since` request is
// answered 304 when the object is unchanged, otherwise 200 with the new
// body, Last-Modified, the value extension for value-domain objects, and —
// when enabled — the X-Modification-History extension of §5.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/extensions.h"
#include "http/message.h"
#include "origin/store.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/uri_table.h"

namespace broadway {

/// Origin server bound to a simulator.  One instance can host any number
/// of objects, each driven by its own trace.
///
/// The server owns the UriTable every co-located consumer (polling
/// engines, their caches and poll logs, the fleet relay path) shares:
/// interning happens once at registration, and the poll hot path carries
/// dense ObjectId handles end to end.
class OriginServer {
 public:
  /// `history_limit` caps the X-Modification-History entries per response
  /// (0 = unlimited).  `history_enabled` turns the extension off entirely —
  /// the stock-HTTP configuration the paper contrasts against (§3.1).
  /// `render_bodies` = false elides HTML body rendering on 200s — typed
  /// responses carry everything the consistency machinery reads in
  /// ResponseMeta, so simulation sweeps that never inspect payloads (the
  /// benches; default on there) skip the per-poll body allocation.
  struct Config {
    bool history_enabled = true;
    std::size_t history_limit = 16;
    bool render_bodies = true;
    /// Attach traces as ONE self-rechaining simulator event per trace
    /// (the chain re-enqueues itself at the next update instant) instead
    /// of one pre-scheduled event per update.  The chain spends FIFO
    /// sequence numbers reserved at attach time, so same-instant
    /// interleaving with polls is byte-identical either way — pinned by
    /// tests/test_scheduler_differential.cpp.  Batching keeps the pending
    /// set proportional to the number of *traces*, not updates.
    bool batch_trace_attachment = default_batch_trace_attachment();

    /// True, unless the BROADWAY_TRACE_ATTACHMENT environment variable is
    /// "per-update" (the differential tests and CI flip it).
    static bool default_batch_trace_attachment();
  };

  explicit OriginServer(Simulator& sim);
  OriginServer(Simulator& sim, Config config);

  OriginServer(const OriginServer&) = delete;
  OriginServer& operator=(const OriginServer&) = delete;

  /// Create a temporal-domain object (no numeric value) at sim.now().
  VersionedObject& add_object(const std::string& uri);

  /// Create a value-domain object with an initial value at sim.now().
  VersionedObject& add_value_object(const std::string& uri,
                                    double initial_value);

  /// Create the object (if needed) and schedule one update event per trace
  /// instant.  Must be called before the simulation passes the first
  /// update.
  VersionedObject& attach_update_trace(const std::string& uri,
                                       const UpdateTrace& trace);

  /// Create a value object and schedule its ticks.
  VersionedObject& attach_value_trace(const std::string& uri,
                                      const ValueTrace& trace);

  /// Handle a request at the current simulation time.
  Response handle(const Request& request);

  /// Allocation-light variant: the response is written into `out` (reset
  /// first), so a polling engine can reuse one scratch Response across
  /// polls.  Requests with an active typed sideband are answered on the
  /// typed path: validators, value and history land in out.meta (history
  /// as a span into this server's per-object storage — valid until the
  /// object's next update) and no header strings are rendered.
  void handle(const Request& request, Response& out);

  /// The shared intern table.  Engines bound to this origin key their
  /// caches and poll logs through it.
  UriTable& uri_table() { return uris_; }
  const UriTable& uri_table() const { return uris_; }

  /// Interned id for a hosted object's uri; kInvalidObjectId if unknown.
  ObjectId object_id(const std::string& uri) const {
    return uris_.find(uri);
  }

  /// Direct (non-HTTP) read access for evaluators and tests.
  const ObjectStore& store() const { return store_; }
  ObjectStore& store() { return store_; }

  /// Hosted object for an interned id; nullptr when the table interned a
  /// uri this origin does not host (e.g. a proxy-only registration).
  /// O(1) — the client layer's ground-truth read.
  const VersionedObject* object_by_id(ObjectId id) const {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }

  const Config& config() const { return config_; }
  void set_config(Config config) { config_ = config; }

  /// Request accounting (cross-checks the proxy's poll counters).
  std::size_t requests_served() const { return requests_served_; }
  std::size_t responses_200() const { return responses_200_; }
  std::size_t responses_304() const { return responses_304_; }

 private:
  /// Replay state of one batch-attached trace: the chained event applies
  /// update `next` and re-enqueues itself for `next + 1` with the
  /// sequence number reserved for it at attach time.
  struct TraceCursor {
    VersionedObject* target = nullptr;
    std::vector<TimePoint> times;
    std::vector<double> values;  ///< empty for temporal traces
    std::size_t next = 0;
    std::uint64_t seq_base = 0;
  };

  Simulator& sim_;
  Config config_;
  ObjectStore store_;
  UriTable uris_;
  /// Dense ObjectId -> object lookup (nullptr where the table interned a
  /// uri this origin does not host, e.g. a proxy-only registration).
  std::vector<VersionedObject*> by_id_;
  /// Cursors of batch-attached traces (stable addresses: the chained
  /// events capture raw pointers).
  std::vector<std::unique_ptr<TraceCursor>> trace_cursors_;
  std::size_t requests_served_ = 0;
  std::size_t responses_200_ = 0;
  std::size_t responses_304_ = 0;

  /// Lookup for the request: by interned id when present, else by uri.
  const VersionedObject* find_object(const Request& request) const;

  /// Batch attachment: validate the trace, reserve its sequence numbers
  /// and schedule the head of the chain.  `values` is empty for temporal
  /// traces, else parallel to `times`.
  void attach_chained(VersionedObject& object, std::vector<TimePoint> times,
                      std::vector<double> values);

  /// Apply update `cursor.next` and re-enqueue the chain.
  void step_trace(TraceCursor& cursor);

  void respond_full(const VersionedObject& object,
                    std::optional<TimePoint> since, bool typed,
                    Response& out);
};

}  // namespace broadway

// The origin web server model.
//
// Applies trace-driven updates to its object store on the simulator's
// timeline and answers HTTP requests with the conditional-GET semantics the
// paper's mechanisms rely on (paper §5): an `if-modified-since` request is
// answered 304 when the object is unchanged, otherwise 200 with the new
// body, Last-Modified, the value extension for value-domain objects, and —
// when enabled — the X-Modification-History extension of §5.1.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "http/extensions.h"
#include "http/message.h"
#include "origin/store.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {

/// Origin server bound to a simulator.  One instance can host any number
/// of objects, each driven by its own trace.
class OriginServer {
 public:
  /// `history_limit` caps the X-Modification-History entries per response
  /// (0 = unlimited).  `history_enabled` turns the extension off entirely —
  /// the stock-HTTP configuration the paper contrasts against (§3.1).
  struct Config {
    bool history_enabled = true;
    std::size_t history_limit = 16;
  };

  explicit OriginServer(Simulator& sim);
  OriginServer(Simulator& sim, Config config);

  OriginServer(const OriginServer&) = delete;
  OriginServer& operator=(const OriginServer&) = delete;

  /// Create a temporal-domain object (no numeric value) at sim.now().
  VersionedObject& add_object(const std::string& uri);

  /// Create a value-domain object with an initial value at sim.now().
  VersionedObject& add_value_object(const std::string& uri,
                                    double initial_value);

  /// Create the object (if needed) and schedule one update event per trace
  /// instant.  Must be called before the simulation passes the first
  /// update.
  VersionedObject& attach_update_trace(const std::string& uri,
                                       const UpdateTrace& trace);

  /// Create a value object and schedule its ticks.
  VersionedObject& attach_value_trace(const std::string& uri,
                                      const ValueTrace& trace);

  /// Handle a request at the current simulation time.
  Response handle(const Request& request);

  /// Direct (non-HTTP) read access for evaluators and tests.
  const ObjectStore& store() const { return store_; }
  ObjectStore& store() { return store_; }

  const Config& config() const { return config_; }
  void set_config(Config config) { config_ = config; }

  /// Request accounting (cross-checks the proxy's poll counters).
  std::size_t requests_served() const { return requests_served_; }
  std::size_t responses_200() const { return responses_200_; }
  std::size_t responses_304() const { return responses_304_; }

 private:
  Simulator& sim_;
  Config config_;
  ObjectStore store_;
  std::size_t requests_served_ = 0;
  std::size_t responses_200_ = 0;
  std::size_t responses_304_ = 0;

  Response respond_full(const VersionedObject& object,
                        std::optional<TimePoint> since);
};

}  // namespace broadway

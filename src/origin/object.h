// A versioned web object as the origin server sees it.
//
// Version numbering follows the paper (§2): version 0 at creation,
// incremented on each update; the proxy's version is the server version it
// last fetched.  The object keeps its full modification history so the
// server can answer the paper's proposed X-Modification-History extension
// and so tests can validate proxy-side inference against ground truth.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace broadway {

/// One origin-side object.  Mutated only through `apply_update`, which
/// enforces monotone time and version growth.
class VersionedObject {
 public:
  /// Create version 0 at `creation_time`.  `value` is the numeric payload
  /// of value-domain objects (stock price); temporal-domain objects carry
  /// no value.
  VersionedObject(std::string uri, TimePoint creation_time,
                  std::optional<double> value = std::nullopt);

  const std::string& uri() const { return uri_; }

  /// Current version number (0-based; equals number of updates applied).
  std::size_t version() const { return modifications_.size(); }

  /// Instant of the most recent modification (creation time for version 0).
  TimePoint last_modified() const;

  /// Numeric value, if this is a value-domain object.
  std::optional<double> value() const { return value_; }

  /// Whether the object has been modified strictly after `t`.
  bool modified_since(TimePoint t) const { return last_modified() > t; }

  /// Apply an update at time `t` (must be >= last_modified()).  For
  /// value-domain objects pass the new value.
  void apply_update(TimePoint t, std::optional<double> new_value = std::nullopt);

  /// Modification instants strictly after `t`, oldest first, capped at
  /// `limit` *most recent* entries (0 = no cap).  This is the payload of
  /// the X-Modification-History extension.
  std::vector<TimePoint> history_since(TimePoint t, std::size_t limit) const;

  /// The same selection as history_since, but as a zero-copy span of
  /// *millisecond-quantised* instants — exactly the values a proxy would
  /// read back from the rendered header.  Valid until the next
  /// apply_update(); the typed wire path points ResponseMeta at it.
  struct WireHistorySpan {
    const TimePoint* data = nullptr;
    std::size_t size = 0;
  };
  WireHistorySpan wire_history_since(TimePoint t, std::size_t limit) const;

  /// Millisecond-quantised last_modified(), as the wire reports it.
  TimePoint wire_last_modified() const { return wire_last_modified_; }

  /// Full modification history (ascending).  Ground truth for tests.
  const std::vector<TimePoint>& modifications() const {
    return modifications_;
  }

  TimePoint creation_time() const { return creation_time_; }

  /// Synthesised HTML body for the current version, embedding the version
  /// stamp and any declared related links (used by the syntactic grouping
  /// machinery and by examples).
  std::string render_body() const;

  /// Declare embedded objects that render_body() should reference, e.g.
  /// images accompanying a news story (paper §1 example 1).
  void set_embedded_links(std::vector<std::string> links);
  const std::vector<std::string>& embedded_links() const {
    return embedded_links_;
  }

 private:
  std::string uri_;
  TimePoint creation_time_;
  std::vector<TimePoint> modifications_;
  /// modifications_, ms-quantised once per update (index-aligned).  The
  /// history *selection* always compares the exact instants so the typed
  /// span matches history_since entry for entry; only the transported
  /// values are quantised.
  std::vector<TimePoint> wire_modifications_;
  TimePoint wire_last_modified_;
  std::optional<double> value_;
  std::vector<std::string> embedded_links_;
};

}  // namespace broadway

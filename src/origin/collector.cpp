#include "origin/collector.h"

#include <algorithm>

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

TraceCollector::TraceCollector(Simulator& sim, OriginServer& origin,
                               std::string uri, Duration period)
    : sim_(sim),
      origin_(origin),
      uri_(std::move(uri)),
      period_(period),
      task_(sim, [this] {
        poll();
        return period_;
      }) {
  BROADWAY_CHECK_MSG(period_ > 0.0, "period " << period_);
}

void TraceCollector::start() {
  last_poll_ = sim_.now();
  task_.start(period_);
}

void TraceCollector::stop() { task_.stop(); }

void TraceCollector::poll() {
  ++polls_;
  const Response response =
      origin_.handle(Request::conditional_get(uri_, last_poll_));
  BROADWAY_CHECK_MSG(response.status != StatusCode::kNotFound,
                     uri_ << " not present at origin");
  last_poll_ = sim_.now();
  if (!response.ok()) return;  // 304: unchanged
  const auto last_modified = get_last_modified(response.headers);
  if (!last_modified) return;
  if (observations_.empty() || *last_modified > observations_.back()) {
    observations_.push_back(*last_modified);
  }
}

UpdateTrace TraceCollector::reconstructed_trace(Duration horizon,
                                                double start_hour) const {
  std::vector<TimePoint> updates;
  for (TimePoint t : observations_) {
    if (t > 0.0 && t < horizon) updates.push_back(t);
  }
  return UpdateTrace(uri_ + " (collected)", std::move(updates), horizon,
                     start_hour);
}

ReconstructionQuality compare_reconstruction(const UpdateTrace& truth,
                                             const UpdateTrace& observed) {
  ReconstructionQuality out;
  out.true_updates = truth.count();
  out.observed_updates = observed.count();
  if (truth.count() == 0) return out;
  std::size_t found = 0;
  for (TimePoint t : observed.updates()) {
    // An observed instant is genuine iff it matches a true update instant
    // to within the wire precision of the Last-Modified extension (ms).
    const auto& updates = truth.updates();
    auto it = std::lower_bound(updates.begin(), updates.end(), t - 2e-3);
    if (it != updates.end() && std::abs(*it - t) <= 2e-3) ++found;
  }
  out.recall = static_cast<double>(found) /
               static_cast<double>(truth.count());
  return out;
}

}  // namespace broadway

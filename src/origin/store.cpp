#include "origin/store.h"

#include "util/check.h"

namespace broadway {

VersionedObject& ObjectStore::create(const std::string& uri,
                                     TimePoint creation_time,
                                     std::optional<double> value) {
  BROADWAY_CHECK_MSG(!contains(uri), "duplicate object " << uri);
  auto object = std::make_unique<VersionedObject>(uri, creation_time, value);
  VersionedObject& ref = *object;
  objects_.emplace(uri, std::move(object));
  return ref;
}

VersionedObject* ObjectStore::find(const std::string& uri) {
  auto it = objects_.find(uri);
  return it == objects_.end() ? nullptr : it->second.get();
}

const VersionedObject* ObjectStore::find(const std::string& uri) const {
  auto it = objects_.find(uri);
  return it == objects_.end() ? nullptr : it->second.get();
}

VersionedObject& ObjectStore::at(const std::string& uri) {
  VersionedObject* object = find(uri);
  BROADWAY_CHECK_MSG(object != nullptr, "no such object " << uri);
  return *object;
}

const VersionedObject& ObjectStore::at(const std::string& uri) const {
  const VersionedObject* object = find(uri);
  BROADWAY_CHECK_MSG(object != nullptr, "no such object " << uri);
  return *object;
}

bool ObjectStore::contains(const std::string& uri) const {
  return objects_.find(uri) != objects_.end();
}

std::vector<std::string> ObjectStore::uris() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [uri, object] : objects_) out.push_back(uri);
  return out;
}

}  // namespace broadway

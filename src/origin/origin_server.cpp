#include "origin/origin_server.h"

#include "util/check.h"
#include "util/log.h"

namespace broadway {

OriginServer::OriginServer(Simulator& sim) : OriginServer(sim, Config()) {}

OriginServer::OriginServer(Simulator& sim, Config config)
    : sim_(sim), config_(config) {}

VersionedObject& OriginServer::add_object(const std::string& uri) {
  return store_.create(uri, sim_.now());
}

VersionedObject& OriginServer::add_value_object(const std::string& uri,
                                                double initial_value) {
  return store_.create(uri, sim_.now(), initial_value);
}

VersionedObject& OriginServer::attach_update_trace(const std::string& uri,
                                                   const UpdateTrace& trace) {
  VersionedObject* existing = store_.find(uri);
  VersionedObject& object = existing ? *existing : add_object(uri);
  for (TimePoint t : trace.updates()) {
    BROADWAY_CHECK_MSG(t >= sim_.now(), "trace update in the past at " << t);
    VersionedObject* target = &object;
    sim_.schedule_at(t, [this, target] {
      target->apply_update(sim_.now());
    });
  }
  return object;
}

VersionedObject& OriginServer::attach_value_trace(const std::string& uri,
                                                  const ValueTrace& trace) {
  BROADWAY_CHECK_MSG(!store_.contains(uri), "duplicate value object " << uri);
  VersionedObject& object = add_value_object(uri, trace.initial_value());
  for (const auto& step : trace.steps()) {
    BROADWAY_CHECK_MSG(step.time >= sim_.now(),
                       "trace step in the past at " << step.time);
    VersionedObject* target = &object;
    const double value = step.value;
    sim_.schedule_at(step.time, [this, target, value] {
      target->apply_update(sim_.now(), value);
    });
  }
  return object;
}

Response OriginServer::handle(const Request& request) {
  ++requests_served_;
  const VersionedObject* object = store_.find(request.uri);
  if (object == nullptr) {
    Response resp;
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  const std::optional<TimePoint> since =
      get_if_modified_since(request.headers);
  if (since && !object->modified_since(*since)) {
    Response resp;
    resp.status = StatusCode::kNotModified;
    set_last_modified(resp.headers, object->last_modified());
    ++responses_304_;
    return resp;
  }
  ++responses_200_;
  Response response = respond_full(*object, since);
  if (request.method == Method::kHead) {
    // HEAD: identical headers, no body (RFC 2616 §9.4).  Content-Length
    // still describes what GET would return.
    response.headers.set("Content-Length",
                         std::to_string(response.body.size()));
    response.body.clear();
  }
  return response;
}

Response OriginServer::respond_full(const VersionedObject& object,
                                    std::optional<TimePoint> since) {
  Response resp;
  resp.status = StatusCode::kOk;
  set_last_modified(resp.headers, object.last_modified());
  if (object.value()) {
    set_object_value(resp.headers, *object.value());
  }
  if (config_.history_enabled) {
    // History "of arbitrary length" (paper §5.1): all updates the client
    // has not seen, newest-capped by history_limit.
    const TimePoint from = since.value_or(object.creation_time());
    set_modification_history(
        resp.headers, object.history_since(from, config_.history_limit));
  }
  resp.headers.set("Content-Type", object.value() ? "text/plain" : "text/html");
  resp.body = object.render_body();
  return resp;
}

}  // namespace broadway

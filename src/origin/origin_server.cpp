#include "origin/origin_server.h"

#include "util/check.h"
#include "util/env.h"
#include "util/log.h"

namespace broadway {

bool OriginServer::Config::default_batch_trace_attachment() {
  return env_choice("BROADWAY_TRACE_ATTACHMENT", {"batch", "per-update"},
                    /*fallback=*/0) == 0;
}

OriginServer::OriginServer(Simulator& sim) : OriginServer(sim, Config()) {}

OriginServer::OriginServer(Simulator& sim, Config config)
    : sim_(sim), config_(config) {}

VersionedObject& OriginServer::add_object(const std::string& uri) {
  VersionedObject& object = store_.create(uri, sim_.now());
  const ObjectId id = uris_.intern(uri);
  if (by_id_.size() <= id) by_id_.resize(id + 1, nullptr);
  by_id_[id] = &object;
  return object;
}

VersionedObject& OriginServer::add_value_object(const std::string& uri,
                                                double initial_value) {
  VersionedObject& object = store_.create(uri, sim_.now(), initial_value);
  const ObjectId id = uris_.intern(uri);
  if (by_id_.size() <= id) by_id_.resize(id + 1, nullptr);
  by_id_[id] = &object;
  return object;
}

VersionedObject& OriginServer::attach_update_trace(const std::string& uri,
                                                   const UpdateTrace& trace) {
  VersionedObject* existing = store_.find(uri);
  VersionedObject& object = existing ? *existing : add_object(uri);
  if (config_.batch_trace_attachment) {
    attach_chained(object, trace.updates(), {});
    return object;
  }
  for (TimePoint t : trace.updates()) {
    BROADWAY_CHECK_MSG(t >= sim_.now(), "trace update in the past at " << t);
    VersionedObject* target = &object;
    sim_.schedule_at(t, [this, target] {
      target->apply_update(sim_.now());
    });
  }
  return object;
}

VersionedObject& OriginServer::attach_value_trace(const std::string& uri,
                                                  const ValueTrace& trace) {
  BROADWAY_CHECK_MSG(!store_.contains(uri), "duplicate value object " << uri);
  VersionedObject& object = add_value_object(uri, trace.initial_value());
  if (config_.batch_trace_attachment) {
    std::vector<TimePoint> times;
    std::vector<double> values;
    times.reserve(trace.steps().size());
    values.reserve(trace.steps().size());
    for (const auto& step : trace.steps()) {
      times.push_back(step.time);
      values.push_back(step.value);
    }
    attach_chained(object, std::move(times), std::move(values));
    return object;
  }
  for (const auto& step : trace.steps()) {
    BROADWAY_CHECK_MSG(step.time >= sim_.now(),
                       "trace step in the past at " << step.time);
    VersionedObject* target = &object;
    const double value = step.value;
    sim_.schedule_at(step.time, [this, target, value] {
      target->apply_update(sim_.now(), value);
    });
  }
  return object;
}

void OriginServer::attach_chained(VersionedObject& object,
                                  std::vector<TimePoint> times,
                                  std::vector<double> values) {
  if (times.empty()) return;
  // The chain needs non-decreasing instants to re-enqueue itself; traces
  // guarantee it, but fail loudly here rather than mid-simulation.
  TimePoint previous = sim_.now();
  for (TimePoint t : times) {
    BROADWAY_CHECK_MSG(t >= previous,
                       "trace update out of order or in the past at " << t);
    previous = t;
  }
  auto cursor = std::make_unique<TraceCursor>();
  cursor->target = &object;
  cursor->times = std::move(times);
  cursor->values = std::move(values);
  // One reserved sequence number per update: the chain fires in exactly
  // the same-instant order the eager per-update schedule would have.
  cursor->seq_base = sim_.reserve_sequence(cursor->times.size());
  TraceCursor* raw = cursor.get();
  trace_cursors_.push_back(std::move(cursor));
  sim_.schedule_at_reserved(raw->times.front(), raw->seq_base,
                            [this, raw] { step_trace(*raw); });
}

void OriginServer::step_trace(TraceCursor& cursor) {
  const std::size_t index = cursor.next++;
  if (cursor.values.empty()) {
    cursor.target->apply_update(sim_.now());
  } else {
    cursor.target->apply_update(sim_.now(), cursor.values[index]);
  }
  const std::size_t following = cursor.next;
  if (following < cursor.times.size()) {
    TraceCursor* raw = &cursor;
    sim_.schedule_at_reserved(cursor.times[following],
                              cursor.seq_base + following,
                              [this, raw] { step_trace(*raw); });
  } else {
    // The chain is done: release the replay data now instead of holding
    // O(trace length) per finished trace until origin destruction (the
    // cursor object itself stays put — addresses must remain stable).
    cursor.times = {};
    cursor.values = {};
  }
}

const VersionedObject* OriginServer::find_object(
    const Request& request) const {
  if (request.object != kInvalidObjectId) {
    return request.object < by_id_.size() ? by_id_[request.object] : nullptr;
  }
  return store_.find(request.uri);
}

Response OriginServer::handle(const Request& request) {
  Response response;
  handle(request, response);
  return response;
}

void OriginServer::handle(const Request& request, Response& out) {
  out.reset();
  ++requests_served_;
  const VersionedObject* object = find_object(request);
  // The typed path covers the engine's GET polls; anything else (HEAD,
  // codec-parsed messages) renders headers as before.
  const bool typed = request.meta.active && request.method == Method::kGet;
  if (object == nullptr) {
    out.status = StatusCode::kNotFound;
    out.meta.active = typed;
    return;
  }
  const std::optional<TimePoint> since = wire_if_modified_since(request);
  if (since && !object->modified_since(*since)) {
    out.status = StatusCode::kNotModified;
    if (typed) {
      out.meta.active = true;
      out.meta.last_modified = object->wire_last_modified();
    } else {
      set_last_modified(out.headers, object->last_modified());
    }
    ++responses_304_;
    return;
  }
  ++responses_200_;
  respond_full(*object, since, typed, out);
  if (request.method == Method::kHead) {
    // HEAD: identical headers, no body (RFC 2616 §9.4).  Content-Length
    // still describes what GET would return.
    out.headers.set("Content-Length", std::to_string(out.body.size()));
    out.body.clear();
  }
}

void OriginServer::respond_full(const VersionedObject& object,
                                std::optional<TimePoint> since, bool typed,
                                Response& out) {
  out.status = StatusCode::kOk;
  if (typed) {
    out.meta.active = true;
    out.meta.last_modified = object.wire_last_modified();
    if (object.value()) out.meta.value = *object.value();
    if (config_.history_enabled) {
      // History "of arbitrary length" (paper §5.1) as a span into the
      // object's quantised history — no rendering, no copy.
      const auto span = object.wire_history_since(
          since.value_or(object.creation_time()), config_.history_limit);
      out.meta.set_history_view(span.data, span.size);
    }
  } else {
    set_last_modified(out.headers, object.last_modified());
    if (object.value()) {
      set_object_value(out.headers, *object.value());
    }
    if (config_.history_enabled) {
      const TimePoint from = since.value_or(object.creation_time());
      set_modification_history(
          out.headers, object.history_since(from, config_.history_limit));
    }
    out.headers.set("Content-Type",
                    object.value() ? "text/plain" : "text/html");
  }
  if (config_.render_bodies) {
    out.body = object.render_body();
  }
}

}  // namespace broadway

// Server-push consistency channel — the paper's noted alternative.
//
// Footnote 1 of the paper: "Server-based approaches for enforcing
// Δ-consistency are also possible.  In such approaches, the server pushes
// relevant changes to the proxy (e.g., only those updates that are
// necessary to maintain the Δ-bound are pushed)."  The paper scopes these
// out; this module implements the natural version so the poll-based
// mechanisms can be compared against it (bench_ablation_push):
//
//  * a proxy subscribes to an object;
//  * on each origin update a push is scheduled, but pushes are *coalesced*:
//    while a push is pending, further updates ride along with it.  A
//    coalescing window of up to Δ preserves Δt-consistency (the first
//    unseen update is delivered within Δ) while cutting message count on
//    bursty objects;
//  * each delivered push carries the full response the proxy would have
//    obtained by polling at that instant.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "http/message.h"
#include "origin/origin_server.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace broadway {

/// Push subscription manager bound to one origin server.  The origin does
/// not know about subscribers natively (HTTP is pull); this channel owns
/// the update hooks and the coalescing timers.
class PushChannel {
 public:
  /// Called at delivery time with the pushed response.
  using Delivery = std::function<void(const std::string& uri,
                                      const Response& response)>;

  /// `coalesce_window` bounds how long a push may wait for further
  /// updates to share the message.  0 = push immediately on every update.
  /// For Δt-consistency the window must not exceed Δ (minus the delivery
  /// latency); the channel enforces only non-negativity — the policy
  /// choice is the subscriber's.
  PushChannel(Simulator& sim, OriginServer& origin,
              Duration coalesce_window = 0.0);

  PushChannel(const PushChannel&) = delete;
  PushChannel& operator=(const PushChannel&) = delete;

  /// Subscribe to an object.  Each origin update of `uri` results in a
  /// delivery (possibly coalescing several updates).  The object must
  /// exist at the origin.
  void subscribe(const std::string& uri, Delivery delivery);

  /// Notify the channel that `uri` was updated at the origin "now".  The
  /// origin server does not call this itself; the simulation harness
  /// attaches it alongside the update trace (see attach_pushed_trace).
  void on_update(const std::string& uri);

  /// Convenience: create the object, schedule its trace updates *and*
  /// wire each update to this channel.
  void attach_pushed_trace(const std::string& uri, const UpdateTrace& trace);
  void attach_pushed_trace(const std::string& uri, const ValueTrace& trace);

  /// Messages delivered so far (the push-side cost metric; compare with
  /// the poll counts of the pull mechanisms).
  std::size_t pushes_delivered() const { return pushes_delivered_; }

  /// Updates coalesced into an already-pending push.
  std::size_t updates_coalesced() const { return updates_coalesced_; }

 private:
  struct Subscription {
    Delivery delivery;
    bool push_pending = false;
    EventId pending_event = kInvalidEventId;
  };

  Simulator& sim_;
  OriginServer& origin_;
  Duration coalesce_window_;
  std::map<std::string, Subscription> subscriptions_;
  std::size_t pushes_delivered_ = 0;
  std::size_t updates_coalesced_ = 0;

  void deliver(const std::string& uri);
};

}  // namespace broadway

#include "origin/object.h"

#include <algorithm>
#include <sstream>

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

VersionedObject::VersionedObject(std::string uri, TimePoint creation_time,
                                 std::optional<double> value)
    : uri_(std::move(uri)),
      creation_time_(creation_time),
      wire_last_modified_(quantize_wire_seconds(creation_time)),
      value_(value) {
  BROADWAY_CHECK_MSG(!uri_.empty(), "object needs a uri");
  BROADWAY_CHECK_MSG(creation_time_ >= 0.0, "creation at " << creation_time_);
}

TimePoint VersionedObject::last_modified() const {
  return modifications_.empty() ? creation_time_ : modifications_.back();
}

void VersionedObject::apply_update(TimePoint t,
                                   std::optional<double> new_value) {
  BROADWAY_CHECK_MSG(t >= last_modified(),
                     uri_ << ": update at " << t << " before last_modified "
                          << last_modified());
  BROADWAY_CHECK_MSG(value_.has_value() == new_value.has_value(),
                     uri_ << ": value/temporal domain mismatch");
  modifications_.push_back(t);
  // Quantise once per *update* so per-poll responses can hand out history
  // spans and Last-Modified without any formatting work.
  wire_last_modified_ = quantize_wire_seconds(t);
  wire_modifications_.push_back(wire_last_modified_);
  if (new_value) value_ = new_value;
}

std::vector<TimePoint> VersionedObject::history_since(
    TimePoint t, std::size_t limit) const {
  auto first = std::upper_bound(modifications_.begin(), modifications_.end(),
                                t);
  std::vector<TimePoint> out(first, modifications_.end());
  if (limit > 0 && out.size() > limit) {
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(limit));
  }
  return out;
}

VersionedObject::WireHistorySpan VersionedObject::wire_history_since(
    TimePoint t, std::size_t limit) const {
  // Select on the *exact* instants (same predicate as history_since), then
  // serve the index-aligned quantised values.
  const auto first =
      std::upper_bound(modifications_.begin(), modifications_.end(), t);
  std::size_t begin =
      static_cast<std::size_t>(first - modifications_.begin());
  const std::size_t end = modifications_.size();
  if (limit > 0 && end - begin > limit) begin = end - limit;
  return WireHistorySpan{wire_modifications_.data() + begin, end - begin};
}

void VersionedObject::set_embedded_links(std::vector<std::string> links) {
  embedded_links_ = std::move(links);
}

std::string VersionedObject::render_body() const {
  std::ostringstream os;
  os << "<html><head><title>" << uri_ << "</title></head>\n<body>\n"
     << "<!-- version " << version() << " -->\n";
  if (value_) {
    os << "<span class=\"quote\">" << *value_ << "</span>\n";
  }
  for (const auto& link : embedded_links_) {
    os << "<img src=\"" << link << "\"/>\n";
  }
  os << "</body></html>\n";
  return os.str();
}

}  // namespace broadway

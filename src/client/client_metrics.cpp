#include "client/client_metrics.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

ClientMetrics& ClientMetrics::merge(const ClientMetrics& other) {
  requests += other.requests;
  hits += other.hits;
  misses += other.misses;
  fresh += other.fresh;
  stale += other.stale;
  demand_fills += other.demand_fills;
  age.merge(other.age);
  staleness.merge(other.staleness);
  fill_latency.merge(other.fill_latency);
  dark_reads += other.dark_reads;
  dark_stale += other.dark_stale;
  dark_misses += other.dark_misses;
  return *this;
}

ClientReadSample classify_client_read(TimePoint now, bool hit,
                                      TimePoint snapshot,
                                      const VersionedObject* truth) {
  ClientReadSample sample;
  if (!hit) return sample;
  BROADWAY_CHECK_MSG(truth != nullptr, "cached object missing at origin");
  sample.hit = true;
  sample.snapshot = snapshot;
  sample.age = now - snapshot;
  if (truth->modified_since(snapshot)) {
    // Lag: how long ago the first update this copy missed happened.
    const std::vector<TimePoint>& mods = truth->modifications();
    auto first_unseen =
        std::upper_bound(mods.begin(), mods.end(), snapshot);
    BROADWAY_CHECK(first_unseen != mods.end());
    sample.staleness = now - *first_unseen;
  } else {
    sample.fresh = true;
  }
  return sample;
}

void record_client_read(ClientMetrics& metrics,
                        const ClientReadSample& sample) {
  ++metrics.requests;
  if (sample.dark) {
    ++metrics.dark_reads;
    if (!sample.hit) {
      ++metrics.dark_misses;
    } else if (!sample.fresh) {
      ++metrics.dark_stale;
    }
  }
  if (!sample.hit) {
    ++metrics.misses;
    if (sample.filled) {
      ++metrics.demand_fills;
      metrics.fill_latency.add(sample.fill_latency);
    }
    return;
  }
  ++metrics.hits;
  metrics.age.add(sample.age);
  if (sample.fresh) {
    ++metrics.fresh;
  } else {
    ++metrics.stale;
    metrics.staleness.add(sample.staleness);
  }
}

std::vector<ClientRequestRecord> merge_client_records(
    std::vector<ProxyClientRecords> streams) {
  // Proxy-ascending concatenation + stable sort by request time gives the
  // (time, proxy, in-stream position) order independent of the order the
  // caller listed the streams in — same contract as merge_poll_records.
  std::sort(streams.begin(), streams.end(),
            [](const ProxyClientRecords& a, const ProxyClientRecords& b) {
              return a.proxy < b.proxy;
            });
  std::size_t total = 0;
  for (const ProxyClientRecords& stream : streams) {
    BROADWAY_CHECK(stream.records != nullptr);
    total += stream.records->size();
  }
  std::vector<ClientRequestRecord> merged;
  merged.reserve(total);
  for (const ProxyClientRecords& stream : streams) {
    merged.insert(merged.end(), stream.records->begin(),
                  stream.records->end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ClientRequestRecord& a,
                      const ClientRequestRecord& b) {
                     return a.time < b.time;
                   });
  return merged;
}

}  // namespace broadway

// Client-side metrics: what the users of the proxies actually observed.
//
// The paper's evaluation is proxy-centric (poll counts, fidelity of the
// cached copy over time); this module measures the same system from the
// *client's* seat.  A client read is served whatever copy the proxy holds
// at that instant, so the interesting quantities are per-request: was it a
// hit, which server-state snapshot was served, how old that snapshot was
// (client-observed staleness — distinct from proxy-side fidelity, which
// integrates over time regardless of whether anyone looked), and whether
// the copy was behind the origin's ground truth.
//
// ClientMetrics is mergeable: the sharded fleet accumulates one instance
// per proxy and folds them in ascending global proxy id, so the merged
// result — including the floating-point OnlineStats — is byte-identical
// to the single-simulator reference at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "origin/object.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// Popularity weight for one interned object.  The id-keyed unit every
/// client-facing popularity surface is built from (PR 3/5 pattern: dense
/// ids on the hot path, string overloads as translating wrappers).
struct ObjectWeight {
  ObjectId object = kInvalidObjectId;
  double weight = 1.0;
};

/// Aggregate view of what clients experienced at one proxy (or, after
/// merge(), across a fleet).
struct ClientMetrics {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;    ///< served from cache
  std::uint64_t misses = 0;  ///< object not cached at request time
  std::uint64_t fresh = 0;   ///< served copy matched the origin version
  std::uint64_t stale = 0;   ///< served copy lagged the origin
  /// Misses the proxy demand-filled from the origin before answering
  /// (PollingEngine demand_fill on).  A filled read still counts as a
  /// miss — the cache did not have the copy when the client asked — so
  /// hits + misses == requests always holds; fills show up as the
  /// *subsequent* hits they enable.
  std::uint64_t demand_fills = 0;
  /// Age of the served copy: request time minus the snapshot instant the
  /// copy reflects, over all hits.  A relay-delivered copy is aged from
  /// the *relayed* snapshot (the sender's poll fire time), never from its
  /// delivery instant.
  OnlineStats age;
  /// Lag (s) behind the first origin update the served copy missed, over
  /// stale hits only.
  OnlineStats staleness;
  /// Client-observed fill latency: how long the demand fetch took (origin
  /// round-trip plus any lost-poll retries resolved synchronously), over
  /// demand-filled misses only.
  OnlineStats fill_latency;
  /// Degradation attribution (fault injection, fleet/faults.h): requests
  /// served while the proxy was dark (crashed).  dark_reads splits into
  /// hits off the surviving disk cache — dark_stale of them already
  /// lagging the origin — and dark_misses, which could not demand-fill
  /// (MissReason::kProxyDark).  All zero without crash windows.
  std::uint64_t dark_reads = 0;
  std::uint64_t dark_stale = 0;
  std::uint64_t dark_misses = 0;

  double hit_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(hits) /
                                     static_cast<double>(requests);
  }
  double stale_rate() const {
    return hits == 0 ? 0.0 : static_cast<double>(stale) /
                                 static_cast<double>(hits);
  }

  /// Fold another proxy's metrics into this one.  Counters are sums; the
  /// OnlineStats use the parallel Welford merge, so callers that need
  /// bit-reproducible aggregates must merge in a fixed order (the fleet
  /// layers merge ascending by global proxy id).
  ClientMetrics& merge(const ClientMetrics& other);
};

/// One classified client read.
struct ClientReadSample {
  bool hit = false;
  bool fresh = false;          ///< ground truth vs the origin (hits only)
  bool filled = false;         ///< miss demand-filled before answering
  bool dark = false;           ///< served while the proxy was crashed
  TimePoint snapshot = 0.0;    ///< server-state instant of the served copy
  Duration age = 0.0;          ///< now - snapshot (hits only)
  Duration staleness = 0.0;    ///< lag behind the first unseen update
  Duration fill_latency = 0.0; ///< demand-fetch duration (filled only)
};

/// Classify one read against origin ground truth: `snapshot` is the served
/// copy's server-state instant (ignored on a miss), `truth` the origin's
/// object (required on a hit).  The copy is stale iff the origin modified
/// the object strictly after `snapshot`; its staleness is how long ago the
/// first unseen update happened.
ClientReadSample classify_client_read(TimePoint now, bool hit,
                                      TimePoint snapshot,
                                      const VersionedObject* truth);

/// Account one classified read.
void record_client_read(ClientMetrics& metrics,
                        const ClientReadSample& sample);

/// One recorded request (kept only when the traffic layer is asked to —
/// the differential tests pin these streams byte-identical across fleet
/// implementations).
struct ClientRequestRecord {
  TimePoint time = 0.0;
  std::uint32_t proxy = 0;   ///< global proxy id that served the request
  std::uint64_t client = 0;  ///< deterministic global simulated client id
  ObjectId object = kInvalidObjectId;
  ClientReadSample read;
};

/// One proxy's request records tagged with its global id, as input to
/// merge_client_records.  `records` must outlive the call.
struct ProxyClientRecords {
  std::size_t proxy = 0;
  const std::vector<ClientRequestRecord>* records = nullptr;
};

/// Deterministic fleet-wide request stream ordered by (time, proxy,
/// in-stream position) — the same bytes whether the streams came from one
/// simulator or from per-shard slices, at any thread count (the
/// merge_poll_records contract, applied to client requests).
std::vector<ClientRequestRecord> merge_client_records(
    std::vector<ProxyClientRecords> streams);

}  // namespace broadway

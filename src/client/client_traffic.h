// Fleet-aware client traffic: aggregated per-proxy request streams.
//
// The paper's simulator "simulates a proxy cache that receives requests
// from several clients" (§6.1.1).  This layer drives those requests at a
// fleet of proxies: each proxy receives one *aggregated* Poisson request
// stream standing in for its whole client population — millions of
// simulated clients cost one self-rescheduling event per proxy, not one
// per client.  Per-request client ids are drawn deterministically from
// the proxy's stream, so a request is still attributable to a stable
// client identity without any per-client state.
//
// Request shape: object selection is Zipf-popularity over the origin's
// hosted objects (or explicit id-keyed weights), and the request *rate*
// is modulated by a DiurnalProfile (src/trace/diurnal.h) via Poisson
// thinning — candidate instants are drawn at the profile's peak rate and
// accepted with probability intensity/peak, which keeps the stream a
// pure function of the per-proxy RNG.
//
// Determinism is the same bar as the rest of the fleet: proxy i's stream
// depends only on (config seed, global proxy id), its events are
// scheduled under the proxy's global id as the Simulator schedule tag,
// and reads touch only proxy-local state (cache) plus the origin replica
// hosted on the same shard — so a ShardedFleet run produces byte-identical
// per-proxy ClientMetrics and request records at any thread count
// (tests/test_client_differential.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "client/client_metrics.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "trace/diurnal.h"
#include "util/rng.h"

namespace broadway {

/// Traffic shape shared by every proxy's stream.
struct ClientTrafficConfig {
  /// Mean request rate per proxy (requests/s, time-averaged over the
  /// diurnal profile — a flat profile makes the stream homogeneous
  /// Poisson at exactly this rate).
  double request_rate = 10.0;
  /// Zipf exponent for the default popularity law over the origin's
  /// hosted objects, ranked by intern order: weight(rank) = 1/(rank+1)^s.
  /// 0 = uniform.  Ignored when `popularity` is non-empty.
  double zipf_exponent = 0.8;
  /// Explicit id-keyed popularity weights (resolved through the shared
  /// UriTable); empty = Zipf over every hosted object.  Unknown ids fail
  /// fast at start().
  std::vector<ObjectWeight> popularity;
  /// Simulated client population behind each proxy.  Every request draws
  /// a client uniformly from it; the global client id is
  /// proxy_global_id * clients_per_proxy + local draw.
  std::uint64_t clients_per_proxy = 1'000'000;
  /// Per-client session locality: with this probability a request re-draws
  /// its object from the issuing client's small *session working set*
  /// instead of the global popularity law.  The working set is the
  /// `session_objects` popularity draws keyed counter-style by
  /// (seed, global client id, slot) — a pure function of the client
  /// identity, so it is identical whether the proxy runs in a whole fleet
  /// or a shard slice.  0 (the default) skips the locality draw entirely,
  /// leaving the per-request RNG consumption exactly as before (two draws:
  /// client, object); any positive value consumes exactly three draws per
  /// request (client, locality coin, object).
  double session_locality = 0.0;
  /// Working-set size per client when session_locality > 0.
  std::size_t session_objects = 4;
  /// Hour-of-day modulation of the request rate.
  DiurnalProfile profile = DiurnalProfile::flat();
  /// Wall-clock hour at simulated t = 0.
  double start_hour = 0.0;
  /// Stream seed; proxy i draws from Rng(seed + global id), so a slice's
  /// streams are bit-identical to the same proxies in a whole fleet.
  std::uint64_t seed = 1;
  /// Keep a ClientRequestRecord per request (differential tests, debug).
  /// Off keeps memory flat regardless of run length; metrics always
  /// accumulate.
  bool record_requests = false;
};

/// Aggregated client streams over a set of proxies (a whole fleet, or one
/// shard's slice).  Construct with the engines to drive, `start()` after
/// the engines started, run the simulator, read metrics.
class FleetClientTraffic {
 public:
  /// One proxy to drive.  `global_id` is the fleet-wide proxy id (equal
  /// to the local index for a whole fleet; the shard's slice passes the
  /// global ids it hosts).
  struct ProxyBinding {
    PollingEngine* engine = nullptr;
    std::size_t global_id = 0;
  };

  /// `origin` is the server (or shard replica) providing ground truth and
  /// the shared UriTable.  Bindings must be in ascending global id order
  /// (the fleet layers construct them that way).
  FleetClientTraffic(Simulator& sim, const OriginServer& origin,
                     std::vector<ProxyBinding> proxies,
                     ClientTrafficConfig config);

  FleetClientTraffic(const FleetClientTraffic&) = delete;
  FleetClientTraffic& operator=(const FleetClientTraffic&) = delete;

  /// Resolve the object universe (every object must be registered at the
  /// origin by now) and arm one stream per proxy, each scheduled under
  /// its proxy's global id as the schedule tag.  Call once, after the
  /// engines started.
  void start();

  /// Stop issuing further requests.
  void stop();

  std::size_t size() const { return streams_.size(); }

  /// Metrics of local proxy `index` (binding order).
  const ClientMetrics& metrics(std::size_t index) const;

  /// All local streams folded in ascending global id order.
  ClientMetrics merged_metrics() const;

  /// Recorded requests of local proxy `index` (empty unless
  /// config.record_requests).
  const std::vector<ClientRequestRecord>& records(std::size_t index) const;

  /// Every local stream's records tagged with its global proxy id, as
  /// input to merge_client_records (the sharded fleet concatenates the
  /// slices' streams before merging).
  std::vector<ProxyClientRecords> tagged_records() const;

  /// Requests issued across every local stream.
  std::uint64_t requests_issued() const;

  /// Earliest pending candidate firing across the local streams;
  /// kTimeInfinity when none (before start() or after stop()).  The
  /// sharded driver folds this into its send bound when demand fills are
  /// on: a client request can then reach the origin and relay out, so a
  /// shard must not advance past another shard's next candidate.
  TimePoint next_fire() const;

  /// The resolved object universe (valid after start()).  Zero-weight
  /// popularity entries are dropped at start(), so every listed object
  /// has sampling mass.
  const std::vector<ObjectId>& objects() const { return objects_; }

 private:
  struct Stream {
    PollingEngine* engine = nullptr;
    std::size_t global_id = 0;
    Rng rng;
    ClientMetrics metrics;
    std::vector<ClientRequestRecord> records;
    std::unique_ptr<PeriodicTask> task;

    Stream(std::uint64_t seed) : rng(seed) {}
  };

  Simulator& sim_;
  const OriginServer& origin_;
  ClientTrafficConfig config_;
  // unique_ptr elements: the periodic tasks capture raw Stream pointers.
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<ObjectId> objects_;      // universe, popularity-rank order
  std::vector<double> cumulative_;     // normalised CDF; back() == 1.0
  double total_weight_ = 0.0;
  double peak_intensity_ = 0.0;        // thinning envelope (profile units)
  double peak_rate_ = 0.0;             // candidate rate = rate * peak/mean
  bool started_ = false;

  void build_universe();
  /// One stream firing: thin against the diurnal envelope, maybe issue a
  /// request, return the gap to the next candidate.
  Duration fire(Stream& stream);
  void issue(Stream& stream);
  /// CDF-inverse of u in [0, 1): the object whose cumulative mass first
  /// exceeds u.  Fails fast on an out-of-range draw — the CDF ends at
  /// exactly 1.0, so any u < 1.0 resolves in range.
  ObjectId object_at(double u) const;
  /// Slot `slot` of `client`'s session working set (counter-keyed, see
  /// ClientTrafficConfig::session_locality).
  ObjectId session_object(std::uint64_t client, std::size_t slot) const;
};

}  // namespace broadway

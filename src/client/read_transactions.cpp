#include "client/read_transactions.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace broadway {

namespace {

/// Serve history of one (proxy, object) pair: (visible-at, snapshot)
/// entries sorted by visibility, with snapshots running-max'd so a lookup
/// never reads an older snapshot than one already visible (in-log order
/// is not visibility-sorted: an own poll's record completes rtt after its
/// append, while a relay delivered in between is appended later but
/// visible earlier).
struct ServeSeries {
  std::vector<std::pair<TimePoint, TimePoint>> entries;

  /// Snapshot of the copy served at `t`; nullopt before the first fetch
  /// became visible (a client read at that instant is a miss).
  std::optional<TimePoint> served_at(TimePoint t) const {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), t,
        [](TimePoint value, const std::pair<TimePoint, TimePoint>& entry) {
          return value < entry.first;
        });
    if (it == entries.begin()) return std::nullopt;
    return std::prev(it)->second;
  }
};

}  // namespace

TransactionStats evaluate_read_transactions(
    const std::vector<const PollLog*>& logs,
    const ReadTransactionConfig& config, Duration horizon) {
  TransactionStats stats;
  if (config.rate <= 0.0) return stats;
  BROADWAY_CHECK_MSG(config.objects >= 1,
                     "transactions need >= 1 object, got " << config.objects);
  BROADWAY_CHECK_MSG(config.delta >= 0.0, "delta " << config.delta);

  // Reconstruct each (proxy, object) serve history from the successful
  // records.  The eligible-pair list is deterministic: proxies in the
  // caller's (ascending global id) order, objects in first-record order
  // within each proxy.
  std::vector<ServeSeries> series;
  for (const PollLog* log : logs) {
    BROADWAY_CHECK(log != nullptr);
    // Windowed retention silently drops the oldest records, and a serve
    // history reconstructed from a truncated log mis-scores every
    // transaction that lands before the window: reads look incomplete (or
    // are served a too-new snapshot) even though the proxy held a copy.
    // Refuse truncated input instead of returning plausible-but-wrong
    // counts — run with poll-log retention 0 when transactions are on.
    BROADWAY_CHECK_MSG(log->dropped_records() == 0,
                       "poll log dropped " << log->dropped_records()
                                           << " records under retention; "
                                              "transactions need full logs");
    std::vector<std::size_t> slot;  // object id -> series index + 1
    for (const PollRecord& record : log->records()) {
      if (record.failed) continue;
      if (slot.size() <= record.object) slot.resize(record.object + 1, 0);
      if (slot[record.object] == 0) {
        series.emplace_back();
        slot[record.object] = series.size();
      }
      series[slot[record.object] - 1].entries.emplace_back(
          record.complete_time, record.snapshot_time);
    }
  }
  for (ServeSeries& s : series) {
    std::stable_sort(s.entries.begin(), s.entries.end(),
                     [](const std::pair<TimePoint, TimePoint>& a,
                        const std::pair<TimePoint, TimePoint>& b) {
                       return a.first < b.first;
                     });
    TimePoint newest = s.entries.front().second;
    for (auto& [visible, snapshot] : s.entries) {
      newest = std::max(newest, snapshot);
      snapshot = newest;
    }
  }
  if (series.empty()) return stats;

  Rng rng(config.seed);
  std::vector<std::size_t> picks;
  const std::size_t k = std::min(config.objects, series.size());
  TimePoint t = 0.0;
  for (t += rng.exponential(config.rate); t < horizon;
       t += rng.exponential(config.rate)) {
    ++stats.transactions;
    // k distinct pairs, uniform without replacement (k is small: the
    // linear duplicate check beats any set machinery).
    picks.clear();
    while (picks.size() < k) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(series.size()) - 1));
      if (std::find(picks.begin(), picks.end(), pick) == picks.end()) {
        picks.push_back(pick);
      }
    }
    TimePoint oldest = kTimeInfinity;
    TimePoint newest = -kTimeInfinity;
    bool complete = true;
    for (std::size_t pick : picks) {
      const std::optional<TimePoint> snapshot = series[pick].served_at(t);
      if (!snapshot) {
        complete = false;
        break;
      }
      oldest = std::min(oldest, *snapshot);
      newest = std::max(newest, *snapshot);
    }
    if (!complete) {
      ++stats.incomplete;
      continue;
    }
    ++stats.complete;
    const Duration spread = newest - oldest;
    stats.spread.add(spread);
    if (spread > config.delta) ++stats.violations;
  }
  return stats;
}

}  // namespace broadway

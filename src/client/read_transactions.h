// Multi-object read transactions across proxies: counting the mutual-
// consistency violations clients can actually see.
//
// A client assembling a page from k objects cached on different proxies
// (the paper's §1 example: a news story and its images; PAPERS.md's
// cache-serializability framing) observes a *mutual* inconsistency when
// the served copies reflect server states further apart than the δ-group
// tolerance — even if each copy is individually fresh enough.  This
// module samples such transactions and measures the snapshot spread of
// the copies each one would have been served.
//
// Evaluation is offline, from the fleet's poll logs: a proxy serves, at
// time t, the copy installed by its latest record whose complete_time
// (the instant the copy became visible at the proxy) is <= t, and that
// copy reflects server state record.snapshot_time — for a relay-delivered
// record, the *sender's* poll instant, never the delivery time.  Offline
// evaluation keeps the sharded fleet's shard isolation intact (a live
// cross-shard read would couple timelines) and is deterministic given the
// logs, which are themselves pinned byte-identical across fleet
// implementations — so violation counts are too.
//
// Caveat: the reconstruction needs every record, so run with poll-log
// retention 0 (unlimited) when transactions are enabled —
// evaluate_read_transactions fails fast (PollLog::dropped_records) when
// handed a log that has dropped records, rather than mis-scoring the
// transactions that land before the retention window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "proxy/poll_log.h"
#include "util/stats.h"
#include "util/time.h"

namespace broadway {

/// Transaction sampling parameters.
struct ReadTransactionConfig {
  /// Fleet-wide transaction rate (transactions/s); 0 disables sampling.
  double rate = 0.0;
  /// Objects read per transaction: k distinct (proxy, object) pairs,
  /// sampled uniformly over the pairs the fleet actually served.
  std::size_t objects = 2;
  /// δ bound: a completed transaction violates mutual consistency when
  /// the served snapshots spread over more than this.
  Duration delta = 600.0;
  std::uint64_t seed = 1;
};

/// Transaction-level results.
struct TransactionStats {
  std::size_t transactions = 0;  ///< sampled
  std::size_t complete = 0;      ///< every read was served from cache
  std::size_t incomplete = 0;    ///< >= 1 read hit a not-yet-fetched copy
  std::size_t violations = 0;    ///< complete, with snapshot spread > delta
  /// Snapshot spread (max - min served snapshot) of complete transactions.
  OnlineStats spread;

  double violation_rate() const {
    return complete == 0 ? 0.0 : static_cast<double>(violations) /
                                     static_cast<double>(complete);
  }
};

/// Sample Poisson transaction instants over [0, horizon) and evaluate each
/// against the copies the proxies would have served.  `logs` holds one
/// poll log per proxy in ascending global proxy id order; determinism of
/// the result follows from determinism of the logs and the seed.
TransactionStats evaluate_read_transactions(
    const std::vector<const PollLog*>& logs,
    const ReadTransactionConfig& config, Duration horizon);

}  // namespace broadway

#include "client/client_traffic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

FleetClientTraffic::FleetClientTraffic(Simulator& sim,
                                       const OriginServer& origin,
                                       std::vector<ProxyBinding> proxies,
                                       ClientTrafficConfig config)
    : sim_(sim), origin_(origin), config_(std::move(config)) {
  BROADWAY_CHECK_MSG(config_.request_rate > 0.0,
                     "client request rate " << config_.request_rate);
  BROADWAY_CHECK_MSG(config_.clients_per_proxy >= 1, "empty client population");
  BROADWAY_CHECK_MSG(config_.zipf_exponent >= 0.0,
                     "zipf exponent " << config_.zipf_exponent);
  BROADWAY_CHECK_MSG(
      config_.session_locality >= 0.0 && config_.session_locality <= 1.0,
      "session locality " << config_.session_locality);
  BROADWAY_CHECK_MSG(config_.session_locality == 0.0 ||
                         config_.session_objects >= 1,
                     "session locality needs a non-empty working set");
  BROADWAY_CHECK_MSG(!proxies.empty(), "client traffic needs >= 1 proxy");

  // Thinning envelope: the profile is piecewise linear between its 24
  // hourly control points, so its maximum is attained at a control point;
  // its time-average over one day comes from the cumulative integral.
  // Candidates are drawn at rate * peak/mean and accepted with
  // intensity/peak, which makes the accepted stream average exactly
  // request_rate while following the profile's shape.
  for (int hour = 0; hour < 24; ++hour) {
    peak_intensity_ =
        std::max(peak_intensity_, config_.profile.intensity(hour));
  }
  // cumulative() integrates intensity over *hours* (its argument is
  // seconds, its value intensity-hours), so one day's integral divided by
  // 24 h is the mean intensity — a flat profile yields exactly 1.
  constexpr double kDay = 24.0 * 3600.0;
  const double mean_intensity =
      config_.profile.cumulative(kDay, config_.start_hour) / 24.0;
  BROADWAY_CHECK_MSG(mean_intensity > 0.0, "profile with zero mean intensity");
  peak_rate_ = config_.request_rate * peak_intensity_ / mean_intensity;

  streams_.reserve(proxies.size());
  for (const ProxyBinding& binding : proxies) {
    BROADWAY_CHECK(binding.engine != nullptr);
    BROADWAY_CHECK_MSG(
        streams_.empty() || binding.global_id > streams_.back()->global_id,
        "proxy bindings must be in ascending global id order");
    // Seeded by global id, so a shard slice's streams are bit-identical
    // to the same proxies in a whole fleet.
    auto stream = std::make_unique<Stream>(config_.seed + binding.global_id);
    stream->engine = binding.engine;
    stream->global_id = binding.global_id;
    Stream* raw = stream.get();
    stream->task = std::make_unique<PeriodicTask>(
        sim_, [this, raw] { return fire(*raw); });
    streams_.push_back(std::move(stream));
  }
}

void FleetClientTraffic::build_universe() {
  std::vector<double> weights;
  if (!config_.popularity.empty()) {
    for (const ObjectWeight& entry : config_.popularity) {
      BROADWAY_CHECK_MSG(entry.object != kInvalidObjectId,
                         "invalid object id in client popularity");
      BROADWAY_CHECK_MSG(origin_.object_by_id(entry.object) != nullptr,
                         "client popularity names object "
                             << entry.object << " the origin does not host");
      BROADWAY_CHECK_MSG(entry.weight >= 0.0,
                         "negative popularity for object " << entry.object);
      // Zero-weight entries are dropped here rather than carried as
      // unsamplable universe members: keeping them used to let the
      // sampler's index clamp silently redirect boundary draws onto the
      // last object even when its weight was 0.
      if (entry.weight == 0.0) continue;
      objects_.push_back(entry.object);
      weights.push_back(entry.weight);
    }
  } else {
    // Zipf over every hosted object, ranked by intern order (rank 0 is
    // the most popular).
    const std::size_t universe = origin_.uri_table().size();
    for (ObjectId id = 0; id < universe; ++id) {
      if (origin_.object_by_id(id) == nullptr) continue;  // proxy-only uri
      const double rank = static_cast<double>(objects_.size());
      objects_.push_back(id);
      weights.push_back(std::pow(rank + 1.0, -config_.zipf_exponent));
    }
  }
  BROADWAY_CHECK_MSG(!objects_.empty(),
                     "no objects with sampling mass for clients to request");

  cumulative_.reserve(weights.size());
  for (double weight : weights) {
    total_weight_ += weight;
    cumulative_.push_back(total_weight_);
  }
  BROADWAY_CHECK_MSG(total_weight_ > 0.0, "all client popularity weights 0");
  // Normalise to a CDF whose last entry is *exactly* 1.0: draws are
  // uniform in [0, 1), so upper_bound is then guaranteed an in-range
  // index — object_at can fail fast instead of clamping.
  for (double& c : cumulative_) c /= total_weight_;
  cumulative_.back() = 1.0;
}

void FleetClientTraffic::start() {
  BROADWAY_CHECK_MSG(!started_, "client traffic already started");
  started_ = true;
  build_universe();
  // Arm the streams in ascending global id order, each under its proxy's
  // global id as the schedule tag — the same ownership discipline as
  // ProxyFleet::start, so the sharded driver's canonical (fire, sched,
  // tag, seq) merge orders client events identically to the
  // single-simulator reference.
  const std::uint32_t outer = sim_.schedule_tag();
  for (auto& stream : streams_) {
    sim_.set_schedule_tag(static_cast<std::uint32_t>(stream->global_id));
    stream->task->start(stream->rng.exponential(peak_rate_));
  }
  sim_.set_schedule_tag(outer);
}

void FleetClientTraffic::stop() {
  for (auto& stream : streams_) stream->task->stop();
}

Duration FleetClientTraffic::fire(Stream& stream) {
  // Thinning: this candidate becomes a request with probability
  // intensity(now)/peak.  The draw happens unconditionally, so the
  // stream consumes the same RNG sequence whatever the profile shape.
  const double hour =
      std::fmod(sim_.now() / 3600.0 + config_.start_hour, 24.0);
  const double accept = config_.profile.intensity(hour) / peak_intensity_;
  if (stream.rng.uniform01() < accept) issue(stream);
  return stream.rng.exponential(peak_rate_);
}

void FleetClientTraffic::issue(Stream& stream) {
  const std::uint64_t client =
      static_cast<std::uint64_t>(stream.global_id) *
          config_.clients_per_proxy +
      static_cast<std::uint64_t>(stream.rng.uniform_int(
          0, static_cast<std::int64_t>(config_.clients_per_proxy) - 1));
  ObjectId object;
  if (config_.session_locality > 0.0) {
    // Three draws per request: client (above), locality coin, object.
    // The coin is drawn before the object draw so the object draw's
    // position in the stream is the same on both branches.
    const double u_loc = stream.rng.uniform01();
    const double u_obj = stream.rng.uniform01();
    if (u_loc < config_.session_locality) {
      const std::size_t slot = std::min(
          static_cast<std::size_t>(
              u_obj * static_cast<double>(config_.session_objects)),
          config_.session_objects - 1);
      object = session_object(client, slot);
    } else {
      object = object_at(u_obj);
    }
  } else {
    object = object_at(stream.rng.uniform01());
  }

  const PollingEngine::ClientRead read =
      stream.engine->serve_client_read(object);
  ClientReadSample sample = classify_client_read(
      sim_.now(), read.hit, read.snapshot, origin_.object_by_id(object));
  sample.filled = read.filled;
  sample.fill_latency = read.fill_latency;
  sample.dark = read.dark;
  record_client_read(stream.metrics, sample);
  if (config_.record_requests) {
    ClientRequestRecord record;
    record.time = sim_.now();
    record.proxy = static_cast<std::uint32_t>(stream.global_id);
    record.client = client;
    record.object = object;
    record.read = sample;
    stream.records.push_back(record);
  }
}

ObjectId FleetClientTraffic::object_at(double u) const {
  const std::size_t index = static_cast<std::size_t>(
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u) -
      cumulative_.begin());
  BROADWAY_CHECK_MSG(index < objects_.size(), "popularity draw u = " << u);
  return objects_[index];
}

ObjectId FleetClientTraffic::session_object(std::uint64_t client,
                                            std::size_t slot) const {
  // Counter-keyed popularity draw: slot k of a client's working set is a
  // pure function of (seed, client, k) — no per-client state, and the
  // same set whichever proxy or shard serves the request.
  constexpr std::uint64_t kSessionStream = 0x5e5510c8a11f0b1dULL;
  const double u = hash_u01(
      config_.seed, kSessionStream,
      client * static_cast<std::uint64_t>(config_.session_objects) +
          static_cast<std::uint64_t>(slot));
  return object_at(u);
}

const ClientMetrics& FleetClientTraffic::metrics(std::size_t index) const {
  BROADWAY_CHECK_MSG(index < streams_.size(), "client stream " << index);
  return streams_[index]->metrics;
}

ClientMetrics FleetClientTraffic::merged_metrics() const {
  // Streams are held in ascending global id order, so this fold is the
  // fleet-wide canonical merge order restricted to the local slice.
  ClientMetrics merged;
  for (const auto& stream : streams_) merged.merge(stream->metrics);
  return merged;
}

const std::vector<ClientRequestRecord>& FleetClientTraffic::records(
    std::size_t index) const {
  BROADWAY_CHECK_MSG(index < streams_.size(), "client stream " << index);
  return streams_[index]->records;
}

std::vector<ProxyClientRecords> FleetClientTraffic::tagged_records() const {
  std::vector<ProxyClientRecords> tagged;
  tagged.reserve(streams_.size());
  for (const auto& stream : streams_) {
    tagged.push_back({stream->global_id, &stream->records});
  }
  return tagged;
}

std::uint64_t FleetClientTraffic::requests_issued() const {
  std::uint64_t total = 0;
  for (const auto& stream : streams_) total += stream->metrics.requests;
  return total;
}

TimePoint FleetClientTraffic::next_fire() const {
  TimePoint next = kTimeInfinity;
  for (const auto& stream : streams_) {
    next = std::min(next, stream->task->next_fire_time());
  }
  return next;
}

}  // namespace broadway

// Console table renderer.
//
// The bench binaries reproduce the paper's tables and figure series as
// aligned text tables; this class handles column sizing and alignment so
// every bench prints consistently.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace broadway {

/// Column-aligned text table.  Numeric-looking cells are right-aligned,
/// everything else left-aligned.  Render with `print`.
class TextTable {
 public:
  /// Set the header row (optional).
  void set_header(std::vector<std::string> header);

  /// Append a body row.  Rows may have differing lengths; shorter rows are
  /// padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  /// Number of body rows so far.
  std::size_t rows() const { return body_.size(); }

  /// Render to the stream with a rule under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> body_;
};

/// Format a double with fixed precision (helper for bench rows).
std::string fmt(double v, int precision = 3);

/// Format a percentage ("97.3%") from a fraction in [0, 1].
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace broadway

// Streaming and batch statistics used by trace analysis and the evaluation
// harness (trace characteristic tables, fidelity summaries, poll accounting).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace broadway {

/// Single-pass running statistics (Welford's algorithm for variance).
/// Accepts any number of observations; all accessors are valid after at
/// least one observation unless noted.
class OnlineStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile of a sample using linear interpolation between order
/// statistics (the common "type 7" estimator).  `q` in [0, 1].  The input is
/// copied; for repeated queries over the same data use `Percentiles`.
double percentile(std::vector<double> sample, double q);

/// Precomputed order statistics for repeated percentile queries.
class Percentiles {
 public:
  /// Sorts a copy of the sample.  Empty samples are allowed; queries on an
  /// empty sample return 0.
  explicit Percentiles(std::vector<double> sample);

  /// Interpolated percentile, `q` in [0, 1].
  double at(double q) const;

  /// Median (at(0.5)).
  double median() const { return at(0.5); }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus underflow
/// and overflow counters.  Used by benches to summarise TTR distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace broadway

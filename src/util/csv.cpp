#include "util/csv.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace broadway {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  char buf[64];
  for (double v : fields) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    text.emplace_back(buf);
  }
  write_row(text);
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          throw std::runtime_error("csv: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a comma implies a following field
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  // Final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace broadway

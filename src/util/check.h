// Invariant checking.
//
// Per C++ Core Guidelines E.2/E.3 we use exceptions to signal that a function
// cannot perform its task; BROADWAY_CHECK is for preconditions and internal
// invariants whose failure indicates a bug in the caller or in the library,
// and throws `broadway::CheckFailure` (derived from std::logic_error) with
// file/line context.  Checks stay enabled in release builds: the library is a
// research artefact where silent corruption of an experiment is worse than
// the nanoseconds a branch costs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace broadway {

/// Thrown when a BROADWAY_CHECK fails.  Indicates a programming error, not a
/// recoverable runtime condition.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace broadway

/// Verify `cond`; on failure throw CheckFailure identifying the expression
/// and source location.
#define BROADWAY_CHECK(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::broadway::detail::check_failed(#cond, __FILE__, __LINE__, "");     \
    }                                                                      \
  } while (false)

/// Verify `cond`; on failure throw CheckFailure with an extra streamed
/// message, e.g. BROADWAY_CHECK_MSG(x > 0, "x=" << x).
#define BROADWAY_CHECK_MSG(cond, stream_expr)                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream broadway_check_os_;                               \
      broadway_check_os_ << stream_expr;                                   \
      ::broadway::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                       broadway_check_os_.str());          \
    }                                                                      \
  } while (false)

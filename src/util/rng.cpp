#include "util/rng.h"

#include <cmath>

namespace broadway {

namespace {
// splitmix64: used to scramble seeds and to fork child streams.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) : state_(seed) {
  // Scramble so that small consecutive seeds give unrelated streams.
  std::uint64_t s = seed;
  state_ = splitmix64(s) | 1ULL;  // xorshift state must be nonzero
}

std::uint64_t Rng::next_u64() {
  // xorshift64* — fixed sequence, adequate statistical quality for
  // simulation workloads, and fully portable.
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BROADWAY_CHECK_MSG(lo < hi, "uniform(" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BROADWAY_CHECK_MSG(lo <= hi, "uniform_int(" << lo << ", " << hi << ")");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double rate) {
  BROADWAY_CHECK_MSG(rate > 0, "exponential(rate=" << rate << ")");
  // Inverse CDF; 1 - uniform01() is in (0, 1] so log() is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller (basic form).  One value per call keeps the stream position
  // independent of call parity, which simplifies reasoning about replays.
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::bernoulli(double p) {
  BROADWAY_CHECK_MSG(p >= 0.0 && p <= 1.0, "bernoulli(p=" << p << ")");
  return uniform01() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    BROADWAY_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  BROADWAY_CHECK_MSG(total > 0.0, "weighted_index needs a positive weight");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

Rng Rng::fork() {
  std::uint64_t s = next_u64();
  return Rng(splitmix64(s));
}

bool hash_bernoulli(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t counter, double p) {
  BROADWAY_CHECK_MSG(p >= 0.0 && p <= 1.0, "hash_bernoulli(p=" << p << ")");
  return hash_u01(seed, stream, counter) < p;
}

double hash_u01(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t counter) {
  // Three chained splitmix64 rounds, folding one key in per round.  Each
  // round is a full-avalanche permutation, so nearby (stream, counter)
  // pairs land on unrelated uniforms.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ stream;
  state = splitmix64(state) ^ counter;
  const std::uint64_t h = splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace broadway

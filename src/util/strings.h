// Small string helpers shared by the CSV layer, the HTTP codec and the
// HTML link extractor.  C++20 provides starts_with/ends_with on
// std::string_view; everything else we need lives here.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace broadway {

/// Split `s` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields and trimming whitespace from
/// each field ("a, , b" -> {"a", "b"}).
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Remove ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case ASCII copy (HTTP header names are case-insensitive).
std::string to_lower(std::string_view s);

/// Join the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `a` equals `b` ignoring ASCII case.
bool iequals(std::string_view a, std::string_view b);

/// Parse a double, returning false on any trailing garbage or empty input.
bool parse_double(std::string_view s, double& out);

/// Parse a signed 64-bit integer with the same strictness.
bool parse_int64(std::string_view s, long long& out);

}  // namespace broadway

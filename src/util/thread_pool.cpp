#include "util/thread_pool.h"

#include "util/check.h"

namespace broadway {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode: no workers at all
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++active_;
    while (next_index_ < batch_count_) {
      const std::size_t index = next_index_++;
      const IndexedTask* task = task_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*task)(index);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
    }
    --active_;
    if (active_ == 0 && next_index_ >= batch_count_) {
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::size_t count, const IndexedTask& task) {
  BROADWAY_CHECK(task != nullptr);
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  BROADWAY_CHECK_MSG(task_ == nullptr, "run_batch is not reentrant");
  task_ = &task;
  batch_count_ = count;
  next_index_ = 0;
  first_error_ = nullptr;
  ++generation_;
  work_ready_.notify_all();
  batch_done_.wait(
      lock, [&] { return next_index_ >= batch_count_ && active_ == 0; });
  task_ = nullptr;
  batch_count_ = 0;
  next_index_ = 0;
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace broadway

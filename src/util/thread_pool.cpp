#include "util/thread_pool.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace broadway {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode: no workers at all
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::record_error(std::size_t index, std::exception_ptr error) {
  // Keep the exception from the lowest batch index, not from whichever
  // worker happened to fail first — callers see the same failure no
  // matter how the claims interleaved.
  if (error_ == nullptr || index < error_index_) {
    error_ = error;
    error_index_ = index;
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++active_;
    while (next_index_ < batch_count_) {
      const std::size_t index = claim_order_[next_index_++];
      const IndexedTask* task = task_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*task)(index);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error != nullptr) record_error(index, error);
    }
    --active_;
    if (active_ == 0 && next_index_ >= batch_count_) {
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::size_t count, const IndexedTask& task) {
  BROADWAY_CHECK(task != nullptr);
  if (count == 0) return;
  if (workers_.empty()) {
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        task(i);
      } catch (...) {
        // Drain the batch even on failure (matching the worker path) and
        // surface the lowest-index exception — here that is simply the
        // first one, since indices run in order.
        if (error == nullptr) error = std::current_exception();
      }
    }
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }
  claim_order_.resize(count);
  std::iota(claim_order_.begin(), claim_order_.end(), std::size_t{0});
  run_batch_on_workers(count, task);
}

void ThreadPool::run_batch(std::size_t count, const IndexedTask& task,
                           const std::vector<double>& costs) {
  BROADWAY_CHECK(task != nullptr);
  BROADWAY_CHECK_MSG(costs.size() == count,
                     "cost hints (" << costs.size()
                                    << ") must match batch count (" << count
                                    << ")");
  if (count == 0) return;
  if (workers_.empty()) {
    // Inline mode ignores the hints: the determinism contract is the
    // plain ascending serial loop.
    run_batch(count, task);
    return;
  }
  claim_order_.resize(count);
  std::iota(claim_order_.begin(), claim_order_.end(), std::size_t{0});
  std::stable_sort(claim_order_.begin(), claim_order_.end(),
                   [&costs](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  run_batch_on_workers(count, task);
}

void ThreadPool::run_batch_on_workers(std::size_t count,
                                      const IndexedTask& task) {
  std::unique_lock<std::mutex> lock(mutex_);
  BROADWAY_CHECK_MSG(task_ == nullptr, "run_batch is not reentrant");
  task_ = &task;
  batch_count_ = count;
  next_index_ = 0;
  error_ = nullptr;
  error_index_ = 0;
  ++generation_;
  work_ready_.notify_all();
  batch_done_.wait(
      lock, [&] { return next_index_ >= batch_count_ && active_ == 0; });
  task_ = nullptr;
  batch_count_ = 0;
  next_index_ = 0;
  std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace broadway

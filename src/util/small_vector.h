// Inline-storage vector for small runs of trivially-copyable elements.
//
// TemporalPollObservation::history is rebuilt once per poll on the
// engine's hot path; with an adaptive TTR the number of updates revealed
// per poll is almost always a handful, so a std::vector there means one
// heap round-trip per modified poll for a few doubles.  SmallVector keeps
// the first N elements inline in the object and spills to the heap only
// beyond that — the common case allocates nothing, the rare long history
// still works.
//
// Deliberately minimal: trivially-copyable element types only (memcpy
// moves, no destructor calls), and just the vector surface the
// observation pipeline and its consumers use.  Converting assignment from
// std::vector keeps call sites that build histories eagerly (tests,
// codecs) unchanged.
#pragma once

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <vector>

namespace broadway {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector handles trivially-copyable elements only");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }
  SmallVector(const SmallVector& other) {
    assign(other.begin(), other.end());
  }
  SmallVector(SmallVector&& other) noexcept { steal(other); }

  ~SmallVector() { deallocate(); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      deallocate();
      size_ = 0;
      capacity_ = N;
      heap_ = nullptr;
      steal(other);
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  /// Converting assignment so call sites that built a std::vector (tests,
  /// header parsing) keep working unchanged.
  SmallVector& operator=(const std::vector<T>& other) {
    assign(other.data(), other.data() + other.size());
    return *this;
  }

  T* data() { return heap_ != nullptr ? heap_ : inline_data(); }
  const T* data() const {
    return heap_ != nullptr ? heap_ : inline_data();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  static constexpr std::size_t inline_capacity() { return N; }
  /// True once the elements moved to the heap (diagnostics and tests).
  bool spilled() const { return heap_ != nullptr; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](std::size_t index) { return data()[index]; }
  const T& operator[](std::size_t index) const { return data()[index]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // `value` may alias an element of this vector; copy it out before
      // grow() frees the storage it lives in.
      const T detached = value;
      grow(capacity_ * 2);
      data()[size_++] = detached;
      return;
    }
    data()[size_++] = value;
  }

  void pop_back() { --size_; }

  /// Replace the contents with [first, last).
  template <typename It>
  void assign(It first, It last) {
    clear();
    reserve(static_cast<std::size_t>(std::distance(first, last)));
    T* out = data();
    for (; first != last; ++first) out[size_++] = *first;
  }

  /// Remove [first, last), shifting the tail down.  Returns the new
  /// position of the element that followed `last`.
  iterator erase(iterator first, iterator last) {
    if (first != last) {
      const std::size_t tail =
          static_cast<std::size_t>(end() - last);
      std::memmove(first, last, tail * sizeof(T));
      size_ -= static_cast<std::size_t>(last - first);
    }
    return first;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    return std::memcmp(a.data(), b.data(), a.size_ * sizeof(T)) == 0;
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(storage_); }
  const T* inline_data() const {
    return reinterpret_cast<const T*>(storage_);
  }

  void grow(std::size_t wanted) {
    const std::size_t new_capacity =
        wanted > capacity_ * 2 ? wanted : capacity_ * 2;
    T* grown = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    std::memcpy(grown, data(), size_ * sizeof(T));
    deallocate();
    heap_ = grown;
    capacity_ = new_capacity;
  }

  /// Move-construct from `other`, leaving it empty (inline).  Heap
  /// storage transfers by pointer; inline elements copy (N is small by
  /// construction).
  void steal(SmallVector& other) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    } else {
      std::memcpy(inline_data(), other.inline_data(),
                  other.size_ * sizeof(T));
      size_ = other.size_;
    }
    other.size_ = 0;
  }

  void deallocate() {
    if (heap_ != nullptr) ::operator delete(heap_);
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  T* heap_ = nullptr;  ///< null while the elements live inline
  alignas(T) unsigned char storage_[N * sizeof(T)];
};

}  // namespace broadway

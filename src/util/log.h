// Leveled logging to stderr.
//
// The simulator and proxy emit debug traces through this; benches run with
// logging at `kWarn` so their stdout stays a clean reproduction of the
// paper's tables.
#pragma once

#include <sstream>
#include <string>

namespace broadway {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace broadway

#define BROADWAY_LOG(level, stream_expr)                                   \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::broadway::log_level())) {                       \
      std::ostringstream broadway_log_os_;                                 \
      broadway_log_os_ << stream_expr;                                     \
      ::broadway::detail::log_emit(level, broadway_log_os_.str());         \
    }                                                                      \
  } while (false)

#define BROADWAY_DEBUG(stream_expr) \
  BROADWAY_LOG(::broadway::LogLevel::kDebug, stream_expr)
#define BROADWAY_INFO(stream_expr) \
  BROADWAY_LOG(::broadway::LogLevel::kInfo, stream_expr)
#define BROADWAY_WARN(stream_expr) \
  BROADWAY_LOG(::broadway::LogLevel::kWarn, stream_expr)
#define BROADWAY_ERROR(stream_expr) \
  BROADWAY_LOG(::broadway::LogLevel::kError, stream_expr)

#include "util/uri_table.h"

#include "util/check.h"

namespace broadway {

ObjectId UriTable::intern(std::string_view uri) {
  const auto it = index_.find(uri);
  if (it != index_.end()) return it->second;
  BROADWAY_CHECK_MSG(!frozen_,
                     "intern(\"" << std::string(uri)
                                 << "\") on a frozen uri table");
  BROADWAY_CHECK_MSG(uris_.size() < kInvalidObjectId, "uri table full");
  const ObjectId id = static_cast<ObjectId>(uris_.size());
  uris_.emplace_back(uri);
  index_.emplace(std::string_view(uris_.back()), id);
  return id;
}

ObjectId UriTable::find(std::string_view uri) const {
  const auto it = index_.find(uri);
  return it == index_.end() ? kInvalidObjectId : it->second;
}

const std::string& UriTable::uri(ObjectId id) const {
  BROADWAY_CHECK_MSG(id < uris_.size(), "unknown ObjectId " << id);
  return uris_[id];
}

}  // namespace broadway

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace broadway {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (char c : cell) {
    if ((c >= '0' && c <= '9')) ++digits;
    // allow separators/signs/percent
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
             c != 'E' && c != 'x' && c != ',') {
      return false;
    }
  }
  return digits > 0;
}
}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  body_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::size_t columns = header_.size();
  for (const auto& row : body_) columns = std::max(columns, row.size());
  if (columns == 0) return;

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : body_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      const bool right = looks_numeric(cell);
      if (i > 0) out << "  ";
      if (right) {
        out << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        out << cell << std::string(widths[i] - cell.size(), ' ');
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (columns - 1);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : body_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace broadway

#include "util/ewma.h"

// Header-only; this translation unit exists so the target has a symbol for
// the archive and the header gets compiled standalone at least once.
namespace broadway {
namespace {
[[maybe_unused]] Ewma compile_check(0.5);
}  // namespace
}  // namespace broadway

// Fixed worker pool with batch-and-barrier semantics.
//
// The sharded fleet runs every shard one lookahead window forward, then
// exchanges cross-shard relays, then repeats — a strict fork/join cadence
// with no task graph, no futures and no work stealing.  This pool is
// shaped to exactly that: run_batch(count, fn) invokes fn(0..count-1)
// across the workers and returns only when every index has finished, so
// the return *is* the barrier.  Workers persist across batches (a sweep
// crosses thousands of windows; spawning threads per window would dwarf
// the work).
//
// Determinism contract: with `threads <= 1` no worker threads exist at
// all and run_batch executes the indices inline, in order, on the calling
// thread — the single-threaded differential path is the plain serial
// loop, not a one-worker pool with different interleaving.  With more
// threads, indices are claimed dynamically; anything fn touches must be
// index-local (the sharded fleet gives each shard its own simulator,
// origin and metrics precisely so this holds).
//
// The completion wait happens under the pool mutex, which gives the
// caller a happens-before edge from every task body to run_batch's return
// — merged metrics can be read without further synchronisation, and TSan
// agrees.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace broadway {

/// A fixed-size pool of worker threads running indexed batches.
class ThreadPool {
 public:
  using IndexedTask = std::function<void(std::size_t)>;

  /// `threads` is the requested parallelism.  0 and 1 both mean "no
  /// worker threads": batches run inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when batches run inline).
  std::size_t size() const { return workers_.size(); }

  /// Number of tasks that can genuinely run at once (>= 1).
  std::size_t parallelism() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Invoke task(i) for every i in [0, count) and block until all have
  /// completed.  Indices are claimed dynamically by the workers; with no
  /// workers they run inline in ascending order.  The batch always drains
  /// fully; if any invocations threw, the exception from the *lowest*
  /// batch index is rethrown here (deterministic regardless of which
  /// worker observed its failure first) and the pool remains usable.
  /// Not reentrant — one batch at a time, from one thread.
  void run_batch(std::size_t count, const IndexedTask& task);

  /// As above, but with a per-index cost hint (arbitrary non-negative
  /// units; only the relative order matters).  Workers claim indices in
  /// descending-cost order — longest processing time first — so a skewed
  /// batch keeps the barrier tight instead of leaving the heaviest index
  /// for last.  Ties claim the lower index first.  `costs.size()` must
  /// equal `count`.  Inline mode ignores the hints and runs in ascending
  /// index order (the determinism contract: no workers means the plain
  /// serial loop).
  void run_batch(std::size_t count, const IndexedTask& task,
                 const std::vector<double>& costs);

 private:
  void worker_loop();
  void run_batch_on_workers(std::size_t count, const IndexedTask& task);
  void record_error(std::size_t index, std::exception_ptr error);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const IndexedTask* task_ = nullptr;  // valid only during a batch
  std::size_t batch_count_ = 0;
  std::size_t next_index_ = 0;
  std::size_t active_ = 0;  // workers currently inside the batch
  std::uint64_t generation_ = 0;
  // Claim schedule for the current batch: workers take
  // claim_order_[next_index_++].  Identity for unweighted batches,
  // descending-cost (LPT) for weighted ones.
  std::vector<std::size_t> claim_order_;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;  // batch index whose exception is held
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace broadway

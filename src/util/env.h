// Environment-variable knobs.
//
// A few build-agnostic switches (scheduler backend, trace-attachment
// mode) are selected per run through environment variables so the CI
// matrix and the differential tests can flip them without rebuilding.
// This is the one parser they share: read fresh on every call (the
// consumers are cold construction paths, and tests flip values
// mid-process), match against an enumerated choice list, warn and fall
// back on anything unknown.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string_view>

namespace broadway {

/// Index into `choices` of the value `name` holds; `fallback` when the
/// variable is unset or empty.  An unknown value warns (naming the valid
/// choices) and returns `fallback`.
std::size_t env_choice(const char* name,
                       std::initializer_list<std::string_view> choices,
                       std::size_t fallback);

}  // namespace broadway

// Deterministic random-number façade.
//
// Every stochastic component in the library (trace generators, failure
// injection, probabilistic violation inference) draws through this class so
// that an experiment is fully reproducible from a single seed.  The engine is
// std::mt19937_64; distribution objects are constructed per call, which keeps
// the interface stateless beyond the engine itself (mt19937_64 dominates the
// cost anyway, and trace generation is far from any hot path).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace broadway {

/// Seeded pseudo-random source.  Copyable; copies evolve independently.
class Rng {
 public:
  /// Construct from an explicit seed.  The same seed always yields the same
  /// stream of values on every platform we target.
  explicit Rng(std::uint64_t seed);

  /// Uniform double in [lo, hi).  Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given rate (events per unit
  /// time).  Requires rate > 0.
  double exponential(double rate);

  /// Normally distributed value.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true, p in [0, 1].
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i].  Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive a child RNG whose stream is independent of (and deterministic
  /// given) this one.  Used to give each generated trace its own stream so
  /// that adding a trace to an experiment never perturbs the others.
  Rng fork();

 private:
  // A small explicit xorshift-style engine: the C++ standard specifies
  // mt19937_64's sequence exactly, but the *distributions* are not fixed
  // across standard-library implementations.  To make traces byte-identical
  // everywhere we implement the distribution transforms ourselves on top of
  // a fixed-sequence engine.
  std::uint64_t state_;

  std::uint64_t next_u64();
};

/// Stateless Bernoulli trial: a pure function of (seed, stream, counter).
///
/// Unlike Rng::bernoulli, the outcome does not depend on how many draws
/// happened before it — only on the three keys.  Components whose draws
/// must stay reproducible when execution is re-ordered or re-partitioned
/// (e.g. per-object loss decisions in a polling engine whose objects may
/// be split across shard slices) key each draw by an entity id (`stream`)
/// and a per-entity attempt counter instead of consuming a shared
/// sequential stream.
bool hash_bernoulli(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t counter, double p);

/// Stateless uniform draw in [0, 1): a pure function of (seed, stream,
/// counter) — the uniform underlying hash_bernoulli, exposed directly.
/// Used where a component needs a reproducible *value* (not just a coin
/// flip) that survives re-ordering and re-partitioning, e.g. the
/// per-client session working sets of the client-traffic layer.
double hash_u01(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t counter);

}  // namespace broadway

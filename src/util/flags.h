// Tiny command-line flag parser for the example and bench binaries.
//
// Supports `--name=value` and `--name value` plus bare `--flag` for
// booleans.  Unknown flags are an error so typos in experiment parameters
// fail loudly instead of silently running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace broadway {

/// Declarative flag set.  Register flags, then parse argv; registered
/// variables are written in place.
class Flags {
 public:
  /// Register flags.  `help` appears in usage output.
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_int(const std::string& name, long long* target,
               const std::string& help);
  void add_bool(const std::string& name, bool* target,
                const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);

  /// Parse argv (argv[0] ignored).  Returns false and prints usage to
  /// stderr if parsing fails or `--help` was given.
  bool parse(int argc, char** argv);

  /// Render usage text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kDouble, kInt, kBool, kString };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
  };
  std::map<std::string, Entry> entries_;

  bool apply(const std::string& name, const std::string& value);
};

}  // namespace broadway

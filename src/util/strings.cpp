#include "util/strings.h"

#include <cctype>
#include <cstdlib>

namespace broadway {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, sep)) {
    const std::string_view t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_double(std::string_view s, double& out) {
  const std::string_view t = trim(s);
  if (t.empty()) return false;
  const std::string buf(t);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_int64(std::string_view s, long long& out) {
  const std::string_view t = trim(s);
  if (t.empty()) return false;
  const std::string buf(t);
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

}  // namespace broadway

// Exponentially weighted moving average.
//
// Used by the rate estimators in src/consistency (paper §3.2 heuristic and
// §4.1 smoothing, Eq. 10's `TTR = w*TTR + (1-w)*TTR_prev`).
#pragma once

#include "util/check.h"

namespace broadway {

/// EWMA with weight `w` given to the newest observation:
///   value = w * x + (1 - w) * value_prev.
/// Before the first observation, `value()` returns the configured initial
/// value (default 0) and `empty()` is true; the first observation replaces
/// the initial value entirely so that a cold start is unbiased.
class Ewma {
 public:
  explicit Ewma(double weight, double initial = 0.0)
      : weight_(weight), value_(initial) {
    BROADWAY_CHECK_MSG(weight > 0.0 && weight <= 1.0, "Ewma weight " << weight);
  }

  /// Fold in one observation.
  void observe(double x) {
    if (empty_) {
      value_ = x;
      empty_ = false;
    } else {
      value_ = weight_ * x + (1.0 - weight_) * value_;
    }
  }

  /// Current smoothed value.
  double value() const { return value_; }

  /// True until the first observation.
  bool empty() const { return empty_; }

  /// Smoothing weight for the newest observation.
  double weight() const { return weight_; }

  /// Forget all history, returning to the given initial value.
  void reset(double initial = 0.0) {
    value_ = initial;
    empty_ = true;
  }

 private:
  double weight_;
  double value_;
  bool empty_ = true;
};

}  // namespace broadway

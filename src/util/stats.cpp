#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double combined = na + nb;
  mean_ += delta * nb / combined;
  m2_ += other.m2_ + delta * delta * na * nb / combined;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> sample, double q) {
  return Percentiles(std::move(sample)).at(q);
}

Percentiles::Percentiles(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const {
  BROADWAY_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile q=" << q);
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  BROADWAY_CHECK_MSG(hi > lo && bins > 0,
                     "Histogram(" << lo << ", " << hi << ", " << bins << ")");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  BROADWAY_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  BROADWAY_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  BROADWAY_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace broadway

#include "util/flags.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace broadway {

void Flags::add_double(const std::string& name, double* target,
                       const std::string& help) {
  BROADWAY_CHECK(target != nullptr);
  entries_[name] = Entry{Kind::kDouble, target, help};
}

void Flags::add_int(const std::string& name, long long* target,
                    const std::string& help) {
  BROADWAY_CHECK(target != nullptr);
  entries_[name] = Entry{Kind::kInt, target, help};
}

void Flags::add_bool(const std::string& name, bool* target,
                     const std::string& help) {
  BROADWAY_CHECK(target != nullptr);
  entries_[name] = Entry{Kind::kBool, target, help};
}

void Flags::add_string(const std::string& name, std::string* target,
                       const std::string& help) {
  BROADWAY_CHECK(target != nullptr);
  entries_[name] = Entry{Kind::kString, target, help};
}

bool Flags::apply(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    return false;
  }
  switch (it->second.kind) {
    case Kind::kDouble: {
      double v;
      if (!parse_double(value, v)) {
        std::fprintf(stderr, "--%s expects a number, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      *static_cast<double*>(it->second.target) = v;
      return true;
    }
    case Kind::kInt: {
      long long v;
      if (!parse_int64(value, v)) {
        std::fprintf(stderr, "--%s expects an integer, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      *static_cast<long long*>(it->second.target) = v;
      return true;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(it->second.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(it->second.target) = false;
      } else {
        std::fprintf(stderr, "--%s expects true/false, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      return true;
    }
    case Kind::kString:
      *static_cast<std::string*>(it->second.target) = value;
      return true;
  }
  return false;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", usage(argv[0]).c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      const bool is_bool =
          it != entries_.end() && it->second.kind == Kind::kBool;
      if (!is_bool && i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      }
    }
    if (!apply(name, value)) return false;
  }
  return true;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << "  " << entry.help << "\n";
  }
  return os.str();
}

}  // namespace broadway

#include "util/env.h"

#include <cstdlib>
#include <sstream>

#include "util/log.h"

namespace broadway {

std::size_t env_choice(const char* name,
                       std::initializer_list<std::string_view> choices,
                       std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const std::string_view value(env);
  std::size_t index = 0;
  for (const std::string_view choice : choices) {
    if (value == choice) return index;
    ++index;
  }
  std::ostringstream valid;
  const char* separator = "";
  for (const std::string_view choice : choices) {
    valid << separator << choice;
    separator = " | ";
  }
  BROADWAY_WARN("unknown " << name << " '" << value << "' (valid: "
                           << valid.str() << "); using the default");
  return fallback;
}

}  // namespace broadway

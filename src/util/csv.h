// Minimal CSV reader/writer with RFC-4180-style quoting.
//
// Used to persist generated traces (so an experiment can be re-run against
// the exact byte stream a previous run used) and to dump bench series for
// external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace broadway {

/// Streaming CSV writer.  Quotes a field only when it contains a comma,
/// quote or newline.  Does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: write a row of doubles with enough precision to
  /// round-trip (max_digits10).
  void write_row(const std::vector<double>& fields);

 private:
  std::ostream& out_;
};

/// Parse a whole CSV document (no header interpretation — callers decide).
/// Handles quoted fields with embedded commas, quotes ("") and newlines.
/// Throws std::runtime_error on malformed quoting.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

/// Escape a single field per the writer's rules (exposed for tests).
std::string csv_escape(std::string_view field);

}  // namespace broadway

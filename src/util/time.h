// Simulation time units and formatting helpers.
//
// The whole library measures time in seconds, represented as `double`.
// The paper's workloads span minutes (stock ticks) to days (news traces), so
// double-precision seconds give sub-microsecond resolution over any realistic
// horizon while keeping arithmetic in policies and evaluators simple.
//
// `TimePoint` is an absolute simulation instant (seconds since the start of
// the simulated epoch); `Duration` is a length of time in seconds.  They are
// aliases rather than strong types: policies do heavy mixed arithmetic on
// them, and the invariants that matter (monotonicity, non-negativity) are
// checked at module boundaries instead.
#pragma once

#include <limits>
#include <string>

namespace broadway {

/// Absolute simulation instant, in seconds since the simulated epoch.
using TimePoint = double;

/// Length of time, in seconds.
using Duration = double;

/// A time point later than any the simulator will ever reach.
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<double>::infinity();

/// Construct a duration from seconds (identity; for symmetry/readability).
constexpr Duration seconds(double s) { return s; }

/// Construct a duration from minutes.
constexpr Duration minutes(double m) { return m * 60.0; }

/// Construct a duration from hours.
constexpr Duration hours(double h) { return h * 3600.0; }

/// Construct a duration from days.
constexpr Duration days(double d) { return d * 86400.0; }

/// Convert a duration to (fractional) minutes.
constexpr double to_minutes(Duration d) { return d / 60.0; }

/// Convert a duration to (fractional) hours.
constexpr double to_hours(Duration d) { return d / 3600.0; }

/// Render a duration as a compact human-readable string, e.g. "2d 1h 30m",
/// "26 min", "45.0 s".  Used by benches to print paper-style table rows.
std::string format_duration(Duration d);

/// Render an absolute time point as "day N, HH:MM" within the simulated
/// epoch (day 0 starts at t = 0).  Used for the time axes of the Fig. 4 and
/// Fig. 6 reproductions.
std::string format_wallclock(TimePoint t);

/// Hour-of-day (0.0 .. 24.0) of an absolute time point, assuming the
/// simulated epoch starts at midnight.  Drives diurnal trace generators.
double hour_of_day(TimePoint t);

}  // namespace broadway

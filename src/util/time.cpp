#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace broadway {

std::string format_duration(Duration d) {
  char buf[64];
  const bool negative = d < 0;
  double s = std::abs(d);
  if (s < 60.0) {
    std::snprintf(buf, sizeof(buf), "%s%.1f s", negative ? "-" : "", s);
    return buf;
  }
  if (s < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%s%.1f min", negative ? "-" : "",
                  s / 60.0);
    return buf;
  }
  if (s < 86400.0) {
    const int h = static_cast<int>(s / 3600.0);
    const int m = static_cast<int>((s - h * 3600.0) / 60.0);
    std::snprintf(buf, sizeof(buf), "%s%dh %02dm", negative ? "-" : "", h, m);
    return buf;
  }
  const int dd = static_cast<int>(s / 86400.0);
  const double rem = s - dd * 86400.0;
  const int h = static_cast<int>(rem / 3600.0);
  const int m = static_cast<int>((rem - h * 3600.0) / 60.0);
  std::snprintf(buf, sizeof(buf), "%s%dd %dh %02dm", negative ? "-" : "", dd,
                h, m);
  return buf;
}

std::string format_wallclock(TimePoint t) {
  char buf[64];
  const int day = static_cast<int>(std::floor(t / 86400.0));
  double rem = t - day * 86400.0;
  if (rem < 0) rem += 86400.0;
  const int h = static_cast<int>(rem / 3600.0);
  const int m = static_cast<int>((rem - h * 3600.0) / 60.0);
  std::snprintf(buf, sizeof(buf), "day %d, %02d:%02d", day, h, m);
  return buf;
}

double hour_of_day(TimePoint t) {
  double rem = std::fmod(t, 86400.0);
  if (rem < 0) rem += 86400.0;
  return rem / 3600.0;
}

}  // namespace broadway

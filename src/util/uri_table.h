// Uri interning: dense ObjectId handles for the poll hot path.
//
// Every layer of the polling stack used to key its maps and records on
// full `std::string` uris — one hash + compare (and often one copy) per
// poll per layer.  A UriTable interns each uri once and hands out a dense
// uint32 ObjectId; the origin store, the proxy cache, the poll log and the
// fleet relay path all index plain vectors by that id instead.  String
// uris remain available for reports, tests and public accessors via
// `uri(id)`.
//
// Storage is a deque so interned strings never move: `uri(id)` references
// and the string_views handed to PollRecord stay valid for the life of the
// table.  Tables are append-only (a web origin retires content by updating
// it, not deleting it — see ObjectStore), so ids are stable forever.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace broadway {

/// Dense handle for an interned uri.  Ids count up from 0 in intern order.
using ObjectId = std::uint32_t;

/// "No object": returned by find() for unknown uris, and the default of
/// id-carrying records before they are interned.
inline constexpr ObjectId kInvalidObjectId = 0xffffffffu;

/// Append-only intern table mapping uri <-> ObjectId.
class UriTable {
 public:
  UriTable() = default;

  // Interned views point into this table; moving or copying it would
  // silently detach every id already handed out.
  UriTable(const UriTable&) = delete;
  UriTable& operator=(const UriTable&) = delete;

  /// Id for `uri`, interning it first if unseen.  On a frozen table a
  /// known uri degrades to a lookup; an unseen one is a hard error.
  ObjectId intern(std::string_view uri);

  /// Seal the table: every object the simulation will ever touch must be
  /// interned by now.  After freeze() the table is immutable, so lookups
  /// (find / uri / contains, and intern of already-known uris) are safe
  /// from any number of threads without synchronisation; interning a NEW
  /// uri throws CheckFailure.  Idempotent.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Id for `uri` if already interned; kInvalidObjectId otherwise.
  ObjectId find(std::string_view uri) const;

  /// The interned uri string.  The reference is stable for the life of the
  /// table.  `id` must be a value this table returned.
  const std::string& uri(ObjectId id) const;

  /// Number of interned uris (== the smallest id not yet in use).
  std::size_t size() const { return uris_.size(); }

  bool contains(std::string_view uri) const {
    return find(uri) != kInvalidObjectId;
  }

 private:
  std::deque<std::string> uris_;  // deque: element addresses never move
  std::unordered_map<std::string_view, ObjectId> index_;  // views into uris_
  bool frozen_ = false;
};

}  // namespace broadway

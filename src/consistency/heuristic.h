// Rate-heuristic mutual consistency (paper §3.2).
//
// "A heuristic would be to trigger polls for only those objects that
// change at a rate faster than the object that was modified."  Objects
// changing slower are left to their own LIMD schedule — cheaper than
// triggered polls, but a slow object that happens to update alongside a
// fast one can slip outside δ, costing fidelity (Fig. 5(b) shows
// 0.87–1.0).  Fig. 6 shows the adaptive behaviour this class reproduces:
// only the slower object triggers extra polls of the faster one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/rate_estimator.h"

namespace broadway {

/// Coordinator that triggers polls only for similar-or-faster members.
class RateHeuristicCoordinator : public MutualCoordinator {
 public:
  struct Config {
    /// δ of Eq. (4).
    Duration delta_mutual = 600.0;
    /// A member is "similar or faster" when rate(member) >=
    /// similarity * rate(updated object).  1.0 = strictly faster-or-equal;
    /// the default tolerates mild estimation noise.
    double similarity = 0.8;
    /// EWMA weight for the per-object rate estimators.
    double rate_smoothing = 0.3;
  };

  RateHeuristicCoordinator(std::vector<std::string> members, Config config);

  void on_poll(const std::string& uri,
               const TemporalPollObservation& obs) override;
  void reset() override;

  /// Current rate estimate for a member (updates/s; 0 = unknown).
  double estimated_rate(const std::string& uri) const;

  std::size_t triggers_requested() const { return triggers_requested_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::string> members_;
  std::map<std::string, UpdateRateEstimator> estimators_;
  std::size_t triggers_requested_ = 0;
};

}  // namespace broadway

// Rate-heuristic mutual consistency (paper §3.2).
//
// "A heuristic would be to trigger polls for only those objects that
// change at a rate faster than the object that was modified."  Objects
// changing slower are left to their own LIMD schedule — cheaper than
// triggered polls, but a slow object that happens to update alongside a
// fast one can slip outside δ, costing fidelity (Fig. 5(b) shows
// 0.87–1.0).  Fig. 6 shows the adaptive behaviour this class reproduces:
// only the slower object triggers extra polls of the faster one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/rate_estimator.h"

namespace broadway {

/// Coordinator that triggers polls only for similar-or-faster members.
class RateHeuristicCoordinator : public MutualCoordinator {
 public:
  struct Config {
    /// δ of Eq. (4).
    Duration delta_mutual = 600.0;
    /// A member is "similar or faster" when rate(member) >=
    /// similarity * rate(updated object).  1.0 = strictly faster-or-equal;
    /// the default tolerates mild estimation noise.
    double similarity = 0.8;
    /// EWMA weight for the per-object rate estimators.
    double rate_smoothing = 0.3;
  };

  RateHeuristicCoordinator(std::vector<std::string> members, Config config);

  using MutualCoordinator::on_poll;
  void on_poll(ObjectId object, const TemporalPollObservation& obs) override;
  void reset() override;

  std::vector<ObjectId> subscriptions() const override { return member_ids_; }

  /// Current rate estimate for a member (updates/s; 0 = unknown).
  double estimated_rate(const std::string& uri) const;
  double estimated_rate(ObjectId object) const;

  std::size_t triggers_requested() const { return triggers_requested_; }
  const Config& config() const { return config_; }
  const std::vector<std::string>& members() const { return members_; }
  /// Interned member ids, parallel to members(); empty before bind().
  const std::vector<ObjectId>& member_ids() const { return member_ids_; }

 protected:
  void on_bind() override;

 private:
  static constexpr std::size_t kNotMember = static_cast<std::size_t>(-1);

  /// Index of `object` in member_ids_, kNotMember when absent.
  std::size_t member_index(ObjectId object) const;

  Config config_;
  std::vector<std::string> members_;
  std::vector<ObjectId> member_ids_;            // interned at bind()
  std::vector<UpdateRateEstimator> estimators_;  // parallel to member_ids_
  std::size_t triggers_requested_ = 0;
};

}  // namespace broadway

#include "consistency/value_ttr.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

AdaptiveValueTtrPolicy::Config AdaptiveValueTtrPolicy::Config::paper_defaults(
    double delta, TtrBounds bounds) {
  Config config;
  config.delta = delta;
  config.bounds = bounds;
  config.smoothing_w = 0.5;
  config.alpha = 0.7;
  return config;
}

AdaptiveValueTtrPolicy::AdaptiveValueTtrPolicy(Config config)
    : config_(config), ttr_(config.bounds.min) {
  BROADWAY_CHECK_MSG(config_.delta > 0.0, "delta " << config_.delta);
  BROADWAY_CHECK_MSG(
      config_.smoothing_w > 0.0 && config_.smoothing_w <= 1.0,
      "w = " << config_.smoothing_w);
  BROADWAY_CHECK_MSG(config_.alpha >= 0.0 && config_.alpha <= 1.0,
                     "alpha = " << config_.alpha);
  BROADWAY_CHECK_MSG(config_.flat_growth > 1.0,
                     "flat_growth = " << config_.flat_growth);
}

double AdaptiveValueTtrPolicy::estimated_rate() const {
  return rate_ewma_.value_or(0.0);
}

void AdaptiveValueTtrPolicy::reset() {
  ttr_ = config_.bounds.min;
  last_rate_ = 0.0;
  rate_ewma_.reset();
  smoothed_.reset();
  observed_min_.reset();
}

void AdaptiveValueTtrPolicy::set_delta(double delta) {
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  config_.delta = delta;
}

Duration AdaptiveValueTtrPolicy::next_ttr(const ValuePollObservation& obs) {
  const Duration elapsed = obs.poll_time - obs.previous_poll_time;
  BROADWAY_CHECK_MSG(elapsed >= 0.0, "polls out of order");

  // Eq. 9 / Fig. 2: r = |P_curr − P_prev| / (t_curr − t_prev).
  double raw_ttr;
  if (elapsed <= 0.0) {
    raw_ttr = ttr_;  // triggered poll at the same instant: no information
  } else {
    last_rate_ = std::abs(obs.value - obs.previous_value) / elapsed;
    if (last_rate_ > 0.0) {
      raw_ttr = config_.delta / last_rate_;
      rate_ewma_ = rate_ewma_ ? config_.smoothing_w * last_rate_ +
                                    (1.0 - config_.smoothing_w) * *rate_ewma_
                              : last_rate_;
    } else {
      // Quiet interval: geometric back-off rather than a jump to TTR_max
      // (Eq. 9 has no information at r = 0; see Config::flat_growth).
      raw_ttr = std::min(config_.bounds.max, ttr_ * config_.flat_growth);
    }
  }

  // Exponential smoothing: TTR = w·TTR_est + (1−w)·TTR_prev.
  const Duration previous = smoothed_.value_or(raw_ttr);
  const Duration smoothed = config_.smoothing_w * raw_ttr +
                            (1.0 - config_.smoothing_w) * previous;
  smoothed_ = smoothed;

  // Track the most conservative estimate seen (Eq. 10's observed min).
  observed_min_ =
      observed_min_ ? std::min(*observed_min_, smoothed) : smoothed;

  // Eq. 10: clamp α-mix of the smoothed estimate and the observed minimum.
  const Duration mixed = config_.alpha * smoothed +
                         (1.0 - config_.alpha) * *observed_min_;
  ttr_ = config_.bounds.clamp(mixed);
  return ttr_;
}

}  // namespace broadway

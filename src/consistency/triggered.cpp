#include "consistency/triggered.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

TriggeredPollCoordinator::TriggeredPollCoordinator(
    std::vector<std::string> members, Duration delta_mutual)
    : members_(std::move(members)), delta_mutual_(delta_mutual) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(delta_mutual_ >= 0.0, "delta " << delta_mutual_);
}

void TriggeredPollCoordinator::on_bind() {
  member_ids_ = resolve_members(members_);
}

void TriggeredPollCoordinator::on_poll(ObjectId object,
                                       const TemporalPollObservation& obs) {
  if (!obs.modified) return;
  BROADWAY_CHECK_MSG(hooks_.trigger_poll, "coordinator used before bind()");
  // Subscription-routed dispatch only delivers member polls; the check
  // keeps the broadcast (legacy / fleet-style) paths equivalent.
  if (std::find(member_ids_.begin(), member_ids_.end(), object) ==
      member_ids_.end()) {
    return;
  }
  for (const ObjectId member : member_ids_) {
    if (member == object) continue;
    if (!outside_delta_window(member, obs.poll_time, delta_mutual_)) {
      continue;
    }
    ++triggers_requested_;
    // The triggered poll recursively enters on_poll for `member`; the
    // δ-window test then sees a zero-age last poll for it, so cascades
    // terminate.
    hooks_.trigger_poll(member);
  }
}

}  // namespace broadway

#include "consistency/triggered.h"

#include "util/check.h"

namespace broadway {

TriggeredPollCoordinator::TriggeredPollCoordinator(
    std::vector<std::string> members, Duration delta_mutual)
    : members_(std::move(members)), delta_mutual_(delta_mutual) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(delta_mutual_ >= 0.0, "delta " << delta_mutual_);
}

void TriggeredPollCoordinator::on_poll(const std::string& uri,
                                       const TemporalPollObservation& obs) {
  if (!obs.modified) return;
  BROADWAY_CHECK_MSG(hooks_.trigger_poll, "coordinator used before bind()");
  for (const std::string& member : members_) {
    if (member == uri) continue;
    if (!outside_delta_window(member, obs.poll_time, delta_mutual_)) {
      continue;
    }
    ++triggers_requested_;
    // The triggered poll recursively enters on_poll for `member`; the
    // δ-window test then sees a zero-age last poll for it, so cascades
    // terminate.
    hooks_.trigger_poll(member);
  }
}

}  // namespace broadway

#include "consistency/virtual_object.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

VirtualObjectPolicy::Config VirtualObjectPolicy::Config::paper_defaults(
    double delta, TtrBounds bounds) {
  Config config;
  config.delta = delta;
  config.bounds = bounds;
  return config;
}

VirtualObjectPolicy::VirtualObjectPolicy(
    std::unique_ptr<ConsistencyFunction> function, Config config)
    : function_(std::move(function)),
      config_(config),
      ttr_(config.bounds.min) {
  BROADWAY_CHECK(function_ != nullptr);
  BROADWAY_CHECK_MSG(config_.delta > 0.0, "delta " << config_.delta);
  BROADWAY_CHECK(config_.gamma_backoff > 0.0 && config_.gamma_backoff < 1.0);
  BROADWAY_CHECK(config_.gamma_recovery >= 1.0);
  BROADWAY_CHECK(config_.gamma_min > 0.0 && config_.gamma_min <= 1.0);
  BROADWAY_CHECK(config_.smoothing_w > 0.0 && config_.smoothing_w <= 1.0);
  BROADWAY_CHECK(config_.alpha >= 0.0 && config_.alpha <= 1.0);
  BROADWAY_CHECK(config_.flat_growth > 1.0);
}

void VirtualObjectPolicy::reset() {
  ttr_ = config_.bounds.min;
  gamma_ = 1.0;
  last_f_.reset();
  last_poll_time_.reset();
  smoothed_.reset();
  observed_min_.reset();
}

Duration VirtualObjectPolicy::next_ttr(TimePoint poll_time,
                                       std::span<const double> values) {
  BROADWAY_CHECK_MSG(values.size() == function_->arity(),
                     "expected " << function_->arity() << " values, got "
                                 << values.size());
  const double f_now = function_->evaluate(values);

  if (!last_f_ || !last_poll_time_ || poll_time <= *last_poll_time_) {
    // First joint poll: nothing to extrapolate from yet.
    last_f_ = f_now;
    last_poll_time_ = poll_time;
    ttr_ = config_.bounds.min;
    return ttr_;
  }

  const Duration elapsed = poll_time - *last_poll_time_;
  const double drift = std::abs(f_now - *last_f_);

  // Feedback (Eq. 12's γ): the proxy's only evidence of a missed bound is
  // f having moved by more than δ across the interval — in that case the
  // guarantee was necessarily violated some time before this poll.
  if (drift > config_.delta) {
    gamma_ = std::max(config_.gamma_min, gamma_ * config_.gamma_backoff);
  } else {
    gamma_ = std::min(1.0, gamma_ * config_.gamma_recovery);
  }

  // Eq. 11: r = |f_curr − f_prev| / (t_curr − t_prev).
  const double rate = drift / elapsed;
  const Duration raw_ttr =
      rate > 0.0
          ? gamma_ * config_.delta / rate
          : std::min(config_.bounds.max, ttr_ * config_.flat_growth);

  // Eq. 10 refinement: smoothing, conservative-minimum mix, clamp.
  const Duration previous = smoothed_.value_or(raw_ttr);
  const Duration smoothed = config_.smoothing_w * raw_ttr +
                            (1.0 - config_.smoothing_w) * previous;
  smoothed_ = smoothed;
  observed_min_ =
      observed_min_ ? std::min(*observed_min_, smoothed) : smoothed;
  const Duration mixed = config_.alpha * smoothed +
                         (1.0 - config_.alpha) * *observed_min_;
  ttr_ = config_.bounds.clamp(mixed);

  last_f_ = f_now;
  last_poll_time_ = poll_time;
  return ttr_;
}

}  // namespace broadway

#include "consistency/limd.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

LimdPolicy::Config LimdPolicy::Config::paper_defaults(Duration delta,
                                                      Duration ttr_max) {
  Config config;
  config.delta = delta;
  config.bounds = TtrBounds::from_delta(delta, ttr_max);
  config.linear_increase = 0.2;
  config.epsilon = 0.02;
  config.adaptive_m = true;
  return config;
}

LimdPolicy::LimdPolicy(Config config)
    : config_(config),
      detector_(config.delta, config.detection),
      ttr_(config.bounds.min) {
  BROADWAY_CHECK_MSG(config_.delta > 0.0, "delta " << config_.delta);
  BROADWAY_CHECK_MSG(
      config_.linear_increase > 0.0 && config_.linear_increase < 1.0,
      "l = " << config_.linear_increase);
  BROADWAY_CHECK_MSG(config_.epsilon >= 0.0, "eps = " << config_.epsilon);
  BROADWAY_CHECK_MSG(config_.multiplicative_decrease > 0.0 &&
                         config_.multiplicative_decrease < 1.0,
                     "m = " << config_.multiplicative_decrease);
  BROADWAY_CHECK(config_.m_floor > 0.0 && config_.m_ceiling < 1.0 &&
                 config_.m_floor <= config_.m_ceiling);
  BROADWAY_CHECK_MSG(config_.read_boost >= 0.0,
                     "read_boost = " << config_.read_boost);
}

Duration LimdPolicy::apply_read_boost(std::size_t client_reads) {
  if (config_.read_boost > 0.0 && client_reads > 0) {
    const double damp =
        1.0 + config_.read_boost *
                  std::log1p(static_cast<double>(client_reads));
    ttr_ = config_.bounds.clamp(ttr_ / damp);
  }
  return ttr_;
}

Duration LimdPolicy::idle_threshold() const {
  return config_.idle_reset_threshold > 0.0 ? config_.idle_reset_threshold
                                            : config_.bounds.max;
}

Duration LimdPolicy::initial_ttr() const { return config_.bounds.min; }

void LimdPolicy::reset() {
  // Crash recovery per §3.1: no history needed, just TTR_min.
  ttr_ = config_.bounds.min;
  last_known_modification_ = 0.0;
  last_case_.reset();
  last_verdict_ = ViolationVerdict{};
  detector_.reset();
}

Duration LimdPolicy::next_ttr(const TemporalPollObservation& obs) {
  last_verdict_ = detector_.examine(obs);

  if (!obs.modified) {
    // Case 1: unchanged between successive polls -> linear growth toward
    // TTR_max.
    last_case_ = LimdCase::kNoChange;
    ttr_ = config_.bounds.clamp(ttr_ * (1.0 + config_.linear_increase));
    return apply_read_boost(obs.client_reads);
  }

  const TimePoint first_update =
      last_verdict_.first_update.value_or(obs.poll_time);

  // Case 4 takes precedence: a modification after a long quiet spell means
  // the learned TTR (likely at TTR_max) is stale — restart from TTR_min so
  // a suddenly-hot object is tracked immediately.
  const Duration quiet_gap = first_update - last_known_modification_;
  if (quiet_gap > idle_threshold()) {
    last_case_ = LimdCase::kIdleReset;
    ttr_ = config_.bounds.min;
  } else if (last_verdict_.violated) {
    // Case 2: multiplicative backoff.  The paper's runs set m to the
    // ratio of Δ to the observed out-of-sync span, so deeper violations
    // back off harder; a fixed m is available for ablations.
    double m = config_.multiplicative_decrease;
    if (config_.adaptive_m && last_verdict_.out_sync > 0.0) {
      m = std::clamp(config_.delta / last_verdict_.out_sync,
                     config_.m_floor, config_.m_ceiling);
    }
    last_case_ = LimdCase::kViolation;
    ttr_ = config_.bounds.clamp(ttr_ * m);
  } else {
    // Case 3: polling at roughly the right frequency; fine-tune.
    last_case_ = LimdCase::kChangeNoViolation;
    ttr_ = config_.bounds.clamp(ttr_ * (1.0 + config_.epsilon));
  }

  if (obs.last_modified) {
    last_known_modification_ =
        std::max(last_known_modification_, *obs.last_modified);
  }
  return apply_read_boost(obs.client_reads);
}

}  // namespace broadway

#include "consistency/coordinator.h"

#include "util/check.h"

namespace broadway {

void MutualCoordinator::on_poll(const std::string& uri,
                                const TemporalPollObservation& obs) {
  BROADWAY_CHECK_MSG(hooks_.resolve, "coordinator used before bind()");
  on_poll(hooks_.resolve(uri), obs);
}

ObjectId MutualCoordinator::resolve_member(const std::string& uri) const {
  BROADWAY_CHECK_MSG(hooks_.resolve, "coordinator used before bind()");
  const ObjectId id = hooks_.resolve(uri);
  BROADWAY_CHECK_MSG(id != kInvalidObjectId, "unresolvable member " << uri);
  return id;
}

std::vector<ObjectId> MutualCoordinator::resolve_members(
    const std::vector<std::string>& uris) const {
  std::vector<ObjectId> ids;
  ids.reserve(uris.size());
  for (const std::string& uri : uris) {
    ids.push_back(resolve_member(uri));
  }
  return ids;
}

bool MutualCoordinator::outside_delta_window(ObjectId object, TimePoint now,
                                             Duration delta_mutual) const {
  BROADWAY_CHECK_MSG(hooks_.next_poll_time && hooks_.last_poll_time,
                     "coordinator used before bind()");
  // A poll in the recent past means the cached copy already originated
  // within δ of the updated object; a poll in the near future will restore
  // that soon enough to stay within the user's tolerance (Eq. 4).
  const TimePoint last = hooks_.last_poll_time(object);
  if (now - last <= delta_mutual) return false;
  const TimePoint next = hooks_.next_poll_time(object);
  if (next - now <= delta_mutual) return false;
  return true;
}

}  // namespace broadway

#include "consistency/coordinator.h"

#include "util/check.h"

namespace broadway {

bool MutualCoordinator::outside_delta_window(const std::string& uri,
                                             TimePoint now,
                                             Duration delta_mutual) const {
  BROADWAY_CHECK_MSG(hooks_.next_poll_time && hooks_.last_poll_time,
                     "coordinator used before bind()");
  // A poll in the recent past means the cached copy already originated
  // within δ of the updated object; a poll in the near future will restore
  // that soon enough to stay within the user's tolerance (Eq. 4).
  const TimePoint last = hooks_.last_poll_time(uri);
  if (now - last <= delta_mutual) return false;
  const TimePoint next = hooks_.next_poll_time(uri);
  if (next - now <= delta_mutual) return false;
  return true;
}

}  // namespace broadway

// The partitioned Mv-consistency approach (paper §4.2, last part, and
// §6.2.3's "partitioned approach").
//
// When f is linear — canonically the difference f(a,b) = a − b — the group
// tolerance δ can be split into per-object tolerances δᵢ with Σ|cᵢ|·δᵢ = δ,
// and each object maintained Δv-consistent to its own δᵢ by the adaptive
// TTR technique.  The triangle inequality then guarantees Mv-consistency
// (paper footnote 3):
//
//   |Σcᵢ(Sᵢ − Pᵢ)| ≤ Σ|cᵢ|·|Sᵢ − Pᵢ| < Σ|cᵢ|·δᵢ = δ.
//
// Tolerances are re-apportioned from the objects' observed rates: the
// faster-changing object receives the *smaller* share,
//
//   δ_a = (r_b / (r_a + r_b)) · δ,   δ_b = (r_a / (r_a + r_b)) · δ,
//
// which generalises to n objects as δᵢ ∝ (1/rᵢ) / Σⱼ(1/rⱼ) (and with
// coefficients, δᵢ = δ·wᵢ / (|cᵢ|·Σwⱼ), wᵢ = 1/rᵢ).
#pragma once

#include <memory>
#include <vector>

#include "consistency/function.h"
#include "consistency/types.h"
#include "consistency/value_ttr.h"

namespace broadway {

/// Split δ across n objects given their rates and the |cᵢ| of a linear f.
/// `rates` entries may be 0 (no observed change) — such objects get the
/// largest share, flat-capped so no δᵢ exceeds `max_fraction`·(δ/|cᵢ|).
/// Postcondition: Σ|cᵢ|·δᵢ = δ (to floating-point accuracy), all δᵢ > 0.
std::vector<double> apportion_tolerances(double delta,
                                         const std::vector<double>& rates,
                                         const std::vector<double>& coefficients,
                                         double max_fraction = 0.9);

/// Per-object Δv policies coordinated to jointly provide Mv-consistency.
class PartitionedTolerancePolicy {
 public:
  struct Config {
    /// Group tolerance δ on f.
    double delta = 1.0;
    /// TTR bounds shared by the per-object policies.
    TtrBounds bounds{30.0, 600.0};
    /// Eq. 10 parameters for the per-object policies.
    double smoothing_w = 0.5;
    double alpha = 0.7;
    /// Cap on any single object's share (see apportion_tolerances).
    double max_fraction = 0.9;
    /// Re-apportion at most this often (0 = on every poll).  Matches the
    /// paper's "parameters δ_a and δ_b can be adjusted periodically".
    Duration reapportion_interval = 0.0;

    static Config paper_defaults(double delta, TtrBounds bounds);
  };

  /// `function` must expose linear coefficients; arity fixes group size.
  PartitionedTolerancePolicy(std::unique_ptr<ConsistencyFunction> function,
                             Config config);

  std::size_t arity() const { return function_->arity(); }

  /// TTR for member `index` before its first poll.
  Duration initial_ttr(std::size_t index) const;

  /// Consume a poll of member `index`; returns that member's next TTR.
  /// Re-apportions all members' tolerances from current rate estimates
  /// (subject to reapportion_interval).
  Duration next_ttr(std::size_t index, const ValuePollObservation& obs);

  void reset();

  /// Current tolerance share of member `index`.
  double tolerance(std::size_t index) const;

  /// Current rate estimate of member `index` (from its Δv policy).
  double rate(std::size_t index) const;

  const ConsistencyFunction& function() const { return *function_; }
  const Config& config() const { return config_; }

 private:
  std::unique_ptr<ConsistencyFunction> function_;
  Config config_;
  std::vector<double> coefficients_;
  std::vector<AdaptiveValueTtrPolicy> policies_;
  std::vector<double> tolerances_;
  TimePoint last_apportion_ = -kTimeInfinity;

  void reapportion(TimePoint now);
};

}  // namespace broadway

#include "consistency/function.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

double DifferenceFunction::evaluate(std::span<const double> values) const {
  BROADWAY_CHECK_MSG(values.size() == 2, "difference needs 2 values");
  return values[0] - values[1];
}

WeightedSumFunction::WeightedSumFunction(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  BROADWAY_CHECK_MSG(!coefficients_.empty(), "weighted sum needs terms");
  for (double c : coefficients_) {
    BROADWAY_CHECK_MSG(std::isfinite(c), "non-finite coefficient");
  }
}

double WeightedSumFunction::evaluate(std::span<const double> values) const {
  BROADWAY_CHECK_MSG(values.size() == coefficients_.size(),
                     "arity mismatch: " << values.size() << " vs "
                                        << coefficients_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += coefficients_[i] * values[i];
  }
  return sum;
}

double RatioFunction::evaluate(std::span<const double> values) const {
  BROADWAY_CHECK_MSG(values.size() == 2, "ratio needs 2 values");
  BROADWAY_CHECK_MSG(values[1] != 0.0, "ratio denominator is zero");
  return values[0] / values[1];
}

MaxFunction::MaxFunction(std::size_t arity) : arity_(arity) {
  BROADWAY_CHECK_MSG(arity_ >= 1, "max needs at least one value");
}

double MaxFunction::evaluate(std::span<const double> values) const {
  BROADWAY_CHECK_MSG(values.size() == arity_, "arity mismatch");
  return *std::max_element(values.begin(), values.end());
}

}  // namespace broadway

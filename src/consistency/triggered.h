// Triggered-poll mutual consistency (paper §3.2).
//
// "Upon detecting an update (as indicated by the last-modified time field
// of the HTTP response), the proxy triggers polls for all other related
// objects" — unless a member's previous/next poll already falls within δ.
// Because every observed update re-synchronises the whole group, this
// approach provides 100% mutual-consistency fidelity at the cost of extra
// polls (Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "consistency/coordinator.h"

namespace broadway {

/// Coordinator that synchronises the whole group on every observed update.
class TriggeredPollCoordinator : public MutualCoordinator {
 public:
  /// `members` is the related-object group; `delta_mutual` is δ of Eq. (4).
  TriggeredPollCoordinator(std::vector<std::string> members,
                           Duration delta_mutual);

  using MutualCoordinator::on_poll;
  void on_poll(ObjectId object, const TemporalPollObservation& obs) override;

  std::vector<ObjectId> subscriptions() const override { return member_ids_; }

  Duration delta_mutual() const { return delta_mutual_; }
  const std::vector<std::string>& members() const { return members_; }
  /// Interned member ids, parallel to members(); empty before bind().
  const std::vector<ObjectId>& member_ids() const { return member_ids_; }

  /// Number of triggered polls this coordinator has requested.
  std::size_t triggers_requested() const { return triggers_requested_; }

 protected:
  void on_bind() override;

 private:
  std::vector<std::string> members_;
  std::vector<ObjectId> member_ids_;  // interned at bind()
  Duration delta_mutual_;
  std::size_t triggers_requested_ = 0;
};

}  // namespace broadway

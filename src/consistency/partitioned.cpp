#include "consistency/partitioned.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

std::vector<double> apportion_tolerances(
    double delta, const std::vector<double>& rates,
    const std::vector<double>& coefficients, double max_fraction) {
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  BROADWAY_CHECK(rates.size() == coefficients.size());
  BROADWAY_CHECK_MSG(!rates.empty(), "no objects to apportion across");
  BROADWAY_CHECK(max_fraction > 0.0 && max_fraction <= 1.0);
  const std::size_t n = rates.size();

  // Inverse-rate weights: δᵢ ∝ 1/rᵢ, so the fast mover gets the tight
  // tolerance (paper: "a smaller tolerance can be apportioned to the
  // object that is changing at a faster rate").  Zero rates (no observed
  // change) act as very slow objects; they would absorb the whole budget,
  // so weights are capped relative to the others.
  std::vector<double> weights(n);
  double min_positive_rate = kTimeInfinity;
  for (double r : rates) {
    BROADWAY_CHECK_MSG(r >= 0.0, "negative rate " << r);
    if (r > 0.0) min_positive_rate = std::min(min_positive_rate, r);
  }
  const bool any_positive = std::isfinite(min_positive_rate);
  for (std::size_t i = 0; i < n; ++i) {
    if (rates[i] > 0.0) {
      weights[i] = 1.0 / rates[i];
    } else if (any_positive) {
      // Unmeasured object: treat as 10x slower than the slowest measured.
      weights[i] = 10.0 / min_positive_rate;
    } else {
      weights[i] = 1.0;  // nobody measured yet: equal split
    }
  }

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = std::abs(coefficients[i]);
    BROADWAY_CHECK_MSG(c > 0.0, "zero coefficient in partitioned f");
    const double share =
        std::min(max_fraction, std::max(1.0 - max_fraction * (double)(n - 1),
                                        weights[i] / weight_sum));
    out[i] = delta * share / c;
  }
  // Renormalise so Σ|cᵢ|·δᵢ = δ exactly (the flat caps can distort sums).
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::abs(coefficients[i]) * out[i];
  }
  for (double& d : out) d *= delta / total;
  return out;
}

PartitionedTolerancePolicy::Config
PartitionedTolerancePolicy::Config::paper_defaults(double delta,
                                                   TtrBounds bounds) {
  Config config;
  config.delta = delta;
  config.bounds = bounds;
  return config;
}

PartitionedTolerancePolicy::PartitionedTolerancePolicy(
    std::unique_ptr<ConsistencyFunction> function, Config config)
    : function_(std::move(function)), config_(config) {
  BROADWAY_CHECK(function_ != nullptr);
  const auto coefficients = function_->linear_coefficients();
  BROADWAY_CHECK_MSG(coefficients.has_value(),
                     "partitioned approach requires a linear f; "
                         << function_->name() << " is not");
  coefficients_ = *coefficients;
  BROADWAY_CHECK_MSG(config_.delta > 0.0, "delta " << config_.delta);

  const std::size_t n = coefficients_.size();
  // Initial split: equal shares (no rates observed yet).
  tolerances_ = apportion_tolerances(config_.delta,
                                     std::vector<double>(n, 0.0),
                                     coefficients_, config_.max_fraction);
  policies_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AdaptiveValueTtrPolicy::Config sub;
    sub.delta = tolerances_[i];
    sub.bounds = config_.bounds;
    sub.smoothing_w = config_.smoothing_w;
    sub.alpha = config_.alpha;
    policies_.emplace_back(sub);
  }
}

Duration PartitionedTolerancePolicy::initial_ttr(std::size_t index) const {
  BROADWAY_CHECK(index < policies_.size());
  return policies_[index].initial_ttr();
}

double PartitionedTolerancePolicy::tolerance(std::size_t index) const {
  BROADWAY_CHECK(index < tolerances_.size());
  return tolerances_[index];
}

double PartitionedTolerancePolicy::rate(std::size_t index) const {
  BROADWAY_CHECK(index < policies_.size());
  return policies_[index].estimated_rate();
}

void PartitionedTolerancePolicy::reapportion(TimePoint now) {
  if (config_.reapportion_interval > 0.0 &&
      now - last_apportion_ < config_.reapportion_interval) {
    return;
  }
  last_apportion_ = now;
  std::vector<double> rates(policies_.size());
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    // estimated_rate(), not last_rate(): one quiet interval must not make
    // a fast mover look static and hand it the loose share.
    rates[i] = policies_[i].estimated_rate();
  }
  tolerances_ = apportion_tolerances(config_.delta, rates, coefficients_,
                                     config_.max_fraction);
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    policies_[i].set_delta(tolerances_[i]);
  }
}

Duration PartitionedTolerancePolicy::next_ttr(
    std::size_t index, const ValuePollObservation& obs) {
  BROADWAY_CHECK(index < policies_.size());
  // Feed the member policy first so the new rate participates in the
  // re-apportioning, then recompute shares for everyone.
  const Duration ttr = policies_[index].next_ttr(obs);
  reapportion(obs.poll_time);
  // The member's TTR was computed against its pre-apportioning δ; the
  // change is a refinement, not a correctness issue (Σ|cᵢ|·δᵢ = δ holds
  // throughout), and the next poll uses the fresh δ.
  return ttr;
}

void PartitionedTolerancePolicy::reset() {
  for (auto& policy : policies_) policy.reset();
  const std::size_t n = coefficients_.size();
  tolerances_ = apportion_tolerances(config_.delta,
                                     std::vector<double>(n, 0.0),
                                     coefficients_, config_.max_fraction);
  for (std::size_t i = 0; i < n; ++i) {
    policies_[i].set_delta(tolerances_[i]);
  }
  last_apportion_ = -kTimeInfinity;
}

}  // namespace broadway

// Update-rate estimation from poll observations.
//
// The heuristic mutual-consistency approach (paper §3.2) triggers polls
// "for only those objects that change at a rate faster than the object that
// was modified".  The proxy does not see the true update stream — only what
// polls reveal — so rates are estimated from observed modification instants
// (all history entries when the extension is on, otherwise consecutive
// Last-Modified values), smoothed with an EWMA.
#pragma once

#include <optional>

#include "consistency/types.h"
#include "util/ewma.h"

namespace broadway {

/// Per-object update-rate estimator.
class UpdateRateEstimator {
 public:
  /// `smoothing` is the EWMA weight given to the newest observed gap.
  explicit UpdateRateEstimator(double smoothing = 0.3);

  /// Feed one poll observation (call for every poll, modified or not).
  void observe(const TemporalPollObservation& obs);

  /// Estimated updates per second; 0 until two distinct modification
  /// instants have been seen.
  double rate() const;

  /// Estimated mean inter-update gap; infinity until measurable.
  Duration mean_gap() const;

  /// Number of distinct modification instants observed so far.
  std::size_t observed_modifications() const { return observed_; }

  /// Forget everything (crash recovery).
  void reset();

 private:
  Ewma gap_ewma_;
  std::optional<TimePoint> last_modification_;
  std::size_t observed_ = 0;
};

}  // namespace broadway

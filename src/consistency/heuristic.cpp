#include "consistency/heuristic.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

RateHeuristicCoordinator::RateHeuristicCoordinator(
    std::vector<std::string> members, Config config)
    : config_(config), members_(std::move(members)) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(config_.delta_mutual >= 0.0,
                     "delta " << config_.delta_mutual);
  BROADWAY_CHECK_MSG(config_.similarity > 0.0, "similarity factor");
}

void RateHeuristicCoordinator::on_bind() {
  member_ids_ = resolve_members(members_);
  estimators_.assign(members_.size(),
                     UpdateRateEstimator(config_.rate_smoothing));
}

std::size_t RateHeuristicCoordinator::member_index(ObjectId object) const {
  const auto it =
      std::find(member_ids_.begin(), member_ids_.end(), object);
  return it == member_ids_.end()
             ? kNotMember
             : static_cast<std::size_t>(it - member_ids_.begin());
}

double RateHeuristicCoordinator::estimated_rate(ObjectId object) const {
  const std::size_t index = member_index(object);
  return index == kNotMember ? 0.0 : estimators_[index].rate();
}

double RateHeuristicCoordinator::estimated_rate(
    const std::string& uri) const {
  const auto it = std::find(members_.begin(), members_.end(), uri);
  if (it == members_.end() || estimators_.empty()) return 0.0;
  return estimators_[static_cast<std::size_t>(it - members_.begin())].rate();
}

void RateHeuristicCoordinator::reset() {
  for (UpdateRateEstimator& estimator : estimators_) estimator.reset();
}

void RateHeuristicCoordinator::on_poll(ObjectId object,
                                       const TemporalPollObservation& obs) {
  // Subscription-routed dispatch only delivers member polls; the check
  // keeps the broadcast (legacy / fleet-style) paths equivalent.
  const std::size_t self = member_index(object);
  if (self == kNotMember) return;
  estimators_[self].observe(obs);
  if (!obs.modified) return;
  BROADWAY_CHECK_MSG(hooks_.trigger_poll, "coordinator used before bind()");

  const double updated_rate = estimators_[self].rate();
  for (std::size_t i = 0; i < member_ids_.size(); ++i) {
    if (i == self) continue;
    // Trigger only members changing at a similar or faster estimated rate;
    // slower members are left to their own LIMD schedule (that schedule is
    // already polling them at roughly their own update rate).  Members
    // with no rate estimate yet are treated as slower — we have no
    // evidence they co-update with this object.
    const double member_rate = estimators_[i].rate();
    if (member_rate < config_.similarity * updated_rate ||
        member_rate == 0.0) {
      continue;
    }
    if (!outside_delta_window(member_ids_[i], obs.poll_time,
                              config_.delta_mutual)) {
      continue;
    }
    ++triggers_requested_;
    hooks_.trigger_poll(member_ids_[i]);
  }
}

}  // namespace broadway

#include "consistency/heuristic.h"

#include "util/check.h"

namespace broadway {

RateHeuristicCoordinator::RateHeuristicCoordinator(
    std::vector<std::string> members, Config config)
    : config_(config), members_(std::move(members)) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(config_.delta_mutual >= 0.0,
                     "delta " << config_.delta_mutual);
  BROADWAY_CHECK_MSG(config_.similarity > 0.0, "similarity factor");
  for (const std::string& member : members_) {
    estimators_.emplace(member,
                        UpdateRateEstimator(config_.rate_smoothing));
  }
}

double RateHeuristicCoordinator::estimated_rate(
    const std::string& uri) const {
  auto it = estimators_.find(uri);
  return it == estimators_.end() ? 0.0 : it->second.rate();
}

void RateHeuristicCoordinator::reset() {
  for (auto& [uri, estimator] : estimators_) estimator.reset();
  (void)this;
}

void RateHeuristicCoordinator::on_poll(const std::string& uri,
                                       const TemporalPollObservation& obs) {
  auto self = estimators_.find(uri);
  if (self != estimators_.end()) self->second.observe(obs);
  if (!obs.modified) return;
  BROADWAY_CHECK_MSG(hooks_.trigger_poll, "coordinator used before bind()");

  const double updated_rate =
      self == estimators_.end() ? 0.0 : self->second.rate();
  for (const std::string& member : members_) {
    if (member == uri) continue;
    // Trigger only members changing at a similar or faster estimated rate;
    // slower members are left to their own LIMD schedule (that schedule is
    // already polling them at roughly their own update rate).  Members
    // with no rate estimate yet are treated as slower — we have no
    // evidence they co-update with this object.
    const double member_rate = estimated_rate(member);
    if (member_rate < config_.similarity * updated_rate ||
        member_rate == 0.0) {
      continue;
    }
    if (!outside_delta_window(member, obs.poll_time,
                              config_.delta_mutual)) {
      continue;
    }
    ++triggers_requested_;
    hooks_.trigger_poll(member);
  }
}

}  // namespace broadway

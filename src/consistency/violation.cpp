#include "consistency/violation.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

ViolationDetector::ViolationDetector(Duration delta, ViolationDetection mode)
    : delta_(delta), mode_(mode) {
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
}

void ViolationDetector::reset() {
  gap_ewma_.reset();
  previous_modification_.reset();
  interval_ewma_.reset();
  modified_ewma_.reset();
}

Duration ViolationDetector::estimated_update_gap() const {
  return inferred_gap();
}

Duration ViolationDetector::inferred_gap() const {
  // Direct gap observations (exact with history; upper bound without).
  Duration direct = gap_ewma_.empty() ? kTimeInfinity : gap_ewma_.value();
  // Poisson moment matching over poll outcomes:
  //   p = P(modified) = 1 - exp(-lambda * T)  =>  1/lambda = -T / ln(1-p).
  Duration poisson = kTimeInfinity;
  if (!modified_ewma_.empty() && !interval_ewma_.empty()) {
    // Cap p away from 1: an always-modified object only bounds the gap
    // from above by the poll interval.
    const double p = std::min(0.95, std::max(0.0, modified_ewma_.value()));
    if (p > 0.0) {
      poisson = -interval_ewma_.value() / std::log(1.0 - p);
    }
  }
  return std::min(direct, poisson);
}

std::optional<TimePoint> ViolationDetector::infer_first_update(
    const TemporalPollObservation& obs) const {
  if (!obs.modified) return std::nullopt;
  switch (mode_) {
    case ViolationDetection::kExactHistory:
      // The extension carries every update since the previous poll; its
      // first entry is exactly Fig. 1(b)'s "first update since last poll".
      if (!obs.history.empty()) return obs.history.front();
      return obs.last_modified;
    case ViolationDetection::kLastModifiedOnly:
      return obs.last_modified;
    case ViolationDetection::kProbabilistic: {
      if (!obs.last_modified) return std::nullopt;
      const TimePoint newest = *obs.last_modified;
      // If the learned update rate suggests earlier updates fit between
      // the previous poll and the newest update, place the first one a
      // mean gap after the previous poll — the expected position of the
      // earliest update in the inferred stream.
      const Duration gap = inferred_gap();
      const Duration room = newest - obs.previous_poll_time;
      if (std::isfinite(gap) && gap > 0.0 && room > gap) {
        return std::min(newest, obs.previous_poll_time + gap);
      }
      return newest;
    }
  }
  return obs.last_modified;
}

void ViolationDetector::learn(const TemporalPollObservation& obs) {
  // Poisson-rate evidence: every poll contributes its interval length and
  // whether it found the object modified (quiet polls count too).
  const Duration interval = obs.poll_time - obs.previous_poll_time;
  if (interval > 0.0) {
    interval_ewma_.observe(interval);
    modified_ewma_.observe(obs.modified ? 1.0 : 0.0);
  }
  if (!obs.modified || !obs.last_modified) return;
  // Learn gaps from whatever the response reveals: all history entries
  // when present, otherwise consecutive Last-Modified values.
  if (!obs.history.empty()) {
    TimePoint prev = previous_modification_.value_or(obs.history.front());
    for (TimePoint t : obs.history) {
      if (t > prev) gap_ewma_.observe(t - prev);
      prev = t;
    }
    previous_modification_ = obs.history.back();
    return;
  }
  if (previous_modification_ &&
      *obs.last_modified > *previous_modification_) {
    gap_ewma_.observe(*obs.last_modified - *previous_modification_);
  }
  previous_modification_ = *obs.last_modified;
}

ViolationVerdict ViolationDetector::examine(
    const TemporalPollObservation& obs) {
  BROADWAY_CHECK_MSG(obs.poll_time >= obs.previous_poll_time,
                     "poll times out of order");
  ViolationVerdict verdict;
  verdict.first_update = infer_first_update(obs);
  if (verdict.first_update) {
    verdict.out_sync =
        std::max(0.0, obs.poll_time - *verdict.first_update);
    verdict.violated = verdict.out_sync > delta_;
  }
  learn(obs);
  return verdict;
}

}  // namespace broadway

// Shared vocabulary of the consistency policies (paper §2–§4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/small_vector.h"
#include "util/time.h"

namespace broadway {

/// Lower/upper bounds on the time-to-refresh.  The paper constrains every
/// computed TTR to [TTR_min, TTR_max]; TTR_min defaults to Δ, "the minimum
/// interval between polls necessary to maintain consistency guarantees"
/// (§3.1).
struct TtrBounds {
  Duration min = 60.0;
  Duration max = 3600.0;

  /// max(TTR_min, min(TTR_max, ttr)).
  Duration clamp(Duration ttr) const;

  /// Bounds with TTR_min = delta (the paper's default configuration).
  static TtrBounds from_delta(Duration delta, Duration ttr_max);
};

/// What the proxy learns from one temporal-domain poll.  Built by the
/// polling engine from the HTTP response; consumed by refresh policies,
/// violation detectors and mutual-consistency coordinators.
struct TemporalPollObservation {
  /// Instant this poll's response was processed.
  TimePoint poll_time = 0.0;
  /// Instant of the previous poll (or the initial fetch).
  TimePoint previous_poll_time = 0.0;
  /// True when the server answered 200 (object changed since last poll).
  bool modified = false;
  /// Last-Modified of the current server version (present when modified;
  /// may also be present on 304 responses that echo it).
  std::optional<TimePoint> last_modified;
  /// X-Modification-History payload: update instants since the previous
  /// poll, ascending.  Empty when the extension is disabled — policies
  /// must not assume it is populated.  Built once per poll on the hot
  /// path: the inline capacity covers the common few-updates-per-poll
  /// case without touching the heap; longer histories spill.
  using History = SmallVector<TimePoint, 8>;
  History history;
  /// Client reads served for this object since the previous poll (both
  /// hits and misses).  0 when no client traffic is attached.  Policies
  /// may use it to poll what clients actually read (closed-loop
  /// feedback); the default policies ignore it unless explicitly
  /// configured (LimdPolicy::Config::read_boost).
  std::size_t client_reads = 0;
};

/// What the proxy learns from one value-domain poll.
struct ValuePollObservation {
  TimePoint poll_time = 0.0;
  TimePoint previous_poll_time = 0.0;
  double value = 0.0;
  double previous_value = 0.0;
};

/// The four LIMD adjustment cases of paper §3.1.
enum class LimdCase {
  kNoChange = 1,        ///< Case 1: linear TTR increase
  kViolation = 2,       ///< Case 2: multiplicative decrease
  kChangeNoViolation = 3,  ///< Case 3: fine-tune by (1 + eps)
  kIdleReset = 4,       ///< Case 4: update after long idle -> TTR_min
};

std::string to_string(LimdCase c);

/// How the proxy infers Fig. 1(b) violations (first update since the last
/// poll) from a response — paper §3.1 "detection of violations in the
/// second category" and §5.1.
enum class ViolationDetection {
  /// Use the X-Modification-History extension when present (exact); fall
  /// back to Last-Modified when absent.
  kExactHistory,
  /// Standard HTTP only: treat Last-Modified as the first update since the
  /// last poll.  Under-detects multi-update intervals (Fig. 1(b)).
  kLastModifiedOnly,
  /// Standard HTTP plus rate statistics: when the interval probably held
  /// multiple updates, place the first update at its expected instant.
  kProbabilistic,
};

std::string to_string(ViolationDetection mode);

/// Why a poll happened — poll accounting for the mutual-consistency
/// experiments (Figs. 5–6 separate base polls from triggered extras).
enum class PollCause {
  kInitial,    ///< the initial object fetch at registration
  kScheduled,  ///< TTR expiry
  kTriggered,  ///< forced by a mutual-consistency coordinator
  kRetry,      ///< re-poll after an injected network failure
  kRelay,      ///< refresh relayed by a sibling proxy (no origin message)
  kClientMiss, ///< demand fill: a client read missed the cache
};

std::string to_string(PollCause c);

/// Abstract temporal-domain refresh policy: decides how long to wait until
/// the next poll.  Implementations: LimdPolicy (adaptive, paper §3.1) and
/// FixedPollPolicy (the paper's baseline: poll every Δ).
class RefreshPolicy {
 public:
  virtual ~RefreshPolicy() = default;

  /// TTR to use before anything has been observed.
  virtual Duration initial_ttr() const = 0;

  /// Consume one poll observation and return the next TTR.
  virtual Duration next_ttr(const TemporalPollObservation& obs) = 0;

  /// Forget all learned state (proxy crash recovery: "recovering from a
  /// proxy failure simply involves resetting the TTRs of all objects to
  /// TTR_min", §3.1).
  virtual void reset() = 0;

  /// Current TTR (the value most recently returned, or initial_ttr()).
  virtual Duration current_ttr() const = 0;
};

}  // namespace broadway

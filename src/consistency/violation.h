// Proxy-side Δt violation detection (paper §3.1, Fig. 1).
//
// A Δt violation exists when the *first* update since the previous poll
// happened more than Δ before the current poll (Fig. 1(a) and, with
// multiple intervening updates, Fig. 1(b)).  Standard HTTP reveals only the
// most recent update (Last-Modified), so the proxy must either use the
// paper's proposed history extension or infer the first update.  This
// detector implements all three strategies of ViolationDetection.
#pragma once

#include <optional>

#include "consistency/types.h"
#include "util/ewma.h"

namespace broadway {

/// Result of examining one poll observation.
struct ViolationVerdict {
  /// True when the detector concludes the Δ bound was exceeded.
  bool violated = false;
  /// The detector's estimate of the first update since the previous poll
  /// (absent when the object was not modified).
  std::optional<TimePoint> first_update;
  /// Observed out-of-sync span (poll_time - first_update) when modified.
  Duration out_sync = 0.0;
};

/// Stateful detector; one instance per tracked object (the probabilistic
/// mode learns the object's update rate across polls).
class ViolationDetector {
 public:
  /// `delta` is the Δt tolerance; `mode` selects the inference strategy.
  ViolationDetector(Duration delta, ViolationDetection mode);

  /// Examine one observation.  Call exactly once per poll, in order.
  ViolationVerdict examine(const TemporalPollObservation& obs);

  /// Forget learned statistics (crash recovery).
  void reset();

  Duration delta() const { return delta_; }
  ViolationDetection mode() const { return mode_; }

  /// Learned mean inter-update gap (probabilistic mode); infinity until
  /// two modifications have been observed.
  Duration estimated_update_gap() const;

 private:
  Duration delta_;
  ViolationDetection mode_;

  // EWMA over apparent inter-modification gaps (exact when history is
  // present; an upper-bound estimate when sampled via Last-Modified).
  Ewma gap_ewma_{0.3};
  std::optional<TimePoint> previous_modification_;
  // Probabilistic mode: Poisson-rate estimation from poll outcomes.  With
  // only Last-Modified available, inter-modification gaps are undersampled
  // (consecutive observations are ~a poll interval apart), so the update
  // rate is instead estimated from the *fraction of polls that found the
  // object modified*: P(modified | interval T) = 1 - exp(-lambda*T).
  Ewma interval_ewma_{0.2};
  Ewma modified_ewma_{0.2};

  std::optional<TimePoint> infer_first_update(
      const TemporalPollObservation& obs) const;
  void learn(const TemporalPollObservation& obs);
  // Best available estimate of the mean inter-update gap; infinity when
  // nothing has been learned yet.
  Duration inferred_gap() const;
};

}  // namespace broadway

// The adaptive Mv-consistency approach: track f as a *virtual object*
// (paper §4.2, Eqs. 11–12, and §6.2.3's "adaptive approach").
//
// The proxy polls all member objects together, evaluates f over the fresh
// values, estimates the rate at which f changes (Eq. 11), and schedules
// the next joint poll at
//
//   TTR = γ · δ / r                                            (Eq. 12)
//
// where γ ∈ (0, 1] is a feedback factor: it shrinks when a poll reveals
// that f moved by more than δ during the interval (violation evidence) and
// recovers gradually while estimates prove accurate.  The raw estimate is
// then refined exactly like Eq. 10 (smoothing + conservative-minimum mix).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "consistency/function.h"
#include "consistency/types.h"

namespace broadway {

/// Joint refresh policy for a group tracked through a virtual object.
class VirtualObjectPolicy {
 public:
  struct Config {
    /// Mv tolerance δ on f.
    double delta = 1.0;
    /// TTR bounds for the joint poll period.
    TtrBounds bounds{30.0, 600.0};
    /// Eq. 10-style smoothing / conservative mixing.
    double smoothing_w = 0.5;
    double alpha = 0.7;
    /// Geometric back-off factor when f did not move across the interval
    /// (Eq. 11 has no information at r = 0).
    double flat_growth = 2.0;
    /// Feedback factor dynamics: γ ← max(γ_min, γ·backoff) on violation
    /// evidence, γ ← min(1, γ·recovery) otherwise.
    double gamma_backoff = 0.5;
    double gamma_recovery = 1.1;
    double gamma_min = 0.05;

    static Config paper_defaults(double delta, TtrBounds bounds);
  };

  /// The policy owns the function; `function->arity()` fixes the group
  /// size.
  VirtualObjectPolicy(std::unique_ptr<ConsistencyFunction> function,
                      Config config);

  /// TTR before any joint poll has completed.
  Duration initial_ttr() const { return config_.bounds.min; }

  /// Consume one joint poll: `values` are the freshly fetched member
  /// values (size = arity).  Returns the next joint TTR.
  Duration next_ttr(TimePoint poll_time, std::span<const double> values);

  void reset();

  double current_gamma() const { return gamma_; }
  Duration current_ttr() const { return ttr_; }
  double last_f() const { return last_f_.value_or(0.0); }
  const ConsistencyFunction& function() const { return *function_; }
  const Config& config() const { return config_; }

 private:
  std::unique_ptr<ConsistencyFunction> function_;
  Config config_;
  Duration ttr_;
  double gamma_ = 1.0;
  std::optional<double> last_f_;
  std::optional<TimePoint> last_poll_time_;
  std::optional<Duration> smoothed_;
  std::optional<Duration> observed_min_;
};

}  // namespace broadway

// Consistency functions f over groups of value-domain objects (paper §2,
// Eq. 5; §4.2).
//
// Mv-consistency bounds |f(server values) − f(proxy values)| by δ.  The
// paper's canonical f is the difference of two stock prices; it also notes
// the general technique "works well only if f is a linear function or if
// the time difference between successive polls is small enough to
// approximate f as a linear function".  Functions that expose a linear
// decomposition (f = Σ cᵢ·vᵢ + k) unlock the partitioned approach of
// §4.2, whose δ-apportioning needs the coefficients.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace broadway {

/// A function of n object values.
class ConsistencyFunction {
 public:
  virtual ~ConsistencyFunction() = default;

  /// Number of object values the function consumes.
  virtual std::size_t arity() const = 0;

  /// Evaluate on `values` (size must equal arity()).
  virtual double evaluate(std::span<const double> values) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Linear decomposition f(v) = Σ cᵢ·vᵢ + k, when one exists.  Returns
  /// the coefficients cᵢ; nullopt for nonlinear functions.  The constant k
  /// is irrelevant to consistency (it cancels in f(S) − f(P)).
  virtual std::optional<std::vector<double>> linear_coefficients() const {
    return std::nullopt;
  }
};

/// f(a, b) = a − b: the paper's running example ("if the user is
/// interested in comparing two stock prices").
class DifferenceFunction final : public ConsistencyFunction {
 public:
  std::size_t arity() const override { return 2; }
  double evaluate(std::span<const double> values) const override;
  std::string name() const override { return "difference"; }
  std::optional<std::vector<double>> linear_coefficients() const override {
    return std::vector<double>{1.0, -1.0};
  }
};

/// f(v) = Σ cᵢ·vᵢ: covers sums (overall sports score from player scores,
/// paper §1 example 2) and weighted indices (stock market index from
/// constituent prices).
class WeightedSumFunction final : public ConsistencyFunction {
 public:
  explicit WeightedSumFunction(std::vector<double> coefficients);

  std::size_t arity() const override { return coefficients_.size(); }
  double evaluate(std::span<const double> values) const override;
  std::string name() const override { return "weighted-sum"; }
  std::optional<std::vector<double>> linear_coefficients() const override {
    return coefficients_;
  }

 private:
  std::vector<double> coefficients_;
};

/// f(a, b) = a / b: a nonlinear example (price ratio).  No linear
/// decomposition, so only the general adaptive technique applies.
class RatioFunction final : public ConsistencyFunction {
 public:
  std::size_t arity() const override { return 2; }
  double evaluate(std::span<const double> values) const override;
  std::string name() const override { return "ratio"; }
};

/// f(v) = max(v₁ … vₙ): another nonlinear example (best quote).
class MaxFunction final : public ConsistencyFunction {
 public:
  explicit MaxFunction(std::size_t arity);
  std::size_t arity() const override { return arity_; }
  double evaluate(std::span<const double> values) const override;
  std::string name() const override { return "max"; }

 private:
  std::size_t arity_;
};

}  // namespace broadway

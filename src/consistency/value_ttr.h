// Adaptive TTR computation for Δv-consistency (paper §4.1, after
// Srinivasan et al. [8]).
//
// The proxy must refresh whenever the server value may have drifted by Δ.
// It estimates the rate of change r from the two most recent polls
// (Fig. 2), predicts the time to drift Δ as TTR = Δ / r (Eq. 9), smooths
// the estimate exponentially, and clamps it while weighing it against the
// most conservative (smallest) TTR seen so far (Eq. 10):
//
//   TTR = max(TTR_min, min(TTR_max, α·TTR + (1−α)·TTR_observed_min))
//
// Small α biases toward the conservative historical minimum — the knob the
// paper recommends for low-locality data.
#pragma once

#include <optional>

#include "consistency/types.h"

namespace broadway {

/// Adaptive value-domain refresh policy for one object.
class AdaptiveValueTtrPolicy {
 public:
  struct Config {
    /// Δv tolerance, in value units (e.g. dollars).
    double delta = 1.0;
    /// TTR bounds in seconds.
    TtrBounds bounds{30.0, 600.0};
    /// Exponential smoothing weight w for the newest raw estimate
    /// (TTR = w·TTR_est + (1−w)·TTR_prev).
    double smoothing_w = 0.5;
    /// Eq. 10's α: weight of the smoothed estimate vs the smallest
    /// observed TTR.  1.0 disables the conservative mixing.
    double alpha = 0.7;
    /// Raw-estimate growth factor when a poll observes *no* change.
    /// Eq. 9 is undefined at r = 0; jumping straight to TTR_max would let
    /// a single quiet interval erase everything learned about a fast
    /// object, so the estimate backs off geometrically instead (> 1).
    double flat_growth = 2.0;

    static Config paper_defaults(double delta, TtrBounds bounds);
  };

  explicit AdaptiveValueTtrPolicy(Config config);

  /// TTR before any value has been observed.
  Duration initial_ttr() const { return config_.bounds.min; }

  /// Consume one poll observation and return the next TTR.
  Duration next_ttr(const ValuePollObservation& obs);

  /// Forget learned state (crash recovery / re-apportioning restarts).
  void reset();

  /// Most recent |dv/dt| estimate (0 until two polls with distinct times).
  double last_rate() const { return last_rate_; }

  /// Smoothed rate of change over polls that observed movement.  Unlike
  /// last_rate(), quiet intervals do not zero it — this is the estimate
  /// the partitioned approach's δ-apportioning consumes (a momentarily
  /// quiet fast mover must keep its tight share).
  double estimated_rate() const;

  Duration current_ttr() const { return ttr_; }

  const Config& config() const { return config_; }

  /// Re-apportioning hook (partitioned approach): change Δ in flight.
  /// Learned rate state is kept — only the target drift changes.
  void set_delta(double delta);

 private:
  Config config_;
  Duration ttr_;
  double last_rate_ = 0.0;
  // EWMA over positive rate observations (see estimated_rate()).
  std::optional<double> rate_ewma_;
  // Smoothed TTR estimate from previous rounds (Eq. 10's TTR_prev).
  std::optional<Duration> smoothed_;
  // Smallest smoothed estimate seen so far (Eq. 10's TTR_observed_min).
  std::optional<Duration> observed_min_;
};

}  // namespace broadway

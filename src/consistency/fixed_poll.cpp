#include "consistency/fixed_poll.h"

#include "util/check.h"

namespace broadway {

FixedPollPolicy::FixedPollPolicy(Duration period) : period_(period) {
  BROADWAY_CHECK_MSG(period > 0.0, "period " << period);
}

Duration FixedPollPolicy::next_ttr(const TemporalPollObservation& obs) {
  (void)obs;  // the baseline ignores everything it observes
  return period_;
}

}  // namespace broadway

#include "consistency/types.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

Duration TtrBounds::clamp(Duration ttr) const {
  BROADWAY_CHECK_MSG(min > 0.0 && max >= min,
                     "TtrBounds [" << min << ", " << max << "]");
  return std::max(min, std::min(max, ttr));
}

TtrBounds TtrBounds::from_delta(Duration delta, Duration ttr_max) {
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  TtrBounds bounds;
  bounds.min = delta;
  bounds.max = std::max(delta, ttr_max);
  return bounds;
}

std::string to_string(LimdCase c) {
  switch (c) {
    case LimdCase::kNoChange:
      return "no-change";
    case LimdCase::kViolation:
      return "violation";
    case LimdCase::kChangeNoViolation:
      return "change-no-violation";
    case LimdCase::kIdleReset:
      return "idle-reset";
  }
  return "?";
}

std::string to_string(ViolationDetection mode) {
  switch (mode) {
    case ViolationDetection::kExactHistory:
      return "exact-history";
    case ViolationDetection::kLastModifiedOnly:
      return "last-modified-only";
    case ViolationDetection::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

std::string to_string(PollCause c) {
  switch (c) {
    case PollCause::kInitial:
      return "initial";
    case PollCause::kScheduled:
      return "scheduled";
    case PollCause::kTriggered:
      return "triggered";
    case PollCause::kRetry:
      return "retry";
    case PollCause::kRelay:
      return "relay";
    case PollCause::kClientMiss:
      return "client-miss";
  }
  return "?";
}

}  // namespace broadway

// LIMD: the paper's adaptive TTR algorithm for Δt-consistency (§3.1).
//
// Linear-increase / multiplicative-decrease over the time-to-refresh:
//   Case 1  object unchanged          TTR *= (1 + l)
//   Case 2  changed, bound violated   TTR *= m          (m < 1)
//   Case 3  changed, no violation     TTR *= (1 + eps)
//   Case 4  changed after long idle   TTR  = TTR_min
// with the result clamped into [TTR_min, TTR_max].  TTR_min defaults to Δ.
//
// Parameterisation follows the paper's evaluation (§6.2.1): l = 0.2,
// eps = 0.02, and m set adaptively to Δ / observed out-of-sync time (the
// deeper the violation, the harder the backoff); a fixed m is also
// supported for the ablation benches.
#pragma once

#include <optional>

#include "consistency/types.h"
#include "consistency/violation.h"

namespace broadway {

/// Adaptive temporal-domain refresh policy.
class LimdPolicy : public RefreshPolicy {
 public:
  struct Config {
    /// Δt-consistency tolerance (seconds).
    Duration delta = 600.0;
    /// TTR bounds; by default [Δ, 60 min] as in the paper's runs.
    TtrBounds bounds = TtrBounds::from_delta(600.0, 3600.0);
    /// Linear increase factor l, 0 < l < 1 (Eq. 6).
    double linear_increase = 0.2;
    /// Fine-tune factor eps >= 0 (Eq. 8).
    double epsilon = 0.02;
    /// Fixed multiplicative decrease m in (0, 1) (Eq. 7).  When
    /// `adaptive_m` is true this is only the fallback for degenerate
    /// out-of-sync spans.
    double multiplicative_decrease = 0.5;
    /// Paper's evaluation setting: m = Δ / observed out-of-sync time,
    /// clamped into [m_floor, m_ceiling].
    bool adaptive_m = true;
    double m_floor = 0.05;
    double m_ceiling = 0.95;
    /// Case 4 threshold: an update counts as "after a long period of no
    /// modifications" when the gap from the previously known modification
    /// exceeds this.  Defaults (when NaN) to TTR_max.
    Duration idle_reset_threshold = kNanDuration;
    /// How the proxy infers first-update-since-last-poll (Fig. 1(b)).
    ViolationDetection detection = ViolationDetection::kExactHistory;
    /// Closed-loop demand feedback: when > 0, every computed TTR is
    /// additionally divided by (1 + read_boost * log1p(client reads
    /// since the previous poll)) before clamping — objects clients
    /// actually read are polled harder, idle ones keep the pure LIMD
    /// schedule.  0 (the default) ignores the demand signal entirely,
    /// preserving the paper's algorithm bit-for-bit.
    double read_boost = 0.0;

    static constexpr Duration kNanDuration = -1.0;

    /// Convenience: the paper's configuration for a given Δ and TTR_max.
    static Config paper_defaults(Duration delta,
                                 Duration ttr_max = 3600.0);
  };

  explicit LimdPolicy(Config config);

  Duration initial_ttr() const override;
  Duration next_ttr(const TemporalPollObservation& obs) override;
  void reset() override;
  Duration current_ttr() const override { return ttr_; }

  /// Which case the most recent observation fell into (for tests and the
  /// Fig. 4 time-series bench).
  std::optional<LimdCase> last_case() const { return last_case_; }

  /// The detector's verdict on the most recent observation.
  const ViolationVerdict& last_verdict() const { return last_verdict_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  ViolationDetector detector_;
  Duration ttr_;
  // Most recent modification instant the proxy knows of; starts at the
  // object's (assumed) creation at time 0.
  TimePoint last_known_modification_ = 0.0;
  std::optional<LimdCase> last_case_;
  ViolationVerdict last_verdict_;

  Duration idle_threshold() const;
  /// Tighten ttr_ by the configured demand boost (no-op when read_boost
  /// is 0 or no client read was served this interval); returns ttr_.
  Duration apply_read_boost(std::size_t client_reads);
};

}  // namespace broadway

#include "consistency/rate_estimator.h"

namespace broadway {

UpdateRateEstimator::UpdateRateEstimator(double smoothing)
    : gap_ewma_(smoothing) {}

void UpdateRateEstimator::observe(const TemporalPollObservation& obs) {
  if (!obs.modified) return;
  // Prefer the full history (one gap per consecutive pair); fall back to
  // gaps between the Last-Modified values of consecutive polls.
  if (!obs.history.empty()) {
    for (TimePoint t : obs.history) {
      if (last_modification_ && t > *last_modification_) {
        gap_ewma_.observe(t - *last_modification_);
      }
      if (!last_modification_ || t > *last_modification_) {
        last_modification_ = t;
        ++observed_;
      }
    }
    return;
  }
  if (!obs.last_modified) return;
  if (last_modification_ && *obs.last_modified > *last_modification_) {
    gap_ewma_.observe(*obs.last_modified - *last_modification_);
  }
  if (!last_modification_ || *obs.last_modified > *last_modification_) {
    last_modification_ = *obs.last_modified;
    ++observed_;
  }
}

double UpdateRateEstimator::rate() const {
  if (gap_ewma_.empty() || gap_ewma_.value() <= 0.0) return 0.0;
  return 1.0 / gap_ewma_.value();
}

Duration UpdateRateEstimator::mean_gap() const {
  return gap_ewma_.empty() ? kTimeInfinity : gap_ewma_.value();
}

void UpdateRateEstimator::reset() {
  gap_ewma_.reset();
  last_modification_.reset();
  observed_ = 0;
}

}  // namespace broadway

// The paper's baseline: poll the server every Δ time units.
//
// "Δt-consistency, for instance, can be simply implemented by polling the
// server every Δ time units and refreshing the object if it has changed in
// the interim" (§2).  By construction this baseline provides perfect
// fidelity; the evaluation compares LIMD's poll count against it (Fig. 3).
#pragma once

#include "consistency/types.h"

namespace broadway {

/// Fixed-period refresh policy.
class FixedPollPolicy : public RefreshPolicy {
 public:
  explicit FixedPollPolicy(Duration period);

  Duration initial_ttr() const override { return period_; }
  Duration next_ttr(const TemporalPollObservation& obs) override;
  void reset() override {}
  Duration current_ttr() const override { return period_; }

  Duration period() const { return period_; }

 private:
  Duration period_;
};

}  // namespace broadway

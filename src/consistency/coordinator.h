// Mutual temporal-consistency coordination (paper §3.2).
//
// A coordinator watches the polls of a *group* of related objects and may
// force extra ("triggered") polls of other members to keep the group
// mutually consistent within the tolerance δ.  The polling engine supplies
// the hooks; the coordinator supplies the decision logic.  Three
// strategies are implemented, matching the paper's evaluation (Fig. 5):
//   NullCoordinator       — baseline LIMD, no mutual support;
//   TriggeredPollCoordinator — every observed update triggers polls of all
//                           related objects (fidelity 1.0 by construction);
//   RateHeuristicCoordinator — trigger only similar-or-faster objects.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "consistency/types.h"
#include "util/time.h"

namespace broadway {

/// Engine facilities a coordinator may use.  All keyed by object uri.
struct CoordinatorHooks {
  /// Absolute time of the object's next scheduled poll (kTimeInfinity if
  /// none pending).
  std::function<TimePoint(const std::string&)> next_poll_time;
  /// Absolute time of the object's most recent completed poll.
  std::function<TimePoint(const std::string&)> last_poll_time;
  /// Force an immediate poll of the object (recorded as PollCause::
  /// kTriggered; the object's schedule continues from the new poll).
  std::function<void(const std::string&)> trigger_poll;
};

/// Decision interface.  `on_poll` is invoked by the engine after every
/// completed poll of a group member — including polls the coordinator
/// itself triggered, so implementations must be self-stabilising (the δ
/// window test below provides that naturally).
class MutualCoordinator {
 public:
  virtual ~MutualCoordinator() = default;

  virtual void on_poll(const std::string& uri,
                       const TemporalPollObservation& obs) = 0;

  /// Forget learned state (crash recovery).
  virtual void reset() {}

  /// Attach engine hooks; called once by the engine when the group is
  /// registered.
  void bind(CoordinatorHooks hooks) { hooks_ = std::move(hooks); }

 protected:
  /// Paper §3.2: "an additional poll is triggered for an object only if
  /// its next/previous poll instant is more than δ time units away".
  /// Returns true when the object deserves a triggered poll at `now`.
  bool outside_delta_window(const std::string& uri, TimePoint now,
                            Duration delta_mutual) const;

  CoordinatorHooks hooks_;
};

/// Baseline: individual consistency only.
class NullCoordinator : public MutualCoordinator {
 public:
  void on_poll(const std::string&, const TemporalPollObservation&) override {}
};

}  // namespace broadway

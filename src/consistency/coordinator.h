// Mutual temporal-consistency coordination (paper §3.2).
//
// A coordinator watches the polls of a *group* of related objects and may
// force extra ("triggered") polls of other members to keep the group
// mutually consistent within the tolerance δ.  The polling engine supplies
// the hooks; the coordinator supplies the decision logic.  Three
// strategies are implemented, matching the paper's evaluation (Fig. 5):
//   NullCoordinator       — baseline LIMD, no mutual support;
//   TriggeredPollCoordinator — every observed update triggers polls of all
//                           related objects (fidelity 1.0 by construction);
//   RateHeuristicCoordinator — trigger only similar-or-faster objects.
//
// Hot-path representation: hooks and `on_poll` are keyed by interned
// ObjectId, so the per-poll notify path costs a vector index per call
// instead of a uri hash per call per coordinator.  Member lists arrive as
// uri strings (groups are configured by humans) and are interned once at
// bind() through the `resolve` hook; `subscriptions()` hands the interned
// ids back to the engine, which routes each poll only to the coordinators
// actually watching that object.  String-keyed `on_poll` remains as a
// translating wrapper for tests, examples and the legacy broadcast
// dispatch mode.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "consistency/types.h"
#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// Engine facilities a coordinator may use.  All keyed by interned
/// ObjectId; `resolve` translates a member uri once at bind time (and must
/// fail loudly for uris that are not registered temporal objects).
struct CoordinatorHooks {
  /// Interned id of a registered temporal object's uri.
  std::function<ObjectId(const std::string&)> resolve;
  /// Absolute time of the object's next scheduled poll (kTimeInfinity if
  /// none pending).
  std::function<TimePoint(ObjectId)> next_poll_time;
  /// Absolute time of the object's most recent completed poll.
  std::function<TimePoint(ObjectId)> last_poll_time;
  /// Force an immediate poll of the object (recorded as PollCause::
  /// kTriggered; the object's schedule continues from the new poll).
  std::function<void(ObjectId)> trigger_poll;
};

/// Decision interface.  `on_poll` is invoked by the engine after every
/// completed poll of a group member — including polls the coordinator
/// itself triggered, so implementations must be self-stabilising (the δ
/// window test below provides that naturally).  Polls of objects outside
/// the member list are ignored, so subscription-routed dispatch (only
/// watching coordinators are called) and broadcast dispatch (every
/// coordinator hears every poll) are observably identical.
class MutualCoordinator {
 public:
  virtual ~MutualCoordinator() = default;

  virtual void on_poll(ObjectId object,
                       const TemporalPollObservation& obs) = 0;

  /// Translating wrapper: resolves `uri` through the bound hooks and
  /// forwards to the id overload.  One hash per call — tests, examples
  /// and the legacy broadcast dispatch path only.
  void on_poll(const std::string& uri, const TemporalPollObservation& obs);

  /// Interned ids of the objects this coordinator wants to hear about.
  /// Valid after bind(); the engine builds its per-object subscriber
  /// index from this.  Pure virtual on purpose: under routed dispatch a
  /// coordinator that forgets to subscribe silently never hears a poll,
  /// so "watches nothing" (NullCoordinator) must be said explicitly.
  virtual std::vector<ObjectId> subscriptions() const = 0;

  /// Forget learned state (crash recovery).
  virtual void reset() {}

  /// Attach engine hooks; called once by the engine when the group is
  /// registered.  Member uris are interned here, so every member must
  /// already be a registered temporal object.
  void bind(CoordinatorHooks hooks) {
    hooks_ = std::move(hooks);
    on_bind();
  }

 protected:
  /// Intern member uris (and size any per-member state) once the hooks
  /// are attached.
  virtual void on_bind() {}

  /// Resolve one member uri through the bound hooks (checked).
  ObjectId resolve_member(const std::string& uri) const;

  /// Intern a whole member list (the shared on_bind step of the concrete
  /// coordinators).
  std::vector<ObjectId> resolve_members(
      const std::vector<std::string>& uris) const;

  /// Paper §3.2: "an additional poll is triggered for an object only if
  /// its next/previous poll instant is more than δ time units away".
  /// Returns true when the object deserves a triggered poll at `now`.
  bool outside_delta_window(ObjectId object, TimePoint now,
                            Duration delta_mutual) const;

  CoordinatorHooks hooks_;
};

/// Baseline: individual consistency only.
class NullCoordinator : public MutualCoordinator {
 public:
  using MutualCoordinator::on_poll;
  void on_poll(ObjectId, const TemporalPollObservation&) override {}
  /// Watches nothing: routed dispatch never calls it.
  std::vector<ObjectId> subscriptions() const override { return {}; }
};

}  // namespace broadway

// Experiment runners: one call = one simulated proxy run + ground-truth
// evaluation.  The bench binaries (one per paper table/figure), the
// integration tests and the examples all drive these, so every consumer
// measures the same way.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "client/client_metrics.h"
#include "client/client_traffic.h"
#include "client/read_transactions.h"
#include "consistency/types.h"
#include "fleet/sharded_fleet.h"
#include "metrics/accounting.h"
#include "metrics/fidelity.h"
#include "metrics/mutual_fidelity.h"
#include "metrics/value_fidelity.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {

// ---------- shared scenario knobs ----------

/// Knobs every run_* scenario shares.  The per-approach configs below
/// derive from this instead of each repeating the fields; configs that
/// embed a TemporalRunConfig (`base`) carry their scenario knobs there.
struct ScenarioBase {
  /// Simulated horizon; 0 = derive from the trace(s) — the per-runner
  /// default documented on each runner.
  Duration duration = 0.0;
  /// Experiment-level seed for stochastic layers above the engine (client
  /// traffic, transaction sampling).  The engine's loss-injection stream
  /// keeps its own EngineConfig::seed.
  std::uint64_t seed = 42;
  /// Event-queue backend override; unset = the Simulator default (the
  /// BROADWAY_SCHEDULER environment knob).
  std::optional<SchedulerBackend> scheduler;
  /// Per-object poll-log retention window (0 = unlimited).  Bounds
  /// memory on long horizons; counters stay exact, record series shorten.
  std::size_t poll_log_retention = 0;
  /// Engine failure/latency model.
  EngineConfig engine;
};

// ---------- individual temporal (paper §6.2.1, Fig. 3 / Fig. 4) ----------

/// Configuration of one Δt run.
struct TemporalRunConfig : ScenarioBase {
  /// Δt tolerance.
  Duration delta = 600.0;
  /// TTR upper bound (TTR_min is Δ, as in the paper).
  Duration ttr_max = 3600.0;
  /// LIMD parameters (§6.2.1 defaults).
  double linear_increase = 0.2;
  double epsilon = 0.02;
  bool adaptive_m = true;
  double multiplicative_decrease = 0.5;
  /// Violation inference strategy + whether the origin serves the
  /// modification-history extension (the A1 ablation toggles these).
  ViolationDetection detection = ViolationDetection::kExactHistory;
  bool origin_history = true;
  /// Closed-loop demand feedback (LimdPolicy::Config::read_boost): when
  /// > 0, each object's TTR is additionally shrunk by the client reads it
  /// served since its previous poll, so client-hot objects poll harder.
  /// 0 keeps the paper's open-loop LIMD bit-for-bit.
  double read_boost = 0.0;
};

/// Result of one Δt run.
struct TemporalRunResult {
  /// Refreshes performed (excluding the initial fetch) — the paper's
  /// "number of polls".
  std::size_t polls = 0;
  /// Ground-truth fidelity (both Eq. 13 and Eq. 14 views).
  TemporalFidelityReport fidelity;
  /// TTR after each poll (Fig. 4(b)).
  std::vector<std::pair<TimePoint, Duration>> ttr_series;
};

/// Run LIMD over the trace.
TemporalRunResult run_limd_individual(const UpdateTrace& trace,
                                      const TemporalRunConfig& config);

/// Run the baseline (poll every Δ) over the trace.
TemporalRunResult run_baseline_individual(const UpdateTrace& trace,
                                          Duration delta,
                                          EngineConfig engine = EngineConfig{});

// ---------- mutual temporal (paper §6.2.2, Fig. 5 / Fig. 6) ----------

/// The three §3.2 approaches compared in Fig. 5.
enum class MutualApproach {
  kBaseline,   ///< LIMD only, no mutual support
  kTriggered,  ///< update triggers polls of all related objects
  kHeuristic,  ///< update triggers polls of similar-or-faster objects only
};

struct MutualTemporalRunConfig {
  /// Individual Δ (the paper fixes Δ = 10 min for Fig. 5).
  TemporalRunConfig base;
  /// Mutual tolerance δ.
  Duration delta_mutual = 600.0;
  MutualApproach approach = MutualApproach::kBaseline;
  /// Heuristic similarity factor (rate(member) >= similarity·rate(updated)).
  double similarity = 0.8;
};

struct MutualTemporalRunResult {
  /// All refreshes across both objects (excl. initial fetches).
  std::size_t polls = 0;
  /// Of which coordinator-triggered.
  std::size_t triggered = 0;
  /// Pairwise Mt fidelity.
  MutualTemporalReport mutual;
  /// Per-object Δt fidelity (the mechanisms compose, §2).
  TemporalFidelityReport individual_a;
  TemporalFidelityReport individual_b;
  /// Full poll log (Fig. 6(b) buckets triggered polls over time).
  std::vector<PollRecord> poll_log;
};

MutualTemporalRunResult run_mutual_temporal(
    const UpdateTrace& trace_a, const UpdateTrace& trace_b,
    const MutualTemporalRunConfig& config);

// ---------- individual value (paper §4.1) ----------

struct ValueRunConfig : ScenarioBase {
  /// Δv tolerance (value units).
  double delta = 1.0;
  /// TTR bounds (seconds).  Stock traces tick every few seconds; TTR_min
  /// must sit *below* the tick interval or the floor masks the policies'
  /// behaviour (in particular the partitioned approach's tight-tolerance
  /// polling of the fast object, Fig. 7).
  TtrBounds bounds{1.0, 300.0};
  /// Eq. 10 parameters.
  double smoothing_w = 0.5;
  double alpha = 0.7;
};

struct ValueRunResult {
  std::size_t polls = 0;
  ValueFidelityReport fidelity;
};

ValueRunResult run_value_individual(const ValueTrace& trace,
                                    const ValueRunConfig& config);

// ---------- mutual value (paper §6.2.3, Fig. 7 / Fig. 8) ----------

/// The two §4.2 approaches compared in Fig. 7.
enum class MutualValueApproach {
  kAdaptive,     ///< f as a virtual object (Eqs. 11–12)
  kPartitioned,  ///< δ split across objects (linear f)
};

struct MutualValueRunConfig : ScenarioBase {
  /// Mv tolerance δ on f (the paper sweeps $0.25–$5 with f = difference).
  double delta = 1.0;
  TtrBounds bounds{1.0, 300.0};
  double smoothing_w = 0.5;
  double alpha = 0.7;
  MutualValueApproach approach = MutualValueApproach::kPartitioned;
  /// Collect the Fig. 8 (time, f_server, f_proxy) series.
  bool collect_series = false;
};

struct MutualValueRunResult {
  std::size_t polls = 0;
  MutualValueReport mutual;
  std::vector<MutualValueSample> series;
};

/// Runs with f = difference (the paper's Fig. 7/8 configuration).
MutualValueRunResult run_mutual_value(const ValueTrace& trace_a,
                                      const ValueTrace& trace_b,
                                      const MutualValueRunConfig& config);

// ---------- proxy fleet (multi-proxy, §5.1 outlook) ----------

/// One fleet run: N proxies on one origin, every proxy tracking every
/// trace's object with a LIMD policy built from `base`.
struct FleetRunConfig {
  /// Number of proxies sharing the origin.
  std::size_t proxies = 2;
  /// Relay successful polls to siblings (off = independent polling).
  bool cooperative_push = true;
  /// Proxy–proxy delivery latency.
  Duration relay_latency = 0.0;
  /// Fault injection (crash/recovery windows, relay loss, jitter, retry
  /// — fleet/faults.h).  Default-constructed = no faults.
  FaultSchedule faults;
  /// Per-object Δt policy parameters, shared by every proxy.
  TemporalRunConfig base;
};

struct FleetRunResult {
  /// Messages the origin served (initial fetches + polls, fleet-wide).
  std::size_t origin_requests = 0;
  /// Successful non-initial origin polls, fleet-wide.
  std::size_t origin_polls = 0;
  /// Mean origin polls per second over the longest trace horizon.
  double origin_polls_per_second = 0.0;
  /// Relay messages sent / accepted on the proxy–proxy channel.
  std::size_t relays_delivered = 0;
  std::size_t relays_applied = 0;
  /// Relay-channel fault ledger (fleet/faults.h).  The pinned invariant
  /// is relays_sent == relays_delivered + relays_in_flight + relays_lost
  /// at any instant; all but relays_sent/relays_in_flight are zero in a
  /// fault-free run.
  std::size_t relays_sent = 0;
  std::size_t relays_in_flight = 0;
  std::size_t relays_lost = 0;
  std::size_t relays_retried = 0;
  std::size_t relays_dropped_dark = 0;
  /// Scheduled outage time summed over the fleet, clamped to the run
  /// horizon (0 without crash windows).
  Duration dark_time = 0.0;
  /// Eq. 14 fidelity over every (proxy, object) pair.
  double mean_fidelity_time = 0.0;
  double min_fidelity_time = 1.0;
  /// Eq. 13 fidelity over every (proxy, object) pair.
  double mean_fidelity_violations = 0.0;
};

/// Run a fleet over the traces; each object is evaluated per proxy against
/// its own trace horizon.
FleetRunResult run_fleet_temporal(const std::vector<UpdateTrace>& traces,
                                  const FleetRunConfig& config);

// ---------- fleet + client traffic (§6.1.1 request streams) ----------

/// One fleet run with client request streams layered on top: every proxy
/// serves a Poisson stream of simulated-client reads (client/
/// client_traffic.h), and an offline pass samples k-object read
/// transactions against the δ-group bound (client/read_transactions.h).
struct ClientFleetRunConfig {
  /// The fleet under test.  Scenario knobs (duration, seed, scheduler,
  /// retention) live in fleet.base; the client and transaction seeds
  /// derive from fleet.base.seed so one seed pins the whole run.
  FleetRunConfig fleet;
  /// Client traffic shape (rate, Zipf exponent, diurnal profile,
  /// clients_per_proxy, record_requests).  `seed` is overridden with
  /// fleet.base.seed; `popularity` empty = Zipf over the hosted objects.
  ClientTrafficConfig client;
  /// Read-transaction sampling (rate 0 = skip the transaction pass).
  /// `seed` is overridden with fleet.base.seed + 1.  Requires
  /// fleet.base.poll_log_retention == 0 (full serve series).
  ReadTransactionConfig transactions;
  /// Worker threads: 1 = single-simulator ProxyFleet; > 1 = ShardedFleet
  /// with this many workers.  Results are byte-identical either way.
  std::size_t threads = 1;
  /// Sharded-driver shard count (ignored at threads <= 1): 0 = one shard
  /// per δ-closure of whole proxies; > 0 = an object-partitioned,
  /// LPT-balanced layout with exactly this many shards (may exceed the
  /// proxy count).  Never changes results.
  std::size_t shards = 0;
  /// Sharded-driver window-edge policy (ignored at threads <= 1).  Fixed
  /// and adaptive windows produce byte-identical results; adaptive just
  /// runs fewer barriers on sparse-relay topologies.
  WindowPolicy window_policy = WindowPolicy::kAdaptive;
};

struct ClientFleetRunResult {
  /// The usual fleet-side accounting and proxy fidelity.
  FleetRunResult fleet;
  /// Fleet-wide client-observed metrics (hits, age, staleness, demand
  /// fills), merged in ascending global proxy id order.
  ClientMetrics clients;
  /// Per-proxy client metrics, indexed by global proxy id.
  std::vector<ClientMetrics> per_proxy_clients;
  /// Aggregate origin load, including the demand-fill split.  The pinned
  /// accounting invariant is
  ///   origin_load.origin_polls ==
  ///       origin_load.policy_polls() + origin_load.demand_fills.
  FleetOriginLoad origin_load;
  /// Fleet-wide successful-poll counts by cause, summed over every
  /// proxy's full record stream — the cross-check against the O(1)
  /// counters behind origin_load (causes.client_miss must equal
  /// origin_load.demand_fills).
  PollCauseCounts causes;
  /// Mutual-consistency evaluation of sampled read transactions
  /// (zero-initialised when transactions.rate == 0).
  TransactionStats transactions;
};

/// Run a fleet with client traffic over the traces.  The horizon is
/// fleet.base.duration when set, else the longest trace horizon.
ClientFleetRunResult run_fleet_client_temporal(
    const std::vector<UpdateTrace>& traces, const ClientFleetRunConfig& config);

}  // namespace broadway

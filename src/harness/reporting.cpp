#include "harness/reporting.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "metrics/accounting.h"

namespace broadway {

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

void add_poll_breakdown_rows(TextTable& table, const PollLog& log) {
  const PollCauseCounts counts = count_by_cause(log);
  table.add_row({"polls (refreshes)",
                 std::to_string(counts.total_refreshes())});
  table.add_row({"  scheduled", std::to_string(counts.scheduled)});
  if (counts.triggered > 0) {
    table.add_row({"  triggered", std::to_string(counts.triggered)});
  }
  if (counts.retry > 0 || counts.failed > 0) {
    table.add_row({"  retries", std::to_string(counts.retry)});
    table.add_row({"lost polls", std::to_string(counts.failed)});
  }
}

void add_fault_rows(TextTable& table, const FaultSummary& summary) {
  if (summary.dark_time > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f s", summary.dark_time);
    table.add_row({"dark time", buf});
    table.add_row({"dark reads", std::to_string(summary.dark_reads)});
    table.add_row({"  stale hits", std::to_string(summary.dark_stale)});
    table.add_row({"  misses", std::to_string(summary.dark_misses)});
  }
  if (summary.relays_lost > 0 || summary.relays_retried > 0) {
    table.add_row({"relays lost", std::to_string(summary.relays_lost)});
    table.add_row({"relays retried",
                   std::to_string(summary.relays_retried)});
  }
  if (summary.relays_dropped_dark > 0) {
    table.add_row({"relays dropped dark",
                   std::to_string(summary.relays_dropped_dark)});
  }
}

namespace {

struct ChartFrame {
  double x_min, x_max, y_min, y_max;
  std::vector<std::string> rows;  // height rows of width chars

  ChartFrame(int width, int height) : rows(height, std::string(width, ' ')) {
    x_min = y_min = 0.0;
    x_max = y_max = 1.0;
  }

  void fit(const std::vector<std::pair<double, double>>& series, bool first) {
    for (const auto& [x, y] : series) {
      if (first) {
        x_min = x_max = x;
        y_min = y_max = y;
        first = false;
      } else {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
    if (x_max == x_min) x_max = x_min + 1.0;
    if (y_max == y_min) y_max = y_min + 1.0;
  }

  void plot(const std::vector<std::pair<double, double>>& series,
            char glyph) {
    const int width = static_cast<int>(rows.front().size());
    const int height = static_cast<int>(rows.size());
    for (const auto& [x, y] : series) {
      int cx = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) *
                                            (width - 1)));
      int cy = static_cast<int>(std::lround((y - y_min) / (y_max - y_min) *
                                            (height - 1)));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      char& cell = rows[static_cast<std::size_t>(height - 1 - cy)]
                       [static_cast<std::size_t>(cx)];
      cell = (cell == ' ' || cell == glyph) ? glyph : '#';
    }
  }

  std::string render(const AsciiChartOptions& options) const {
    std::ostringstream os;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%12.4g +", y_max);
    os << buf << rows.front() << "\n";
    for (std::size_t i = 1; i + 1 < rows.size(); ++i) {
      os << std::string(13, ' ') << '|' << rows[i] << "\n";
    }
    std::snprintf(buf, sizeof(buf), "%12.4g +", y_min);
    os << buf << rows.back() << "\n";
    std::snprintf(buf, sizeof(buf), "%-14s%-10.4g", "", x_min);
    os << buf;
    std::snprintf(buf, sizeof(buf), "%*.4g", options.width - 10, x_max);
    os << buf << "\n";
    if (!options.x_label.empty() || !options.y_label.empty()) {
      os << std::string(14, ' ') << options.x_label;
      if (!options.y_label.empty()) os << "   [y: " << options.y_label << "]";
      os << "\n";
    }
    return os.str();
  }
};

}  // namespace

std::string render_ascii_chart(
    const std::vector<std::pair<double, double>>& series,
    const AsciiChartOptions& options) {
  if (series.empty()) return "(empty series)\n";
  ChartFrame frame(options.width, options.height);
  frame.fit(series, true);
  frame.plot(series, '*');
  return frame.render(options);
}

std::string render_ascii_chart2(
    const std::vector<std::pair<double, double>>& series_a,
    const std::vector<std::pair<double, double>>& series_b,
    const AsciiChartOptions& options) {
  if (series_a.empty() && series_b.empty()) return "(empty series)\n";
  ChartFrame frame(options.width, options.height);
  frame.fit(series_a, true);
  frame.fit(series_b, false);
  frame.plot(series_a, '*');
  frame.plot(series_b, 'o');
  return frame.render(options);
}

}  // namespace broadway

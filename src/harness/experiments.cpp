#include "harness/experiments.h"

#include <algorithm>
#include <memory>

#include "consistency/fixed_poll.h"
#include "consistency/heuristic.h"
#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "fleet/proxy_fleet.h"
#include "fleet/sharded_fleet.h"
#include "origin/origin_server.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace broadway {

namespace {

LimdPolicy::Config make_limd_config(const TemporalRunConfig& config) {
  LimdPolicy::Config out = LimdPolicy::Config::paper_defaults(
      config.delta, config.ttr_max);
  out.linear_increase = config.linear_increase;
  out.epsilon = config.epsilon;
  out.adaptive_m = config.adaptive_m;
  out.multiplicative_decrease = config.multiplicative_decrease;
  out.detection = config.detection;
  out.read_boost = config.read_boost;
  return out;
}

OriginServer::Config make_origin_config(bool history_enabled) {
  OriginServer::Config config;
  config.history_enabled = history_enabled;
  // "A modification history of arbitrary length" (§5.1): unlimited —
  // the proxy polls often enough that entries stay small.
  config.history_limit = 0;
  return config;
}

// Simulator cannot be returned by value (it owns pending callbacks and is
// non-movable), so the scenario hands back a Config to construct in place.
Simulator::Config scenario_sim_config(const ScenarioBase& scenario) {
  Simulator::Config config;
  if (scenario.scheduler) config.scheduler = *scenario.scheduler;
  return config;
}

/// Horizon of a run: the explicit duration when set, else the longest
/// trace.  Fidelity over one trace is always evaluated up to
/// min(trace horizon, run horizon) — never past the ground truth.
Duration scenario_horizon(const ScenarioBase& scenario,
                          const std::vector<UpdateTrace>& traces) {
  if (scenario.duration > 0.0) return scenario.duration;
  Duration horizon = 0.0;
  for (const UpdateTrace& trace : traces) {
    horizon = std::max(horizon, trace.duration());
  }
  return horizon;
}

TemporalRunResult run_temporal(const UpdateTrace& trace,
                               std::unique_ptr<RefreshPolicy> policy,
                               Duration delta,
                               const ScenarioBase& scenario,
                               bool origin_history) {
  Simulator sim(scenario_sim_config(scenario));
  OriginServer origin(sim, make_origin_config(origin_history));
  PollingEngine engine(sim, origin, scenario.engine);
  engine.set_poll_log_retention(scenario.poll_log_retention);

  origin.attach_update_trace(trace.name(), trace);
  engine.add_temporal_object(trace.name(), std::move(policy));
  engine.start();
  const Duration horizon =
      scenario.duration > 0.0 ? scenario.duration : trace.duration();
  sim.run_until(horizon);

  TemporalRunResult result;
  result.polls = engine.polls_performed(trace.name());
  result.fidelity = evaluate_temporal_fidelity(
      trace, successful_polls(engine.poll_log(), trace.name()), delta,
      std::min(trace.duration(), horizon));
  result.ttr_series = engine.ttr_series(trace.name());
  return result;
}

}  // namespace

TemporalRunResult run_limd_individual(const UpdateTrace& trace,
                                      const TemporalRunConfig& config) {
  return run_temporal(trace,
                      std::make_unique<LimdPolicy>(make_limd_config(config)),
                      config.delta, config, config.origin_history);
}

TemporalRunResult run_baseline_individual(const UpdateTrace& trace,
                                          Duration delta,
                                          EngineConfig engine) {
  ScenarioBase scenario;
  scenario.engine = engine;
  return run_temporal(trace, std::make_unique<FixedPollPolicy>(delta), delta,
                      scenario, /*origin_history=*/true);
}

MutualTemporalRunResult run_mutual_temporal(
    const UpdateTrace& trace_a, const UpdateTrace& trace_b,
    const MutualTemporalRunConfig& config) {
  Simulator sim(scenario_sim_config(config.base));
  OriginServer origin(sim, make_origin_config(config.base.origin_history));
  PollingEngine engine(sim, origin, config.base.engine);
  engine.set_poll_log_retention(config.base.poll_log_retention);

  origin.attach_update_trace(trace_a.name(), trace_a);
  origin.attach_update_trace(trace_b.name(), trace_b);
  engine.add_temporal_object(
      trace_a.name(),
      std::make_unique<LimdPolicy>(make_limd_config(config.base)));
  engine.add_temporal_object(
      trace_b.name(),
      std::make_unique<LimdPolicy>(make_limd_config(config.base)));

  const std::vector<std::string> members = {trace_a.name(), trace_b.name()};
  switch (config.approach) {
    case MutualApproach::kBaseline:
      engine.add_coordinator(std::make_unique<NullCoordinator>());
      break;
    case MutualApproach::kTriggered:
      engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
          members, config.delta_mutual));
      break;
    case MutualApproach::kHeuristic: {
      RateHeuristicCoordinator::Config heuristic;
      heuristic.delta_mutual = config.delta_mutual;
      heuristic.similarity = config.similarity;
      engine.add_coordinator(std::make_unique<RateHeuristicCoordinator>(
          members, heuristic));
      break;
    }
  }

  // Evaluate the pair over the window both traces cover (or the explicit
  // scenario duration, capped at that window for ground-truth fidelity).
  const Duration covered = std::min(trace_a.duration(), trace_b.duration());
  const Duration run_horizon =
      config.base.duration > 0.0 ? config.base.duration : covered;
  const Duration horizon = std::min(covered, run_horizon);
  engine.start();
  sim.run_until(run_horizon);

  MutualTemporalRunResult result;
  result.polls = engine.polls_performed();
  result.triggered = engine.triggered_polls();
  const auto polls_a = successful_polls(engine.poll_log(), trace_a.name());
  const auto polls_b = successful_polls(engine.poll_log(), trace_b.name());
  result.mutual = evaluate_mutual_temporal(
      trace_a, polls_a, trace_b, polls_b, config.delta_mutual, horizon);
  result.individual_a = evaluate_temporal_fidelity(trace_a, polls_a,
                                                   config.base.delta, horizon);
  result.individual_b = evaluate_temporal_fidelity(trace_b, polls_b,
                                                   config.base.delta, horizon);
  result.poll_log = engine.poll_log().records();
  return result;
}

ValueRunResult run_value_individual(const ValueTrace& trace,
                                    const ValueRunConfig& config) {
  Simulator sim(scenario_sim_config(config));
  OriginServer origin(sim);
  PollingEngine engine(sim, origin, config.engine);
  engine.set_poll_log_retention(config.poll_log_retention);

  origin.attach_value_trace(trace.name(), trace);
  AdaptiveValueTtrPolicy::Config policy;
  policy.delta = config.delta;
  policy.bounds = config.bounds;
  policy.smoothing_w = config.smoothing_w;
  policy.alpha = config.alpha;
  engine.add_value_object(trace.name(), policy);
  engine.start();
  const Duration horizon =
      config.duration > 0.0 ? std::min(config.duration, trace.duration())
                            : trace.duration();
  sim.run_until(horizon);

  ValueRunResult result;
  result.polls = engine.polls_performed(trace.name());
  result.fidelity = evaluate_value_fidelity(
      trace, successful_polls(engine.poll_log(), trace.name()),
      config.delta, horizon);
  return result;
}

MutualValueRunResult run_mutual_value(const ValueTrace& trace_a,
                                      const ValueTrace& trace_b,
                                      const MutualValueRunConfig& config) {
  Simulator sim(scenario_sim_config(config));
  OriginServer origin(sim);
  PollingEngine engine(sim, origin, config.engine);
  engine.set_poll_log_retention(config.poll_log_retention);

  origin.attach_value_trace(trace_a.name(), trace_a);
  origin.attach_value_trace(trace_b.name(), trace_b);
  const std::vector<std::string> members = {trace_a.name(), trace_b.name()};

  switch (config.approach) {
    case MutualValueApproach::kAdaptive: {
      VirtualObjectPolicy::Config policy =
          VirtualObjectPolicy::Config::paper_defaults(config.delta,
                                                      config.bounds);
      policy.smoothing_w = config.smoothing_w;
      policy.alpha = config.alpha;
      engine.add_virtual_group(
          members, std::make_unique<VirtualObjectPolicy>(
                       std::make_unique<DifferenceFunction>(), policy));
      break;
    }
    case MutualValueApproach::kPartitioned: {
      PartitionedTolerancePolicy::Config policy =
          PartitionedTolerancePolicy::Config::paper_defaults(config.delta,
                                                             config.bounds);
      policy.smoothing_w = config.smoothing_w;
      policy.alpha = config.alpha;
      engine.add_partitioned_group(
          members, std::make_unique<PartitionedTolerancePolicy>(
                       std::make_unique<DifferenceFunction>(), policy));
      break;
    }
  }

  const Duration covered = std::min(trace_a.duration(), trace_b.duration());
  const Duration horizon =
      config.duration > 0.0 ? std::min(config.duration, covered) : covered;
  engine.start();
  sim.run_until(horizon);

  MutualValueRunResult result;
  result.polls = engine.polls_performed();
  const auto polls_a = successful_polls(engine.poll_log(), trace_a.name());
  const auto polls_b = successful_polls(engine.poll_log(), trace_b.name());
  const DifferenceFunction difference;
  result.mutual = evaluate_mutual_value(trace_a, polls_a, trace_b, polls_b,
                                        difference, config.delta, horizon);
  if (config.collect_series) {
    result.series = mutual_value_series(trace_a, polls_a, trace_b, polls_b,
                                        difference, horizon);
  }
  return result;
}

namespace {

FleetConfig make_fleet_config(const FleetRunConfig& config) {
  FleetConfig fleet_config;
  fleet_config.proxies = config.proxies;
  fleet_config.cooperative_push = config.cooperative_push;
  fleet_config.relay_latency = config.relay_latency;
  fleet_config.engine = config.base.engine;
  fleet_config.poll_log_retention = config.base.poll_log_retention;
  fleet_config.faults = config.faults;
  return fleet_config;
}

/// Shared fleet-side accounting + fidelity evaluation; works on both
/// ProxyFleet and ShardedFleet (identical accessor surface).
template <typename Fleet>
FleetRunResult summarize_fleet(Fleet& fleet, std::size_t origin_requests,
                               const std::vector<UpdateTrace>& traces,
                               const FleetRunConfig& config,
                               Duration horizon) {
  FleetRunResult result;
  result.origin_requests = origin_requests;
  result.origin_polls = fleet.origin_polls();
  result.origin_polls_per_second =
      fleet.origin_load().polls_per_second(horizon);
  result.relays_delivered = fleet.relays_delivered();
  result.relays_applied = fleet.relays_applied();
  result.relays_sent = fleet.relays_sent();
  result.relays_in_flight = fleet.relays_in_flight();
  result.relays_lost = fleet.relays_lost();
  result.relays_retried = fleet.relays_retried();
  result.relays_dropped_dark = fleet.relays_dropped_dark();
  result.dark_time = config.faults.total_dark_time(horizon);

  double sum_time = 0.0, sum_violations = 0.0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    for (const UpdateTrace& trace : traces) {
      const auto polls =
          successful_polls(fleet.proxy(p).poll_log(), trace.name());
      const TemporalFidelityReport report = evaluate_temporal_fidelity(
          trace, polls, config.base.delta,
          std::min(trace.duration(), horizon));
      sum_time += report.fidelity_time();
      sum_violations += report.fidelity_violations();
      result.min_fidelity_time =
          std::min(result.min_fidelity_time, report.fidelity_time());
    }
  }
  const double pairs =
      static_cast<double>(fleet.size()) * static_cast<double>(traces.size());
  result.mean_fidelity_time = sum_time / pairs;
  result.mean_fidelity_violations = sum_violations / pairs;
  return result;
}

}  // namespace

FleetRunResult run_fleet_temporal(const std::vector<UpdateTrace>& traces,
                                  const FleetRunConfig& config) {
  BROADWAY_CHECK_MSG(!traces.empty(), "fleet run needs >= 1 trace");
  Simulator sim(scenario_sim_config(config.base));
  OriginServer origin(sim, make_origin_config(config.base.origin_history));
  ProxyFleet fleet(sim, origin, make_fleet_config(config));

  for (const UpdateTrace& trace : traces) {
    origin.attach_update_trace(trace.name(), trace);
    fleet.add_temporal_object_everywhere(trace.name(), [&config] {
      return std::make_unique<LimdPolicy>(make_limd_config(config.base));
    });
  }
  const Duration horizon = scenario_horizon(config.base, traces);
  fleet.start();
  sim.run_until(horizon);

  return summarize_fleet(fleet, origin.requests_served(), traces, config,
                         horizon);
}

ClientFleetRunResult run_fleet_client_temporal(
    const std::vector<UpdateTrace>& traces,
    const ClientFleetRunConfig& config) {
  BROADWAY_CHECK_MSG(!traces.empty(), "fleet run needs >= 1 trace");
  const Duration horizon = scenario_horizon(config.fleet.base, traces);

  // One seed pins the run: the engine keeps EngineConfig::seed, while the
  // stochastic layers above it derive from the scenario seed.
  FleetConfig fleet_config = make_fleet_config(config.fleet);
  ClientTrafficConfig client = config.client;
  client.seed = config.fleet.base.seed;
  fleet_config.client_traffic = client;
  ReadTransactionConfig transactions = config.transactions;
  transactions.seed = config.fleet.base.seed + 1;
  if (transactions.rate > 0.0) {
    BROADWAY_CHECK_MSG(config.fleet.base.poll_log_retention == 0,
                       "read transactions need full poll logs");
  }

  const auto add_objects = [&traces, &config](auto& fleet) {
    for (const UpdateTrace& trace : traces) {
      fleet.add_temporal_object_everywhere(trace.name(), [&config] {
        return std::make_unique<LimdPolicy>(
            make_limd_config(config.fleet.base));
      });
    }
  };
  const auto evaluate_transactions = [&](auto& fleet) {
    TransactionStats stats;
    if (transactions.rate <= 0.0) return stats;
    std::vector<const PollLog*> logs;
    logs.reserve(fleet.size());
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      logs.push_back(&fleet.proxy(p).poll_log());
    }
    return evaluate_read_transactions(logs, transactions, horizon);
  };

  ClientFleetRunResult result;
  // Origin load (O(1) counters) plus the per-record cause breakdown; the
  // two must agree on the demand-fill split — callers pin
  //   origin_load.origin_polls == policy_polls() + demand_fills
  // against causes computed from the full record streams.  Client traffic
  // pins every proxy to a single slice, so per-proxy log access is safe
  // in the sharded branch too.
  const auto summarize_load = [&result](auto& fleet) {
    result.origin_load = fleet.origin_load();
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      result.causes.merge(count_by_cause(fleet.proxy(p).poll_log()));
    }
  };
  if (config.threads <= 1) {
    Simulator sim(scenario_sim_config(config.fleet.base));
    OriginServer origin(sim,
                        make_origin_config(config.fleet.base.origin_history));
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
    }
    ProxyFleet fleet(sim, origin, fleet_config);
    add_objects(fleet);
    fleet.start();
    sim.run_until(horizon);

    result.fleet = summarize_fleet(fleet, origin.requests_served(), traces,
                                   config.fleet, horizon);
    result.clients = fleet.merged_client_metrics();
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      result.per_proxy_clients.push_back(fleet.client_traffic().metrics(p));
    }
    summarize_load(fleet);
    result.transactions = evaluate_transactions(fleet);
  } else {
    ShardedFleetConfig sharded;
    sharded.fleet = fleet_config;
    sharded.threads = config.threads;
    sharded.shards = config.shards;
    sharded.window_policy = config.window_policy;
    sharded.scheduler = config.fleet.base.scheduler;
    sharded.origin = make_origin_config(config.fleet.base.origin_history);
    sharded.origin_setup = [&traces](OriginServer& origin) {
      for (const UpdateTrace& trace : traces) {
        origin.attach_update_trace(trace.name(), trace);
      }
    };
    ShardedFleet fleet(std::move(sharded));
    add_objects(fleet);
    fleet.start();
    fleet.run_until(horizon);

    result.fleet = summarize_fleet(fleet, fleet.origin_requests(), traces,
                                   config.fleet, horizon);
    result.clients = fleet.merged_client_metrics();
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      result.per_proxy_clients.push_back(fleet.client_metrics(p));
    }
    summarize_load(fleet);
    result.transactions = evaluate_transactions(fleet);
  }
  return result;
}

}  // namespace broadway

// Report rendering for the bench binaries: paper-style table helpers and a
// small ASCII chart for the time-series figures (Figs. 4, 6, 8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "proxy/poll_log.h"
#include "util/table.h"
#include "util/time.h"

namespace broadway {

/// Print a figure/table banner:
///   == Figure 3(a): Number of polls, CNN/FN trace ==
void print_banner(std::ostream& out, const std::string& title);

/// Append a run's poll accounting to a two-column summary table: total
/// refreshes plus the per-cause breakdown (scheduled / triggered / retry)
/// and failures, read from the log's counters.  Rows with a zero count
/// for a cause the run cannot produce (no coordinator, no loss) are
/// omitted.
void add_poll_breakdown_rows(TextTable& table, const PollLog& log);

/// Outage/degradation accounting for one fault-injected fleet run
/// (fleet/faults.h), in reporting-friendly form.  Callers fill it from a
/// FleetRunResult's ledger fields and the merged ClientMetrics.
struct FaultSummary {
  Duration dark_time = 0.0;           ///< scheduled outage seconds, fleet-wide
  std::uint64_t dark_reads = 0;       ///< client reads served while dark
  std::uint64_t dark_stale = 0;       ///< of which stale cache hits
  std::uint64_t dark_misses = 0;      ///< of which unfillable misses
  std::size_t relays_lost = 0;        ///< attempts dropped by injected loss
  std::size_t relays_retried = 0;     ///< retransmission attempts
  std::size_t relays_dropped_dark = 0;  ///< delivered to a crashed proxy
};

/// Append outage/degradation rows to a summary table, following the
/// add_poll_breakdown_rows convention: rows a fault-free run cannot
/// produce are suppressed when zero, and an all-zero summary adds
/// nothing at all.
void add_fault_rows(TextTable& table, const FaultSummary& summary);

/// Render an (x, y) series as a crude ASCII line chart.  Intended as a
/// quick visual check of the shape a figure reproduces; the exact numbers
/// accompany it in a table.
struct AsciiChartOptions {
  int width = 72;
  int height = 16;
  std::string x_label;
  std::string y_label;
};

std::string render_ascii_chart(
    const std::vector<std::pair<double, double>>& series,
    const AsciiChartOptions& options);

/// Overlay two series in one chart ('*' = first, 'o' = second, '#' where
/// they coincide).
std::string render_ascii_chart2(
    const std::vector<std::pair<double, double>>& series_a,
    const std::vector<std::pair<double, double>>& series_b,
    const AsciiChartOptions& options);

}  // namespace broadway

// Ground-truth Mt-consistency evaluation (paper Eq. 4).
//
// The copy of `a` held at time t was current at the server over a validity
// interval; likewise `b`.  The pair is mutually consistent at t iff those
// validity intervals come within δ of each other (they overlap when δ = 0
// suffices: "the objects should have simultaneously existed on the
// server").  Held versions change only at poll completions, so the pair
// state is piecewise constant and evaluated by an event sweep over both
// poll schedules.
#pragma once

#include <vector>

#include "metrics/fidelity.h"
#include "trace/update_trace.h"
#include "util/time.h"

namespace broadway {

/// Result of evaluating a pair of poll schedules against a pair of traces.
struct MutualTemporalReport {
  /// Total successful polls across both objects (Eq. 13 denominator).
  std::size_t polls = 0;
  /// Entries into a mutually-inconsistent state.
  std::size_t violations = 0;
  /// Total time the pair spent outside δ.
  Duration out_sync_time = 0.0;
  Duration horizon = 0.0;

  double fidelity_violations() const;
  double fidelity_time() const;
};

/// Evaluate Mt fidelity of two objects.  Both poll vectors must be
/// non-empty and sorted.  Evaluation starts once both objects are cached
/// (max of the first completions) and runs to `horizon`.
MutualTemporalReport evaluate_mutual_temporal(
    const UpdateTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const UpdateTrace& trace_b, const std::vector<PollInstant>& polls_b,
    Duration delta_mutual, Duration horizon);

}  // namespace broadway

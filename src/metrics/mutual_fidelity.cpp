#include "metrics/mutual_fidelity.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

double MutualTemporalReport::fidelity_violations() const {
  if (polls == 0) return 1.0;
  return 1.0 -
         static_cast<double>(violations) / static_cast<double>(polls);
}

double MutualTemporalReport::fidelity_time() const {
  if (horizon <= 0.0) return 1.0;
  return 1.0 - out_sync_time / horizon;
}

namespace {

// Validity interval of the version captured by the latest poll whose copy
// is visible at time t (polls sorted by completion).
ValidityInterval held_validity(const UpdateTrace& trace,
                               const std::vector<PollInstant>& polls,
                               TimePoint t) {
  // Last poll with complete <= t.
  auto it = std::upper_bound(
      polls.begin(), polls.end(), t,
      [](TimePoint lhs, const PollInstant& rhs) { return lhs < rhs.complete; });
  BROADWAY_CHECK_MSG(it != polls.begin(), "queried before the first fetch");
  const PollInstant& poll = *(it - 1);
  return trace.validity_at(poll.snapshot);
}

}  // namespace

MutualTemporalReport evaluate_mutual_temporal(
    const UpdateTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const UpdateTrace& trace_b, const std::vector<PollInstant>& polls_b,
    Duration delta_mutual, Duration horizon) {
  BROADWAY_CHECK_MSG(!polls_a.empty() && !polls_b.empty(),
                     "both objects need at least the initial fetch");
  BROADWAY_CHECK_MSG(delta_mutual >= 0.0, "delta " << delta_mutual);
  BROADWAY_CHECK_MSG(horizon > 0.0, "horizon " << horizon);

  MutualTemporalReport report;
  report.horizon = horizon;
  report.polls = polls_a.size() + polls_b.size();

  // Segment boundaries: all completion instants of both schedules within
  // (start, horizon).  The pair state is constant between boundaries.
  const TimePoint start =
      std::max(polls_a.front().complete, polls_b.front().complete);
  std::vector<TimePoint> boundaries;
  boundaries.push_back(start);
  for (const auto& poll : polls_a) {
    if (poll.complete > start && poll.complete < horizon) {
      boundaries.push_back(poll.complete);
    }
  }
  for (const auto& poll : polls_b) {
    if (poll.complete > start && poll.complete < horizon) {
      boundaries.push_back(poll.complete);
    }
  }
  boundaries.push_back(horizon);
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  bool previously_violated = false;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const TimePoint t0 = boundaries[i];
    const TimePoint t1 = boundaries[i + 1];
    if (t1 <= t0) continue;
    const ValidityInterval va = held_validity(trace_a, polls_a, t0);
    const ValidityInterval vb = held_validity(trace_b, polls_b, t0);
    const bool violated = interval_gap(va, vb) > delta_mutual;
    if (violated) {
      report.out_sync_time += t1 - t0;
      if (!previously_violated) ++report.violations;
    }
    previously_violated = violated;
  }
  return report;
}

}  // namespace broadway

#include "metrics/fidelity.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

std::vector<PollInstant> successful_polls(const std::vector<PollRecord>& log,
                                          const std::string& uri) {
  std::vector<PollInstant> out;
  for (const PollRecord& record : log) {
    if (record.failed || record.uri != uri) continue;
    out.push_back(PollInstant{record.snapshot_time, record.complete_time});
  }
  return out;
}

std::vector<PollInstant> successful_polls(const PollLog& log,
                                          const std::string& uri) {
  const std::vector<std::size_t>& indices = log.successful_records(uri);
  std::vector<PollInstant> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    const PollRecord& record = log.records()[i];
    out.push_back(PollInstant{record.snapshot_time, record.complete_time});
  }
  return out;
}

double TemporalFidelityReport::fidelity_violations() const {
  if (windows == 0) return 1.0;
  return 1.0 - static_cast<double>(violations) /
                   static_cast<double>(windows);
}

double TemporalFidelityReport::fidelity_time() const {
  if (horizon <= 0.0) return 1.0;
  return 1.0 - out_sync_time / horizon;
}

TemporalFidelityReport evaluate_temporal_fidelity(
    const UpdateTrace& trace, const std::vector<PollInstant>& polls,
    Duration delta, Duration horizon) {
  BROADWAY_CHECK_MSG(!polls.empty(), "no polls to evaluate");
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  BROADWAY_CHECK_MSG(horizon > 0.0, "horizon " << horizon);

  TemporalFidelityReport report;
  report.horizon = horizon;

  for (std::size_t k = 0; k < polls.size(); ++k) {
    BROADWAY_CHECK_MSG(
        k == 0 || polls[k].complete >= polls[k - 1].complete,
        "polls out of order");
    const TimePoint window_begin = polls[k].complete;
    const TimePoint window_end =
        k + 1 < polls.size() ? polls[k + 1].complete : horizon;
    if (window_begin >= window_end) {
      // Triggered polls can coincide with scheduled ones; an empty window
      // still counts as a poll that could not violate.
      ++report.windows;
      continue;
    }
    ++report.windows;

    // First update the fetched copy does not reflect.
    const auto first_unseen = trace.first_update_after(polls[k].snapshot);
    if (!first_unseen) continue;  // copy is the newest version forever

    // The copy becomes out of sync (beyond tolerance) at u* + delta.
    const TimePoint stale_from = *first_unseen + delta;
    const Duration span =
        std::max(0.0, window_end - std::max(stale_from, window_begin));
    if (span > 0.0) {
      ++report.violations;
      report.out_sync_time += span;
    }
  }
  return report;
}

}  // namespace broadway

// Poll-log accounting: counts by cause and per-bucket time series.
//
// Figures 5–6 of the paper separate the polls a mutual-consistency
// mechanism adds from the baseline's, and Fig. 6(b) plots the *extra*
// (triggered) polls over time; these helpers compute both from the
// engine's poll log.
#pragma once

#include <optional>
#include <vector>

#include "consistency/types.h"
#include "proxy/poll_log.h"
#include "util/time.h"

namespace broadway {

/// Successful-poll counts broken down by cause, plus failures.
struct PollCauseCounts {
  std::size_t initial = 0;
  std::size_t scheduled = 0;
  std::size_t triggered = 0;
  std::size_t retry = 0;
  std::size_t relay = 0;
  std::size_t client_miss = 0;
  std::size_t failed = 0;

  /// The paper's "number of polls": everything except the initial fetches
  /// and failures.  Relay refreshes are excluded too — they refresh the
  /// cached copy over the proxy–proxy channel, not via an origin message.
  /// Demand fills (kClientMiss) *are* origin polls, so they count here;
  /// policy_polls() splits them back out.
  std::size_t total_refreshes() const {
    return scheduled + triggered + retry + client_miss;
  }

  /// Origin polls the refresh policies initiated (TTR expiry, coordinator
  /// triggers, loss retries) — total_refreshes() without the
  /// demand-driven fills.  The fleet invariant is
  ///   origin_polls == policy_polls + demand fills.
  std::size_t policy_polls() const { return scheduled + triggered + retry; }

  /// Fold another log's counts into this one (plain sums).
  PollCauseCounts& merge(const PollCauseCounts& other) {
    initial += other.initial;
    scheduled += other.scheduled;
    triggered += other.triggered;
    retry += other.retry;
    relay += other.relay;
    client_miss += other.client_miss;
    failed += other.failed;
    return *this;
  }
};

PollCauseCounts count_by_cause(const std::vector<PollRecord>& log);
PollCauseCounts count_by_cause(const PollLog& log);

/// Origin load seen across a fleet of proxies sharing one origin: every
/// message the origin answered (initial fetches, scheduled/triggered/retry
/// polls) aggregated over all proxies' logs, plus the relay traffic that
/// replaced origin polls on the proxy–proxy channel.
struct FleetOriginLoad {
  /// Origin messages: successful polls including initial fetches.
  std::size_t origin_messages = 0;
  /// Origin messages excluding the initial fetches (the paper's "number
  /// of polls" summed over the fleet).
  std::size_t origin_polls = 0;
  /// Refreshes served by sibling relays instead of origin polls.
  std::size_t relay_refreshes = 0;
  /// Demand fills: origin polls triggered by client cache misses
  /// (PollCause::kClientMiss).  A subset of origin_polls; the pinned
  /// invariant is origin_polls == policy polls + demand_fills.
  std::size_t demand_fills = 0;
  /// Failed (lost) poll attempts across the fleet.
  std::size_t failed = 0;

  /// Origin polls the refresh policies initiated (everything but the
  /// demand fills).
  std::size_t policy_polls() const { return origin_polls - demand_fills; }

  /// Mean origin polls per second over the horizon (0 for horizon <= 0).
  double polls_per_second(Duration horizon) const;

  /// Fold another fleet's load into this one (shard-local accounting is
  /// merged at sweep end; all counters are plain sums).
  FleetOriginLoad& merge(const FleetOriginLoad& other) {
    origin_messages += other.origin_messages;
    origin_polls += other.origin_polls;
    relay_refreshes += other.relay_refreshes;
    demand_fills += other.demand_fills;
    failed += other.failed;
    return *this;
  }
};

/// Aggregate the origin load over any number of proxy poll logs.
FleetOriginLoad fleet_origin_load(const std::vector<const PollLog*>& logs);

/// One proxy's poll records tagged with its (global) proxy id, as input
/// to merge_poll_records.  `records` must outlive the call.
struct ProxyPollRecords {
  std::size_t proxy = 0;
  const std::vector<PollRecord>* records = nullptr;
};

/// Deterministic fleet-wide record stream: the concatenation of every
/// proxy's records ordered by (snapshot_time, proxy, in-log position).
/// In-log order is *not* snapshot-sorted (a relay record carries the
/// sender's earlier poll snapshot but is logged at delivery), so a
/// stable sort over the proxy-ordered concatenation is the defined
/// semantics — the same bytes whether the logs came from one simulator
/// or from per-shard replicas, at any thread count.
std::vector<PollRecord> merge_poll_records(
    std::vector<ProxyPollRecords> logs);

/// Successful polls per time bucket over [0, horizon), optionally filtered
/// by cause and/or uri (empty = all).  The Fig. 6(b) series is
/// polls_per_bucket(log, 2h, horizon, PollCause::kTriggered).
std::vector<std::size_t> polls_per_bucket(
    const std::vector<PollRecord>& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");
std::vector<std::size_t> polls_per_bucket(
    const PollLog& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");

}  // namespace broadway

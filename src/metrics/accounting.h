// Poll-log accounting: counts by cause and per-bucket time series.
//
// Figures 5–6 of the paper separate the polls a mutual-consistency
// mechanism adds from the baseline's, and Fig. 6(b) plots the *extra*
// (triggered) polls over time; these helpers compute both from the
// engine's poll log.
#pragma once

#include <optional>
#include <vector>

#include "consistency/types.h"
#include "proxy/poll_log.h"
#include "util/time.h"

namespace broadway {

/// Successful-poll counts broken down by cause, plus failures.
struct PollCauseCounts {
  std::size_t initial = 0;
  std::size_t scheduled = 0;
  std::size_t triggered = 0;
  std::size_t retry = 0;
  std::size_t failed = 0;

  /// The paper's "number of polls": everything except the initial fetches
  /// and failures.
  std::size_t total_refreshes() const {
    return scheduled + triggered + retry;
  }
};

PollCauseCounts count_by_cause(const std::vector<PollRecord>& log);
PollCauseCounts count_by_cause(const PollLog& log);

/// Successful polls per time bucket over [0, horizon), optionally filtered
/// by cause and/or uri (empty = all).  The Fig. 6(b) series is
/// polls_per_bucket(log, 2h, horizon, PollCause::kTriggered).
std::vector<std::size_t> polls_per_bucket(
    const std::vector<PollRecord>& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");
std::vector<std::size_t> polls_per_bucket(
    const PollLog& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");

}  // namespace broadway

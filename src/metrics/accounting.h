// Poll-log accounting: counts by cause and per-bucket time series.
//
// Figures 5–6 of the paper separate the polls a mutual-consistency
// mechanism adds from the baseline's, and Fig. 6(b) plots the *extra*
// (triggered) polls over time; these helpers compute both from the
// engine's poll log.
#pragma once

#include <optional>
#include <vector>

#include "consistency/types.h"
#include "proxy/poll_log.h"
#include "util/time.h"

namespace broadway {

/// Successful-poll counts broken down by cause, plus failures.
struct PollCauseCounts {
  std::size_t initial = 0;
  std::size_t scheduled = 0;
  std::size_t triggered = 0;
  std::size_t retry = 0;
  std::size_t relay = 0;
  std::size_t failed = 0;

  /// The paper's "number of polls": everything except the initial fetches
  /// and failures.  Relay refreshes are excluded too — they refresh the
  /// cached copy over the proxy–proxy channel, not via an origin message.
  std::size_t total_refreshes() const {
    return scheduled + triggered + retry;
  }
};

PollCauseCounts count_by_cause(const std::vector<PollRecord>& log);
PollCauseCounts count_by_cause(const PollLog& log);

/// Origin load seen across a fleet of proxies sharing one origin: every
/// message the origin answered (initial fetches, scheduled/triggered/retry
/// polls) aggregated over all proxies' logs, plus the relay traffic that
/// replaced origin polls on the proxy–proxy channel.
struct FleetOriginLoad {
  /// Origin messages: successful polls including initial fetches.
  std::size_t origin_messages = 0;
  /// Origin messages excluding the initial fetches (the paper's "number
  /// of polls" summed over the fleet).
  std::size_t origin_polls = 0;
  /// Refreshes served by sibling relays instead of origin polls.
  std::size_t relay_refreshes = 0;
  /// Failed (lost) poll attempts across the fleet.
  std::size_t failed = 0;

  /// Mean origin polls per second over the horizon (0 for horizon <= 0).
  double polls_per_second(Duration horizon) const;
};

/// Aggregate the origin load over any number of proxy poll logs.
FleetOriginLoad fleet_origin_load(const std::vector<const PollLog*>& logs);

/// Successful polls per time bucket over [0, horizon), optionally filtered
/// by cause and/or uri (empty = all).  The Fig. 6(b) series is
/// polls_per_bucket(log, 2h, horizon, PollCause::kTriggered).
std::vector<std::size_t> polls_per_bucket(
    const std::vector<PollRecord>& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");
std::vector<std::size_t> polls_per_bucket(
    const PollLog& log, Duration bucket, Duration horizon,
    std::optional<PollCause> cause = std::nullopt,
    const std::string& uri = "");

}  // namespace broadway

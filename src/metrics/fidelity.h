// Ground-truth Δt-consistency evaluation (paper §6.1.3).
//
// The trace-driven simulation knows the exact update stream, so fidelity is
// computed from what *actually* happened, independent of what the proxy
// could observe.  Both of the paper's fidelity metrics are produced:
//
//   Eq. 13:  f = 1 − violations / polls
//   Eq. 14:  f = 1 − out-of-sync time / trace duration
//
// Semantics (DESIGN.md §5): the copy fetched at snapshot instant s_k is
// visible from completion c_k until the next completion.  With u* the first
// update after s_k, the copy violates Δt-consistency at any instant
// t ≥ u* + Δ within its visibility window.
#pragma once

#include <string>
#include <vector>

#include "proxy/poll_log.h"
#include "trace/update_trace.h"
#include "util/time.h"

namespace broadway {

/// One successful poll: the server state it captured and when the copy
/// became visible at the proxy.  With zero RTT the two coincide.
struct PollInstant {
  TimePoint snapshot = 0.0;
  TimePoint complete = 0.0;
};

/// Extract the successful polls of `uri` from a record vector, ascending.
/// O(total records); prefer the PollLog overload for engine logs.
std::vector<PollInstant> successful_polls(const std::vector<PollRecord>& log,
                                          const std::string& uri);

/// Extract the successful polls of `uri` through the log's per-uri index —
/// O(records-for-uri) instead of a scan of every object's records.
std::vector<PollInstant> successful_polls(const PollLog& log,
                                          const std::string& uri);

/// Result of evaluating one object's poll schedule against its trace.
struct TemporalFidelityReport {
  /// Number of visibility windows examined (= number of successful polls;
  /// the final window extends to the horizon).
  std::size_t windows = 0;
  /// Windows in which the Δ bound was exceeded.
  std::size_t violations = 0;
  /// Total time the bound was exceeded.
  Duration out_sync_time = 0.0;
  /// Evaluation horizon (trace duration).
  Duration horizon = 0.0;

  /// Eq. 13 fidelity.  1.0 when no windows were evaluated.
  double fidelity_violations() const;
  /// Eq. 14 fidelity.
  double fidelity_time() const;
};

/// Evaluate Δt fidelity.  `polls` must be non-empty (the initial fetch) and
/// sorted; the object is assumed unwatched after `horizon`.
TemporalFidelityReport evaluate_temporal_fidelity(
    const UpdateTrace& trace, const std::vector<PollInstant>& polls,
    Duration delta, Duration horizon);

}  // namespace broadway

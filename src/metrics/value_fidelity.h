// Ground-truth Δv and Mv evaluation (paper Eqs. 3 and 5).
//
// Δv: the cached value of an object must stay within Δ of the server value
// at all times.  Mv: |f(server values) − f(cached values)| must stay within
// δ.  Both are computed exactly from the value traces by sweeping the step
// and poll events; no sampling error.
#pragma once

#include <span>
#include <vector>

#include "consistency/function.h"
#include "metrics/fidelity.h"
#include "trace/value_trace.h"
#include "util/time.h"

namespace broadway {

/// Result of evaluating one value object's schedule against its trace.
struct ValueFidelityReport {
  std::size_t windows = 0;
  std::size_t violations = 0;
  Duration out_sync_time = 0.0;
  Duration horizon = 0.0;

  double fidelity_violations() const;
  double fidelity_time() const;
};

/// Evaluate Δv fidelity.  `polls` non-empty and sorted.
ValueFidelityReport evaluate_value_fidelity(
    const ValueTrace& trace, const std::vector<PollInstant>& polls,
    double delta, Duration horizon);

/// Result of evaluating a group schedule against Eq. 5.
struct MutualValueReport {
  /// Total successful polls across the group (Eq. 13 denominator).
  std::size_t polls = 0;
  /// Entries into |f(S) − f(P)| >= δ.
  std::size_t violations = 0;
  Duration out_sync_time = 0.0;
  Duration horizon = 0.0;

  double fidelity_violations() const;
  double fidelity_time() const;
};

/// Evaluate Mv fidelity of a group of value objects under `f`.
/// `traces[i]` pairs with `polls[i]`; all poll vectors non-empty/sorted.
MutualValueReport evaluate_mutual_value(
    std::span<const ValueTrace* const> traces,
    std::span<const std::vector<PollInstant>* const> polls,
    const ConsistencyFunction& function, double delta, Duration horizon);

/// Two-object convenience overload.
MutualValueReport evaluate_mutual_value(
    const ValueTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const ValueTrace& trace_b, const std::vector<PollInstant>& polls_b,
    const ConsistencyFunction& function, double delta, Duration horizon);

/// One point of the Fig. 8 series: f at the server vs f at the proxy.
struct MutualValueSample {
  TimePoint time = 0.0;
  double f_server = 0.0;
  double f_proxy = 0.0;
};

/// The (time, f_server, f_proxy) step series over [start, horizon] —
/// the reproduction of the paper's Fig. 8.
std::vector<MutualValueSample> mutual_value_series(
    const ValueTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const ValueTrace& trace_b, const std::vector<PollInstant>& polls_b,
    const ConsistencyFunction& function, Duration horizon);

}  // namespace broadway

#include "metrics/accounting.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

PollCauseCounts count_by_cause(const std::vector<PollRecord>& log) {
  PollCauseCounts counts;
  for (const PollRecord& record : log) {
    if (record.failed) {
      ++counts.failed;
      continue;
    }
    switch (record.cause) {
      case PollCause::kInitial:
        ++counts.initial;
        break;
      case PollCause::kScheduled:
        ++counts.scheduled;
        break;
      case PollCause::kTriggered:
        ++counts.triggered;
        break;
      case PollCause::kRetry:
        ++counts.retry;
        break;
    }
  }
  return counts;
}

PollCauseCounts count_by_cause(const PollLog& log) {
  return count_by_cause(log.records());
}

std::vector<std::size_t> polls_per_bucket(const std::vector<PollRecord>& log,
                                          Duration bucket, Duration horizon,
                                          std::optional<PollCause> cause,
                                          const std::string& uri) {
  BROADWAY_CHECK_MSG(bucket > 0.0 && horizon > 0.0,
                     "bucket " << bucket << " horizon " << horizon);
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket));
  std::vector<std::size_t> counts(buckets, 0);
  for (const PollRecord& record : log) {
    if (record.failed) continue;
    if (cause && record.cause != *cause) continue;
    if (!uri.empty() && record.uri != uri) continue;
    if (record.complete_time >= horizon) continue;
    const std::size_t i =
        std::min(buckets - 1,
                 static_cast<std::size_t>(record.complete_time / bucket));
    ++counts[i];
  }
  return counts;
}

std::vector<std::size_t> polls_per_bucket(const PollLog& log,
                                          Duration bucket, Duration horizon,
                                          std::optional<PollCause> cause,
                                          const std::string& uri) {
  return polls_per_bucket(log.records(), bucket, horizon, cause, uri);
}

}  // namespace broadway

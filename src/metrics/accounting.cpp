#include "metrics/accounting.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

PollCauseCounts count_by_cause(const std::vector<PollRecord>& log) {
  PollCauseCounts counts;
  for (const PollRecord& record : log) {
    if (record.failed) {
      ++counts.failed;
      continue;
    }
    switch (record.cause) {
      case PollCause::kInitial:
        ++counts.initial;
        break;
      case PollCause::kScheduled:
        ++counts.scheduled;
        break;
      case PollCause::kTriggered:
        ++counts.triggered;
        break;
      case PollCause::kRetry:
        ++counts.retry;
        break;
      case PollCause::kRelay:
        ++counts.relay;
        break;
      case PollCause::kClientMiss:
        ++counts.client_miss;
        break;
    }
  }
  return counts;
}

PollCauseCounts count_by_cause(const PollLog& log) {
  return count_by_cause(log.records());
}

double FleetOriginLoad::polls_per_second(Duration horizon) const {
  if (horizon <= 0.0) return 0.0;
  return static_cast<double>(origin_polls) / horizon;
}

FleetOriginLoad fleet_origin_load(const std::vector<const PollLog*>& logs) {
  FleetOriginLoad load;
  for (const PollLog* log : logs) {
    BROADWAY_CHECK(log != nullptr);
    // The logs' running counters: O(1) per log, and exact even when a
    // retention window has evicted old records.
    load.origin_messages += log->initial_polls() + log->polls_performed();
    load.origin_polls += log->polls_performed();
    load.relay_refreshes += log->relay_refreshes();
    load.demand_fills += log->demand_fills();
    load.failed += log->failed_polls();
  }
  return load;
}

std::vector<PollRecord> merge_poll_records(
    std::vector<ProxyPollRecords> logs) {
  // Proxy-ascending concatenation + stable sort by snapshot time gives
  // the (snapshot_time, proxy, in-log position) order independent of the
  // order the caller listed the logs in.
  std::sort(logs.begin(), logs.end(),
            [](const ProxyPollRecords& a, const ProxyPollRecords& b) {
              return a.proxy < b.proxy;
            });
  std::size_t total = 0;
  for (const ProxyPollRecords& log : logs) {
    BROADWAY_CHECK(log.records != nullptr);
    total += log.records->size();
  }
  std::vector<PollRecord> merged;
  merged.reserve(total);
  for (const ProxyPollRecords& log : logs) {
    merged.insert(merged.end(), log.records->begin(), log.records->end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const PollRecord& a, const PollRecord& b) {
                     return a.snapshot_time < b.snapshot_time;
                   });
  return merged;
}

std::vector<std::size_t> polls_per_bucket(const std::vector<PollRecord>& log,
                                          Duration bucket, Duration horizon,
                                          std::optional<PollCause> cause,
                                          const std::string& uri) {
  BROADWAY_CHECK_MSG(bucket > 0.0 && horizon > 0.0,
                     "bucket " << bucket << " horizon " << horizon);
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket));
  std::vector<std::size_t> counts(buckets, 0);
  for (const PollRecord& record : log) {
    if (record.failed) continue;
    if (cause && record.cause != *cause) continue;
    if (!uri.empty() && record.uri != uri) continue;
    if (record.complete_time >= horizon) continue;
    const std::size_t i =
        std::min(buckets - 1,
                 static_cast<std::size_t>(record.complete_time / bucket));
    ++counts[i];
  }
  return counts;
}

std::vector<std::size_t> polls_per_bucket(const PollLog& log,
                                          Duration bucket, Duration horizon,
                                          std::optional<PollCause> cause,
                                          const std::string& uri) {
  if (uri.empty()) {
    return polls_per_bucket(log.records(), bucket, horizon, cause, uri);
  }
  // Per-object query: walk the log's per-object successful-record index
  // (exactly the non-failed records of `uri`) instead of scanning every
  // object's records.
  BROADWAY_CHECK_MSG(bucket > 0.0 && horizon > 0.0,
                     "bucket " << bucket << " horizon " << horizon);
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(horizon / bucket));
  std::vector<std::size_t> counts(buckets, 0);
  for (const std::size_t index : log.successful_records(uri)) {
    const PollRecord& record = log[index];
    if (cause && record.cause != *cause) continue;
    if (record.complete_time >= horizon) continue;
    const std::size_t i =
        std::min(buckets - 1,
                 static_cast<std::size_t>(record.complete_time / bucket));
    ++counts[i];
  }
  return counts;
}

}  // namespace broadway

#include "metrics/value_fidelity.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

double ValueFidelityReport::fidelity_violations() const {
  if (windows == 0) return 1.0;
  return 1.0 -
         static_cast<double>(violations) / static_cast<double>(windows);
}

double ValueFidelityReport::fidelity_time() const {
  if (horizon <= 0.0) return 1.0;
  return 1.0 - out_sync_time / horizon;
}

ValueFidelityReport evaluate_value_fidelity(
    const ValueTrace& trace, const std::vector<PollInstant>& polls,
    double delta, Duration horizon) {
  BROADWAY_CHECK_MSG(!polls.empty(), "no polls to evaluate");
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  BROADWAY_CHECK_MSG(horizon > 0.0, "horizon " << horizon);

  ValueFidelityReport report;
  report.horizon = horizon;
  for (std::size_t k = 0; k < polls.size(); ++k) {
    const TimePoint window_begin = polls[k].complete;
    const TimePoint window_end =
        k + 1 < polls.size() ? polls[k + 1].complete : horizon;
    ++report.windows;
    if (window_begin >= window_end) continue;
    const double cached = trace.value_at(polls[k].snapshot);
    const Duration span = trace.time_deviation_at_least(
        window_begin, window_end, cached, delta);
    if (span > 0.0) {
      ++report.violations;
      report.out_sync_time += span;
    }
  }
  return report;
}

double MutualValueReport::fidelity_violations() const {
  if (polls == 0) return 1.0;
  return 1.0 -
         static_cast<double>(violations) / static_cast<double>(polls);
}

double MutualValueReport::fidelity_time() const {
  if (horizon <= 0.0) return 1.0;
  return 1.0 - out_sync_time / horizon;
}

namespace {

// Cached value at time t: server value at the snapshot of the last poll
// completed at or before t.
double cached_value_at(const ValueTrace& trace,
                       const std::vector<PollInstant>& polls, TimePoint t) {
  auto it = std::upper_bound(
      polls.begin(), polls.end(), t,
      [](TimePoint lhs, const PollInstant& rhs) { return lhs < rhs.complete; });
  BROADWAY_CHECK_MSG(it != polls.begin(), "queried before the first fetch");
  const PollInstant& poll = *(it - 1);
  return trace.value_at(poll.snapshot);
}

// Merged event boundaries for a group: trace steps and poll completions in
// (start, horizon), plus both endpoints.
std::vector<TimePoint> merged_boundaries(
    std::span<const ValueTrace* const> traces,
    std::span<const std::vector<PollInstant>* const> polls, TimePoint start,
    Duration horizon) {
  std::vector<TimePoint> out;
  out.push_back(start);
  for (const ValueTrace* trace : traces) {
    for (const auto& step : trace->steps()) {
      if (step.time > start && step.time < horizon) out.push_back(step.time);
    }
  }
  for (const auto* schedule : polls) {
    for (const auto& poll : *schedule) {
      if (poll.complete > start && poll.complete < horizon) {
        out.push_back(poll.complete);
      }
    }
  }
  out.push_back(horizon);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

MutualValueReport evaluate_mutual_value(
    std::span<const ValueTrace* const> traces,
    std::span<const std::vector<PollInstant>* const> polls,
    const ConsistencyFunction& function, double delta, Duration horizon) {
  BROADWAY_CHECK_MSG(traces.size() == polls.size(), "traces/polls mismatch");
  BROADWAY_CHECK_MSG(traces.size() == function.arity(),
                     "group size must match the function arity");
  BROADWAY_CHECK_MSG(delta > 0.0, "delta " << delta);
  BROADWAY_CHECK_MSG(horizon > 0.0, "horizon " << horizon);

  MutualValueReport report;
  report.horizon = horizon;
  TimePoint start = 0.0;
  for (const auto* schedule : polls) {
    BROADWAY_CHECK_MSG(!schedule->empty(), "object never fetched");
    report.polls += schedule->size();
    start = std::max(start, schedule->front().complete);
  }

  const std::vector<TimePoint> boundaries =
      merged_boundaries(traces, polls, start, horizon);

  std::vector<double> server_values(traces.size());
  std::vector<double> proxy_values(traces.size());
  bool previously_violated = false;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const TimePoint t0 = boundaries[i];
    const TimePoint t1 = boundaries[i + 1];
    if (t1 <= t0) continue;
    for (std::size_t j = 0; j < traces.size(); ++j) {
      server_values[j] = traces[j]->value_at(t0);
      proxy_values[j] = cached_value_at(*traces[j], *polls[j], t0);
    }
    const double divergence = std::abs(function.evaluate(server_values) -
                                       function.evaluate(proxy_values));
    const bool violated = divergence >= delta;
    if (violated) {
      report.out_sync_time += t1 - t0;
      if (!previously_violated) ++report.violations;
    }
    previously_violated = violated;
  }
  return report;
}

MutualValueReport evaluate_mutual_value(
    const ValueTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const ValueTrace& trace_b, const std::vector<PollInstant>& polls_b,
    const ConsistencyFunction& function, double delta, Duration horizon) {
  const ValueTrace* traces[] = {&trace_a, &trace_b};
  const std::vector<PollInstant>* polls[] = {&polls_a, &polls_b};
  return evaluate_mutual_value(traces, polls, function, delta, horizon);
}

std::vector<MutualValueSample> mutual_value_series(
    const ValueTrace& trace_a, const std::vector<PollInstant>& polls_a,
    const ValueTrace& trace_b, const std::vector<PollInstant>& polls_b,
    const ConsistencyFunction& function, Duration horizon) {
  BROADWAY_CHECK_MSG(!polls_a.empty() && !polls_b.empty(),
                     "objects never fetched");
  const ValueTrace* traces[] = {&trace_a, &trace_b};
  const std::vector<PollInstant>* polls[] = {&polls_a, &polls_b};
  const TimePoint start =
      std::max(polls_a.front().complete, polls_b.front().complete);
  const std::vector<TimePoint> boundaries =
      merged_boundaries(traces, polls, start, horizon);

  std::vector<MutualValueSample> out;
  out.reserve(boundaries.size());
  for (TimePoint t : boundaries) {
    // Sample just after the boundary so steps/polls at t are reflected.
    MutualValueSample sample;
    sample.time = t;
    const double sa = trace_a.value_at(t);
    const double sb = trace_b.value_at(t);
    const double pa = cached_value_at(trace_a, polls_a, t);
    const double pb = cached_value_at(trace_b, polls_b, t);
    const double server_values[] = {sa, sb};
    const double proxy_values[] = {pa, pb};
    sample.f_server = function.evaluate(server_values);
    sample.f_proxy = function.evaluate(proxy_values);
    out.push_back(sample);
  }
  return out;
}

}  // namespace broadway

#include "http/date.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace broadway {

namespace httpdate_detail {

long long days_from_civil(int y, unsigned m, unsigned d) {
  // Howard Hinnant's algorithm; shifts the year so the leap day is the
  // last day of the shifted year.
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);         // [0,399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0,146096]
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

void civil_from_days(long long z, int& year, unsigned& month, unsigned& day) {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);      // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;         // [0,399]
  const long long y = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);      // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                           // [0,11]
  day = doy - (153 * mp + 2) / 5 + 1;
  month = mp + (mp < 10 ? 3 : -9);
  year = static_cast<int>(y + (month <= 2));
}

unsigned weekday_from_days(long long days) {
  return static_cast<unsigned>(days >= -4 ? (days + 4) % 7
                                          : (days + 5) % 7 + 6);
}

}  // namespace httpdate_detail

namespace {

// Simulation epoch: Mon, 06 Aug 2001 00:00:00 GMT, as days since 1970.
const long long kEpochDays = httpdate_detail::days_from_civil(2001, 8, 6);

constexpr const char* kWeekdays[7] = {"Sun", "Mon", "Tue", "Wed",
                                      "Thu", "Fri", "Sat"};
constexpr const char* kMonths[12] = {"Jan", "Feb", "Mar", "Apr",
                                     "May", "Jun", "Jul", "Aug",
                                     "Sep", "Oct", "Nov", "Dec"};

int month_index(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (name == kMonths[i]) return i;
  }
  return -1;
}

}  // namespace

std::string format_http_date(TimePoint t) {
  BROADWAY_CHECK_MSG(t >= 0.0 && std::isfinite(t), "http date for t=" << t);
  const long long total_seconds = static_cast<long long>(t);
  const long long day_offset = total_seconds / 86400;
  const long long secs_in_day = total_seconds % 86400;
  const long long abs_days = kEpochDays + day_offset;

  int year;
  unsigned month, day;
  httpdate_detail::civil_from_days(abs_days, year, month, day);
  const unsigned weekday = httpdate_detail::weekday_from_days(abs_days);

  const int hh = static_cast<int>(secs_in_day / 3600);
  const int mm = static_cast<int>((secs_in_day % 3600) / 60);
  const int ss = static_cast<int>(secs_in_day % 60);

  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s, %02u %s %04d %02d:%02d:%02d GMT",
                kWeekdays[weekday], day, kMonths[month - 1], year, hh, mm,
                ss);
  return buf;
}

std::optional<TimePoint> parse_http_date(std::string_view text) {
  // "Mon, 06 Aug 2001 13:04:00 GMT" — fixed-width RFC 1123.
  if (text.size() != 29) return std::nullopt;
  char weekday[4] = {};
  unsigned day = 0;
  char month_name[4] = {};
  int year = 0;
  int hh = 0, mm = 0, ss = 0;
  char tz[4] = {};
  const std::string buf(text);
  if (std::sscanf(buf.c_str(), "%3s, %2u %3s %4d %2d:%2d:%2d %3s", weekday,
                  &day, month_name, &year, &hh, &mm, &ss, tz) != 8) {
    return std::nullopt;
  }
  if (std::strcmp(tz, "GMT") != 0) return std::nullopt;
  const int month = month_index(month_name);
  if (month < 0) return std::nullopt;
  if (day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) {
    return std::nullopt;
  }
  const long long abs_days = httpdate_detail::days_from_civil(
      year, static_cast<unsigned>(month + 1), day);
  const long long rel_days = abs_days - kEpochDays;
  const double t = static_cast<double>(rel_days) * 86400.0 + hh * 3600.0 +
                   mm * 60.0 + ss;
  if (t < 0.0) return std::nullopt;  // before the simulation epoch
  // Validate the weekday (catches corrupted dates).
  if (std::strcmp(weekday,
                  kWeekdays[httpdate_detail::weekday_from_days(abs_days)]) !=
      0) {
    return std::nullopt;
  }
  return t;
}

}  // namespace broadway

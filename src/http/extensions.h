// The paper's proposed HTTP/1.1 extensions (paper §5.1), made concrete.
//
// The paper proposes, via HTTP's user-defined headers:
//   1. a *modification history* of arbitrary length in responses, so the
//      proxy can detect Fig. 1(b) violations (multiple updates between
//      polls) exactly instead of guessing from Last-Modified alone;
//   2. cache-control style directives carrying the per-object tolerance Δ
//      and the per-group tolerance δ.
//
// Concrete header set implemented here:
//   Last-Modified / If-Modified-Since  — standard RFC 1123 dates (date.h);
//   X-Last-Modified-Precise            — decimal seconds; sub-second
//                                        precision for simulation fidelity;
//   X-If-Modified-Since-Precise        — request-side counterpart;
//   X-Modification-History             — comma-separated decimal seconds of
//                                        the most recent updates, newest
//                                        last, capped by the server;
//   X-Delta-Consistency                — Δ, decimal seconds (request);
//   X-Consistency-Group                — group id (request);
//   X-Group-Delta                      — δ, decimal seconds (request);
//   X-Object-Value                     — decimal value of a value-domain
//                                        object (response).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "util/time.h"

namespace broadway {

// Header names.
inline constexpr std::string_view kHdrLastModified = "Last-Modified";
inline constexpr std::string_view kHdrIfModifiedSince = "If-Modified-Since";
inline constexpr std::string_view kHdrLastModifiedPrecise =
    "X-Last-Modified-Precise";
inline constexpr std::string_view kHdrIfModifiedSincePrecise =
    "X-If-Modified-Since-Precise";
inline constexpr std::string_view kHdrModificationHistory =
    "X-Modification-History";
inline constexpr std::string_view kHdrDeltaConsistency =
    "X-Delta-Consistency";
inline constexpr std::string_view kHdrConsistencyGroup =
    "X-Consistency-Group";
inline constexpr std::string_view kHdrGroupDelta = "X-Group-Delta";
inline constexpr std::string_view kHdrObjectValue = "X-Object-Value";

/// Stamp both the RFC 1123 If-Modified-Since and the precise variant.
void set_if_modified_since(Headers& headers, TimePoint t);

/// Read the validator from a request: the precise header when present,
/// otherwise the parsed RFC 1123 header.  nullopt = unconditional request.
std::optional<TimePoint> get_if_modified_since(const Headers& headers);

/// Stamp both Last-Modified headers on a response.
void set_last_modified(Headers& headers, TimePoint t);

/// Read Last-Modified, preferring the precise header.
std::optional<TimePoint> get_last_modified(const Headers& headers);

/// Encode/decode the modification-history extension.  `instants` must be
/// ascending; decode returns nullopt on malformed input (absent header
/// decodes as an empty vector).
void set_modification_history(Headers& headers,
                              const std::vector<TimePoint>& instants);
std::optional<std::vector<TimePoint>> get_modification_history(
    const Headers& headers);

/// Per-object tolerance Δ on a request.
void set_delta_tolerance(Headers& headers, Duration delta);
std::optional<Duration> get_delta_tolerance(const Headers& headers);

/// Group membership + group tolerance δ on a request.
void set_group(Headers& headers, std::string_view group_id,
               Duration group_delta);
std::optional<std::string_view> get_group_id(const Headers& headers);
std::optional<Duration> get_group_delta(const Headers& headers);

/// Value-domain object value on a response.
void set_object_value(Headers& headers, double value);
std::optional<double> get_object_value(const Headers& headers);

// ---- typed wire metadata (the in-process fast path) -----------------------
//
// The sideband in RequestMeta/ResponseMeta carries the same validators and
// extensions as the headers above, without formatting or parsing.  The
// readers below prefer the typed representation and fall back to parsing
// header strings, so every consumer behaves identically whichever way the
// message travelled.

/// Quantise an instant exactly as the %.3f header rendering + strtod
/// re-parse would: the typed path must make the same (millisecond) values
/// visible to policies as the string path, bit for bit.
TimePoint quantize_wire_seconds(TimePoint t);

/// If-Modified-Since: typed when request.meta.active, else parsed.
std::optional<TimePoint> wire_if_modified_since(const Request& request);

/// Last-Modified: typed when response.meta.active, else parsed.
std::optional<TimePoint> wire_last_modified(const Response& response);

/// X-Object-Value: typed when response.meta.active, else parsed.
std::optional<double> wire_object_value(const Response& response);

/// X-Modification-History into `out` (cleared first).  Returns false when
/// the string representation is malformed (out is left empty, matching the
/// old get_modification_history(...) == nullopt handling).  `Container`
/// is any vector-shaped instant sequence — std::vector<TimePoint> or the
/// observation pipeline's SmallVector (TemporalPollObservation::History).
template <typename Container>
bool wire_modification_history(const Response& response, Container& out) {
  out.clear();
  if (response.meta.active) {
    if (response.meta.history_present) {
      out.assign(response.meta.history_data(),
                 response.meta.history_data() + response.meta.history_size());
    }
    return true;
  }
  const auto history = get_modification_history(response.headers);
  if (!history) return false;
  out.assign(history->begin(), history->end());
  return true;
}

/// Render the typed sideband into header strings (idempotent; no-op when
/// the meta is inactive).  The codec and tests call this before
/// serialising a message that travelled the typed path; the poll hot path
/// never does.
void materialize_headers(Request& request);
void materialize_headers(Response& response);

}  // namespace broadway

#include "http/message.h"

#include "http/extensions.h"
#include "util/strings.h"

namespace broadway {

std::string_view to_string(Method m) {
  switch (m) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
  }
  return "GET";
}

std::optional<Method> parse_method(std::string_view text) {
  if (text == "GET") return Method::kGet;
  if (text == "HEAD") return Method::kHead;
  return std::nullopt;
}

std::string_view reason_phrase(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotModified:
      return "Not Modified";
    case StatusCode::kBadRequest:
      return "Bad Request";
    case StatusCode::kNotFound:
      return "Not Found";
  }
  return "Unknown";
}

std::optional<StatusCode> parse_status(int code) {
  switch (code) {
    case 200:
      return StatusCode::kOk;
    case 304:
      return StatusCode::kNotModified;
    case 400:
      return StatusCode::kBadRequest;
    case 404:
      return StatusCode::kNotFound;
    default:
      return std::nullopt;
  }
}

void Headers::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void Headers::add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

std::vector<std::string_view> Headers::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) out.emplace_back(value);
  }
  return out;
}

std::size_t Headers::remove(std::string_view name) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (iequals(it->first, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

Request Request::conditional_get(std::string uri, double if_modified_since) {
  Request req;
  req.method = Method::kGet;
  req.uri = std::move(uri);
  set_if_modified_since(req.headers, if_modified_since);
  // The typed sideband mirrors the headers (quantised identically) so
  // either representation can be read; the headers stay authoritative
  // (meta.active is not set) because callers inspect them directly.
  req.meta.if_modified_since = quantize_wire_seconds(if_modified_since);
  return req;
}

}  // namespace broadway

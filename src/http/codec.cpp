#include "http/codec.h"

#include <cstdio>
#include <sstream>

#include "http/extensions.h"
#include "util/strings.h"

namespace broadway {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kVersion = "HTTP/1.1";

void append_headers(std::ostringstream& os, const Headers& headers) {
  for (const auto& [name, value] : headers.entries()) {
    os << name << ": " << value << kCrlf;
  }
}

// Split the wire into (head-lines, body) at the first blank line.
struct SplitMessage {
  std::vector<std::string> lines;
  std::string body;
};

SplitMessage split_message(std::string_view wire) {
  const std::size_t sep = wire.find("\r\n\r\n");
  if (sep == std::string_view::npos) {
    throw HttpParseError("missing blank line");
  }
  SplitMessage out;
  out.body = std::string(wire.substr(sep + 4));
  std::string_view head = wire.substr(0, sep);
  std::size_t start = 0;
  while (start <= head.size()) {
    const std::size_t eol = head.find(kCrlf, start);
    if (eol == std::string_view::npos) {
      out.lines.emplace_back(head.substr(start));
      break;
    }
    out.lines.emplace_back(head.substr(start, eol - start));
    start = eol + 2;
  }
  if (out.lines.empty()) throw HttpParseError("empty message head");
  return out;
}

Headers parse_header_lines(const std::vector<std::string>& lines,
                           std::size_t first) {
  Headers headers;
  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw HttpParseError("header without colon: '" + line + "'");
    }
    const std::string_view name = trim(std::string_view(line).substr(0, colon));
    const std::string_view value =
        trim(std::string_view(line).substr(colon + 1));
    if (name.empty()) throw HttpParseError("empty header name");
    headers.add(name, value);
  }
  return headers;
}

}  // namespace

std::string serialize(const Request& request) {
  if (request.meta.active) {
    // Typed-path message: header strings were never rendered.  Serialising
    // is the moment they become observable, so materialise into a copy —
    // this is the lazy half of the typed/string equivalence, off the poll
    // hot path by construction.
    Request wire = request;
    materialize_headers(wire);
    wire.meta.active = false;
    return serialize(wire);
  }
  std::ostringstream os;
  os << to_string(request.method) << ' '
     << (request.uri.empty() ? "/" : request.uri) << ' ' << kVersion << kCrlf;
  append_headers(os, request.headers);
  os << kCrlf;
  return os.str();
}

std::string serialize(const Response& response) {
  if (response.meta.active) {
    Response wire = response;
    materialize_headers(wire);
    wire.meta.active = false;
    return serialize(wire);
  }
  std::ostringstream os;
  os << kVersion << ' ' << static_cast<int>(response.status) << ' '
     << reason_phrase(response.status) << kCrlf;
  append_headers(os, response.headers);
  if (!response.body.empty() && !response.headers.has("Content-Length")) {
    os << "Content-Length: " << response.body.size() << kCrlf;
  }
  os << kCrlf << response.body;
  return os.str();
}

Request parse_request(std::string_view wire) {
  const SplitMessage msg = split_message(wire);
  const auto parts = split(msg.lines[0], ' ');
  if (parts.size() != 3) {
    throw HttpParseError("bad request line: '" + msg.lines[0] + "'");
  }
  const auto method = parse_method(parts[0]);
  if (!method) throw HttpParseError("unknown method '" + parts[0] + "'");
  if (parts[2] != kVersion) {
    throw HttpParseError("unsupported version '" + parts[2] + "'");
  }
  Request req;
  req.method = *method;
  req.uri = parts[1];
  req.headers = parse_header_lines(msg.lines, 1);
  return req;
}

Response parse_response(std::string_view wire) {
  const SplitMessage msg = split_message(wire);
  const auto parts = split(msg.lines[0], ' ');
  if (parts.size() < 2 || parts[0] != kVersion) {
    throw HttpParseError("bad status line: '" + msg.lines[0] + "'");
  }
  long long code;
  if (!parse_int64(parts[1], code)) {
    throw HttpParseError("bad status code '" + parts[1] + "'");
  }
  const auto status = parse_status(static_cast<int>(code));
  if (!status) {
    throw HttpParseError("unsupported status " + parts[1]);
  }
  Response resp;
  resp.status = *status;
  resp.headers = parse_header_lines(msg.lines, 1);
  resp.body = msg.body;
  if (const auto len = resp.headers.get("Content-Length")) {
    long long expected;
    if (!parse_int64(*len, expected) ||
        expected != static_cast<long long>(resp.body.size())) {
      throw HttpParseError("Content-Length mismatch");
    }
  }
  return resp;
}

}  // namespace broadway

// Text codec for the HTTP-style messages: RFC 2616 wire format with CRLF
// line endings and a Content-Length-framed body.
//
// The simulator exchanges typed Request/Response structs directly for
// speed; this codec is the wire representation used by the loopback
// transport example and by tests that pin the protocol format (so a future
// real-socket transport interoperates with standard tooling).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "http/message.h"

namespace broadway {

/// Thrown on malformed wire input.
class HttpParseError : public std::runtime_error {
 public:
  explicit HttpParseError(const std::string& what)
      : std::runtime_error("http parse: " + what) {}
};

/// Serialise a request: request line, headers, blank line.  GET/HEAD carry
/// no body.
std::string serialize(const Request& request);

/// Serialise a response: status line, headers (Content-Length appended when
/// a body is present), blank line, body.
std::string serialize(const Response& response);

/// Parse a complete serialised request.  Throws HttpParseError.
Request parse_request(std::string_view wire);

/// Parse a complete serialised response.  Throws HttpParseError.
Response parse_response(std::string_view wire);

}  // namespace broadway

#include "http/extensions.h"

#include <cstdio>

#include "http/date.h"
#include "util/strings.h"

namespace broadway {

namespace {

std::string fmt_seconds(double v) {
  char buf[64];
  // Three decimals: millisecond precision, compact on the wire.
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::optional<double> parse_seconds(std::string_view text) {
  double v;
  if (!parse_double(text, v)) return std::nullopt;
  return v;
}

}  // namespace

void set_if_modified_since(Headers& headers, TimePoint t) {
  headers.set(kHdrIfModifiedSince, format_http_date(t));
  headers.set(kHdrIfModifiedSincePrecise, fmt_seconds(t));
}

std::optional<TimePoint> get_if_modified_since(const Headers& headers) {
  if (auto precise = headers.get(kHdrIfModifiedSincePrecise)) {
    return parse_seconds(*precise);
  }
  if (auto coarse = headers.get(kHdrIfModifiedSince)) {
    return parse_http_date(*coarse);
  }
  return std::nullopt;
}

void set_last_modified(Headers& headers, TimePoint t) {
  headers.set(kHdrLastModified, format_http_date(t));
  headers.set(kHdrLastModifiedPrecise, fmt_seconds(t));
}

std::optional<TimePoint> get_last_modified(const Headers& headers) {
  if (auto precise = headers.get(kHdrLastModifiedPrecise)) {
    return parse_seconds(*precise);
  }
  if (auto coarse = headers.get(kHdrLastModified)) {
    return parse_http_date(*coarse);
  }
  return std::nullopt;
}

void set_modification_history(Headers& headers,
                              const std::vector<TimePoint>& instants) {
  std::vector<std::string> parts;
  parts.reserve(instants.size());
  for (TimePoint t : instants) parts.push_back(fmt_seconds(t));
  headers.set(kHdrModificationHistory, join(parts, ", "));
}

std::optional<std::vector<TimePoint>> get_modification_history(
    const Headers& headers) {
  const auto raw = headers.get(kHdrModificationHistory);
  if (!raw) return std::vector<TimePoint>{};
  std::vector<TimePoint> out;
  TimePoint prev = -kTimeInfinity;
  for (const auto& piece : split_trimmed(*raw, ',')) {
    const auto v = parse_seconds(piece);
    if (!v || *v < prev) return std::nullopt;  // malformed or unordered
    out.push_back(*v);
    prev = *v;
  }
  return out;
}

void set_delta_tolerance(Headers& headers, Duration delta) {
  headers.set(kHdrDeltaConsistency, fmt_seconds(delta));
}

std::optional<Duration> get_delta_tolerance(const Headers& headers) {
  const auto raw = headers.get(kHdrDeltaConsistency);
  if (!raw) return std::nullopt;
  return parse_seconds(*raw);
}

void set_group(Headers& headers, std::string_view group_id,
               Duration group_delta) {
  headers.set(kHdrConsistencyGroup, group_id);
  headers.set(kHdrGroupDelta, fmt_seconds(group_delta));
}

std::optional<std::string_view> get_group_id(const Headers& headers) {
  return headers.get(kHdrConsistencyGroup);
}

std::optional<Duration> get_group_delta(const Headers& headers) {
  const auto raw = headers.get(kHdrGroupDelta);
  if (!raw) return std::nullopt;
  return parse_seconds(*raw);
}

void set_object_value(Headers& headers, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  headers.set(kHdrObjectValue, buf);
}

std::optional<double> get_object_value(const Headers& headers) {
  const auto raw = headers.get(kHdrObjectValue);
  if (!raw) return std::nullopt;
  double v;
  if (!parse_double(*raw, v)) return std::nullopt;
  return v;
}

}  // namespace broadway

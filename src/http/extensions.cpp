#include "http/extensions.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "http/date.h"
#include "util/strings.h"

namespace broadway {

namespace {

std::string fmt_seconds(double v) {
  char buf[64];
  // Three decimals: millisecond precision, compact on the wire.
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::optional<double> parse_seconds(std::string_view text) {
  double v;
  if (!parse_double(text, v)) return std::nullopt;
  return v;
}

}  // namespace

void set_if_modified_since(Headers& headers, TimePoint t) {
  headers.set(kHdrIfModifiedSince, format_http_date(t));
  headers.set(kHdrIfModifiedSincePrecise, fmt_seconds(t));
}

std::optional<TimePoint> get_if_modified_since(const Headers& headers) {
  if (auto precise = headers.get(kHdrIfModifiedSincePrecise)) {
    return parse_seconds(*precise);
  }
  if (auto coarse = headers.get(kHdrIfModifiedSince)) {
    return parse_http_date(*coarse);
  }
  return std::nullopt;
}

void set_last_modified(Headers& headers, TimePoint t) {
  headers.set(kHdrLastModified, format_http_date(t));
  headers.set(kHdrLastModifiedPrecise, fmt_seconds(t));
}

std::optional<TimePoint> get_last_modified(const Headers& headers) {
  if (auto precise = headers.get(kHdrLastModifiedPrecise)) {
    return parse_seconds(*precise);
  }
  if (auto coarse = headers.get(kHdrLastModified)) {
    return parse_http_date(*coarse);
  }
  return std::nullopt;
}

void set_modification_history(Headers& headers,
                              const std::vector<TimePoint>& instants) {
  std::vector<std::string> parts;
  parts.reserve(instants.size());
  for (TimePoint t : instants) parts.push_back(fmt_seconds(t));
  headers.set(kHdrModificationHistory, join(parts, ", "));
}

std::optional<std::vector<TimePoint>> get_modification_history(
    const Headers& headers) {
  const auto raw = headers.get(kHdrModificationHistory);
  if (!raw) return std::vector<TimePoint>{};
  std::vector<TimePoint> out;
  TimePoint prev = -kTimeInfinity;
  for (const auto& piece : split_trimmed(*raw, ',')) {
    const auto v = parse_seconds(piece);
    if (!v || *v < prev) return std::nullopt;  // malformed or unordered
    out.push_back(*v);
    prev = *v;
  }
  return out;
}

void set_delta_tolerance(Headers& headers, Duration delta) {
  headers.set(kHdrDeltaConsistency, fmt_seconds(delta));
}

std::optional<Duration> get_delta_tolerance(const Headers& headers) {
  const auto raw = headers.get(kHdrDeltaConsistency);
  if (!raw) return std::nullopt;
  return parse_seconds(*raw);
}

void set_group(Headers& headers, std::string_view group_id,
               Duration group_delta) {
  headers.set(kHdrConsistencyGroup, group_id);
  headers.set(kHdrGroupDelta, fmt_seconds(group_delta));
}

std::optional<std::string_view> get_group_id(const Headers& headers) {
  return headers.get(kHdrConsistencyGroup);
}

std::optional<Duration> get_group_delta(const Headers& headers) {
  const auto raw = headers.get(kHdrGroupDelta);
  if (!raw) return std::nullopt;
  return parse_seconds(*raw);
}

void set_object_value(Headers& headers, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  headers.set(kHdrObjectValue, buf);
}

std::optional<double> get_object_value(const Headers& headers) {
  const auto raw = headers.get(kHdrObjectValue);
  if (!raw) return std::nullopt;
  double v;
  if (!parse_double(*raw, v)) return std::nullopt;
  return v;
}

// ---- typed wire metadata ---------------------------------------------------

namespace {

// The authoritative quantiser: format-and-reparse, exactly the double a
// header round-trip produces.  Stack buffers only — no allocation.
TimePoint quantize_via_printf(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return std::strtod(buf, nullptr);
}

}  // namespace

TimePoint quantize_wire_seconds(TimePoint t) {
  // Hot path (once per poll): arithmetic round-to-milli.  nearbyint under
  // the default rounding mode resolves exact .5 ties to even, like
  // printf's correctly-rounded decimal conversion, and k/1000.0 is the
  // correctly-rounded double of the decimal k·10⁻³ — i.e. what strtod
  // would return.  The one hazard is t·1000 landing within floating-point
  // error of a tie, where the product could sit on the wrong side of the
  // boundary printf sees in the exact decimal expansion; inside that
  // (vanishingly narrow) guard band we delegate to the printf path, so
  // the two are equal on *every* input — pinned by test_http_extensions.
  if (!std::isfinite(t)) return t;
  const double scaled = t * 1000.0;
  if (std::abs(scaled) >= 4.5e15) return quantize_via_printf(t);  // ulp >= 0.5
  const double rounded = std::nearbyint(scaled);
  const double tie_distance = std::abs(std::abs(scaled - rounded) - 0.5);
  // The product's error is <= 0.5 ulp(scaled); guard at 8 ulp (plus an
  // absolute floor near zero) so the delegation stays vanishing at any
  // horizon instead of widening with simulation time.
  const double guard =
      8.0 * std::numeric_limits<double>::epsilon() * std::abs(scaled) +
      1e-300;
  if (tie_distance <= guard) return quantize_via_printf(t);
  return rounded / 1000.0;
}

std::optional<TimePoint> wire_if_modified_since(const Request& request) {
  if (request.meta.active) return request.meta.if_modified_since;
  return get_if_modified_since(request.headers);
}

std::optional<TimePoint> wire_last_modified(const Response& response) {
  if (response.meta.active) return response.meta.last_modified;
  return get_last_modified(response.headers);
}

std::optional<double> wire_object_value(const Response& response) {
  if (response.meta.active) return response.meta.value;
  return get_object_value(response.headers);
}

void materialize_headers(Request& request) {
  if (!request.meta.active) return;
  if (request.meta.if_modified_since) {
    set_if_modified_since(request.headers, *request.meta.if_modified_since);
  }
}

void materialize_headers(Response& response) {
  if (!response.meta.active) return;
  if (response.meta.last_modified) {
    set_last_modified(response.headers, *response.meta.last_modified);
  }
  if (response.meta.value) {
    set_object_value(response.headers, *response.meta.value);
  }
  if (response.meta.history_present) {
    std::vector<TimePoint> instants(
        response.meta.history_data(),
        response.meta.history_data() + response.meta.history_size());
    set_modification_history(response.headers, instants);
  }
  if (response.status == StatusCode::kOk) {
    // Mirror the string path's entity header so a materialised typed 200
    // serialises byte-identically (meta.value presence == value-domain).
    response.headers.set("Content-Type",
                         response.meta.value ? "text/plain" : "text/html");
  }
}

}  // namespace broadway

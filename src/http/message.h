// HTTP/1.1-style messages.
//
// All of the paper's consistency mechanisms ride on HTTP: the proxy
// refreshes an object with an `if-modified-since` GET and the server
// answers 304 (fresh) or 200 with a new body and Last-Modified (paper §5).
// These types model exactly the message surface those mechanisms need,
// including the user-defined extension headers of §5.1 (see extensions.h).
//
// Two representations coexist:
//  * header strings — the RFC 2616 surface, produced by the codec, the
//    tests and any component speaking "real" HTTP;
//  * typed wire metadata (RequestMeta/ResponseMeta) — the same validators
//    and extensions as plain numbers, exchanged directly when proxy and
//    origin share a process.  The in-process poll path uses the typed
//    sideband exclusively; header strings are materialised lazily (see
//    materialize_headers in extensions.h) only when the codec or a test
//    serialises the message.  Both carry *identical* information: the
//    typed values are millisecond-quantised exactly as the %.3f header
//    rendering would quantise them, so policy decisions never depend on
//    which representation a message travelled in.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// Request methods the proxy uses.
enum class Method { kGet, kHead };

std::string_view to_string(Method m);
std::optional<Method> parse_method(std::string_view text);

/// The subset of status codes the consistency machinery produces.
enum class StatusCode {
  kOk = 200,
  kNotModified = 304,
  kBadRequest = 400,
  kNotFound = 404,
};

std::string_view reason_phrase(StatusCode code);
std::optional<StatusCode> parse_status(int code);

/// Ordered, case-insensitive header collection.  Order is preserved for
/// serialisation; lookups ignore ASCII case per RFC 2616 §4.2.
class Headers {
 public:
  /// Replace any existing values for `name` with a single value.
  void set(std::string_view name, std::string_view value);

  /// Append without replacing (repeated headers).
  void add(std::string_view name, std::string_view value);

  /// First value for `name`, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// All values for `name`, in insertion order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool has(std::string_view name) const { return get(name).has_value(); }

  /// Remove all values for `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  /// Drop every entry, keeping the allocated capacity (scratch reuse).
  void clear() { entries_.clear(); }

  /// Raw entries in order (for serialisation and iteration).
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Typed request-side wire metadata (the If-Modified-Since validator as a
/// number).  `active` marks a message whose authoritative representation
/// is this sideband rather than header strings.
struct RequestMeta {
  bool active = false;
  /// Millisecond-quantised validator; nullopt = unconditional request.
  std::optional<TimePoint> if_modified_since;
};

/// Typed response-side wire metadata: Last-Modified, the value extension,
/// and the X-Modification-History payload.  History is carried as a *span*
/// so the origin can point straight into its per-object history storage
/// instead of rendering and re-parsing a header string per poll.  The span
/// is valid for the synchronous in-process exchange; copying the message
/// (e.g. a latency-delayed fleet relay) must call own_history() first —
/// copies of an owned history stay owned and deep-copy correctly.
class ResponseMeta {
 public:
  bool active = false;
  /// Millisecond-quantised Last-Modified.
  std::optional<TimePoint> last_modified;
  /// X-Object-Value payload (full double precision; %.17g round-trips).
  std::optional<double> value;
  /// True when the response carries the history extension at all (an empty
  /// history header and an absent one decode identically, but the
  /// materialised header set differs).
  bool history_present = false;

  const TimePoint* history_data() const {
    return use_owned_ ? owned_.data() : view_;
  }
  std::size_t history_size() const {
    return use_owned_ ? owned_.size() : view_size_;
  }

  /// Point at externally-owned, ascending, ms-quantised instants.
  void set_history_view(const TimePoint* data, std::size_t size) {
    history_present = true;
    use_owned_ = false;
    view_ = data;
    view_size_ = size;
  }

  /// Copy a viewed history into owned storage (no-op when already owned).
  /// Required before the message outlives the exchange that produced it.
  void own_history() {
    if (use_owned_ || !history_present) return;
    owned_.assign(view_, view_ + view_size_);
    use_owned_ = true;
    view_ = nullptr;
    view_size_ = 0;
  }

  void clear() {
    active = false;
    last_modified.reset();
    value.reset();
    history_present = false;
    use_owned_ = false;
    view_ = nullptr;
    view_size_ = 0;
    owned_.clear();  // keeps capacity for scratch reuse
  }

 private:
  const TimePoint* view_ = nullptr;
  std::size_t view_size_ = 0;
  std::vector<TimePoint> owned_;
  bool use_owned_ = false;
};

/// An HTTP request.  `uri` is the absolute path identifying a cached
/// object (the library treats it as an opaque object id); `object` is the
/// interned UriTable handle when sender and receiver share a table
/// (kInvalidObjectId = resolve by uri string).
struct Request {
  Method method = Method::kGet;
  std::string uri;
  ObjectId object = kInvalidObjectId;
  Headers headers;
  RequestMeta meta;

  /// Convenience: build a conditional GET carrying If-Modified-Since (and
  /// the precise-time extension) for the given instant; see extensions.h.
  /// Stamps both the header strings and the typed sideband.
  static Request conditional_get(std::string uri, double if_modified_since);

  /// Back to a default-constructed state, keeping allocations.
  void reset() {
    method = Method::kGet;
    uri.clear();
    object = kInvalidObjectId;
    headers.clear();
    meta = RequestMeta{};
  }
};

/// An HTTP response.
struct Response {
  StatusCode status = StatusCode::kOk;
  Headers headers;
  std::string body;
  ResponseMeta meta;

  bool ok() const { return status == StatusCode::kOk; }
  bool not_modified() const { return status == StatusCode::kNotModified; }

  /// Back to a default-constructed state, keeping allocations.
  void reset() {
    status = StatusCode::kOk;
    headers.clear();
    body.clear();
    meta.clear();
  }
};

}  // namespace broadway

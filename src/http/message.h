// HTTP/1.1-style messages.
//
// All of the paper's consistency mechanisms ride on HTTP: the proxy
// refreshes an object with an `if-modified-since` GET and the server
// answers 304 (fresh) or 200 with a new body and Last-Modified (paper §5).
// These types model exactly the message surface those mechanisms need,
// including the user-defined extension headers of §5.1 (see extensions.h).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace broadway {

/// Request methods the proxy uses.
enum class Method { kGet, kHead };

std::string_view to_string(Method m);
std::optional<Method> parse_method(std::string_view text);

/// The subset of status codes the consistency machinery produces.
enum class StatusCode {
  kOk = 200,
  kNotModified = 304,
  kBadRequest = 400,
  kNotFound = 404,
};

std::string_view reason_phrase(StatusCode code);
std::optional<StatusCode> parse_status(int code);

/// Ordered, case-insensitive header collection.  Order is preserved for
/// serialisation; lookups ignore ASCII case per RFC 2616 §4.2.
class Headers {
 public:
  /// Replace any existing values for `name` with a single value.
  void set(std::string_view name, std::string_view value);

  /// Append without replacing (repeated headers).
  void add(std::string_view name, std::string_view value);

  /// First value for `name`, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// All values for `name`, in insertion order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool has(std::string_view name) const { return get(name).has_value(); }

  /// Remove all values for `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  /// Raw entries in order (for serialisation and iteration).
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// An HTTP request.  `uri` is the absolute path identifying a cached
/// object (the library treats it as an opaque object id).
struct Request {
  Method method = Method::kGet;
  std::string uri;
  Headers headers;

  /// Convenience: build a conditional GET carrying If-Modified-Since (and
  /// the precise-time extension) for the given instant; see extensions.h.
  static Request conditional_get(std::string uri, double if_modified_since);
};

/// An HTTP response.
struct Response {
  StatusCode status = StatusCode::kOk;
  Headers headers;
  std::string body;

  bool ok() const { return status == StatusCode::kOk; }
  bool not_modified() const { return status == StatusCode::kNotModified; }
};

}  // namespace broadway

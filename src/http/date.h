// HTTP-date formatting and parsing (RFC 1123 fixed-format, the preferred
// form of RFC 2616 §3.3.1), mapped onto simulation time.
//
// Simulation t = 0 corresponds to Mon, 06 Aug 2001 00:00:00 GMT — midnight
// before the earliest trace collection window in the paper's Table 2 — so
// Last-Modified headers in logs read like the paper's own timeline.
// HTTP-dates carry whole-second resolution; sub-second precision travels in
// the X-Last-Modified-Precise extension header (see extensions.h).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/time.h"

namespace broadway {

/// Render a simulation instant as an RFC 1123 date, truncating to whole
/// seconds: "Mon, 06 Aug 2001 13:04:00 GMT".  Requires t >= 0.
std::string format_http_date(TimePoint t);

/// Parse an RFC 1123 date back to a simulation instant.  Returns nullopt
/// for malformed input or dates before the simulation epoch.
std::optional<TimePoint> parse_http_date(std::string_view text);

namespace httpdate_detail {
// Civil-calendar conversions (Gregorian, proleptic).  Exposed for tests.

/// Days since 1970-01-01 for a civil date (Hinnant's days_from_civil).
long long days_from_civil(int year, unsigned month, unsigned day);

/// Inverse of days_from_civil.
void civil_from_days(long long days, int& year, unsigned& month,
                     unsigned& day);

/// Day of week, 0 = Sunday, for days since 1970-01-01 (1970-01-01 was a
/// Thursday).
unsigned weekday_from_days(long long days);
}  // namespace httpdate_detail

}  // namespace broadway

#include "trace/stock.h"

#include <algorithm>
#include <cmath>

#include "trace/generators.h"
#include "util/check.h"

namespace broadway {

namespace {

double quantise(double value, double origin, double tick) {
  return origin + std::round((value - origin) / tick) * tick;
}

// Tick arrival instants: a mixture of a homogeneous component and a
// clustered component (ticks placed near previously chosen "flurry"
// centres), controlled by burstiness.  Exactly `count` distinct instants.
std::vector<TimePoint> tick_times(Rng& rng, const StockWalkConfig& config) {
  std::vector<TimePoint> times;
  times.reserve(config.updates);
  const std::size_t clustered = static_cast<std::size_t>(
      std::round(config.burstiness * static_cast<double>(config.updates)));
  const std::size_t uniform = config.updates - clustered;
  for (std::size_t i = 0; i < uniform; ++i) {
    times.push_back(rng.uniform(0.0, config.duration));
  }
  // Flurries: a handful of centres, ticks scattered tightly around them.
  const std::size_t centres = std::max<std::size_t>(1, clustered / 25);
  std::vector<TimePoint> centre_times;
  for (std::size_t i = 0; i < centres; ++i) {
    centre_times.push_back(rng.uniform(0.0, config.duration));
  }
  const Duration spread = config.duration / 60.0;
  for (std::size_t i = 0; i < clustered; ++i) {
    const TimePoint centre =
        centre_times[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(centres) - 1))];
    double t = centre + rng.normal(0.0, spread);
    t = std::clamp(t, 0.0, config.duration * (1.0 - 1e-9));
    times.push_back(t);
  }
  times = sort_unique(std::move(times), 1e-3);
  // Collisions are rare; top up to the exact calibration count.
  int guard = 0;
  while (times.size() < config.updates && ++guard < 100000) {
    times.push_back(rng.uniform(0.0, config.duration));
    times = sort_unique(std::move(times), 1e-3);
  }
  BROADWAY_CHECK_MSG(times.size() == config.updates,
                     "could not place " << config.updates << " ticks");
  return times;
}

}  // namespace

ValueTrace generate_stock_walk(Rng& rng, const StockWalkConfig& config) {
  BROADWAY_CHECK_MSG(config.max_value > config.min_value,
                     "band [" << config.min_value << ", " << config.max_value
                              << "]");
  BROADWAY_CHECK(config.initial_value >= config.min_value &&
                 config.initial_value <= config.max_value);
  BROADWAY_CHECK(config.tick_size > 0.0 && config.step_sigma > 0.0);
  BROADWAY_CHECK(config.reversion >= 0.0 && config.reversion <= 1.0);
  BROADWAY_CHECK(config.burstiness >= 0.0 && config.burstiness <= 1.0);
  BROADWAY_CHECK_MSG(config.updates > 0, "stock trace needs ticks");

  const std::vector<TimePoint> times = tick_times(rng, config);
  const double centre = 0.5 * (config.min_value + config.max_value);

  std::vector<ValueTrace::Step> steps;
  steps.reserve(times.size());
  double level = config.initial_value;
  for (TimePoint t : times) {
    // Mean-reverting Gaussian step, reflected into the band.
    level += config.reversion * (centre - level) +
             rng.normal(0.0, config.step_sigma);
    if (level > config.max_value) {
      level = 2.0 * config.max_value - level;
    }
    if (level < config.min_value) {
      level = 2.0 * config.min_value - level;
    }
    level = std::clamp(level, config.min_value, config.max_value);
    const double quoted =
        std::clamp(quantise(level, config.min_value, config.tick_size),
                   config.min_value, config.max_value);
    steps.push_back(ValueTrace::Step{t, quoted});
  }
  return ValueTrace(config.name, config.initial_value, std::move(steps),
                    config.duration);
}

}  // namespace broadway

#include "trace/update_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

Duration interval_gap(const ValidityInterval& a, const ValidityInterval& b) {
  if (a.begin >= b.end) return a.begin - b.end;
  if (b.begin >= a.end) return b.begin - a.end;
  return 0.0;  // overlap
}

UpdateTrace::UpdateTrace(std::string name, std::vector<TimePoint> updates,
                         Duration duration, double start_hour)
    : name_(std::move(name)),
      updates_(std::move(updates)),
      duration_(duration),
      start_hour_(start_hour) {
  BROADWAY_CHECK_MSG(duration_ > 0.0, "trace duration " << duration_);
  BROADWAY_CHECK(std::is_sorted(updates_.begin(), updates_.end()));
  BROADWAY_CHECK(std::adjacent_find(updates_.begin(), updates_.end()) ==
                 updates_.end());
  if (!updates_.empty()) {
    BROADWAY_CHECK_MSG(updates_.front() >= 0.0 &&
                           updates_.back() < duration_,
                       "updates outside [0, duration)");
  }
}

Duration UpdateTrace::mean_update_interval() const {
  if (updates_.empty()) return kTimeInfinity;
  return duration_ / static_cast<double>(updates_.size());
}

std::size_t UpdateTrace::version_at(TimePoint t) const {
  // Number of updates with time <= t.
  return static_cast<std::size_t>(
      std::upper_bound(updates_.begin(), updates_.end(), t) -
      updates_.begin());
}

std::optional<TimePoint> UpdateTrace::last_update_at_or_before(
    TimePoint t) const {
  const std::size_t v = version_at(t);
  if (v == 0) return std::nullopt;
  return updates_[v - 1];
}

std::optional<TimePoint> UpdateTrace::first_update_after(TimePoint t) const {
  auto it = std::upper_bound(updates_.begin(), updates_.end(), t);
  if (it == updates_.end()) return std::nullopt;
  return *it;
}

std::size_t UpdateTrace::updates_in(TimePoint t0, TimePoint t1) const {
  BROADWAY_CHECK_MSG(t0 <= t1, "updates_in(" << t0 << ", " << t1 << ")");
  return version_at(t1) - version_at(t0);
}

ValidityInterval UpdateTrace::validity_at(TimePoint t) const {
  return validity_of_version(version_at(t));
}

ValidityInterval UpdateTrace::validity_of_version(std::size_t version) const {
  BROADWAY_CHECK_MSG(version <= updates_.size(),
                     "version " << version << " of " << updates_.size());
  ValidityInterval out;
  out.begin = version == 0 ? 0.0 : updates_[version - 1];
  out.end =
      version == updates_.size() ? kTimeInfinity : updates_[version];
  return out;
}

std::vector<std::size_t> UpdateTrace::bucket_counts(Duration bucket) const {
  BROADWAY_CHECK_MSG(bucket > 0.0, "bucket " << bucket);
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(duration_ / bucket));
  std::vector<std::size_t> counts(buckets, 0);
  for (TimePoint u : updates_) {
    const std::size_t i = std::min(
        buckets - 1, static_cast<std::size_t>(u / bucket));
    ++counts[i];
  }
  return counts;
}

}  // namespace broadway

#include "trace/value_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

ValueTrace::ValueTrace(std::string name, double initial_value,
                       std::vector<Step> steps, Duration duration)
    : name_(std::move(name)),
      initial_value_(initial_value),
      steps_(std::move(steps)),
      duration_(duration),
      min_value_(initial_value),
      max_value_(initial_value) {
  BROADWAY_CHECK_MSG(duration_ > 0.0, "trace duration " << duration_);
  TimePoint prev = -1.0;
  for (const Step& s : steps_) {
    BROADWAY_CHECK_MSG(s.time > prev, "steps not strictly increasing at t="
                                          << s.time);
    BROADWAY_CHECK_MSG(s.time >= 0.0 && s.time < duration_,
                       "step outside [0, duration) at t=" << s.time);
    BROADWAY_CHECK_MSG(std::isfinite(s.value), "non-finite step value");
    prev = s.time;
    min_value_ = std::min(min_value_, s.value);
    max_value_ = std::max(max_value_, s.value);
  }
}

std::size_t ValueTrace::governing_step(TimePoint t) const {
  // First step with time > t, minus one.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](TimePoint lhs, const Step& rhs) { return lhs < rhs.time; });
  if (it == steps_.begin()) return SIZE_MAX;
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

double ValueTrace::value_at(TimePoint t) const {
  const std::size_t i = governing_step(t);
  return i == SIZE_MAX ? initial_value_ : steps_[i].value;
}

std::size_t ValueTrace::version_at(TimePoint t) const {
  const std::size_t i = governing_step(t);
  return i == SIZE_MAX ? 0 : i + 1;
}

double ValueTrace::max_abs_deviation(TimePoint t0, TimePoint t1,
                                     double ref) const {
  BROADWAY_CHECK_MSG(t0 <= t1, "interval (" << t0 << ", " << t1 << "]");
  if (t0 == t1) return 0.0;
  // Value just after t0 (right-continuity: the value at t0+ is value_at(t0)
  // unless a step lands exactly in (t0, t1]).
  double worst = std::abs(value_at(t1) - ref);
  worst = std::max(worst, std::abs(value_at(t0) - ref));
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t0,
      [](TimePoint lhs, const Step& rhs) { return lhs < rhs.time; });
  for (; it != steps_.end() && it->time <= t1; ++it) {
    worst = std::max(worst, std::abs(it->value - ref));
  }
  return worst;
}

Duration ValueTrace::time_deviation_at_least(TimePoint t0, TimePoint t1,
                                             double ref,
                                             double bound) const {
  BROADWAY_CHECK_MSG(t0 <= t1, "interval (" << t0 << ", " << t1 << "]");
  BROADWAY_CHECK_MSG(bound >= 0.0, "bound " << bound);
  if (t0 == t1) return 0.0;
  Duration total = 0.0;
  TimePoint cursor = t0;
  double current = value_at(t0);
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t0,
      [](TimePoint lhs, const Step& rhs) { return lhs < rhs.time; });
  while (cursor < t1) {
    const TimePoint next =
        (it != steps_.end() && it->time <= t1) ? it->time : t1;
    if (std::abs(current - ref) >= bound) total += next - cursor;
    cursor = next;
    if (it != steps_.end() && it->time <= t1) {
      current = it->value;
      ++it;
    }
  }
  return total;
}

std::vector<TimePoint> ValueTrace::update_times() const {
  std::vector<TimePoint> out;
  out.reserve(steps_.size());
  for (const Step& s : steps_) out.push_back(s.time);
  return out;
}

}  // namespace broadway

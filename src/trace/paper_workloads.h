// The paper's evaluation workloads, synthesised to the published
// characteristics.
//
// Temporal traces (paper Table 2):
//   CNN Financial News Briefs   Aug 7 13:04 – Aug 9 14:34   113 updates (26 min avg)
//   NY Times Breaking News (AP) Aug 7 14:07 – Aug 9 11:25   233 updates (11.6 min)
//   NY Times Breaking (Reuters) Aug 7 14:12 – Aug 9 11:25   133 updates (20.3 min)
//   Guardian Breaking News      Aug 6 13:40 – Aug 9 15:32   902 updates (4.9 min)
//
// Value traces (paper Table 3):
//   AT&T   May 22 13:50–16:50   653 ticks   $35.8 – $36.5
//   Yahoo  Mar 30 13:30–16:30   2204 ticks  $160.2 – $171.2
//
// The real traces are not redistributable; these builders produce seeded
// synthetic traces that match each row's duration, update count, value
// range, and the diurnal day/night shape of Fig. 4(a) (news traces use the
// newsroom intensity profile phase-aligned to the collection start hour).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {

/// Seed used by all benches so results in EXPERIMENTS.md are reproducible.
inline constexpr std::uint64_t kPaperSeed = 2001;

/// CNN Financial News Briefs (Table 2 row 1).
UpdateTrace make_cnn_fn_trace(std::uint64_t seed = kPaperSeed);

/// NY Times Breaking News, AP feed (Table 2 row 2).
UpdateTrace make_nytimes_ap_trace(std::uint64_t seed = kPaperSeed);

/// NY Times Breaking News, Reuters feed (Table 2 row 3).
UpdateTrace make_nytimes_reuters_trace(std::uint64_t seed = kPaperSeed);

/// Guardian Breaking News (Table 2 row 4).
UpdateTrace make_guardian_trace(std::uint64_t seed = kPaperSeed);

/// All four temporal traces in Table 2 order.
std::vector<UpdateTrace> make_all_temporal_traces(
    std::uint64_t seed = kPaperSeed);

/// AT&T stock ticks (Table 3 row 1): NYSE post-decimalisation, penny grid,
/// narrow band, infrequent small moves.
ValueTrace make_att_stock_trace(std::uint64_t seed = kPaperSeed);

/// Yahoo stock ticks (Table 3 row 2): NASDAQ pre-decimalisation, 1/16
/// grid, wide band, frequent large moves.
ValueTrace make_yahoo_stock_trace(std::uint64_t seed = kPaperSeed);

}  // namespace broadway

// Diurnal intensity profiles for non-homogeneous update generation.
//
// The paper's news traces show a strong day/night pattern: "the update
// frequency of the CNN/FN web page reduces to zero for a few hours every
// night" (Fig. 4(a)).  A DiurnalProfile maps hour-of-day to a relative
// intensity multiplier; the generators integrate it to place update
// instants.
#pragma once

#include <array>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Relative update intensity as a function of hour-of-day, defined by 24
/// hourly control points with piecewise-linear interpolation between them
/// (wrapping midnight).  Values are relative weights, not absolute rates:
/// the exact-count generator normalises them.
class DiurnalProfile {
 public:
  /// All weights must be non-negative and at least one positive.
  explicit DiurnalProfile(std::array<double, 24> hourly_weights);

  /// Flat profile (homogeneous process).
  static DiurnalProfile flat();

  /// Newsroom profile: quiet 1am–6am (near zero), ramping through morning,
  /// peak mid-day through evening.  Matches the qualitative shape of the
  /// paper's Fig. 4(a).
  static DiurnalProfile newsroom();

  /// Intensity multiplier at the given hour-of-day in [0, 24).
  double intensity(double hour) const;

  /// Integral of intensity over simulated time [0, t) for a trace whose
  /// t = 0 falls at `start_hour` wall-clock.  Monotone in t; used for
  /// inverse-CDF sampling.
  double cumulative(TimePoint t, double start_hour) const;

  /// Inverse of `cumulative`: smallest t with cumulative(t) >= target.
  /// `target` must be within [0, cumulative(duration)].
  TimePoint inverse_cumulative(double target, double start_hour,
                               Duration duration) const;

 private:
  // 1-minute-resolution cumulative-integral table over one day.
  static constexpr std::size_t kTableSize = 24 * 60 + 1;

  std::array<double, 24> weights_;
  std::vector<double> minute_cum_;
  // Intensity integrated over one full day.
  double day_integral_ = 0.0;

  void build_cumulative_table();
  // Cumulative integral from hour 0 to hour h (h in [0, 24]).
  double hour_cumulative(double h) const;
};

}  // namespace broadway

#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace broadway {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed for " + path);
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Header {
  std::string kind;
  std::string name;
  double field3 = 0.0;  // duration
  double field4 = 0.0;  // start_hour or initial_value
};

Header parse_header(const std::string& line) {
  if (line.empty() || line[0] != '#') {
    throw std::runtime_error("trace: missing header line");
  }
  const auto parts = split(trim(line.substr(1)), ',');
  if (parts.size() != 4) throw std::runtime_error("trace: bad header");
  Header h;
  h.kind = std::string(trim(parts[0]));
  h.name = std::string(trim(parts[1]));
  if (!parse_double(parts[2], h.field3) ||
      !parse_double(parts[3], h.field4)) {
    throw std::runtime_error("trace: bad header numbers");
  }
  return h;
}

}  // namespace

std::string serialize_update_trace(const UpdateTrace& trace) {
  std::ostringstream os;
  os << "# broadway-update-trace," << trace.name() << ','
     << fmt_double(trace.duration()) << ',' << fmt_double(trace.start_hour())
     << '\n';
  for (TimePoint t : trace.updates()) os << fmt_double(t) << '\n';
  return os.str();
}

std::string serialize_value_trace(const ValueTrace& trace) {
  std::ostringstream os;
  os << "# broadway-value-trace," << trace.name() << ','
     << fmt_double(trace.duration()) << ','
     << fmt_double(trace.initial_value()) << '\n';
  for (const auto& step : trace.steps()) {
    os << fmt_double(step.time) << ',' << fmt_double(step.value) << '\n';
  }
  return os.str();
}

UpdateTrace parse_update_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace: empty file");
  const Header h = parse_header(line);
  if (h.kind != "broadway-update-trace") {
    throw std::runtime_error("trace: wrong kind '" + h.kind + "'");
  }
  std::vector<TimePoint> updates;
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    double v;
    if (!parse_double(t, v)) {
      throw std::runtime_error("trace: bad update time '" + line + "'");
    }
    updates.push_back(v);
  }
  return UpdateTrace(h.name, std::move(updates), h.field3, h.field4);
}

ValueTrace parse_value_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace: empty file");
  const Header h = parse_header(line);
  if (h.kind != "broadway-value-trace") {
    throw std::runtime_error("trace: wrong kind '" + h.kind + "'");
  }
  std::vector<ValueTrace::Step> steps;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto parts = split(line, ',');
    double t, v;
    if (parts.size() != 2 || !parse_double(parts[0], t) ||
        !parse_double(parts[1], v)) {
      throw std::runtime_error("trace: bad step '" + line + "'");
    }
    steps.push_back(ValueTrace::Step{t, v});
  }
  return ValueTrace(h.name, h.field4, std::move(steps), h.field3);
}

void save_update_trace(const UpdateTrace& trace, const std::string& path) {
  write_file(path, serialize_update_trace(trace));
}

UpdateTrace load_update_trace(const std::string& path) {
  return parse_update_trace(read_file(path));
}

void save_value_trace(const ValueTrace& trace, const std::string& path) {
  write_file(path, serialize_value_trace(trace));
}

ValueTrace load_value_trace(const std::string& path) {
  return parse_value_trace(read_file(path));
}

}  // namespace broadway

// Update-instant generators for the temporal-domain workloads.
//
// Each returns sorted, unique update instants in [0, duration).  All draw
// exclusively from the supplied Rng, so a seed fully determines the trace.
#pragma once

#include <vector>

#include "trace/diurnal.h"
#include "util/rng.h"
#include "util/time.h"

namespace broadway {

/// Homogeneous Poisson process with the given rate (updates per second).
std::vector<TimePoint> generate_poisson(Rng& rng, double rate,
                                        Duration duration);

/// Exactly `count` instants distributed according to the (possibly
/// non-homogeneous) diurnal intensity: each instant is an independent
/// inverse-CDF sample of the normalised intensity.  This is how the paper
/// workloads hit Table 2's update counts exactly while keeping the diurnal
/// shape of Fig. 4(a).
std::vector<TimePoint> generate_with_count(Rng& rng,
                                           const DiurnalProfile& profile,
                                           double start_hour,
                                           Duration duration,
                                           std::size_t count);

/// Two-state Markov-modulated Poisson process (bursty updates).  The
/// process alternates between a "burst" state with rate `burst_rate` and a
/// "calm" state with rate `calm_rate`; state holding times are exponential
/// with the given means.  Models breaking-news flurries for stress tests
/// and ablations.
struct BurstConfig {
  double burst_rate = 1.0 / 60.0;        ///< updates/s while bursting
  double calm_rate = 1.0 / 3600.0;       ///< updates/s while calm
  Duration mean_burst_length = 600.0;    ///< mean burst state duration
  Duration mean_calm_length = 7200.0;    ///< mean calm state duration
};
std::vector<TimePoint> generate_bursty(Rng& rng, const BurstConfig& config,
                                       Duration duration);

/// Deterministic periodic updates (every `period`, first at `phase`).
/// Handy for constructing exact violation scenarios in tests.
std::vector<TimePoint> generate_periodic(Duration period, Duration phase,
                                         Duration duration);

/// Sort + deduplicate helper exposed for generator implementations and
/// tests (instants closer than `min_gap` are collapsed to the earlier one).
std::vector<TimePoint> sort_unique(std::vector<TimePoint> times,
                                   Duration min_gap = 1e-6);

}  // namespace broadway

// Trace persistence.
//
// Traces serialise to small CSV documents so that a generated workload can
// be inspected, archived alongside results, and replayed byte-identically
// by later runs or external tools.
//
// UpdateTrace format:
//   # broadway-update-trace,<name>,<duration>,<start_hour>
//   <t0>
//   <t1>
//   ...
// ValueTrace format:
//   # broadway-value-trace,<name>,<duration>,<initial_value>
//   <t0>,<v0>
//   ...
#pragma once

#include <string>

#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {

/// Serialise to the CSV format above.
std::string serialize_update_trace(const UpdateTrace& trace);
std::string serialize_value_trace(const ValueTrace& trace);

/// Parse; throws std::runtime_error on malformed input.
UpdateTrace parse_update_trace(const std::string& text);
ValueTrace parse_value_trace(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_update_trace(const UpdateTrace& trace, const std::string& path);
UpdateTrace load_update_trace(const std::string& path);
void save_value_trace(const ValueTrace& trace, const std::string& path);
ValueTrace load_value_trace(const std::string& path);

}  // namespace broadway

#include "trace/trace_stats.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace broadway {

UpdateTraceStats compute_stats(const UpdateTrace& trace) {
  UpdateTraceStats out;
  out.name = trace.name();
  out.duration = trace.duration();
  out.num_updates = trace.count();
  out.mean_update_interval = trace.mean_update_interval();
  OnlineStats gaps;
  const auto& times = trace.updates();
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.add(times[i] - times[i - 1]);
  }
  if (gaps.count() > 0) {
    out.min_gap = gaps.min();
    out.max_gap = gaps.max();
    out.gap_cv = gaps.mean() > 0.0 ? gaps.stddev() / gaps.mean() : 0.0;
  }
  return out;
}

ValueTraceStats compute_stats(const ValueTrace& trace) {
  ValueTraceStats out;
  out.name = trace.name();
  out.duration = trace.duration();
  out.num_updates = trace.count();
  out.min_value = trace.min_value();
  out.max_value = trace.max_value();
  out.mean_update_interval =
      trace.count() == 0
          ? kTimeInfinity
          : trace.duration() / static_cast<double>(trace.count());
  OnlineStats moves;
  double prev = trace.initial_value();
  for (const auto& step : trace.steps()) {
    moves.add(std::abs(step.value - prev));
    prev = step.value;
  }
  if (moves.count() > 0) {
    out.mean_abs_change = moves.mean();
    out.max_abs_change = moves.max();
  }
  return out;
}

}  // namespace broadway

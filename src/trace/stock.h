// Synthetic stock-price tick generator for the value-domain workloads.
//
// The paper's value-domain evaluation uses traces of AT&T and Yahoo stock
// prices collected from quote.yahoo.com (Table 3).  Those traces are not
// redistributable, so we synthesise ticks from a seeded mean-reverting
// random walk calibrated to Table 3's observable characteristics: number
// of updates, trading window, and value range.  The algorithms under test
// consume only the (time, value) steps, so matching those statistics
// preserves the behaviour that drives them: AT&T moves rarely and within a
// narrow band, Yahoo ticks often across a wide band.
#pragma once

#include <cstddef>
#include <string>

#include "trace/value_trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace broadway {

/// Calibration parameters for one synthetic stock.
struct StockWalkConfig {
  std::string name = "STOCK";
  Duration duration = 3.0 * 3600.0;  ///< trading window covered by the trace
  std::size_t updates = 1000;        ///< number of ticks (Table 3 column)
  double initial_value = 100.0;      ///< price at t = 0
  double min_value = 95.0;           ///< lower bound on the price band
  double max_value = 105.0;          ///< upper bound on the price band
  double tick_size = 0.05;           ///< price quantum
  /// Per-tick move magnitude in price units before quantisation; the walk
  /// reflects off the band edges and mean-reverts toward the band centre.
  double step_sigma = 0.05;
  /// Strength of mean reversion toward the band centre per tick, in [0, 1].
  double reversion = 0.02;
  /// Burstiness of tick arrival times: 0 = regular Poisson; larger values
  /// concentrate ticks into flurries (two-state modulation).
  double burstiness = 0.3;
};

/// Generate a ValueTrace per the config.  The same rng seed yields an
/// identical trace.  Postconditions: exactly `updates` steps, all values in
/// [min_value, max_value], values quantised to tick_size (relative to
/// min_value).
ValueTrace generate_stock_walk(Rng& rng, const StockWalkConfig& config);

}  // namespace broadway

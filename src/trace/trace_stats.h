// Trace characteristic summaries — the numbers in the paper's Table 2
// (temporal traces) and Table 3 (stock traces).
#pragma once

#include <string>

#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/time.h"

namespace broadway {

/// Table 2 row: characteristics of a temporal-domain trace.
struct UpdateTraceStats {
  std::string name;
  Duration duration = 0.0;
  std::size_t num_updates = 0;
  Duration mean_update_interval = 0.0;  ///< "Avg. Update Frequency" column
  Duration min_gap = 0.0;               ///< shortest inter-update gap
  Duration max_gap = 0.0;               ///< longest inter-update gap
  double gap_cv = 0.0;  ///< coefficient of variation of gaps (burstiness)
};

/// Table 3 row: characteristics of a value-domain trace.
struct ValueTraceStats {
  std::string name;
  Duration duration = 0.0;
  std::size_t num_updates = 0;
  double min_value = 0.0;
  double max_value = 0.0;
  double mean_abs_change = 0.0;   ///< mean |Δvalue| per tick
  double max_abs_change = 0.0;    ///< largest single-tick move
  Duration mean_update_interval = 0.0;
};

UpdateTraceStats compute_stats(const UpdateTrace& trace);
ValueTraceStats compute_stats(const ValueTrace& trace);

}  // namespace broadway

#include "trace/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

std::vector<TimePoint> sort_unique(std::vector<TimePoint> times,
                                   Duration min_gap) {
  std::sort(times.begin(), times.end());
  std::vector<TimePoint> out;
  out.reserve(times.size());
  for (TimePoint t : times) {
    if (out.empty() || t - out.back() >= min_gap) out.push_back(t);
  }
  return out;
}

std::vector<TimePoint> generate_poisson(Rng& rng, double rate,
                                        Duration duration) {
  BROADWAY_CHECK_MSG(rate > 0.0, "rate " << rate);
  BROADWAY_CHECK_MSG(duration > 0.0, "duration " << duration);
  std::vector<TimePoint> out;
  TimePoint t = rng.exponential(rate);
  while (t < duration) {
    out.push_back(t);
    t += rng.exponential(rate);
  }
  return out;
}

std::vector<TimePoint> generate_with_count(Rng& rng,
                                           const DiurnalProfile& profile,
                                           double start_hour,
                                           Duration duration,
                                           std::size_t count) {
  BROADWAY_CHECK_MSG(duration > 0.0, "duration " << duration);
  const double total = profile.cumulative(duration, start_hour);
  std::vector<TimePoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double target = rng.uniform01() * total;
    out.push_back(profile.inverse_cumulative(target, start_hour, duration));
  }
  out = sort_unique(std::move(out));
  // Collapsed duplicates are statistically rare (sub-second collisions over
  // multi-day traces); top up so the count matches the calibration target
  // exactly.
  int guard = 0;
  while (out.size() < count && ++guard < 10000) {
    const double target = rng.uniform01() * total;
    out.push_back(profile.inverse_cumulative(target, start_hour, duration));
    out = sort_unique(std::move(out));
  }
  BROADWAY_CHECK_MSG(out.size() == count,
                     "could not place " << count << " distinct updates");
  return out;
}

std::vector<TimePoint> generate_bursty(Rng& rng, const BurstConfig& config,
                                       Duration duration) {
  BROADWAY_CHECK(config.burst_rate > 0.0 && config.calm_rate > 0.0);
  BROADWAY_CHECK(config.mean_burst_length > 0.0 &&
                 config.mean_calm_length > 0.0);
  std::vector<TimePoint> out;
  TimePoint t = 0.0;
  bool bursting = false;  // start calm
  while (t < duration) {
    const Duration hold = rng.exponential(
        1.0 / (bursting ? config.mean_burst_length : config.mean_calm_length));
    const TimePoint state_end = std::min(duration, t + hold);
    const double rate = bursting ? config.burst_rate : config.calm_rate;
    TimePoint u = t + rng.exponential(rate);
    while (u < state_end) {
      out.push_back(u);
      u += rng.exponential(rate);
    }
    t = state_end;
    bursting = !bursting;
  }
  return sort_unique(std::move(out));
}

std::vector<TimePoint> generate_periodic(Duration period, Duration phase,
                                         Duration duration) {
  BROADWAY_CHECK_MSG(period > 0.0, "period " << period);
  BROADWAY_CHECK_MSG(phase >= 0.0, "phase " << phase);
  std::vector<TimePoint> out;
  for (TimePoint t = phase; t < duration; t += period) out.push_back(t);
  return out;
}

}  // namespace broadway

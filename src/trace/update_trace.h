// Temporal-domain trace: the sequence of instants at which an object was
// updated at the origin server.
//
// This is the ground truth a trace-driven simulation replays (paper §6.1.2,
// Table 2): the origin server applies these updates, the proxy polls, and
// the evaluators compare what the proxy held against this record.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Half-open interval [begin, end) during which one version of an object
/// was current at the server.  `end` is kTimeInfinity for the newest
/// version.
struct ValidityInterval {
  TimePoint begin = 0.0;
  TimePoint end = kTimeInfinity;
};

/// Smallest gap between two validity intervals: 0 when they overlap,
/// otherwise the distance between the nearer endpoints.  This is the |t1-t2|
/// of the paper's Eq. (4) minimised over valid choices of t1, t2.
Duration interval_gap(const ValidityInterval& a, const ValidityInterval& b);

/// Immutable record of update instants for one object over [0, duration).
///
/// Versions are numbered as in the paper (§2): version 0 exists at t = 0
/// (object creation) and each update increments the version, so
/// `version_at(t)` equals the number of updates at or before `t`.
class UpdateTrace {
 public:
  /// `updates` must be sorted ascending, unique, and lie in [0, duration).
  /// `start_hour` records the wall-clock hour-of-day at which t = 0 falls;
  /// purely presentational (Fig. 4 / Fig. 6 axis labels) plus used by
  /// diurnal generators for phase alignment.
  UpdateTrace(std::string name, std::vector<TimePoint> updates,
              Duration duration, double start_hour = 0.0);

  const std::string& name() const { return name_; }
  const std::vector<TimePoint>& updates() const { return updates_; }
  Duration duration() const { return duration_; }
  double start_hour() const { return start_hour_; }

  /// Number of updates in the trace.
  std::size_t count() const { return updates_.size(); }

  /// Mean time between updates (duration / count); kTimeInfinity when the
  /// trace has no updates.
  Duration mean_update_interval() const;

  /// Version current at time t (number of updates at or before t).
  std::size_t version_at(TimePoint t) const;

  /// Instant of the last update at or before t, if any.
  std::optional<TimePoint> last_update_at_or_before(TimePoint t) const;

  /// Instant of the first update strictly after t, if any.
  std::optional<TimePoint> first_update_after(TimePoint t) const;

  /// Number of updates in the half-open interval (t0, t1].
  std::size_t updates_in(TimePoint t0, TimePoint t1) const;

  /// Validity interval of the version current at time t.
  ValidityInterval validity_at(TimePoint t) const;

  /// Validity interval of a version number (0-based as above).
  ValidityInterval validity_of_version(std::size_t version) const;

  /// Histogram of update counts per time bucket (Fig. 4(a): updates per
  /// 2 hours).  The last bucket may cover a partial interval.
  std::vector<std::size_t> bucket_counts(Duration bucket) const;

 private:
  std::string name_;
  std::vector<TimePoint> updates_;
  Duration duration_;
  double start_hour_;
};

}  // namespace broadway

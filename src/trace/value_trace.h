// Value-domain trace: a right-continuous step function of an object's value
// over time (stock prices in the paper's evaluation, Table 3).
//
// Besides replay, this class answers the ground-truth questions the
// Δv / Mv evaluators need: the extreme deviation of the server value from a
// cached value over an interval, and the total time such a deviation
// exceeded a bound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Immutable value trace over [0, duration).  The value is
/// `initial_value` on [0, steps[0].time) and `steps[i].value` from
/// steps[i].time (inclusive) to the next step.
class ValueTrace {
 public:
  struct Step {
    TimePoint time = 0.0;
    double value = 0.0;
  };

  /// `steps` must be strictly increasing in time within [0, duration).
  /// Consecutive equal values are permitted (a tick that leaves the price
  /// unchanged still counts as an update, as in the paper's traces).
  ValueTrace(std::string name, double initial_value, std::vector<Step> steps,
             Duration duration);

  const std::string& name() const { return name_; }
  const std::vector<Step>& steps() const { return steps_; }
  Duration duration() const { return duration_; }
  double initial_value() const { return initial_value_; }

  /// Number of updates (steps).
  std::size_t count() const { return steps_.size(); }

  /// Value current at time t.
  double value_at(TimePoint t) const;

  /// Number of updates with time <= t (version number, as in UpdateTrace).
  std::size_t version_at(TimePoint t) const;

  /// Smallest / largest value attained anywhere in the trace.
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }

  /// Largest |value(t) - ref| for t in the half-open interval (t0, t1].
  /// Returns 0 for an empty interval.
  double max_abs_deviation(TimePoint t0, TimePoint t1, double ref) const;

  /// Total time within (t0, t1] during which |value(t) - ref| >= bound.
  Duration time_deviation_at_least(TimePoint t0, TimePoint t1, double ref,
                                   double bound) const;

  /// Times of all updates, as an UpdateTrace-compatible vector (used to
  /// drive the origin server and to estimate update rates).
  std::vector<TimePoint> update_times() const;

 private:
  std::string name_;
  double initial_value_;
  std::vector<Step> steps_;
  Duration duration_;
  double min_value_;
  double max_value_;

  // Index of the step governing time t: steps_[i].time <= t, maximal i;
  // SIZE_MAX when t precedes all steps.
  std::size_t governing_step(TimePoint t) const;
};

}  // namespace broadway

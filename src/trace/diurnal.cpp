#include "trace/diurnal.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

DiurnalProfile::DiurnalProfile(std::array<double, 24> hourly_weights)
    : weights_(hourly_weights) {
  double total = 0.0;
  for (double w : weights_) {
    BROADWAY_CHECK_MSG(w >= 0.0, "negative diurnal weight " << w);
    total += w;
  }
  BROADWAY_CHECK_MSG(total > 0.0, "diurnal profile identically zero");
  build_cumulative_table();
  day_integral_ = minute_cum_.back();
}

DiurnalProfile DiurnalProfile::flat() {
  std::array<double, 24> w;
  w.fill(1.0);
  return DiurnalProfile(w);
}

DiurnalProfile DiurnalProfile::newsroom() {
  // Hour-by-hour relative newsroom activity.  Near-zero overnight, morning
  // ramp, sustained day-time peak, evening taper.  Shape chosen to match
  // the night-time quiescence visible in the paper's Fig. 4(a).
  return DiurnalProfile(std::array<double, 24>{
      0.30, 0.05, 0.02, 0.02, 0.02, 0.05,   // 00–05: quiet night
      0.30, 0.80, 1.20, 1.50, 1.60, 1.60,   // 06–11: morning ramp
      1.60, 1.70, 1.70, 1.60, 1.50, 1.40,   // 12–17: peak
      1.20, 1.00, 0.90, 0.80, 0.60, 0.45}); // 18–23: evening taper
}

double DiurnalProfile::intensity(double hour) const {
  double h = std::fmod(hour, 24.0);
  if (h < 0) h += 24.0;
  // Control point i sits at hour i + 0.5 (bucket centre); interpolate
  // between neighbouring centres, wrapping midnight.
  const double pos = h - 0.5;
  const double base = std::floor(pos);
  const double frac = pos - base;
  int i0 = static_cast<int>(base);
  if (i0 < 0) i0 += 24;
  const int i1 = (i0 + 1) % 24;
  return weights_[static_cast<std::size_t>(i0)] * (1.0 - frac) +
         weights_[static_cast<std::size_t>(i1)] * frac;
}

void DiurnalProfile::build_cumulative_table() {
  // Trapezoidal integral of `intensity` at 1-minute resolution over one
  // day.  Queries interpolate the table, keeping `cumulative` O(1).
  minute_cum_.resize(kTableSize);
  minute_cum_[0] = 0.0;
  const double dh = 24.0 / (kTableSize - 1);
  double prev = intensity(0.0);
  for (std::size_t i = 1; i < kTableSize; ++i) {
    const double cur = intensity(dh * static_cast<double>(i));
    minute_cum_[i] = minute_cum_[i - 1] + 0.5 * (prev + cur) * dh;
    prev = cur;
  }
}

double DiurnalProfile::hour_cumulative(double h) const {
  BROADWAY_CHECK_MSG(h >= 0.0 && h <= 24.0, "hour " << h);
  const double pos = h / 24.0 * (kTableSize - 1);
  const std::size_t lo = std::min(static_cast<std::size_t>(pos),
                                  kTableSize - 2);
  const double frac = pos - static_cast<double>(lo);
  return minute_cum_[lo] + frac * (minute_cum_[lo + 1] - minute_cum_[lo]);
}

double DiurnalProfile::cumulative(TimePoint t, double start_hour) const {
  BROADWAY_CHECK_MSG(t >= 0.0, "cumulative(" << t << ")");
  const double start = start_hour;
  const double end = start + t / 3600.0;
  auto frac24 = [](double x) {
    double f = std::fmod(x, 24.0);
    if (f < 0) f += 24.0;
    return f;
  };
  // Whole days contribute day_integral_ each; the partial edges come from
  // table lookups (arguments reduced modulo 24).
  const double whole_days = std::floor(end / 24.0) - std::floor(start / 24.0);
  return whole_days * day_integral_ + hour_cumulative(frac24(end)) -
         hour_cumulative(frac24(start));
}

TimePoint DiurnalProfile::inverse_cumulative(double target, double start_hour,
                                             Duration duration) const {
  BROADWAY_CHECK_MSG(target >= 0.0, "target " << target);
  const double total = cumulative(duration, start_hour);
  BROADWAY_CHECK_MSG(target <= total * (1.0 + 1e-9),
                     "target " << target << " beyond total " << total);
  // Bisection on the monotone cumulative function.  48 iterations give
  // sub-microsecond resolution over multi-day traces.
  double lo = 0.0;
  double hi = duration;
  for (int i = 0; i < 48; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cumulative(mid, start_hour) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace broadway

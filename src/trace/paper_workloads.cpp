#include "trace/paper_workloads.h"

#include "trace/diurnal.h"
#include "trace/generators.h"
#include "trace/stock.h"
#include "util/rng.h"

namespace broadway {

namespace {

// Distinct sub-seeds so each trace has an independent stream; adding or
// regenerating one workload never perturbs the others.
constexpr std::uint64_t kCnnSalt = 0x10;
constexpr std::uint64_t kApSalt = 0x20;
constexpr std::uint64_t kReutersSalt = 0x30;
constexpr std::uint64_t kGuardianSalt = 0x40;
constexpr std::uint64_t kAttSalt = 0x50;
constexpr std::uint64_t kYahooSalt = 0x60;

UpdateTrace make_news_trace(const std::string& name, std::uint64_t seed,
                            double start_hour, Duration duration,
                            std::size_t updates) {
  Rng rng(seed);
  const DiurnalProfile profile = DiurnalProfile::newsroom();
  std::vector<TimePoint> times =
      generate_with_count(rng, profile, start_hour, duration, updates);
  return UpdateTrace(name, std::move(times), duration, start_hour);
}

}  // namespace

UpdateTrace make_cnn_fn_trace(std::uint64_t seed) {
  // Aug 7 13:04 – Aug 9 14:34 = 49 h 30 m; 113 updates (avg 26 min).
  return make_news_trace("CNN/FN", seed + kCnnSalt,
                         /*start_hour=*/13.0 + 4.0 / 60.0,
                         hours(49.5), 113);
}

UpdateTrace make_nytimes_ap_trace(std::uint64_t seed) {
  // Aug 7 14:07 – Aug 9 11:25 = 45 h 18 m; 233 updates (avg 11.6 min).
  return make_news_trace("NYTimes/AP", seed + kApSalt,
                         /*start_hour=*/14.0 + 7.0 / 60.0,
                         hours(45.3), 233);
}

UpdateTrace make_nytimes_reuters_trace(std::uint64_t seed) {
  // Aug 7 14:12 – Aug 9 11:25 = 45 h 13 m; 133 updates (avg 20.3 min).
  return make_news_trace("NYTimes/Reuters", seed + kReutersSalt,
                         /*start_hour=*/14.2, hours(45.22), 133);
}

UpdateTrace make_guardian_trace(std::uint64_t seed) {
  // Aug 6 13:40 – Aug 9 15:32 = 73 h 52 m; 902 updates (avg 4.9 min).
  return make_news_trace("Guardian", seed + kGuardianSalt,
                         /*start_hour=*/13.0 + 40.0 / 60.0,
                         hours(73.87), 902);
}

std::vector<UpdateTrace> make_all_temporal_traces(std::uint64_t seed) {
  std::vector<UpdateTrace> out;
  out.push_back(make_cnn_fn_trace(seed));
  out.push_back(make_nytimes_ap_trace(seed));
  out.push_back(make_nytimes_reuters_trace(seed));
  out.push_back(make_guardian_trace(seed));
  return out;
}

ValueTrace make_att_stock_trace(std::uint64_t seed) {
  // Table 3: May 22 13:50–16:50 (3 h), 653 ticks, $35.8–$36.5.
  // NYSE decimalised in Jan 2001: penny grid.  Narrow band, small moves —
  // the paper's "infrequent changes in value".
  Rng rng(seed + kAttSalt);
  StockWalkConfig config;
  config.name = "AT&T";
  config.duration = hours(3.0);
  config.updates = 653;
  config.initial_value = 36.10;
  config.min_value = 35.8;
  config.max_value = 36.5;
  config.tick_size = 0.01;
  config.step_sigma = 0.035;
  config.reversion = 0.03;
  config.burstiness = 0.25;
  return generate_stock_walk(rng, config);
}

ValueTrace make_yahoo_stock_trace(std::uint64_t seed) {
  // Table 3: Mar 30 13:30–16:30 (3 h), 2204 ticks, $160.2–$171.2.
  // NASDAQ still quoted in sixteenths in March 2001: 1/16 grid.  Wide
  // band, frequent large moves — the paper's "frequent changes".
  Rng rng(seed + kYahooSalt);
  StockWalkConfig config;
  config.name = "Yahoo";
  config.duration = hours(3.0);
  config.updates = 2204;
  config.initial_value = 165.0;
  config.min_value = 160.2;
  config.max_value = 171.2;
  config.tick_size = 1.0 / 16.0;
  config.step_sigma = 0.45;
  config.reversion = 0.015;
  config.burstiness = 0.35;
  return generate_stock_walk(rng, config);
}

}  // namespace broadway

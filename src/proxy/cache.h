// The proxy's object cache.
//
// Entries record not just the payload but the provenance the consistency
// machinery and the evaluation need: when the copy was fetched (the server
// snapshot it represents), when it became visible to clients, and the
// last-modified instant the server reported.  The paper assumes an
// infinitely large cache (§6.1.1), so there is no eviction.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace broadway {

/// One cached object.
struct CacheEntry {
  std::string uri;
  std::string body;
  /// Server-side instant whose state this copy reflects.
  TimePoint snapshot_time = 0.0;
  /// Proxy-side instant the copy became visible (snapshot + latency).
  TimePoint stored_time = 0.0;
  /// Last-Modified reported by the server for this copy.
  std::optional<TimePoint> last_modified;
  /// Numeric value for value-domain objects.
  std::optional<double> value;
  /// Number of refreshes applied to this entry (0 = initial fetch only).
  std::size_t refresh_count = 0;
};

/// Uri-keyed cache.  Monotonicity invariant (paper §2: "we implicitly
/// require all cache consistency mechanisms to ensure that P_t
/// monotonically increases over time"): a store must never move an entry's
/// snapshot backwards.
class ProxyCache {
 public:
  /// Insert or refresh an entry.  Checks snapshot monotonicity.
  void store(CacheEntry entry);

  /// Lookup; nullptr on miss.
  const CacheEntry* find(const std::string& uri) const;

  /// Lookup that requires presence.
  const CacheEntry& at(const std::string& uri) const;

  bool contains(const std::string& uri) const;
  std::size_t size() const { return entries_.size(); }

  /// Hit/miss accounting for client-facing reads.
  const CacheEntry* lookup_counted(const std::string& uri);
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  std::vector<std::string> uris() const;

  /// Drop everything (cold-cache experiments; a crash with no persistent
  /// storage).
  void clear();

 private:
  std::map<std::string, CacheEntry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace broadway

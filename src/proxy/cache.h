// The proxy's object cache.
//
// Entries record not just the payload but the provenance the consistency
// machinery and the evaluation need: when the copy was fetched (the server
// snapshot it represents), when it became visible to clients, and the
// last-modified instant the server reported.  The paper assumes an
// infinitely large cache (§6.1.1), so there is no eviction.
//
// Storage is keyed by interned ObjectId (dense vector — a cache lookup on
// the poll hot path is one bounds check and one indexed load); the
// string-uri accessors translate through the shared UriTable and exist for
// tests, reports and the client-facing read path.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// One cached object.
struct CacheEntry {
  std::string uri;
  std::string body;
  /// Server-side instant whose state this copy reflects.
  TimePoint snapshot_time = 0.0;
  /// Proxy-side instant the copy became visible (snapshot + latency).
  TimePoint stored_time = 0.0;
  /// Last-Modified reported by the server for this copy.
  std::optional<TimePoint> last_modified;
  /// Numeric value for value-domain objects.
  std::optional<double> value;
  /// Number of refreshes applied to this entry (0 = initial fetch only).
  std::size_t refresh_count = 0;
};

/// ObjectId-keyed cache.  Monotonicity invariant (paper §2: "we implicitly
/// require all cache consistency mechanisms to ensure that P_t
/// monotonically increases over time"): a store must never move an entry's
/// snapshot backwards.
class ProxyCache {
 public:
  /// Standalone cache with its own intern table (tests, examples).
  ProxyCache();

  /// Cache sharing an external table (a polling engine shares its
  /// origin's).  `table` must outlive the cache.
  explicit ProxyCache(UriTable& table);

  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;

  /// Insert or refresh an entry.  Checks snapshot monotonicity.
  void store(CacheEntry entry);

  /// Hot path: return the entry for `id`, creating it if absent (uri
  /// filled from the table) or bumping refresh_count if present, after
  /// checking that `snapshot` does not move the entry backwards.  The
  /// caller overwrites payload and provenance fields in place, reusing
  /// their allocations.
  CacheEntry& refresh_entry(ObjectId id, TimePoint snapshot);

  /// Lookup; nullptr on miss.
  const CacheEntry* find(ObjectId id) const;
  const CacheEntry* find(const std::string& uri) const;

  /// Lookup that requires presence.
  const CacheEntry& at(const std::string& uri) const;

  bool contains(const std::string& uri) const {
    return find(uri) != nullptr;
  }
  std::size_t size() const { return count_; }

  /// Hit/miss accounting for client-facing reads.  The id overload is
  /// the client-traffic hot path (one bounds check, one indexed load);
  /// the string overload translates through the shared table.
  const CacheEntry* lookup_counted(ObjectId id);
  const CacheEntry* lookup_counted(const std::string& uri);
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  /// All cached uris, sorted (deterministic for tests and reports).
  std::vector<std::string> uris() const;

  /// Drop everything (cold-cache experiments; a crash with no persistent
  /// storage).
  void clear();

 private:
  std::unique_ptr<UriTable> owned_table_;  // null when sharing
  UriTable* table_;
  std::vector<std::optional<CacheEntry>> entries_;  // indexed by ObjectId
  std::size_t count_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;

  std::optional<CacheEntry>& slot(ObjectId id);
};

}  // namespace broadway

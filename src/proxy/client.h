// Client request workload against a single proxy cache.
//
// The paper's simulator "simulates a proxy cache that receives requests
// from several clients" (§6.1.1); its metrics are poll counts and fidelity,
// but the examples in this repository also report the staleness clients
// actually observe.  This generator issues a Poisson stream of requests
// over a weighted object set and classifies each served copy against the
// origin's ground truth (see client/client_metrics.h).
//
// Popularity is id-keyed: Config carries ObjectWeight entries resolved
// through the shared UriTable, so the request path is a dense indexed
// lookup with no hashing — the same PR 3/5 surface pattern as the cache,
// poll log and coordinator dispatch.  Config::from_uris is the string
// translating wrapper; unknown uris fail fast at construction instead of
// silently getting zero traffic.  For traffic over a whole ProxyFleet use
// client/client_traffic.h, which adds Zipf × diurnal shaping and
// per-proxy aggregated streams.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "client/client_metrics.h"
#include "origin/origin_server.h"
#include "proxy/cache.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace broadway {

/// Poisson client stream.  Construct, then `start()`, then run the
/// simulator; read `stats()` afterwards.
class ClientWorkload {
 public:
  struct Config {
    /// Aggregate request rate (requests/s across all objects).
    double request_rate = 1.0;
    /// Object popularity: requests pick an object with probability
    /// proportional to weight.  Every object must be hosted by the
    /// origin (checked at construction).
    std::vector<ObjectWeight> popularity;
    std::uint64_t seed = 7;

    /// Translating wrapper: resolve string-keyed weights through the
    /// origin's shared UriTable.  Unknown uris are a CheckFailure —
    /// a typo'd uri fails fast instead of draining traffic silently.
    static Config from_uris(const OriginServer& origin, double request_rate,
                            const std::map<std::string, double>& popularity,
                            std::uint64_t seed = 7);
  };

  ClientWorkload(Simulator& sim, ProxyCache& cache,
                 const OriginServer& origin, Config config);

  ClientWorkload(const ClientWorkload&) = delete;
  ClientWorkload& operator=(const ClientWorkload&) = delete;

  /// Begin issuing requests at the current simulation time.
  void start();

  /// Stop issuing further requests.
  void stop();

  const ClientMetrics& stats() const { return stats_; }

 private:
  Simulator& sim_;
  ProxyCache& cache_;
  const OriginServer& origin_;
  Config config_;
  Rng rng_;
  std::vector<ObjectId> objects_;
  std::vector<double> weights_;
  PeriodicTask task_;
  ClientMetrics stats_;

  void issue_request();
};

}  // namespace broadway

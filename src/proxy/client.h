// Client request workload against the proxy cache.
//
// The paper's simulator "simulates a proxy cache that receives requests
// from several clients" (§6.1.1); its metrics are poll counts and fidelity,
// but the examples in this repository also report the staleness clients
// actually observe.  This generator issues a Poisson stream of requests
// over a weighted object set and records, for each request, whether the
// served copy was fresh (identical to the origin's current version) and by
// how much it lagged.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "origin/origin_server.h"
#include "proxy/cache.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace broadway {

/// Aggregate view of what clients experienced.
struct ClientStats {
  std::size_t requests = 0;
  std::size_t hits = 0;          ///< served from cache
  std::size_t misses = 0;        ///< object not cached at request time
  std::size_t fresh = 0;         ///< served copy matched the origin version
  std::size_t stale = 0;         ///< served copy lagged the origin
  OnlineStats staleness;         ///< lag (s) of stale responses
};

/// Poisson client stream.  Construct, then `start()`, then run the
/// simulator; read `stats()` afterwards.
class ClientWorkload {
 public:
  struct Config {
    /// Aggregate request rate (requests/s across all objects).
    double request_rate = 1.0;
    /// Object popularity weights (uri -> weight).  Requests pick an object
    /// with probability proportional to weight.
    std::map<std::string, double> popularity;
    std::uint64_t seed = 7;
  };

  ClientWorkload(Simulator& sim, ProxyCache& cache,
                 const OriginServer& origin, Config config);

  ClientWorkload(const ClientWorkload&) = delete;
  ClientWorkload& operator=(const ClientWorkload&) = delete;

  /// Begin issuing requests at the current simulation time.
  void start();

  /// Stop issuing further requests.
  void stop();

  const ClientStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  ProxyCache& cache_;
  const OriginServer& origin_;
  Config config_;
  Rng rng_;
  std::vector<std::string> uris_;
  std::vector<double> weights_;
  PeriodicTask task_;
  ClientStats stats_;

  void issue_request();
};

}  // namespace broadway

#include "proxy/poll_log.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

namespace {
const std::vector<std::size_t> kNoRecords;
// Compaction runs when at least this many records are evictable AND they
// are at least half the log — amortised O(1) per append.
constexpr std::size_t kMinCompactSlack = 64;
}  // namespace

PollLog::PollLog()
    : owned_table_(std::make_unique<UriTable>()), table_(owned_table_.get()) {}

PollLog::PollLog(UriTable& table) : table_(&table) {}

PollLog::UriIndex& PollLog::index_for(ObjectId object) {
  if (by_id_.size() <= object) by_id_.resize(object + 1);
  return by_id_[object];
}

void PollLog::count(UriIndex& index, const PollRecord& record) {
  ++index.live;
  if (window_ > 0 && index.live > window_) ++evictable_;
  if (record.failed) {
    ++failed_total_;
    return;
  }
  index.successful.push_back(records_.size());
  if (record.cause == PollCause::kRelay) {
    // A relay refreshes the copy without an origin message: it appears
    // in the successful-record series (the evaluation sees the refresh)
    // but not in the origin-poll counters.
    ++index.relays;
    ++relay_total_;
  } else if (record.cause == PollCause::kInitial) {
    ++initial_total_;
  } else {
    ++index.performed;
    ++performed_total_;
  }
  if (record.cause == PollCause::kTriggered) {
    ++index.triggered;
    ++triggered_total_;
  } else if (record.cause == PollCause::kClientMiss) {
    ++index.demand;
    ++demand_total_;
  }
}

void PollLog::append(PollRecord record) {
  if (record.object == kInvalidObjectId) {
    record.object = table_->intern(record.uri);
  }
  if (record.uri.empty()) {
    record.uri = table_->uri(record.object);
  }
  count(index_for(record.object), record);
  records_.push_back(std::move(record));
  maybe_compact();
}

void PollLog::append(ObjectId object, PollCause cause, bool modified,
                     bool failed, TimePoint snapshot, TimePoint complete) {
  PollRecord record;
  record.snapshot_time = snapshot;
  record.complete_time = complete;
  record.uri = table_->uri(object);
  record.object = object;
  record.cause = cause;
  record.modified = modified;
  record.failed = failed;
  count(index_for(object), record);
  records_.push_back(std::move(record));
  maybe_compact();
}

const PollLog::UriIndex* PollLog::find(const std::string& uri) const {
  const ObjectId id = table_->find(uri);
  if (id == kInvalidObjectId || id >= by_id_.size()) return nullptr;
  return &by_id_[id];
}

const std::vector<std::size_t>& PollLog::successful_records(
    const std::string& uri) const {
  const UriIndex* index = find(uri);
  return index == nullptr ? kNoRecords : index->successful;
}

const std::vector<std::size_t>& PollLog::successful_records(
    ObjectId object) const {
  return object < by_id_.size() ? by_id_[object].successful : kNoRecords;
}

std::vector<TimePoint> PollLog::completion_times(
    const std::string& uri) const {
  const std::vector<std::size_t>& indices = successful_records(uri);
  std::vector<TimePoint> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.push_back(records_[i].complete_time);
  }
  return out;
}

std::vector<TimePoint> PollLog::snapshot_times(const std::string& uri) const {
  const std::vector<std::size_t>& indices = successful_records(uri);
  std::vector<TimePoint> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.push_back(records_[i].snapshot_time);
  }
  return out;
}

std::size_t PollLog::polls_performed(const std::string& uri) const {
  if (uri.empty()) return performed_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->performed;
}

std::size_t PollLog::polls_performed(ObjectId object) const {
  return object < by_id_.size() ? by_id_[object].performed : 0;
}

std::size_t PollLog::triggered_polls(const std::string& uri) const {
  if (uri.empty()) return triggered_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->triggered;
}

std::size_t PollLog::relay_refreshes(const std::string& uri) const {
  if (uri.empty()) return relay_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->relays;
}

std::size_t PollLog::demand_fills(const std::string& uri) const {
  if (uri.empty()) return demand_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->demand;
}

std::size_t PollLog::demand_fills(ObjectId object) const {
  return object < by_id_.size() ? by_id_[object].demand : 0;
}

void PollLog::set_retention_window(std::size_t window) {
  window_ = window;
  evictable_ = 0;
  if (window_ == 0) return;
  for (const UriIndex& index : by_id_) {
    if (index.live > window_) evictable_ += index.live - window_;
  }
  maybe_compact();
}

void PollLog::maybe_compact() {
  if (window_ == 0 || evictable_ < kMinCompactSlack) return;
  if (evictable_ * 2 < records_.size()) return;
  compact();
}

void PollLog::compact() {
  if (window_ == 0 || evictable_ == 0) return;
  // Per-object: drop the oldest (live - window) records.  One forward
  // pass keeps relative order, so the rebuilt successful indices stay
  // ascending in both record order and time.
  std::vector<std::size_t> drop(by_id_.size(), 0);
  for (std::size_t id = 0; id < by_id_.size(); ++id) {
    if (by_id_[id].live > window_) drop[id] = by_id_[id].live - window_;
  }
  std::vector<PollRecord> kept;
  kept.reserve(records_.size() - evictable_);
  for (PollRecord& record : records_) {
    BROADWAY_CHECK(record.object < drop.size());
    if (drop[record.object] > 0) {
      --drop[record.object];
      continue;
    }
    kept.push_back(std::move(record));
  }
  records_ = std::move(kept);
  // Rebuild the positional state (successful indices, live counts); the
  // running counters are *totals* and must survive eviction untouched.
  for (UriIndex& index : by_id_) {
    index.successful.clear();
    index.live = 0;
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    UriIndex& index = by_id_[records_[i].object];
    ++index.live;
    if (!records_[i].failed) index.successful.push_back(i);
  }
  evictable_ = 0;
}

}  // namespace broadway

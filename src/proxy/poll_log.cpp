#include "proxy/poll_log.h"

namespace broadway {

namespace {
const std::vector<std::size_t> kNoRecords;
}  // namespace

void PollLog::append(PollRecord record) {
  const std::size_t index = records_.size();
  UriIndex& uri_index = by_uri_[record.uri];
  if (record.failed) {
    ++failed_total_;
  } else {
    uri_index.successful.push_back(index);
    if (record.cause == PollCause::kRelay) {
      // A relay refreshes the copy without an origin message: it appears
      // in the successful-record series (the evaluation sees the refresh)
      // but not in the origin-poll counters.
      ++uri_index.relays;
      ++relay_total_;
    } else if (record.cause != PollCause::kInitial) {
      ++uri_index.performed;
      ++performed_total_;
    }
    if (record.cause == PollCause::kTriggered) {
      ++uri_index.triggered;
      ++triggered_total_;
    }
  }
  records_.push_back(std::move(record));
}

const PollLog::UriIndex* PollLog::find(const std::string& uri) const {
  const auto it = by_uri_.find(uri);
  return it == by_uri_.end() ? nullptr : &it->second;
}

const std::vector<std::size_t>& PollLog::successful_records(
    const std::string& uri) const {
  const UriIndex* index = find(uri);
  return index == nullptr ? kNoRecords : index->successful;
}

std::vector<TimePoint> PollLog::completion_times(
    const std::string& uri) const {
  const std::vector<std::size_t>& indices = successful_records(uri);
  std::vector<TimePoint> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.push_back(records_[i].complete_time);
  }
  return out;
}

std::vector<TimePoint> PollLog::snapshot_times(const std::string& uri) const {
  const std::vector<std::size_t>& indices = successful_records(uri);
  std::vector<TimePoint> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.push_back(records_[i].snapshot_time);
  }
  return out;
}

std::size_t PollLog::polls_performed(const std::string& uri) const {
  if (uri.empty()) return performed_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->performed;
}

std::size_t PollLog::triggered_polls(const std::string& uri) const {
  if (uri.empty()) return triggered_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->triggered;
}

std::size_t PollLog::relay_refreshes(const std::string& uri) const {
  if (uri.empty()) return relay_total_;
  const UriIndex* index = find(uri);
  return index == nullptr ? 0 : index->relays;
}

}  // namespace broadway

// Syntactic relationship extraction (paper §5.2).
//
// "Syntactic relationships can be deduced by parsing html documents for
// embedded links and objects."  This extractor pulls the URLs of embedded
// resources — the objects a page cannot be rendered without, exactly the
// "news story + embedded images" groups of the paper's motivating
// example — from an HTML body.  It is a tolerant scanner, not a validating
// parser: real-world 2001-era news HTML was far from well-formed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace broadway {

/// URLs of embedded resources: img/script/iframe/embed/audio/video/source
/// `src` attributes plus stylesheet `link href`s.  Order of first
/// appearance, duplicates removed.  Attribute values may be quoted with
/// single or double quotes or unquoted.
std::vector<std::string> extract_embedded_links(std::string_view html);

/// URLs of anchor (`<a href>`) links — navigational relationships, kept
/// separate because the paper's grouping concerns embedded objects.
std::vector<std::string> extract_anchor_links(std::string_view html);

}  // namespace broadway

// The proxy's polling engine: binds refresh policies, mutual-consistency
// coordinators and value-domain policies to the simulator and the origin
// server, and keeps the poll log the evaluation is computed from.
//
// One engine models one proxy.  Objects are registered with a policy, the
// engine performs the initial fetch and all subsequent `if-modified-since`
// refreshes, coordinators may force extra ("triggered") polls, and every
// poll is recorded with its cause (paper Figs. 5–6 account base polls and
// extras separately).
//
// Architecture: every registered uri becomes a TrackedObject (see
// tracked_object.h) and every poll of every object kind — temporal, value,
// virtual-group member, partitioned-group member — runs through the single
// pipeline in poll_object(): exchange → loss/retry → store → record →
// policy update → coordinator notify.  Records land in an indexed PollLog
// (see poll_log.h), so the per-object metric accessors below are
// O(records-for-uri) or O(1) instead of scans of the global log.
//
// Hot-path representation: uris are interned once at registration into the
// origin's shared UriTable; the pipeline carries dense ObjectId handles
// into the cache, the poll log, the coordinator dispatch and the fleet
// relay path.  Coordinator notification is subscription-routed: each
// TrackedObject carries the list of coordinators watching it (built at
// add_coordinator time from the coordinator's interned member set), so the
// notify stage costs O(subscribers-of-this-object) — nothing at all for
// ungrouped objects — instead of a string-keyed virtual call per attached
// coordinator per poll.  Exchanges use
// the typed wire sideband (RequestMeta/ResponseMeta, see message.h) with a
// per-engine scratch Request and a small pool of scratch Responses (one
// per trigger-cascade depth), so a steady-state poll allocates nothing.
// `EngineConfig::typed_wire = false` forces the legacy header-string
// representation — the differential tests pin that both produce
// byte-identical policy decisions, poll logs and fidelity results.
//
// Failure model:
//  * lost polls — with `loss_probability`, a poll fails (no response); the
//    engine retries after `retry_delay`, recording the failure;
//  * proxy crash — `crash_and_recover()` resets every policy to TTR_min
//    exactly as §3.1 prescribes ("recovering from a proxy failure simply
//    involves resetting the TTRs of all objects to TTR_min").  Retries
//    pending at the crash die with the proxy: recovery resets TTRs, it
//    does not resurrect in-flight requests.
//
// Latency model: the paper fixes network latency and studies consistency
// mechanisms, not network dynamics (§6.1.1).  A poll here is atomic at its
// firing instant with `rtt` accounted in the poll record (snapshot_time =
// fire time, complete_time = fire time + rtt): poll *scheduling* is
// unaffected by latency, exactly as with the paper's fixed-latency
// assumption, while evaluators still see when the cached copy actually
// switched.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/partitioned.h"
#include "consistency/types.h"
#include "consistency/value_ttr.h"
#include "consistency/virtual_object.h"
#include "origin/origin_server.h"
#include "proxy/cache.h"
#include "proxy/poll_log.h"
#include "proxy/tracked_object.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/uri_table.h"

namespace broadway {

/// Engine configuration.
struct EngineConfig {
  /// Fixed round-trip time added between a poll's snapshot and the moment
  /// the refreshed copy is visible to clients.
  Duration rtt = 0.0;
  /// Probability that any given poll is lost (failure injection).
  double loss_probability = 0.0;
  /// Delay before retrying a lost poll.
  Duration retry_delay = 5.0;
  /// Seed for the loss-injection stream.
  std::uint64_t seed = 42;
  /// Exchange typed wire metadata in-process (the fast path).  False =
  /// render and parse header strings per poll, as real HTTP would; kept
  /// for the typed≡string differential tests and wire-level debugging.
  bool typed_wire = true;
  /// Route coordinator notifications through the pre-subscription fan-out:
  /// every attached coordinator hears every temporal poll through the
  /// string-keyed `on_poll(uri)` wrapper (one uri hash per coordinator per
  /// poll).  Kept for the dispatch differential tests; the default
  /// id-keyed path notifies only the coordinators subscribed to the
  /// polled object.  Both paths produce byte-identical poll logs.
  bool legacy_dispatch = false;
  /// Demand-fill the client miss path: a client read that misses the
  /// cache fetches the object from the origin (PollCause::kClientMiss)
  /// through the same pipeline as a policy poll — the filled copy enters
  /// the cache, the poll log, the relay fan-out and the policy schedule.
  /// Off by default: the paper's proxy polls by policy only.
  bool demand_fill = false;
};

/// One successful origin poll, as seen by a fleet-level observer.  All
/// references point at pipeline-owned state and are valid only for the
/// duration of the listener call — copy what must outlive it (for a
/// Response, ResponseMeta::own_history() first).
struct PollEvent {
  const std::string& uri;
  /// Interned id of `uri` in the engine's shared table.
  ObjectId object;
  PollCause cause;
  /// The origin's response (200 or 304) to this poll.
  const Response& response;
  /// Fire instant of the poll (server-state snapshot).
  TimePoint snapshot;
  /// Coordinator observation for non-initial temporal polls; nullptr
  /// otherwise.
  const TemporalPollObservation* observation;
};

/// The polling engine.
class PollingEngine {
 public:
  using PollListener = std::function<void(const PollEvent&)>;

  PollingEngine(Simulator& sim, OriginServer& origin);
  PollingEngine(Simulator& sim, OriginServer& origin, EngineConfig config);

  PollingEngine(const PollingEngine&) = delete;
  PollingEngine& operator=(const PollingEngine&) = delete;

  // ---- registration (before start()) ----

  /// Track a temporal-domain object with the given refresh policy.
  void add_temporal_object(const std::string& uri,
                           std::unique_ptr<RefreshPolicy> policy);

  /// Attach a mutual-consistency coordinator.  Its member uris must all be
  /// registered temporal objects *already* — they are interned here and
  /// the engine subscribes the coordinator to each member, so later polls
  /// of those objects (and only those) notify it.  Multiple coordinators
  /// may coexist (disjoint or overlapping groups).
  MutualCoordinator& add_coordinator(
      std::unique_ptr<MutualCoordinator> coordinator);

  /// Track a value-domain object with its own Δv policy.
  void add_value_object(const std::string& uri,
                        AdaptiveValueTtrPolicy::Config config);

  /// Track a group jointly through a virtual object (adaptive Mv).  Every
  /// member is fetched on each joint poll; each fetch counts as one poll.
  void add_virtual_group(std::vector<std::string> uris,
                         std::unique_ptr<VirtualObjectPolicy> policy);

  /// Track a group via partitioned tolerances (linear f).  Members poll
  /// independently; the policy re-apportions δ across them as rates
  /// evolve.
  void add_partitioned_group(std::vector<std::string> uris,
                             std::unique_ptr<PartitionedTolerancePolicy> policy);

  /// Fetch every registered object once (PollCause::kInitial) and arm the
  /// refresh timers.  Call exactly once, before running the simulator.
  void start();

  /// True when `uri` is registered with this engine (any object kind).
  bool tracks(const std::string& uri) const {
    return tracked(uris_.find(uri)) != nullptr;
  }

  /// True when `uri` is registered as a temporal-domain object — the only
  /// kind coordinator hooks (and thus δ-group membership) apply to.
  bool tracks_temporal(const std::string& uri) const {
    return tracks_temporal(uris_.find(uri));
  }
  bool tracks_temporal(ObjectId id) const {
    const TrackedObject* object = tracked(id);
    return object != nullptr && object->temporal();
  }

  /// True when a sibling relay of `object` could be applied here: tracked
  /// and self-scheduled (group-polled members follow their group's joint
  /// schedule and cannot absorb individual relays).
  bool relay_eligible(ObjectId id) const {
    const TrackedObject* object = tracked(id);
    return object != nullptr && object->self_scheduled();
  }
  bool relay_eligible(const std::string& uri) const {
    return relay_eligible(uris_.find(uri));
  }

  /// Earliest future instant at which `id` can start an origin poll from
  /// its own schedule: its refresh-timer fire or the soonest pending
  /// lost-poll retry, whichever comes first.  kTimeInfinity when the
  /// object is unknown here or has neither armed.  Triggered polls are
  /// deliberately excluded — they happen *at* another object's poll or a
  /// relay delivery, so a lower bound over those instants already covers
  /// them.  Used by the sharded fleet's adaptive lookahead windows.
  TimePoint next_send_time(ObjectId id) const {
    const TrackedObject* object = tracked(id);
    if (object == nullptr) return kTimeInfinity;
    TimePoint bound = object->next_pending_retry();
    if (object->task() != nullptr) {
      bound = std::min(bound, object->task()->next_fire_time());
    }
    return bound;
  }

  /// Observe every *successful origin poll* of this engine (relay
  /// applications do not fire the listener, so fleet-level relaying cannot
  /// storm).  One listener per engine; the fleet layer multiplexes.
  void set_poll_listener(PollListener listener) {
    poll_listener_ = std::move(listener);
  }

  /// Engine facilities for coordination layers that span engines (the
  /// proxy fleet's cross-proxy δ-groups).  Same hooks engine-local
  /// coordinators receive from add_coordinator().
  CoordinatorHooks coordinator_hooks() { return make_hooks(); }

  /// The shared intern table (the origin's).
  const UriTable& uri_table() const { return uris_; }

  // ---- runtime ----

  /// Simulate a proxy crash + recovery at the current instant: every
  /// policy and coordinator resets; every timer restarts at its policy's
  /// initial TTR; retries pending for polls lost before the crash are
  /// dropped.  Cached payloads survive (they are on disk); learned polling
  /// state does not.  Equivalent to crash() immediately followed by
  /// recover().
  void crash_and_recover();

  /// Take the proxy dark at the current instant: every poll timer stops,
  /// pending retries die, and until recover() the engine refuses new work
  /// — client reads are served from the (possibly stale) disk cache or
  /// miss with MissReason::kProxyDark, and never demand-fill.  The fleet
  /// layer additionally drops relays addressed to a dark proxy.  Used by
  /// the fault-injection schedule (fleet/faults.h).
  void crash();

  /// Bring a dark proxy back: the §3.1 recovery semantics of
  /// crash_and_recover() — every policy and coordinator resets, every
  /// timer restarts at its policy's initial TTR.
  void recover();

  /// True between crash() and recover().
  bool dark() const { return dark_; }

  /// Apply a response relayed by a sibling proxy (cooperative push),
  /// recording the refresh as PollCause::kRelay (no origin message):
  ///  * a 200 relay refreshes the cached copy and runs the normal
  ///    policy/coordinator stages as if this proxy had polled the origin
  ///    at this instant.  The relayed X-Modification-History — updates
  ///    since the *sibling's* previous poll — is restricted to the updates
  ///    this proxy has not yet seen (inside TrackedObject::on_response, so
  ///    the response itself is never copied), and violation inference
  ///    matches an own poll;
  ///  * a 304 relay is a *validation*: when its Last-Modified names a
  ///    version this proxy has already seen, the copy is confirmed current
  ///    through the relayed snapshot and the policy observes an unmodified
  ///    poll.
  /// `snapshot` is the server-state instant of the relayed response — the
  /// relaying proxy's poll fire time (PollEvent::snapshot).  With a
  /// non-zero relay latency it lies before now; the refresh is recorded
  /// with that true snapshot and becomes visible at now, so the fidelity
  /// evaluation never credits the sibling with server state it was not
  /// actually sent.  Returns false (no state change) when the object is
  /// not tracked here, is group-scheduled, the engine has not started, the
  /// cached copy is already current (200) or not validated by the relay
  /// (304).
  bool apply_relay(ObjectId id, const Response& response, TimePoint snapshot);
  bool apply_relay(const std::string& uri, const Response& response,
                   TimePoint snapshot) {
    return apply_relay(uris_.find(uri), response, snapshot);
  }

  /// One client read served by this proxy at the current instant.
  struct ClientRead {
    /// Why a read missed.  "Object not tracked by this proxy" and
    /// "tracked but not yet cached" are different conditions: only the
    /// latter can demand-fill (an untracked id has no policy, no trace
    /// registration and no relay eligibility here — filling it would
    /// bypass the consistency machinery entirely, so untracked ids never
    /// fill; register the object first).
    enum class MissReason {
      kNone,       ///< the read hit
      kUntracked,  ///< id not registered with this proxy
      kUncached,   ///< tracked, but no cached copy yet
      kProxyDark,  ///< no cached copy and the proxy is crashed (dark)
    };

    bool hit = false;
    MissReason miss_reason = MissReason::kNone;
    /// True when the proxy was dark (crashed) at the read: a hit was
    /// served from the surviving disk cache with no refreshes arriving, a
    /// miss could not demand-fill (MissReason::kProxyDark).
    bool dark = false;
    /// True when a miss was demand-filled from the origin just now
    /// (EngineConfig::demand_fill): snapshot/visible below describe the
    /// freshly fetched copy.  The read still counts as a miss — the
    /// client paid the origin round-trip, not a cache hit.
    bool filled = false;
    /// Client-observed fill latency (visible - request instant) of a
    /// filled miss; 0 otherwise.
    Duration fill_latency = 0.0;
    /// Server-state instant of the served copy.  A relay-delivered copy
    /// reports the *relayed* snapshot (the sender's poll fire time) —
    /// delivery latency is never credited as freshness.
    TimePoint snapshot = 0.0;
    /// When the copy became usable at this proxy (snapshot + rtt for own
    /// polls; the delivery instant for relays).
    TimePoint visible = 0.0;
  };

  /// Serve a client read of `id` from the cache, counting it in the
  /// cache's hit/miss accounting.  The request hook of the client traffic
  /// layer (src/client/).  With EngineConfig::demand_fill unset a miss is
  /// only recorded (the paper's proxy polls by policy, it does not fault
  /// on demand); with it set, a miss on a tracked self-scheduled object
  /// fetches through to the origin (PollCause::kClientMiss) via the
  /// shared poll pipeline — loss injection applies (a lost fill leaves
  /// the miss unfilled and retries like any lost poll), and the filled
  /// copy relays to siblings and updates the policy schedule like any
  /// other poll.  Untracked ids and group-polled members never fill (see
  /// ClientRead::MissReason).
  ClientRead serve_client_read(ObjectId id);

  // ---- results ----

  /// The indexed poll log (vector-compatible reads; see PollLog).
  const PollLog& poll_log() const { return poll_log_; }

  /// Bound poll-log memory for long-horizon runs: keep at most `window`
  /// records per object (0 = unlimited, the default).  Counters stay
  /// exact; per-object record series are truncated to the window — see
  /// PollLog::set_retention_window.
  void set_poll_log_retention(std::size_t window) {
    poll_log_.set_retention_window(window);
  }

  /// Completion instants of successful polls of `uri`, ascending,
  /// including the initial fetch.
  std::vector<TimePoint> poll_completion_times(const std::string& uri) const {
    return poll_log_.completion_times(uri);
  }

  /// Snapshot instants of successful polls of `uri` (same indexing as
  /// poll_completion_times).
  std::vector<TimePoint> poll_snapshot_times(const std::string& uri) const {
    return poll_log_.snapshot_times(uri);
  }

  /// Successful polls excluding initial fetches — the paper's "number of
  /// polls" metric.  Empty uri = all objects.  O(1).
  std::size_t polls_performed(const std::string& uri = "") const {
    return poll_log_.polls_performed(uri);
  }

  /// Triggered polls only (the mutual-consistency overhead).  O(1).
  std::size_t triggered_polls(const std::string& uri = "") const {
    return poll_log_.triggered_polls(uri);
  }

  /// Refreshes applied from sibling-proxy relays.  Empty uri = all
  /// objects.  O(1).
  std::size_t relay_refreshes(const std::string& uri = "") const {
    return poll_log_.relay_refreshes(uri);
  }

  /// Successful demand fills (client misses fetched through to the
  /// origin).  Empty uri = all objects.  O(1).
  std::size_t demand_fills(const std::string& uri = "") const {
    return poll_log_.demand_fills(uri);
  }

  /// Failed (lost) poll attempts.
  std::size_t failed_polls() const { return poll_log_.failed_polls(); }

  /// Coordinator notifications dispatched so far (one per coordinator
  /// `on_poll` call).  An engine with no subscribed coordinators performs
  /// none — the zero-coordinator pin in the dispatch tests.
  std::uint64_t coordinator_notifies() const { return coordinator_notifies_; }

  /// Coordinators subscribed to `uri`'s polls (0 for unknown uris).
  std::size_t subscriber_count(const std::string& uri) const {
    const TrackedObject* object = tracked(uris_.find(uri));
    return object == nullptr ? 0 : object->subscribers().size();
  }

  /// TTR value after each poll of `uri` (Fig. 4(b) series).  Empty for
  /// unknown uris and for group-polled members (whose schedule is the
  /// group's), so reporting over mixed registries never aborts a run.
  const std::vector<std::pair<TimePoint, Duration>>& ttr_series(
      const std::string& uri) const;

  const ProxyCache& cache() const { return cache_; }
  ProxyCache& cache() { return cache_; }

 private:
  // A group tracked through a virtual object: members are fetched jointly
  // and the group policy schedules the next joint poll.
  struct VirtualGroup {
    std::vector<VirtualMemberObject*> members;  // owned by objects_by_id_
    std::unique_ptr<VirtualObjectPolicy> policy;
    std::unique_ptr<PeriodicTask> task;
    std::vector<double> values_scratch;  // reused across joint polls
  };

  // A partitioned-tolerance group: members self-schedule against the
  // shared policy; the group record owns that policy.
  struct PartitionedGroup {
    std::unique_ptr<PartitionedTolerancePolicy> policy;
  };

  Simulator& sim_;
  OriginServer& origin_;
  UriTable& uris_;  // the origin's table
  EngineConfig config_;
  ProxyCache cache_;
  bool started_ = false;
  // True between crash() and recover(): timers are stopped and the engine
  // refuses new work (polls, fills, triggers).
  bool dark_ = false;

  // unique_ptr elements: scheduled tasks and groups capture raw object
  // pointers, which must survive container growth.  Indexed by ObjectId;
  // ordered_ repeats them sorted by uri for deterministic start/recovery
  // sweeps (the iteration order of the uri-keyed map this replaces).
  std::vector<std::unique_ptr<TrackedObject>> objects_by_id_;
  std::vector<TrackedObject*> ordered_;
  std::vector<std::unique_ptr<MutualCoordinator>> coordinators_;
  std::vector<std::unique_ptr<VirtualGroup>> virtual_groups_;
  std::vector<std::unique_ptr<PartitionedGroup>> partitioned_groups_;

  PollLog poll_log_;
  // Coordinator on_poll calls dispatched (both dispatch modes).
  std::uint64_t coordinator_notifies_ = 0;
  // Retry events scheduled for lost polls; cancelled on crash.
  std::unordered_set<EventId> pending_retries_;
  // Fleet-level observer of successful origin polls (may be empty).
  PollListener poll_listener_;

  // Scratch messages for the in-process exchange.  The request is reused
  // within exchange() (no callbacks run inside origin_.handle); responses
  // are pooled per pipeline depth, because a coordinator-triggered poll
  // re-enters poll_object() while the outer frame still reads its
  // response.
  Request scratch_request_;
  std::vector<std::unique_ptr<Response>> response_pool_;
  std::size_t pipeline_depth_ = 0;

  // ---- the poll pipeline ----

  // Poll one object through the shared pipeline.  `retry` is invoked
  // (after retry_delay) when loss injection eats the poll: for
  // self-scheduled objects it re-polls the object, for virtual-group
  // members it re-polls the whole group.  Returns false on loss.
  bool poll_object(TrackedObject& object, PollCause cause,
                   const std::function<void()>& retry);

  // Poll a self-scheduled object (retry closure re-polls it).
  void poll_self(TrackedObject& object, PollCause cause);

  // Jointly poll every member of a virtual group, then reschedule it.
  void poll_group(VirtualGroup& group, PollCause cause);

  // Perform the HTTP exchange into `out` (no failure injection; the
  // pipeline draws losses before calling this).
  void exchange(const TrackedObject& object,
                std::optional<TimePoint> if_modified_since, Response& out);

  // Stages 3–6 of the pipeline, shared by own polls and applied relays:
  // refresh the cache, record the poll, update the policy/schedule, and
  // notify the subscribed coordinators.  `snapshot` is the server-state
  // instant the response reflects, `visible` when the refreshed copy is
  // usable at the proxy, `previous` the completion instant of the
  // preceding poll.  Returns the outcome so poll_object's fleet-listener
  // stage can hand the observation on.
  PollOutcome apply_outcome(TrackedObject& object, const Response& response,
                            PollCause cause, TimePoint snapshot,
                            TimePoint visible, TimePoint previous);

  // Stage 6: coordinator dispatch.  The id-keyed default walks the
  // object's subscriber index (empty for ungrouped objects — the loop
  // body never runs); EngineConfig::legacy_dispatch restores the
  // broadcast-to-every-coordinator fan-out through the string wrapper.
  void notify_coordinators(TrackedObject& object,
                           const TemporalPollObservation& obs);

  // Refresh the cached copy: `snapshot` is the server-state instant the
  // response reflects, `visible` when it is usable at the proxy (snapshot
  // + rtt for own polls; the delivery instant for relays).
  void store_response(const TrackedObject& object, const Response& response,
                      TimePoint snapshot, TimePoint visible);

  void schedule_retry(TrackedObject& object,
                      const std::function<void()>& retry);

  // Register an object under its uri; attaches a self-scheduling task
  // unless the object is group-polled.
  TrackedObject& register_object(std::unique_ptr<TrackedObject> object,
                                 bool self_scheduled);

  const TrackedObject* tracked(ObjectId id) const {
    return id < objects_by_id_.size() ? objects_by_id_[id].get() : nullptr;
  }
  TrackedObject* tracked(ObjectId id) {
    return id < objects_by_id_.size() ? objects_by_id_[id].get() : nullptr;
  }

  CoordinatorHooks make_hooks();
  TrackedObject& temporal_object(ObjectId id);
  TrackedObject& temporal_object(const std::string& uri);
};

}  // namespace broadway

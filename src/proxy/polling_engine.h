// The proxy's polling engine: binds refresh policies, mutual-consistency
// coordinators and value-domain policies to the simulator and the origin
// server, and keeps the poll log the evaluation is computed from.
//
// One engine models one proxy.  Objects are registered with a policy, the
// engine performs the initial fetch and all subsequent `if-modified-since`
// refreshes, coordinators may force extra ("triggered") polls, and every
// poll is recorded with its cause (paper Figs. 5–6 account base polls and
// extras separately).
//
// Failure model:
//  * lost polls — with `loss_probability`, a poll fails (no response); the
//    engine retries after `retry_delay`, recording the failure;
//  * proxy crash — `crash_and_recover()` resets every policy to TTR_min
//    exactly as §3.1 prescribes ("recovering from a proxy failure simply
//    involves resetting the TTRs of all objects to TTR_min").
//
// Latency model: the paper fixes network latency and studies consistency
// mechanisms, not network dynamics (§6.1.1).  A poll here is atomic at its
// firing instant with `rtt` accounted in the poll record (snapshot_time =
// fire time, complete_time = fire time + rtt): poll *scheduling* is
// unaffected by latency, exactly as with the paper's fixed-latency
// assumption, while evaluators still see when the cached copy actually
// switched.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/partitioned.h"
#include "consistency/types.h"
#include "consistency/value_ttr.h"
#include "consistency/virtual_object.h"
#include "origin/origin_server.h"
#include "proxy/cache.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace broadway {

/// One completed (or failed) poll.
struct PollRecord {
  /// Server-state instant the response reflects (fire time).
  TimePoint snapshot_time = 0.0;
  /// Instant the refreshed copy became visible at the proxy.
  TimePoint complete_time = 0.0;
  std::string uri;
  PollCause cause = PollCause::kScheduled;
  /// True when the server answered 200.
  bool modified = false;
  /// True when the poll was lost (no other fields beyond uri/cause/time
  /// are meaningful).
  bool failed = false;
};

/// Engine configuration.
struct EngineConfig {
  /// Fixed round-trip time added between a poll's snapshot and the moment
  /// the refreshed copy is visible to clients.
  Duration rtt = 0.0;
  /// Probability that any given poll is lost (failure injection).
  double loss_probability = 0.0;
  /// Delay before retrying a lost poll.
  Duration retry_delay = 5.0;
  /// Seed for the loss-injection stream.
  std::uint64_t seed = 42;
};

/// The polling engine.
class PollingEngine {
 public:
  PollingEngine(Simulator& sim, OriginServer& origin);
  PollingEngine(Simulator& sim, OriginServer& origin, EngineConfig config);

  PollingEngine(const PollingEngine&) = delete;
  PollingEngine& operator=(const PollingEngine&) = delete;

  // ---- registration (before start()) ----

  /// Track a temporal-domain object with the given refresh policy.
  void add_temporal_object(const std::string& uri,
                           std::unique_ptr<RefreshPolicy> policy);

  /// Attach a mutual-consistency coordinator.  Its member uris must all be
  /// registered temporal objects.  Multiple coordinators may coexist
  /// (disjoint or overlapping groups).
  MutualCoordinator& add_coordinator(
      std::unique_ptr<MutualCoordinator> coordinator);

  /// Track a value-domain object with its own Δv policy.
  void add_value_object(const std::string& uri,
                        AdaptiveValueTtrPolicy::Config config);

  /// Track a group jointly through a virtual object (adaptive Mv).  Every
  /// member is fetched on each joint poll; each fetch counts as one poll.
  void add_virtual_group(std::vector<std::string> uris,
                         std::unique_ptr<VirtualObjectPolicy> policy);

  /// Track a group via partitioned tolerances (linear f).  Members poll
  /// independently; the policy re-apportions δ across them as rates
  /// evolve.
  void add_partitioned_group(std::vector<std::string> uris,
                             std::unique_ptr<PartitionedTolerancePolicy> policy);

  /// Fetch every registered object once (PollCause::kInitial) and arm the
  /// refresh timers.  Call exactly once, before running the simulator.
  void start();

  // ---- runtime ----

  /// Simulate a proxy crash + recovery at the current instant: every
  /// policy and coordinator resets; every timer restarts at its policy's
  /// initial TTR.  Cached payloads survive (they are on disk); learned
  /// polling state does not.
  void crash_and_recover();

  // ---- results ----

  const std::vector<PollRecord>& poll_log() const { return poll_log_; }

  /// Completion instants of successful polls of `uri`, ascending,
  /// including the initial fetch.
  std::vector<TimePoint> poll_completion_times(const std::string& uri) const;

  /// Snapshot instants of successful polls of `uri` (same indexing as
  /// poll_completion_times).
  std::vector<TimePoint> poll_snapshot_times(const std::string& uri) const;

  /// Successful polls excluding initial fetches — the paper's "number of
  /// polls" metric.  Empty uri = all objects.
  std::size_t polls_performed(const std::string& uri = "") const;

  /// Triggered polls only (the mutual-consistency overhead).
  std::size_t triggered_polls(const std::string& uri = "") const;

  /// Failed (lost) poll attempts.
  std::size_t failed_polls() const { return failed_polls_; }

  /// TTR value after each poll of `uri` (Fig. 4(b) series).
  const std::vector<std::pair<TimePoint, Duration>>& ttr_series(
      const std::string& uri) const;

  const ProxyCache& cache() const { return cache_; }
  ProxyCache& cache() { return cache_; }

 private:
  // A temporal-domain tracked object.
  struct TemporalEntry {
    std::string uri;
    std::unique_ptr<RefreshPolicy> policy;
    std::unique_ptr<PeriodicTask> task;
    TimePoint last_poll_completion = 0.0;
    std::vector<std::pair<TimePoint, Duration>> ttr_series;
  };

  // A value-domain tracked object.  Exactly one of `own_policy` /
  // `partitioned` is set; virtual-group members have neither (the group
  // polls them).
  struct ValueEntry {
    std::string uri;
    std::unique_ptr<AdaptiveValueTtrPolicy> own_policy;
    PartitionedTolerancePolicy* partitioned = nullptr;
    std::size_t partition_index = 0;
    std::unique_ptr<PeriodicTask> task;
    TimePoint last_poll_completion = 0.0;
    double last_value = 0.0;
    bool has_value = false;
    std::vector<std::pair<TimePoint, Duration>> ttr_series;
  };

  struct VirtualGroup {
    std::vector<std::string> uris;
    std::unique_ptr<VirtualObjectPolicy> policy;
    std::unique_ptr<PeriodicTask> task;
  };

  struct PartitionedGroup {
    std::vector<std::string> uris;
    std::unique_ptr<PartitionedTolerancePolicy> policy;
  };

  Simulator& sim_;
  OriginServer& origin_;
  EngineConfig config_;
  Rng loss_rng_;
  ProxyCache cache_;
  bool started_ = false;

  std::map<std::string, TemporalEntry> temporal_;
  std::map<std::string, ValueEntry> value_;
  std::vector<std::unique_ptr<MutualCoordinator>> coordinators_;
  // unique_ptr elements: scheduled tasks capture raw group pointers, which
  // must survive container growth.
  std::vector<std::unique_ptr<VirtualGroup>> virtual_groups_;
  std::vector<std::unique_ptr<PartitionedGroup>> partitioned_groups_;

  std::vector<PollRecord> poll_log_;
  std::size_t failed_polls_ = 0;

  // ---- poll execution ----
  void poll_temporal(TemporalEntry& entry, PollCause cause);
  void poll_value(ValueEntry& entry, PollCause cause);
  void poll_virtual_group(VirtualGroup& group, PollCause cause);

  // Perform the HTTP exchange; returns nullopt when loss injection ate the
  // poll (after scheduling the retry via `retry`).
  std::optional<Response> exchange(const std::string& uri,
                                   std::optional<TimePoint> if_modified_since,
                                   PollCause cause,
                                   const std::function<void()>& retry);

  void store_response(const std::string& uri, const Response& response,
                      TimePoint snapshot);

  CoordinatorHooks make_hooks();
  TimePoint next_poll_time(const std::string& uri) const;
  TimePoint last_poll_time(const std::string& uri) const;
  void trigger_poll(const std::string& uri);
};

}  // namespace broadway

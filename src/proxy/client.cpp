#include "proxy/client.h"

#include "util/check.h"

namespace broadway {

ClientWorkload::Config ClientWorkload::Config::from_uris(
    const OriginServer& origin, double request_rate,
    const std::map<std::string, double>& popularity, std::uint64_t seed) {
  Config config;
  config.request_rate = request_rate;
  config.seed = seed;
  config.popularity.reserve(popularity.size());
  for (const auto& [uri, weight] : popularity) {
    const ObjectId id = origin.uri_table().find(uri);
    BROADWAY_CHECK_MSG(id != kInvalidObjectId,
                       uri << " is not interned at the origin");
    config.popularity.push_back({id, weight});
  }
  return config;
}

ClientWorkload::ClientWorkload(Simulator& sim, ProxyCache& cache,
                               const OriginServer& origin, Config config)
    : sim_(sim),
      cache_(cache),
      origin_(origin),
      config_(std::move(config)),
      rng_(config_.seed),
      task_(sim, [this] {
        issue_request();
        return rng_.exponential(config_.request_rate);
      }) {
  BROADWAY_CHECK_MSG(config_.request_rate > 0.0,
                     "rate " << config_.request_rate);
  BROADWAY_CHECK_MSG(!config_.popularity.empty(), "no objects to request");
  for (const ObjectWeight& entry : config_.popularity) {
    // Fail fast: a ground-truth read needs the origin to host the object,
    // and an id the table never handed out can only be a caller bug.
    BROADWAY_CHECK_MSG(origin_.object_by_id(entry.object) != nullptr,
                       "popularity object " << entry.object
                                            << " not hosted at the origin");
    BROADWAY_CHECK_MSG(entry.weight >= 0.0, "negative popularity for "
                                                << entry.object);
    objects_.push_back(entry.object);
    weights_.push_back(entry.weight);
  }
}

void ClientWorkload::start() {
  task_.start(rng_.exponential(config_.request_rate));
}

void ClientWorkload::stop() { task_.stop(); }

void ClientWorkload::issue_request() {
  const ObjectId object = objects_[rng_.weighted_index(weights_)];
  const CacheEntry* entry = cache_.lookup_counted(object);
  const ClientReadSample sample = classify_client_read(
      sim_.now(), entry != nullptr,
      entry != nullptr ? entry->snapshot_time : 0.0,
      origin_.object_by_id(object));
  record_client_read(stats_, sample);
}

}  // namespace broadway

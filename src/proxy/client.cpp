#include "proxy/client.h"

#include "util/check.h"

namespace broadway {

ClientWorkload::ClientWorkload(Simulator& sim, ProxyCache& cache,
                               const OriginServer& origin, Config config)
    : sim_(sim),
      cache_(cache),
      origin_(origin),
      config_(std::move(config)),
      rng_(config_.seed),
      task_(sim, [this] {
        issue_request();
        return rng_.exponential(config_.request_rate);
      }) {
  BROADWAY_CHECK_MSG(config_.request_rate > 0.0,
                     "rate " << config_.request_rate);
  BROADWAY_CHECK_MSG(!config_.popularity.empty(), "no objects to request");
  for (const auto& [uri, weight] : config_.popularity) {
    BROADWAY_CHECK_MSG(weight >= 0.0, "negative popularity for " << uri);
    uris_.push_back(uri);
    weights_.push_back(weight);
  }
}

void ClientWorkload::start() {
  task_.start(rng_.exponential(config_.request_rate));
}

void ClientWorkload::stop() { task_.stop(); }

void ClientWorkload::issue_request() {
  const std::string& uri = uris_[rng_.weighted_index(weights_)];
  ++stats_.requests;

  const CacheEntry* entry = cache_.lookup_counted(uri);
  if (entry == nullptr) {
    ++stats_.misses;
    return;
  }
  ++stats_.hits;

  // Ground-truth freshness: the copy reflects origin state at
  // snapshot_time; it is stale iff the origin modified the object after
  // that snapshot.
  const VersionedObject* object = origin_.store().find(uri);
  BROADWAY_CHECK_MSG(object != nullptr, "cached object missing at origin");
  if (object->modified_since(entry->snapshot_time)) {
    ++stats_.stale;
    // Lag: how long ago the first unseen update happened.
    const auto& mods = object->modifications();
    auto first_unseen = std::upper_bound(mods.begin(), mods.end(),
                                         entry->snapshot_time);
    BROADWAY_CHECK(first_unseen != mods.end());
    stats_.staleness.add(sim_.now() - *first_unseen);
  } else {
    ++stats_.fresh;
  }
}

}  // namespace broadway

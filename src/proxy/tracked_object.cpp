#include "proxy/tracked_object.h"

#include <algorithm>

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

// ---- TemporalObject --------------------------------------------------------

TemporalObject::TemporalObject(std::string uri,
                               std::unique_ptr<RefreshPolicy> policy)
    : TrackedObject(std::move(uri)), policy_(std::move(policy)) {
  BROADWAY_CHECK(policy_ != nullptr);
}

PollOutcome TemporalObject::on_response(const Response& response,
                                        TimePoint now, TimePoint previous,
                                        PollCause cause) {
  PollOutcome outcome;
  if (cause == PollCause::kInitial) {
    reads_at_last_obs_ = client_reads();
    outcome.ttr = policy_->initial_ttr();
    return outcome;
  }
  TemporalPollObservation obs;
  obs.poll_time = now;
  obs.previous_poll_time = previous;
  obs.modified = response.ok();
  obs.last_modified = wire_last_modified(response);
  // Closed-loop demand signal: client reads served since the previous
  // observation (0 when no client traffic is attached).
  obs.client_reads =
      static_cast<std::size_t>(client_reads() - reads_at_last_obs_);
  reads_at_last_obs_ = client_reads();
  // Malformed string-path history reads as empty, as before.
  wire_modification_history(response, obs.history);
  // Restrict the history to updates this proxy has not seen.  For an own
  // poll the server already filtered against If-Modified-Since (= the
  // quantised `previous`), so this is a no-op; for a relayed response the
  // sibling's history covers updates since *its* previous poll, and the
  // restriction makes violation inference match an own poll (the relay
  // path used to copy the whole Response just to rewrite this header).
  if (!obs.history.empty()) {
    const auto first =
        std::upper_bound(obs.history.begin(), obs.history.end(), previous);
    obs.history.erase(obs.history.begin(), first);
  }
  outcome.ttr = policy_->next_ttr(obs);
  outcome.observation = std::move(obs);
  return outcome;
}

std::optional<Duration> TemporalObject::reset() {
  policy_->reset();
  return policy_->initial_ttr();
}

// ---- ValueDomainObject -----------------------------------------------------

ValueDomainObject::ValueSample ValueDomainObject::absorb_value(
    const Response& response, TimePoint now, TimePoint previous,
    PollCause cause) {
  double value = last_value_;
  if (response.ok()) {
    const auto wire_value = wire_object_value(response);
    BROADWAY_CHECK_MSG(wire_value.has_value(),
                       uri() << " is not a value-domain object");
    value = *wire_value;
  }
  ValueSample sample;
  sample.first = cause == PollCause::kInitial || !has_value_;
  sample.obs.poll_time = now;
  sample.obs.previous_poll_time = previous;
  sample.obs.value = value;
  sample.obs.previous_value = last_value_;
  last_value_ = value;
  has_value_ = true;
  return sample;
}

// ---- ValueObject -----------------------------------------------------------

ValueObject::ValueObject(std::string uri,
                         AdaptiveValueTtrPolicy::Config config)
    : ValueDomainObject(std::move(uri)), policy_(config) {}

PollOutcome ValueObject::on_response(const Response& response, TimePoint now,
                                     TimePoint previous, PollCause cause) {
  const ValueSample sample = absorb_value(response, now, previous, cause);
  PollOutcome outcome;
  outcome.ttr =
      sample.first ? policy_.initial_ttr() : policy_.next_ttr(sample.obs);
  return outcome;
}

std::optional<Duration> ValueObject::reset() {
  policy_.reset();
  return policy_.initial_ttr();
}

// ---- PartitionedMemberObject -----------------------------------------------

PartitionedMemberObject::PartitionedMemberObject(
    std::string uri, PartitionedTolerancePolicy* policy, std::size_t index)
    : ValueDomainObject(std::move(uri)), policy_(policy), index_(index) {
  BROADWAY_CHECK(policy_ != nullptr);
  BROADWAY_CHECK(index_ < policy_->arity());
}

PollOutcome PartitionedMemberObject::on_response(const Response& response,
                                                 TimePoint now,
                                                 TimePoint previous,
                                                 PollCause cause) {
  const ValueSample sample = absorb_value(response, now, previous, cause);
  PollOutcome outcome;
  outcome.ttr = sample.first ? policy_->initial_ttr(index_)
                             : policy_->next_ttr(index_, sample.obs);
  return outcome;
}

std::optional<Duration> PartitionedMemberObject::reset() {
  // The shared group policy is reset once by the engine (before any member
  // re-arms); each member only restarts from the recovered apportionment.
  return policy_->initial_ttr(index_);
}

// ---- VirtualMemberObject ---------------------------------------------------

VirtualMemberObject::VirtualMemberObject(std::string uri)
    : ValueDomainObject(std::move(uri)) {}

PollOutcome VirtualMemberObject::on_response(const Response& response,
                                             TimePoint now,
                                             TimePoint previous,
                                             PollCause cause) {
  absorb_value(response, now, previous, cause);
  return PollOutcome{};  // the group owns scheduling
}

std::optional<Duration> VirtualMemberObject::reset() {
  return std::nullopt;  // the group resets and re-arms itself
}

}  // namespace broadway

#include "proxy/polling_engine.h"

#include <algorithm>

#include "http/extensions.h"
#include "util/check.h"
#include "util/log.h"

namespace broadway {

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin)
    : PollingEngine(sim, origin, EngineConfig{}) {}

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin,
                             EngineConfig config)
    : sim_(sim), origin_(origin), config_(config), loss_rng_(config.seed) {
  BROADWAY_CHECK(config_.rtt >= 0.0);
  BROADWAY_CHECK(config_.loss_probability >= 0.0 &&
                 config_.loss_probability < 1.0);
  BROADWAY_CHECK(config_.retry_delay > 0.0);
}

void PollingEngine::add_temporal_object(const std::string& uri,
                                        std::unique_ptr<RefreshPolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(temporal_.find(uri) == temporal_.end() &&
                         value_.find(uri) == value_.end(),
                     "duplicate registration of " << uri);
  TemporalEntry entry;
  entry.uri = uri;
  entry.policy = std::move(policy);
  auto [it, inserted] = temporal_.emplace(uri, std::move(entry));
  BROADWAY_CHECK(inserted);
  TemporalEntry* raw = &it->second;
  raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
    poll_temporal(*raw, PollCause::kScheduled);
    return -1.0;  // poll_temporal reschedules explicitly
  });
}

MutualCoordinator& PollingEngine::add_coordinator(
    std::unique_ptr<MutualCoordinator> coordinator) {
  BROADWAY_CHECK(coordinator != nullptr);
  coordinator->bind(make_hooks());
  coordinators_.push_back(std::move(coordinator));
  return *coordinators_.back();
}

void PollingEngine::add_value_object(const std::string& uri,
                                     AdaptiveValueTtrPolicy::Config config) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK_MSG(temporal_.find(uri) == temporal_.end() &&
                         value_.find(uri) == value_.end(),
                     "duplicate registration of " << uri);
  ValueEntry entry;
  entry.uri = uri;
  entry.own_policy = std::make_unique<AdaptiveValueTtrPolicy>(config);
  auto [it, inserted] = value_.emplace(uri, std::move(entry));
  BROADWAY_CHECK(inserted);
  ValueEntry* raw = &it->second;
  raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
    poll_value(*raw, PollCause::kScheduled);
    return -1.0;
  });
}

void PollingEngine::add_virtual_group(
    std::vector<std::string> uris,
    std::unique_ptr<VirtualObjectPolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->function().arity(),
                     "group size must match the function arity");
  for (const std::string& uri : uris) {
    BROADWAY_CHECK_MSG(temporal_.find(uri) == temporal_.end() &&
                           value_.find(uri) == value_.end(),
                       "duplicate registration of " << uri);
    ValueEntry entry;  // no own policy, no task: the group polls it
    entry.uri = uri;
    value_.emplace(uri, std::move(entry));
  }
  auto group = std::make_unique<VirtualGroup>();
  group->uris = std::move(uris);
  group->policy = std::move(policy);
  VirtualGroup* raw = group.get();
  raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
    poll_virtual_group(*raw, PollCause::kScheduled);
    return -1.0;
  });
  virtual_groups_.push_back(std::move(group));
}

void PollingEngine::add_partitioned_group(
    std::vector<std::string> uris,
    std::unique_ptr<PartitionedTolerancePolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->arity(),
                     "group size must match the function arity");
  auto group = std::make_unique<PartitionedGroup>();
  group->uris = uris;
  group->policy = std::move(policy);
  PartitionedTolerancePolicy* shared = group->policy.get();
  partitioned_groups_.push_back(std::move(group));

  for (std::size_t i = 0; i < uris.size(); ++i) {
    const std::string& uri = uris[i];
    BROADWAY_CHECK_MSG(temporal_.find(uri) == temporal_.end() &&
                           value_.find(uri) == value_.end(),
                       "duplicate registration of " << uri);
    ValueEntry entry;
    entry.uri = uri;
    entry.partitioned = shared;
    entry.partition_index = i;
    auto [it, inserted] = value_.emplace(uri, std::move(entry));
    BROADWAY_CHECK(inserted);
    ValueEntry* raw = &it->second;
    raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
      poll_value(*raw, PollCause::kScheduled);
      return -1.0;
    });
  }
}

void PollingEngine::start() {
  BROADWAY_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  for (auto& [uri, entry] : temporal_) {
    poll_temporal(entry, PollCause::kInitial);
  }
  for (auto& [uri, entry] : value_) {
    if (entry.task != nullptr) {
      poll_value(entry, PollCause::kInitial);
    }
  }
  for (auto& group : virtual_groups_) {
    poll_virtual_group(*group, PollCause::kInitial);
  }
}

void PollingEngine::crash_and_recover() {
  BROADWAY_CHECK_MSG(started_, "crash before start()");
  for (auto& [uri, entry] : temporal_) {
    entry.policy->reset();
    entry.task->reschedule(entry.policy->initial_ttr());
  }
  for (auto& group : partitioned_groups_) {
    group->policy->reset();
  }
  for (auto& [uri, entry] : value_) {
    if (entry.own_policy) entry.own_policy->reset();
    if (entry.task) {
      const Duration ttr = entry.own_policy
                               ? entry.own_policy->initial_ttr()
                               : entry.partitioned->initial_ttr(
                                     entry.partition_index);
      entry.task->reschedule(ttr);
    }
  }
  for (auto& group : virtual_groups_) {
    group->policy->reset();
    group->task->reschedule(group->policy->initial_ttr());
  }
  for (auto& coordinator : coordinators_) coordinator->reset();
}

// ---- poll execution -------------------------------------------------------

std::optional<Response> PollingEngine::exchange(
    const std::string& uri, std::optional<TimePoint> if_modified_since,
    PollCause cause, const std::function<void()>& retry) {
  if (config_.loss_probability > 0.0 &&
      loss_rng_.bernoulli(config_.loss_probability)) {
    ++failed_polls_;
    PollRecord record;
    record.snapshot_time = sim_.now();
    record.complete_time = sim_.now() + config_.rtt;
    record.uri = uri;
    record.cause = cause;
    record.failed = true;
    poll_log_.push_back(record);
    sim_.schedule_after(config_.retry_delay, retry);
    return std::nullopt;
  }
  Request request;
  request.method = Method::kGet;
  request.uri = uri;
  if (if_modified_since) {
    set_if_modified_since(request.headers, *if_modified_since);
  }
  return origin_.handle(request);
}

void PollingEngine::store_response(const std::string& uri,
                                   const Response& response,
                                   TimePoint snapshot) {
  if (!response.ok()) return;  // 304: the cached copy is still current
  CacheEntry entry;
  entry.uri = uri;
  entry.body = response.body;
  entry.snapshot_time = snapshot;
  entry.stored_time = snapshot + config_.rtt;
  entry.last_modified = get_last_modified(response.headers);
  entry.value = get_object_value(response.headers);
  cache_.store(std::move(entry));
}

void PollingEngine::poll_temporal(TemporalEntry& entry, PollCause cause) {
  const TimePoint now = sim_.now();
  const TimePoint previous = entry.last_poll_completion;
  const bool initial = cause == PollCause::kInitial;

  TemporalEntry* raw = &entry;
  const auto response = exchange(
      entry.uri, initial ? std::nullopt : std::make_optional(previous), cause,
      [this, raw] { poll_temporal(*raw, PollCause::kRetry); });
  if (!response) return;  // lost; retry scheduled
  BROADWAY_CHECK_MSG(response->status != StatusCode::kNotFound,
                     entry.uri << " not present at origin");

  store_response(entry.uri, *response, now);

  PollRecord record;
  record.snapshot_time = now;
  record.complete_time = now + config_.rtt;
  record.uri = entry.uri;
  record.cause = cause;
  record.modified = response->ok();
  poll_log_.push_back(record);

  Duration ttr;
  TemporalPollObservation obs;
  if (initial) {
    ttr = entry.policy->initial_ttr();
  } else {
    obs.poll_time = now;
    obs.previous_poll_time = previous;
    obs.modified = response->ok();
    obs.last_modified = get_last_modified(response->headers);
    if (const auto history = get_modification_history(response->headers)) {
      obs.history = *history;
    }
    ttr = entry.policy->next_ttr(obs);
  }
  entry.last_poll_completion = now;
  entry.ttr_series.emplace_back(now, ttr);
  entry.task->reschedule(ttr);

  // Coordinators see every non-initial poll — including triggered ones, so
  // they can cascade (the δ-window test keeps cascades finite).
  if (!initial) {
    for (auto& coordinator : coordinators_) {
      coordinator->on_poll(entry.uri, obs);
    }
  }
}

void PollingEngine::poll_value(ValueEntry& entry, PollCause cause) {
  const TimePoint now = sim_.now();
  const TimePoint previous = entry.last_poll_completion;
  const bool initial = cause == PollCause::kInitial;

  ValueEntry* raw = &entry;
  const auto response = exchange(
      entry.uri, initial ? std::nullopt : std::make_optional(previous), cause,
      [this, raw] { poll_value(*raw, PollCause::kRetry); });
  if (!response) return;
  BROADWAY_CHECK_MSG(response->status != StatusCode::kNotFound,
                     entry.uri << " not present at origin");

  store_response(entry.uri, *response, now);

  double value = entry.last_value;
  if (response->ok()) {
    const auto header_value = get_object_value(response->headers);
    BROADWAY_CHECK_MSG(header_value.has_value(),
                       entry.uri << " is not a value-domain object");
    value = *header_value;
  }

  PollRecord record;
  record.snapshot_time = now;
  record.complete_time = now + config_.rtt;
  record.uri = entry.uri;
  record.cause = cause;
  record.modified = response->ok();
  poll_log_.push_back(record);

  Duration ttr;
  if (initial || !entry.has_value) {
    ttr = entry.own_policy
              ? entry.own_policy->initial_ttr()
              : entry.partitioned->initial_ttr(entry.partition_index);
  } else {
    ValuePollObservation obs;
    obs.poll_time = now;
    obs.previous_poll_time = previous;
    obs.value = value;
    obs.previous_value = entry.last_value;
    ttr = entry.own_policy
              ? entry.own_policy->next_ttr(obs)
              : entry.partitioned->next_ttr(entry.partition_index, obs);
  }
  entry.last_value = value;
  entry.has_value = true;
  entry.last_poll_completion = now;
  entry.ttr_series.emplace_back(now, ttr);
  entry.task->reschedule(ttr);
}

void PollingEngine::poll_virtual_group(VirtualGroup& group, PollCause cause) {
  const TimePoint now = sim_.now();
  const bool initial = cause == PollCause::kInitial;

  // A joint poll fetches every member; each fetch is one poll in the
  // paper's accounting (Fig. 7 counts individual server polls).
  std::vector<double> values;
  values.reserve(group.uris.size());
  for (const std::string& uri : group.uris) {
    auto it = value_.find(uri);
    BROADWAY_CHECK(it != value_.end());
    ValueEntry& entry = it->second;

    VirtualGroup* raw = &group;
    const auto response = exchange(
        uri, initial ? std::nullopt
                     : std::make_optional(entry.last_poll_completion),
        cause,
        [this, raw] { poll_virtual_group(*raw, PollCause::kRetry); });
    if (!response) return;  // whole joint poll retries
    BROADWAY_CHECK_MSG(response->status != StatusCode::kNotFound,
                       uri << " not present at origin");
    store_response(uri, *response, now);

    double value = entry.last_value;
    if (response->ok()) {
      const auto header_value = get_object_value(response->headers);
      BROADWAY_CHECK_MSG(header_value.has_value(),
                         uri << " is not a value-domain object");
      value = *header_value;
    }
    entry.last_value = value;
    entry.has_value = true;
    entry.last_poll_completion = now;
    values.push_back(value);

    PollRecord record;
    record.snapshot_time = now;
    record.complete_time = now + config_.rtt;
    record.uri = uri;
    record.cause = cause;
    record.modified = response->ok();
    poll_log_.push_back(record);
  }

  const Duration ttr = initial
                           ? group.policy->initial_ttr()
                           : group.policy->next_ttr(now, values);
  group.task->reschedule(ttr);
}

// ---- coordinator hooks -----------------------------------------------------

CoordinatorHooks PollingEngine::make_hooks() {
  CoordinatorHooks hooks;
  hooks.next_poll_time = [this](const std::string& uri) {
    return next_poll_time(uri);
  };
  hooks.last_poll_time = [this](const std::string& uri) {
    return last_poll_time(uri);
  };
  hooks.trigger_poll = [this](const std::string& uri) {
    trigger_poll(uri);
  };
  return hooks;
}

TimePoint PollingEngine::next_poll_time(const std::string& uri) const {
  auto it = temporal_.find(uri);
  BROADWAY_CHECK_MSG(it != temporal_.end(), "unknown object " << uri);
  return it->second.task->next_fire_time();
}

TimePoint PollingEngine::last_poll_time(const std::string& uri) const {
  auto it = temporal_.find(uri);
  BROADWAY_CHECK_MSG(it != temporal_.end(), "unknown object " << uri);
  return it->second.last_poll_completion;
}

void PollingEngine::trigger_poll(const std::string& uri) {
  auto it = temporal_.find(uri);
  BROADWAY_CHECK_MSG(it != temporal_.end(), "unknown object " << uri);
  poll_temporal(it->second, PollCause::kTriggered);
}

// ---- accessors -------------------------------------------------------------

std::vector<TimePoint> PollingEngine::poll_completion_times(
    const std::string& uri) const {
  std::vector<TimePoint> out;
  for (const PollRecord& record : poll_log_) {
    if (!record.failed && record.uri == uri) {
      out.push_back(record.complete_time);
    }
  }
  return out;
}

std::vector<TimePoint> PollingEngine::poll_snapshot_times(
    const std::string& uri) const {
  std::vector<TimePoint> out;
  for (const PollRecord& record : poll_log_) {
    if (!record.failed && record.uri == uri) {
      out.push_back(record.snapshot_time);
    }
  }
  return out;
}

std::size_t PollingEngine::polls_performed(const std::string& uri) const {
  std::size_t count = 0;
  for (const PollRecord& record : poll_log_) {
    if (record.failed || record.cause == PollCause::kInitial) continue;
    if (!uri.empty() && record.uri != uri) continue;
    ++count;
  }
  return count;
}

std::size_t PollingEngine::triggered_polls(const std::string& uri) const {
  std::size_t count = 0;
  for (const PollRecord& record : poll_log_) {
    if (record.failed || record.cause != PollCause::kTriggered) continue;
    if (!uri.empty() && record.uri != uri) continue;
    ++count;
  }
  return count;
}

const std::vector<std::pair<TimePoint, Duration>>& PollingEngine::ttr_series(
    const std::string& uri) const {
  auto it = temporal_.find(uri);
  if (it != temporal_.end()) return it->second.ttr_series;
  auto vit = value_.find(uri);
  BROADWAY_CHECK_MSG(vit != value_.end(), "unknown object " << uri);
  return vit->second.ttr_series;
}

}  // namespace broadway

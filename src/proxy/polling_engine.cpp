#include "proxy/polling_engine.h"

#include <algorithm>

#include "http/extensions.h"
#include "util/check.h"
#include "util/log.h"

namespace broadway {

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin)
    : PollingEngine(sim, origin, EngineConfig{}) {}

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin,
                             EngineConfig config)
    : sim_(sim),
      origin_(origin),
      uris_(origin.uri_table()),
      config_(config),
      cache_(uris_),
      poll_log_(uris_) {
  BROADWAY_CHECK(config_.rtt >= 0.0);
  BROADWAY_CHECK(config_.loss_probability >= 0.0 &&
                 config_.loss_probability < 1.0);
  BROADWAY_CHECK(config_.retry_delay > 0.0);
}

// ---- registration ----------------------------------------------------------

TrackedObject& PollingEngine::register_object(
    std::unique_ptr<TrackedObject> object, bool self_scheduled) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  const ObjectId id = uris_.intern(object->uri());
  BROADWAY_CHECK_MSG(tracked(id) == nullptr,
                     "duplicate registration of " << object->uri());
  object->set_id(id);
  if (objects_by_id_.size() <= id) objects_by_id_.resize(id + 1);
  objects_by_id_[id] = std::move(object);
  TrackedObject* raw = objects_by_id_[id].get();
  // Keep the deterministic sorted-by-uri sweep order of the uri-keyed map
  // this structure replaces (registration is cold; insertion cost is
  // irrelevant).
  ordered_.insert(std::upper_bound(ordered_.begin(), ordered_.end(), raw,
                                   [](const TrackedObject* a,
                                      const TrackedObject* b) {
                                     return a->uri() < b->uri();
                                   }),
                  raw);
  if (self_scheduled) {
    raw->attach_task(std::make_unique<PeriodicTask>(sim_, [this, raw] {
      poll_self(*raw, PollCause::kScheduled);
      return -1.0;  // the pipeline reschedules explicitly
    }));
  }
  return *raw;
}

void PollingEngine::add_temporal_object(const std::string& uri,
                                        std::unique_ptr<RefreshPolicy> policy) {
  BROADWAY_CHECK(policy != nullptr);
  register_object(std::make_unique<TemporalObject>(uri, std::move(policy)),
                  /*self_scheduled=*/true);
}

MutualCoordinator& PollingEngine::add_coordinator(
    std::unique_ptr<MutualCoordinator> coordinator) {
  BROADWAY_CHECK(coordinator != nullptr);
  // bind() interns the member uris (unknown members fail here, not on the
  // first trigger mid-simulation); the subscriptions then feed the
  // per-object subscriber index the notify stage dispatches through.
  coordinator->bind(make_hooks());
  for (const ObjectId member : coordinator->subscriptions()) {
    temporal_object(member).add_subscriber(coordinator.get());
  }
  coordinators_.push_back(std::move(coordinator));
  return *coordinators_.back();
}

void PollingEngine::add_value_object(const std::string& uri,
                                     AdaptiveValueTtrPolicy::Config config) {
  register_object(std::make_unique<ValueObject>(uri, config),
                  /*self_scheduled=*/true);
}

void PollingEngine::add_virtual_group(
    std::vector<std::string> uris,
    std::unique_ptr<VirtualObjectPolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->function().arity(),
                     "group size must match the function arity");
  auto group = std::make_unique<VirtualGroup>();
  for (const std::string& uri : uris) {
    TrackedObject& member =
        register_object(std::make_unique<VirtualMemberObject>(uri),
                        /*self_scheduled=*/false);  // the group polls it
    group->members.push_back(static_cast<VirtualMemberObject*>(&member));
  }
  group->policy = std::move(policy);
  VirtualGroup* raw = group.get();
  raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
    poll_group(*raw, PollCause::kScheduled);
    return -1.0;
  });
  virtual_groups_.push_back(std::move(group));
}

void PollingEngine::add_partitioned_group(
    std::vector<std::string> uris,
    std::unique_ptr<PartitionedTolerancePolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->arity(),
                     "group size must match the function arity");
  auto group = std::make_unique<PartitionedGroup>();
  group->policy = std::move(policy);
  PartitionedTolerancePolicy* shared = group->policy.get();
  partitioned_groups_.push_back(std::move(group));

  for (std::size_t i = 0; i < uris.size(); ++i) {
    register_object(
        std::make_unique<PartitionedMemberObject>(uris[i], shared, i),
        /*self_scheduled=*/true);
  }
}

void PollingEngine::start() {
  BROADWAY_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  for (TrackedObject* object : ordered_) {
    if (object->self_scheduled()) {
      poll_self(*object, PollCause::kInitial);
    }
  }
  for (auto& group : virtual_groups_) {
    poll_group(*group, PollCause::kInitial);
  }
}

void PollingEngine::crash_and_recover() {
  crash();
  recover();
}

void PollingEngine::crash() {
  BROADWAY_CHECK_MSG(started_, "crash before start()");
  BROADWAY_CHECK_MSG(!dark_, "crash while already dark");
  dark_ = true;
  // In-flight retries die with the proxy: §3.1 recovery resets TTRs, it
  // does not resurrect requests that were pending at the crash.
  for (const EventId id : pending_retries_) {
    sim_.cancel(id);
  }
  pending_retries_.clear();
  // Every timer stops: a dark proxy polls nothing until recover() re-arms
  // the schedules from scratch.
  for (TrackedObject* object : ordered_) {
    object->clear_pending_retries();
    if (object->task() != nullptr) object->task()->stop();
  }
  for (auto& group : virtual_groups_) {
    group->task->stop();
  }
}

void PollingEngine::recover() {
  BROADWAY_CHECK_MSG(dark_, "recover without a crash");
  dark_ = false;
  // Shared partitioned policies reset before their members re-arm, so each
  // member's initial TTR reflects the recovered apportionment.
  for (auto& group : partitioned_groups_) {
    group->policy->reset();
  }
  for (TrackedObject* object : ordered_) {
    if (const auto ttr = object->reset()) {
      object->task()->reschedule(*ttr);
    }
  }
  for (auto& group : virtual_groups_) {
    group->policy->reset();
    group->task->reschedule(group->policy->initial_ttr());
  }
  for (auto& coordinator : coordinators_) coordinator->reset();
}

// ---- the poll pipeline -----------------------------------------------------

void PollingEngine::exchange(const TrackedObject& object,
                             std::optional<TimePoint> if_modified_since,
                             Response& out) {
  scratch_request_.reset();
  scratch_request_.method = Method::kGet;
  if (config_.typed_wire) {
    // Typed sideband: the interned id addresses the object at the origin;
    // no header rendering.  The uri still rides along (an assign into the
    // scratch request's retained capacity — no allocation steady-state) so
    // serialising a typed request for wire-level debugging stays lossless.
    scratch_request_.uri = object.uri();
    scratch_request_.object = object.id();
    scratch_request_.meta.active = true;
    if (if_modified_since) {
      scratch_request_.meta.if_modified_since =
          quantize_wire_seconds(*if_modified_since);
    }
  } else {
    scratch_request_.uri = object.uri();
    if (if_modified_since) {
      set_if_modified_since(scratch_request_.headers, *if_modified_since);
    }
  }
  origin_.handle(scratch_request_, out);
}

void PollingEngine::store_response(const TrackedObject& object,
                                   const Response& response,
                                   TimePoint snapshot, TimePoint visible) {
  if (!response.ok()) return;  // 304: the cached copy is still current
  CacheEntry& entry = cache_.refresh_entry(object.id(), snapshot);
  entry.body = response.body;  // reuses the entry's allocation
  entry.snapshot_time = snapshot;
  entry.stored_time = visible;
  entry.last_modified = wire_last_modified(response);
  entry.value = wire_object_value(response);
}

void PollingEngine::schedule_retry(TrackedObject& object,
                                   const std::function<void()>& retry) {
  // The firing callback removes itself from the pending set by asking the
  // simulator which event is running — no per-retry id box to allocate.
  // The object keeps its own fire-time FIFO so next_send_time() can see
  // pending retries; the constant delay makes schedule order fire order.
  object.push_pending_retry(sim_.now() + config_.retry_delay);
  TrackedObject* raw = &object;
  const EventId id =
      sim_.schedule_after(config_.retry_delay, [this, raw, retry] {
        pending_retries_.erase(sim_.current_event());
        raw->pop_pending_retry();
        retry();
      });
  pending_retries_.insert(id);
}

bool PollingEngine::poll_object(TrackedObject& object, PollCause cause,
                                const std::function<void()>& retry) {
  const TimePoint now = sim_.now();
  const TimePoint previous = object.last_poll_completion();
  const bool initial = cause == PollCause::kInitial;

  // Stage 1: loss injection.  Draws are keyed (seed, object, attempt)
  // rather than taken from a shared sequential stream, so an object's loss
  // outcomes depend only on its own poll history — sharding the engine's
  // objects across slices cannot reorder them.
  const bool lost =
      config_.loss_probability > 0.0 &&
      hash_bernoulli(config_.seed, object.id(), object.next_loss_draw(),
                     config_.loss_probability);
  if (lost) {
    // Stage 4 for the failure case: the single record site (below) is
    // shared by every object kind, lost and successful alike.
    poll_log_.append(object.id(), cause, /*modified=*/false, /*failed=*/true,
                     now, now + config_.rtt);
    schedule_retry(object, retry);
    return false;
  }

  // Scratch response for this pipeline depth: a coordinator-triggered
  // poll re-enters poll_object() from stage 6 while this frame still
  // reads `response`, so each depth owns its slot.
  if (response_pool_.size() <= pipeline_depth_) {
    response_pool_.push_back(std::make_unique<Response>());
  }
  Response& response = *response_pool_[pipeline_depth_];
  ++pipeline_depth_;

  // Stage 2: the HTTP exchange.  Any poll made while no copy is cached —
  // the initial fetch, a demand fill serving a client that needs the body
  // *now*, or a retry after the initial fetch itself was lost — must be
  // an unconditional GET: a conditional one could answer 304 for a
  // never-modified object, and a 304 cannot refresh a copy that does not
  // exist, leaving the cache empty forever.
  const bool unconditional =
      initial || cache_.find(object.id()) == nullptr;
  exchange(object,
           unconditional ? std::nullopt : std::make_optional(previous),
           response);
  BROADWAY_CHECK_MSG(response.status != StatusCode::kNotFound,
                     object.uri() << " not present at origin");
  // Stages 3–6: the shared post-exchange pipeline.
  const PollOutcome outcome =
      apply_outcome(object, response, cause, now, now + config_.rtt,
                    previous);

  // Stage 7: fleet-level observer, after the engine's own state settled so
  // the listener (e.g. a relaying fleet) sees a consistent proxy.
  if (poll_listener_) {
    poll_listener_(PollEvent{
        object.uri(), object.id(), cause, response, now,
        outcome.observation ? &*outcome.observation : nullptr});
  }
  --pipeline_depth_;
  return true;
}

bool PollingEngine::apply_relay(ObjectId id, const Response& response,
                                TimePoint snapshot) {
  if (!started_) return false;  // relays may race engine start-up
  if (dark_) return false;      // a crashed proxy reads nothing off the wire
  if (!response.ok() && !response.not_modified()) return false;
  TrackedObject* object = tracked(id);
  if (object == nullptr || !object->self_scheduled()) return false;
  const TimePoint now = sim_.now();
  BROADWAY_CHECK_MSG(snapshot <= now, "relay snapshot " << snapshot
                                                        << " after " << now);
  const TimePoint previous = object->last_poll_completion();
  // A relay older than this proxy's own view carries nothing new (e.g. a
  // delayed delivery overtaken by an own poll).
  if (snapshot <= previous) return false;
  const auto relayed_last_modified = wire_last_modified(response);

  if (response.not_modified()) {
    // Validation relay: the sibling's 304 confirms the object unchanged
    // through `snapshot`.  Applicable only when it validates *this*
    // proxy's copy, i.e. the reported version is one this proxy has
    // already seen; otherwise this proxy missed an update and must poll
    // itself.
    if (!relayed_last_modified || *relayed_last_modified > previous) {
      return false;
    }
  } else {
    // Refresh relay.  Skip when the copy is already current (e.g. this
    // proxy polled at the same instant and the cross-relay arrived late):
    // applying would mis-report a modification to the policy.
    if (relayed_last_modified && *relayed_last_modified <= previous) {
      return false;
    }
    if (const CacheEntry* entry = cache_.find(id)) {
      if (relayed_last_modified && entry->last_modified &&
          *relayed_last_modified <= *entry->last_modified) {
        return false;
      }
    }
  }

  // The relay runs the same stages 3–6 as an own poll (no exchange, no
  // loss); store_response ignores 304s, exactly as for an own poll.  The
  // sibling's modification history — updates since *its* previous poll —
  // is restricted to the updates this proxy has not seen inside
  // on_response, so the response passes through by const reference,
  // uncopied.  All state is stamped with the true server snapshot: with
  // delivery latency the copy reflects state at `snapshot` and becomes
  // visible only `now`, and the fidelity evaluation must see exactly
  // that.
  apply_outcome(*object, response, PollCause::kRelay, snapshot, now,
                previous);
  return true;
}

PollingEngine::ClientRead PollingEngine::serve_client_read(ObjectId id) {
  ClientRead read;
  TrackedObject* object = tracked(id);
  if (object != nullptr) {
    // Closed-loop feedback: the refresh policies see per-object client
    // read counts (TemporalPollObservation::client_reads), hits and
    // misses alike — a miss is still demand.
    object->note_client_read();
  }
  read.dark = dark_;
  const CacheEntry* entry = cache_.lookup_counted(id);
  if (entry != nullptr) {
    // A dark proxy still serves from the surviving disk cache — possibly
    // stale, since no refresh has arrived since the crash.
    read.hit = true;
    read.snapshot = entry->snapshot_time;
    read.visible = entry->stored_time;
    return read;
  }
  if (object == nullptr) {
    // Untracked ids never fill: there is no policy, no trace and no
    // relay eligibility here — see ClientRead::MissReason.
    read.miss_reason = ClientRead::MissReason::kUntracked;
    return read;
  }
  if (dark_) {
    // Tracked but uncached while crashed: the proxy cannot reach the
    // origin, so the miss is an outage miss and never demand-fills.
    read.miss_reason = ClientRead::MissReason::kProxyDark;
    return read;
  }
  read.miss_reason = ClientRead::MissReason::kUncached;
  if (!config_.demand_fill || !started_ || !object->self_scheduled()) {
    return read;
  }
  // Demand fill: fetch through to the origin via the shared pipeline
  // (loss injection applies; a lost fill schedules the standard retry and
  // leaves this read an unfilled miss).  The re-lookup uses the uncounted
  // find() — one read, one hit/miss account entry.
  const TimePoint now = sim_.now();
  poll_self(*object, PollCause::kClientMiss);
  if (const CacheEntry* filled = cache_.find(id)) {
    read.filled = true;
    read.fill_latency = filled->stored_time - now;
    read.snapshot = filled->snapshot_time;
    read.visible = filled->stored_time;
  }
  return read;
}

PollOutcome PollingEngine::apply_outcome(TrackedObject& object,
                                         const Response& response,
                                         PollCause cause, TimePoint snapshot,
                                         TimePoint visible,
                                         TimePoint previous) {
  // Stage 3: refresh the cached copy.
  store_response(object, response, snapshot, visible);

  // Stage 4: record the poll.
  poll_log_.append(object.id(), cause, response.ok(), /*failed=*/false,
                   snapshot, visible);

  // Stage 5: policy update.
  PollOutcome outcome = object.on_response(response, snapshot, previous,
                                           cause);
  object.set_last_poll_completion(snapshot);
  if (outcome.ttr) {
    object.record_ttr(snapshot, *outcome.ttr);
    object.task()->reschedule(*outcome.ttr);
  }

  // Stage 6: coordinators see every non-initial temporal poll — including
  // triggered ones, so they can cascade (the δ-window test keeps cascades
  // finite).
  if (outcome.observation) {
    notify_coordinators(object, *outcome.observation);
  }
  return outcome;
}

void PollingEngine::notify_coordinators(TrackedObject& object,
                                        const TemporalPollObservation& obs) {
  if (config_.legacy_dispatch) {
    // The pre-subscription fan-out: every coordinator, one uri hash each.
    for (auto& coordinator : coordinators_) {
      ++coordinator_notifies_;
      coordinator->on_poll(object.uri(), obs);
    }
    return;
  }
  for (MutualCoordinator* coordinator : object.subscribers()) {
    ++coordinator_notifies_;
    coordinator->on_poll(object.id(), obs);
  }
}

void PollingEngine::poll_self(TrackedObject& object, PollCause cause) {
  // Defensive: the fleet's failover routing keeps triggers away from dark
  // proxies, but a crashed engine must never poll regardless of caller.
  if (dark_) return;
  TrackedObject* raw = &object;
  poll_object(object, cause,
              [this, raw] { poll_self(*raw, PollCause::kRetry); });
}

void PollingEngine::poll_group(VirtualGroup& group, PollCause cause) {
  if (dark_) return;
  const TimePoint now = sim_.now();
  const bool initial = cause == PollCause::kInitial;
  VirtualGroup* raw = &group;
  const auto retry = [this, raw] { poll_group(*raw, PollCause::kRetry); };

  // A joint poll fetches every member; each fetch is one poll in the
  // paper's accounting (Fig. 7 counts individual server polls).
  std::vector<double>& values = group.values_scratch;
  values.clear();
  for (VirtualMemberObject* member : group.members) {
    if (!poll_object(*member, cause, retry)) {
      return;  // lost: the whole joint poll retries
    }
    values.push_back(member->last_value());
  }

  const Duration ttr = initial ? group.policy->initial_ttr()
                               : group.policy->next_ttr(now, values);
  group.task->reschedule(ttr);
}

// ---- coordinator hooks -----------------------------------------------------

CoordinatorHooks PollingEngine::make_hooks() {
  // All id-keyed: the δ-window test and trigger path resolve the tracked
  // object by a vector index, never a uri hash.  `resolve` is the one
  // string-keyed entry point, used once per member at bind time (and per
  // call by the legacy broadcast wrapper).
  CoordinatorHooks hooks;
  hooks.resolve = [this](const std::string& uri) {
    return temporal_object(uri).id();
  };
  hooks.next_poll_time = [this](ObjectId id) {
    return temporal_object(id).task()->next_fire_time();
  };
  hooks.last_poll_time = [this](ObjectId id) {
    return temporal_object(id).last_poll_completion();
  };
  hooks.trigger_poll = [this](ObjectId id) {
    poll_self(temporal_object(id), PollCause::kTriggered);
  };
  return hooks;
}

TrackedObject& PollingEngine::temporal_object(ObjectId id) {
  TrackedObject* object = tracked(id);
  BROADWAY_CHECK_MSG(object != nullptr && object->temporal(),
                     "unknown temporal object id " << id);
  return *object;
}

TrackedObject& PollingEngine::temporal_object(const std::string& uri) {
  TrackedObject* object = tracked(uris_.find(uri));
  BROADWAY_CHECK_MSG(object != nullptr && object->temporal(),
                     "unknown temporal object " << uri);
  return *object;
}

// ---- accessors -------------------------------------------------------------

const std::vector<std::pair<TimePoint, Duration>>& PollingEngine::ttr_series(
    const std::string& uri) const {
  static const std::vector<std::pair<TimePoint, Duration>> kEmpty;
  const TrackedObject* object = tracked(uris_.find(uri));
  return object == nullptr ? kEmpty : object->ttr_series();
}

}  // namespace broadway

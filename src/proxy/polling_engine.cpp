#include "proxy/polling_engine.h"

#include <algorithm>

#include "http/extensions.h"
#include "util/check.h"
#include "util/log.h"

namespace broadway {

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin)
    : PollingEngine(sim, origin, EngineConfig{}) {}

PollingEngine::PollingEngine(Simulator& sim, OriginServer& origin,
                             EngineConfig config)
    : sim_(sim), origin_(origin), config_(config), loss_rng_(config.seed) {
  BROADWAY_CHECK(config_.rtt >= 0.0);
  BROADWAY_CHECK(config_.loss_probability >= 0.0 &&
                 config_.loss_probability < 1.0);
  BROADWAY_CHECK(config_.retry_delay > 0.0);
}

// ---- registration ----------------------------------------------------------

TrackedObject& PollingEngine::register_object(
    std::unique_ptr<TrackedObject> object, bool self_scheduled) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  const std::string& uri = object->uri();
  BROADWAY_CHECK_MSG(objects_.find(uri) == objects_.end(),
                     "duplicate registration of " << uri);
  auto [it, inserted] = objects_.emplace(uri, std::move(object));
  BROADWAY_CHECK(inserted);
  TrackedObject* raw = it->second.get();
  if (self_scheduled) {
    raw->attach_task(std::make_unique<PeriodicTask>(sim_, [this, raw] {
      poll_self(*raw, PollCause::kScheduled);
      return -1.0;  // the pipeline reschedules explicitly
    }));
  }
  return *raw;
}

void PollingEngine::add_temporal_object(const std::string& uri,
                                        std::unique_ptr<RefreshPolicy> policy) {
  BROADWAY_CHECK(policy != nullptr);
  register_object(std::make_unique<TemporalObject>(uri, std::move(policy)),
                  /*self_scheduled=*/true);
}

MutualCoordinator& PollingEngine::add_coordinator(
    std::unique_ptr<MutualCoordinator> coordinator) {
  BROADWAY_CHECK(coordinator != nullptr);
  coordinator->bind(make_hooks());
  coordinators_.push_back(std::move(coordinator));
  return *coordinators_.back();
}

void PollingEngine::add_value_object(const std::string& uri,
                                     AdaptiveValueTtrPolicy::Config config) {
  register_object(std::make_unique<ValueObject>(uri, config),
                  /*self_scheduled=*/true);
}

void PollingEngine::add_virtual_group(
    std::vector<std::string> uris,
    std::unique_ptr<VirtualObjectPolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->function().arity(),
                     "group size must match the function arity");
  auto group = std::make_unique<VirtualGroup>();
  for (const std::string& uri : uris) {
    TrackedObject& member =
        register_object(std::make_unique<VirtualMemberObject>(uri),
                        /*self_scheduled=*/false);  // the group polls it
    group->members.push_back(static_cast<VirtualMemberObject*>(&member));
  }
  group->policy = std::move(policy);
  VirtualGroup* raw = group.get();
  raw->task = std::make_unique<PeriodicTask>(sim_, [this, raw] {
    poll_group(*raw, PollCause::kScheduled);
    return -1.0;
  });
  virtual_groups_.push_back(std::move(group));
}

void PollingEngine::add_partitioned_group(
    std::vector<std::string> uris,
    std::unique_ptr<PartitionedTolerancePolicy> policy) {
  BROADWAY_CHECK_MSG(!started_, "register objects before start()");
  BROADWAY_CHECK(policy != nullptr);
  BROADWAY_CHECK_MSG(uris.size() == policy->arity(),
                     "group size must match the function arity");
  auto group = std::make_unique<PartitionedGroup>();
  group->policy = std::move(policy);
  PartitionedTolerancePolicy* shared = group->policy.get();
  partitioned_groups_.push_back(std::move(group));

  for (std::size_t i = 0; i < uris.size(); ++i) {
    register_object(
        std::make_unique<PartitionedMemberObject>(uris[i], shared, i),
        /*self_scheduled=*/true);
  }
}

void PollingEngine::start() {
  BROADWAY_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  for (auto& [uri, object] : objects_) {
    if (object->self_scheduled()) {
      poll_self(*object, PollCause::kInitial);
    }
  }
  for (auto& group : virtual_groups_) {
    poll_group(*group, PollCause::kInitial);
  }
}

void PollingEngine::crash_and_recover() {
  BROADWAY_CHECK_MSG(started_, "crash before start()");
  // In-flight retries die with the proxy: §3.1 recovery resets TTRs, it
  // does not resurrect requests that were pending at the crash.
  for (const EventId id : pending_retries_) {
    sim_.cancel(id);
  }
  pending_retries_.clear();
  // Shared partitioned policies reset before their members re-arm, so each
  // member's initial TTR reflects the recovered apportionment.
  for (auto& group : partitioned_groups_) {
    group->policy->reset();
  }
  for (auto& [uri, object] : objects_) {
    if (const auto ttr = object->reset()) {
      object->task()->reschedule(*ttr);
    }
  }
  for (auto& group : virtual_groups_) {
    group->policy->reset();
    group->task->reschedule(group->policy->initial_ttr());
  }
  for (auto& coordinator : coordinators_) coordinator->reset();
}

// ---- the poll pipeline -----------------------------------------------------

Response PollingEngine::exchange(const std::string& uri,
                                 std::optional<TimePoint> if_modified_since) {
  Request request;
  request.method = Method::kGet;
  request.uri = uri;
  if (if_modified_since) {
    set_if_modified_since(request.headers, *if_modified_since);
  }
  return origin_.handle(request);
}

void PollingEngine::store_response(const std::string& uri,
                                   const Response& response,
                                   TimePoint snapshot, TimePoint visible) {
  if (!response.ok()) return;  // 304: the cached copy is still current
  CacheEntry entry;
  entry.uri = uri;
  entry.body = response.body;
  entry.snapshot_time = snapshot;
  entry.stored_time = visible;
  entry.last_modified = get_last_modified(response.headers);
  entry.value = get_object_value(response.headers);
  cache_.store(std::move(entry));
}

void PollingEngine::record_poll(const std::string& uri, PollCause cause,
                                bool modified, bool failed,
                                TimePoint snapshot, TimePoint complete) {
  PollRecord record;
  record.snapshot_time = snapshot;
  record.complete_time = complete;
  record.uri = uri;
  record.cause = cause;
  record.modified = modified;
  record.failed = failed;
  poll_log_.append(std::move(record));
}

void PollingEngine::schedule_retry(const std::function<void()>& retry) {
  // The callback needs its own id to deregister itself; schedule_after
  // returns before any event can fire, so the box is filled in time.
  auto id_box = std::make_shared<EventId>(kInvalidEventId);
  *id_box = sim_.schedule_after(config_.retry_delay, [this, id_box, retry] {
    pending_retries_.erase(*id_box);
    retry();
  });
  pending_retries_.insert(*id_box);
}

bool PollingEngine::poll_object(TrackedObject& object, PollCause cause,
                                const std::function<void()>& retry) {
  const TimePoint now = sim_.now();
  const TimePoint previous = object.last_poll_completion();
  const bool initial = cause == PollCause::kInitial;

  // Stage 1: loss injection.
  const bool lost = config_.loss_probability > 0.0 &&
                    loss_rng_.bernoulli(config_.loss_probability);

  // Stage 2: the HTTP exchange.
  std::optional<Response> response;
  if (!lost) {
    response = exchange(object.uri(),
                        initial ? std::nullopt : std::make_optional(previous));
    BROADWAY_CHECK_MSG(response->status != StatusCode::kNotFound,
                       object.uri() << " not present at origin");
    // Stage 3: refresh the cached copy.
    store_response(object.uri(), *response, now, now + config_.rtt);
  }

  // Stage 4: record the poll — the single append site for every object
  // kind, lost and successful polls alike.
  record_poll(object.uri(), cause, !lost && response->ok(), lost, now,
              now + config_.rtt);

  if (lost) {
    schedule_retry(retry);
    return false;
  }

  // Stage 5: policy update.
  const PollOutcome outcome = object.on_response(*response, now, previous,
                                                 cause);
  object.set_last_poll_completion(now);
  if (outcome.ttr) {
    object.record_ttr(now, *outcome.ttr);
    object.task()->reschedule(*outcome.ttr);
  }

  // Stage 6: coordinators see every non-initial temporal poll — including
  // triggered ones, so they can cascade (the δ-window test keeps cascades
  // finite).
  if (outcome.observation) {
    for (auto& coordinator : coordinators_) {
      coordinator->on_poll(object.uri(), *outcome.observation);
    }
  }

  // Stage 7: fleet-level observer, after the engine's own state settled so
  // the listener (e.g. a relaying fleet) sees a consistent proxy.
  if (poll_listener_) {
    poll_listener_(PollEvent{
        object.uri(), cause, *response, now,
        outcome.observation ? &*outcome.observation : nullptr});
  }
  return true;
}

bool PollingEngine::apply_relay(const std::string& uri,
                                const Response& response,
                                TimePoint snapshot) {
  if (!started_) return false;  // relays may race engine start-up
  if (!response.ok() && !response.not_modified()) return false;
  const auto it = objects_.find(uri);
  if (it == objects_.end() || !it->second->self_scheduled()) return false;
  TrackedObject& object = *it->second;
  const TimePoint now = sim_.now();
  BROADWAY_CHECK_MSG(snapshot <= now, "relay snapshot " << snapshot
                                                        << " after " << now);
  const TimePoint previous = object.last_poll_completion();
  // A relay older than this proxy's own view carries nothing new (e.g. a
  // delayed delivery overtaken by an own poll).
  if (snapshot <= previous) return false;
  const auto relayed_last_modified = get_last_modified(response.headers);

  Response local = response;
  if (response.not_modified()) {
    // Validation relay: the sibling's 304 confirms the object unchanged
    // through `snapshot`.  Applicable only when it validates *this*
    // proxy's copy, i.e. the reported version is one this proxy has
    // already seen; otherwise this proxy missed an update and must poll
    // itself.
    if (!relayed_last_modified || *relayed_last_modified > previous) {
      return false;
    }
  } else {
    // Refresh relay.  Skip when the copy is already current (e.g. this
    // proxy polled at the same instant and the cross-relay arrived late):
    // applying would mis-report a modification to the policy.
    if (relayed_last_modified && *relayed_last_modified <= previous) {
      return false;
    }
    if (const CacheEntry* entry = cache_.find(uri)) {
      if (relayed_last_modified && entry->last_modified &&
          *relayed_last_modified <= *entry->last_modified) {
        return false;
      }
    }
    // The sibling's history covers updates since *its* previous poll;
    // restrict it to the updates this proxy has not seen.  With relays
    // flowing on every observed modification the sibling's history is a
    // superset of ours past `previous`, so the restriction is exact.
    if (const auto history = get_modification_history(response.headers)) {
      std::vector<TimePoint> unseen;
      unseen.reserve(history->size());
      for (const TimePoint t : *history) {
        if (t > previous) unseen.push_back(t);
      }
      set_modification_history(local.headers, unseen);
    }
  }

  // The relay pipeline mirrors poll stages 3–6 (no exchange, no loss);
  // store_response ignores 304s, exactly as for an own poll.  All state is
  // stamped with the true server snapshot — with delivery latency the
  // copy reflects state at `snapshot` and becomes visible only `now`, and
  // the fidelity evaluation must see exactly that.
  store_response(uri, local, snapshot, now);
  record_poll(uri, PollCause::kRelay, /*modified=*/local.ok(),
              /*failed=*/false, snapshot, now);
  const PollOutcome outcome =
      object.on_response(local, snapshot, previous, PollCause::kRelay);
  object.set_last_poll_completion(snapshot);
  if (outcome.ttr) {
    object.record_ttr(snapshot, *outcome.ttr);
    object.task()->reschedule(*outcome.ttr);
  }
  if (outcome.observation) {
    for (auto& coordinator : coordinators_) {
      coordinator->on_poll(uri, *outcome.observation);
    }
  }
  return true;
}

void PollingEngine::poll_self(TrackedObject& object, PollCause cause) {
  TrackedObject* raw = &object;
  poll_object(object, cause,
              [this, raw] { poll_self(*raw, PollCause::kRetry); });
}

void PollingEngine::poll_group(VirtualGroup& group, PollCause cause) {
  const TimePoint now = sim_.now();
  const bool initial = cause == PollCause::kInitial;
  VirtualGroup* raw = &group;
  const auto retry = [this, raw] { poll_group(*raw, PollCause::kRetry); };

  // A joint poll fetches every member; each fetch is one poll in the
  // paper's accounting (Fig. 7 counts individual server polls).
  std::vector<double> values;
  values.reserve(group.members.size());
  for (VirtualMemberObject* member : group.members) {
    if (!poll_object(*member, cause, retry)) {
      return;  // lost: the whole joint poll retries
    }
    values.push_back(member->last_value());
  }

  const Duration ttr = initial ? group.policy->initial_ttr()
                               : group.policy->next_ttr(now, values);
  group.task->reschedule(ttr);
}

// ---- coordinator hooks -----------------------------------------------------

CoordinatorHooks PollingEngine::make_hooks() {
  CoordinatorHooks hooks;
  hooks.next_poll_time = [this](const std::string& uri) {
    return next_poll_time(uri);
  };
  hooks.last_poll_time = [this](const std::string& uri) {
    return last_poll_time(uri);
  };
  hooks.trigger_poll = [this](const std::string& uri) {
    trigger_poll(uri);
  };
  return hooks;
}

TrackedObject& PollingEngine::temporal_object(const std::string& uri) {
  auto it = objects_.find(uri);
  BROADWAY_CHECK_MSG(it != objects_.end() && it->second->temporal(),
                     "unknown temporal object " << uri);
  return *it->second;
}

TimePoint PollingEngine::next_poll_time(const std::string& uri) {
  return temporal_object(uri).task()->next_fire_time();
}

TimePoint PollingEngine::last_poll_time(const std::string& uri) {
  return temporal_object(uri).last_poll_completion();
}

void PollingEngine::trigger_poll(const std::string& uri) {
  poll_self(temporal_object(uri), PollCause::kTriggered);
}

// ---- accessors -------------------------------------------------------------

const std::vector<std::pair<TimePoint, Duration>>& PollingEngine::ttr_series(
    const std::string& uri) const {
  static const std::vector<std::pair<TimePoint, Duration>> kEmpty;
  const auto it = objects_.find(uri);
  return it == objects_.end() ? kEmpty : it->second->ttr_series();
}

}  // namespace broadway

// Related-object group management (paper §5.2).
//
// Mutual consistency needs to know which cached objects are related.  The
// paper: groups "can be specified by the user or be automatically deduced
// using syntactic or semantic relationships", stored in dependency-graph
// style structures.  This registry supports explicit (semantic) groups and
// syntactic groups built by parsing a page's embedded links; the
// dependency-graph view answers "which groups must be re-examined when
// object X changes".
//
// A registry may be bound to a UriTable (the origin's, typically): members
// are then interned at registration, every ObjectGroup carries the interned
// ids alongside the uris, and the dependency-graph query is answerable by
// ObjectId — so consumers wiring groups into the id-keyed coordinator
// dispatch never re-hash member uris.  An unbound registry keeps the plain
// string behaviour.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// One group of mutually-consistent objects with its tolerance δ.
struct ObjectGroup {
  std::string id;
  std::vector<std::string> members;
  /// Interned member ids, parallel to `members`; empty when the registry
  /// is not bound to a UriTable.
  std::vector<ObjectId> member_ids;
  Duration delta_mutual = 0.0;
};

/// Registry of groups; an object may belong to several.
class GroupRegistry {
 public:
  /// Unbound registry: string-keyed only.
  GroupRegistry() = default;

  /// Registry interning members into `table` (which must outlive it),
  /// enabling the ObjectId queries below.
  explicit GroupRegistry(UriTable& table) : table_(&table) {}

  /// Register an explicit (user/semantic) group.  Group ids are unique;
  /// members must number at least two and be distinct.
  const ObjectGroup& add_group(std::string id,
                               std::vector<std::string> members,
                               Duration delta_mutual);

  /// Build a syntactic group from a page body: the page plus its embedded
  /// objects (paper's news-story example).  The group id is the page uri.
  /// Returns nullptr (and registers nothing) when the page embeds nothing.
  const ObjectGroup* add_syntactic_group(const std::string& page_uri,
                                         std::string_view html,
                                         Duration delta_mutual);

  /// Lookup by id; nullptr if absent.
  const ObjectGroup* find(const std::string& id) const;

  /// All groups containing `uri` (the dependency-graph edge fan-out).
  std::vector<const ObjectGroup*> groups_containing(
      const std::string& uri) const;

  /// Id-keyed fan-out query; requires a table-bound registry.  Unknown
  /// ids yield an empty result.
  std::vector<const ObjectGroup*> groups_containing(ObjectId object) const;

  /// Every distinct object mentioned by any group.
  std::vector<std::string> all_members() const;

  /// The bound intern table, nullptr for an unbound registry.
  const UriTable* uri_table() const { return table_; }

  std::size_t size() const { return groups_.size(); }

 private:
  UriTable* table_ = nullptr;
  std::map<std::string, ObjectGroup> groups_;
  // uri -> group ids (the dependency graph's reverse index).
  std::map<std::string, std::vector<std::string>> membership_;
  // ObjectId -> group ids; populated only when table-bound.
  std::map<ObjectId, std::vector<std::string>> id_membership_;

  void index_group(ObjectGroup& group);
};

}  // namespace broadway

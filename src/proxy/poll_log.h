// The proxy's poll log: the append-only record stream the paper's
// evaluation is computed from, with per-uri indices and running counters.
//
// Every poll of every tracked object — temporal, value, virtual-group
// member or partitioned-group member — is appended here by the engine's
// single poll pipeline.  The harness sweeps query per-object series
// (completion/snapshot instants) and per-object counters (polls performed,
// triggered polls) after every run; indexing at append time turns those
// from O(total-polls) scans of the global log into O(records-for-uri)
// and O(1) lookups respectively.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "consistency/types.h"
#include "util/time.h"

namespace broadway {

/// One completed (or failed) poll.
struct PollRecord {
  /// Server-state instant the response reflects (fire time).
  TimePoint snapshot_time = 0.0;
  /// Instant the refreshed copy became visible at the proxy.
  TimePoint complete_time = 0.0;
  std::string uri;
  PollCause cause = PollCause::kScheduled;
  /// True when the server answered 200.
  bool modified = false;
  /// True when the poll was lost (no other fields beyond uri/cause/time
  /// are meaningful).
  bool failed = false;
};

/// Append-only, indexed poll log.  Reads behave like the plain record
/// vector this class replaces (size/operator[]/iteration), and the indexed
/// queries answer the evaluation's per-object questions without scanning
/// other objects' records.
class PollLog {
 public:
  /// Append one record, updating the per-uri index and the counters.
  void append(PollRecord record);

  // ---- whole-log access (vector-compatible) ----

  const std::vector<PollRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const PollRecord& operator[](std::size_t index) const {
    return records_[index];
  }
  std::vector<PollRecord>::const_iterator begin() const {
    return records_.begin();
  }
  std::vector<PollRecord>::const_iterator end() const {
    return records_.end();
  }

  // ---- per-uri indexed queries ----

  /// Indices (into records()) of the successful polls of `uri`, ascending.
  /// Empty for a uri that was never polled.
  const std::vector<std::size_t>& successful_records(
      const std::string& uri) const;

  /// Completion instants of successful polls of `uri`, ascending,
  /// including the initial fetch.
  std::vector<TimePoint> completion_times(const std::string& uri) const;

  /// Snapshot instants of successful polls of `uri` (same indexing as
  /// completion_times).
  std::vector<TimePoint> snapshot_times(const std::string& uri) const;

  // ---- O(1) counters ----

  /// Successful polls excluding initial fetches — the paper's "number of
  /// polls" metric.  Empty uri = all objects.  Relay refreshes (PollCause::
  /// kRelay) are *not* counted: they refresh the cached copy without an
  /// origin message, so they are not polls in the paper's sense.
  std::size_t polls_performed(const std::string& uri = "") const;

  /// Successful triggered polls (the mutual-consistency overhead).  Empty
  /// uri = all objects.
  std::size_t triggered_polls(const std::string& uri = "") const;

  /// Refreshes applied from sibling-proxy relays (cooperative push).
  /// Empty uri = all objects.
  std::size_t relay_refreshes(const std::string& uri = "") const;

  /// Failed (lost) poll attempts, all objects.
  std::size_t failed_polls() const { return failed_total_; }

 private:
  struct UriIndex {
    std::vector<std::size_t> successful;  ///< record indices, !failed
    std::size_t performed = 0;            ///< successful, non-initial origin
    std::size_t triggered = 0;            ///< successful, kTriggered
    std::size_t relays = 0;               ///< successful, kRelay
  };

  /// nullptr when the uri has no records.
  const UriIndex* find(const std::string& uri) const;

  std::vector<PollRecord> records_;
  std::unordered_map<std::string, UriIndex> by_uri_;
  std::size_t performed_total_ = 0;
  std::size_t triggered_total_ = 0;
  std::size_t relay_total_ = 0;
  std::size_t failed_total_ = 0;
};

}  // namespace broadway

// The proxy's poll log: the append-only record stream the paper's
// evaluation is computed from, with per-object indices and running
// counters.
//
// Every poll of every tracked object — temporal, value, virtual-group
// member or partitioned-group member — is appended here by the engine's
// single poll pipeline.  The harness sweeps query per-object series
// (completion/snapshot instants) and per-object counters (polls performed,
// triggered polls) after every run; indexing at append time turns those
// from O(total-polls) scans of the global log into O(records-for-object)
// and O(1) lookups respectively.
//
// Records and the index are keyed by interned ObjectId (the engine appends
// by id — no hashing, no string copies on the hot path beyond the record's
// human-readable uri field); string-uri queries translate through the
// table.
//
// Long-horizon runs can cap memory with a retention window
// (set_retention_window): each object keeps only its newest W records,
// while every counter remains exact — eviction compacts storage, it never
// rewinds accounting.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "consistency/types.h"
#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// One completed (or failed) poll.
struct PollRecord {
  /// Server-state instant the response reflects (fire time).
  TimePoint snapshot_time = 0.0;
  /// Instant the refreshed copy became visible at the proxy.
  TimePoint complete_time = 0.0;
  std::string uri;
  /// Interned id of `uri`; filled by PollLog::append when defaulted.
  ObjectId object = kInvalidObjectId;
  PollCause cause = PollCause::kScheduled;
  /// True when the server answered 200.
  bool modified = false;
  /// True when the poll was lost (no other fields beyond uri/cause/time
  /// are meaningful).
  bool failed = false;
};

/// Append-only, indexed poll log.  Reads behave like the plain record
/// vector this class replaces (size/operator[]/iteration), and the indexed
/// queries answer the evaluation's per-object questions without scanning
/// other objects' records.
class PollLog {
 public:
  /// Standalone log with its own intern table (tests, benches).
  PollLog();

  /// Log sharing an external table (a polling engine shares its
  /// origin's).  `table` must outlive the log.
  explicit PollLog(UriTable& table);

  PollLog(const PollLog&) = delete;
  PollLog& operator=(const PollLog&) = delete;
  // Moves are safe: an owned table lives on the heap, so table_ stays
  // valid across the transfer.
  PollLog(PollLog&&) = default;
  PollLog& operator=(PollLog&&) = default;

  /// Append one record, updating the per-object index and the counters.
  /// Interns record.uri when record.object is defaulted; fills record.uri
  /// from the table when only the id is set.
  void append(PollRecord record);

  /// Hot-path append by interned id: no hashing, no lookup.
  void append(ObjectId object, PollCause cause, bool modified, bool failed,
              TimePoint snapshot, TimePoint complete);

  // ---- whole-log access (vector-compatible) ----

  const std::vector<PollRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const PollRecord& operator[](std::size_t index) const {
    return records_[index];
  }
  std::vector<PollRecord>::const_iterator begin() const {
    return records_.begin();
  }
  std::vector<PollRecord>::const_iterator end() const {
    return records_.end();
  }

  /// The intern table this log resolves uris through.
  const UriTable& uri_table() const { return *table_; }

  // ---- per-object indexed queries ----

  /// Indices (into records()) of the successful polls of `uri`, ascending.
  /// Empty for a uri that was never polled.
  const std::vector<std::size_t>& successful_records(
      const std::string& uri) const;
  const std::vector<std::size_t>& successful_records(ObjectId object) const;

  /// Completion instants of successful polls of `uri`, ascending,
  /// including the initial fetch.
  std::vector<TimePoint> completion_times(const std::string& uri) const;

  /// Snapshot instants of successful polls of `uri` (same indexing as
  /// completion_times).
  std::vector<TimePoint> snapshot_times(const std::string& uri) const;

  // ---- O(1) counters (exact even under a retention window) ----

  /// Successful polls excluding initial fetches — the paper's "number of
  /// polls" metric.  Empty uri = all objects.  Relay refreshes (PollCause::
  /// kRelay) are *not* counted: they refresh the cached copy without an
  /// origin message, so they are not polls in the paper's sense.
  std::size_t polls_performed(const std::string& uri = "") const;
  std::size_t polls_performed(ObjectId object) const;

  /// Successful triggered polls (the mutual-consistency overhead).  Empty
  /// uri = all objects.
  std::size_t triggered_polls(const std::string& uri = "") const;

  /// Refreshes applied from sibling-proxy relays (cooperative push).
  /// Empty uri = all objects.
  std::size_t relay_refreshes(const std::string& uri = "") const;

  /// Successful demand fills (PollCause::kClientMiss): origin fetches
  /// triggered by a client read that missed the cache.  A subset of
  /// polls_performed() — demand fills are real origin polls — split out
  /// so accounting can separate policy-driven polls from demand-driven
  /// ones (`polls_performed == policy polls + demand_fills`).  Empty uri
  /// = all objects.
  std::size_t demand_fills(const std::string& uri = "") const;
  std::size_t demand_fills(ObjectId object) const;

  /// Successful initial fetches, all objects.
  std::size_t initial_polls() const { return initial_total_; }

  /// Failed (lost) poll attempts, all objects.
  std::size_t failed_polls() const { return failed_total_; }

  /// Records evicted by the retention window since construction (total
  /// appended minus retained).  0 on a full log; evaluations that replay
  /// the record *series* (read_transactions) fail fast when this is
  /// non-zero.
  std::size_t dropped_records() const {
    return initial_total_ + performed_total_ + relay_total_ + failed_total_ -
           records_.size();
  }

  // ---- windowed retention ----

  /// Keep at most `window` records (of any kind) per object, evicting the
  /// oldest; 0 (the default) disables eviction.  Counters stay exact;
  /// per-object record *series* (successful_records and friends) are
  /// truncated to the retained window, so long-horizon fleet runs that
  /// only need counters stop growing without bound.  May be set at any
  /// time; an over-budget log compacts on the next append (or compact()).
  void set_retention_window(std::size_t window);
  std::size_t retention_window() const { return window_; }

  /// Force eviction of everything beyond the window now (no-op when the
  /// window is 0 or nothing is evictable).
  void compact();

 private:
  struct UriIndex {
    std::vector<std::size_t> successful;  ///< record indices, !failed
    std::size_t performed = 0;            ///< successful, non-initial origin
    std::size_t triggered = 0;            ///< successful, kTriggered
    std::size_t relays = 0;               ///< successful, kRelay
    std::size_t demand = 0;               ///< successful, kClientMiss
    std::size_t live = 0;                 ///< records currently retained
  };

  /// nullptr when the object has no records.
  const UriIndex* find(const std::string& uri) const;
  UriIndex& index_for(ObjectId object);

  void count(UriIndex& index, const PollRecord& record);
  void maybe_compact();

  std::unique_ptr<UriTable> owned_table_;  // null when sharing
  UriTable* table_;
  std::vector<PollRecord> records_;
  std::vector<UriIndex> by_id_;
  std::size_t performed_total_ = 0;
  std::size_t triggered_total_ = 0;
  std::size_t relay_total_ = 0;
  std::size_t demand_total_ = 0;
  std::size_t initial_total_ = 0;
  std::size_t failed_total_ = 0;
  std::size_t window_ = 0;
  std::size_t evictable_ = 0;  ///< records beyond their object's window
};

}  // namespace broadway

#include "proxy/group_registry.h"

#include <algorithm>
#include <set>

#include "proxy/html_links.h"
#include "util/check.h"

namespace broadway {

const ObjectGroup& GroupRegistry::add_group(std::string id,
                                            std::vector<std::string> members,
                                            Duration delta_mutual) {
  BROADWAY_CHECK_MSG(!id.empty(), "group needs an id");
  BROADWAY_CHECK_MSG(groups_.find(id) == groups_.end(),
                     "duplicate group " << id);
  BROADWAY_CHECK_MSG(members.size() >= 2,
                     "group " << id << " needs >= 2 members");
  const std::set<std::string> unique(members.begin(), members.end());
  BROADWAY_CHECK_MSG(unique.size() == members.size(),
                     "group " << id << " has duplicate members");
  BROADWAY_CHECK_MSG(delta_mutual >= 0.0, "delta " << delta_mutual);

  ObjectGroup group;
  group.id = std::move(id);
  group.members = std::move(members);
  group.delta_mutual = delta_mutual;
  auto [it, inserted] = groups_.emplace(group.id, std::move(group));
  BROADWAY_CHECK(inserted);
  index_group(it->second);
  return it->second;
}

const ObjectGroup* GroupRegistry::add_syntactic_group(
    const std::string& page_uri, std::string_view html,
    Duration delta_mutual) {
  std::vector<std::string> members = extract_embedded_links(html);
  if (members.empty()) return nullptr;
  members.insert(members.begin(), page_uri);
  return &add_group(page_uri, std::move(members), delta_mutual);
}

const ObjectGroup* GroupRegistry::find(const std::string& id) const {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<const ObjectGroup*> GroupRegistry::groups_containing(
    const std::string& uri) const {
  std::vector<const ObjectGroup*> out;
  auto it = membership_.find(uri);
  if (it == membership_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& id : it->second) {
    const ObjectGroup* group = find(id);
    BROADWAY_CHECK(group != nullptr);
    out.push_back(group);
  }
  return out;
}

std::vector<const ObjectGroup*> GroupRegistry::groups_containing(
    ObjectId object) const {
  BROADWAY_CHECK_MSG(table_ != nullptr,
                     "id-keyed query on an unbound group registry");
  std::vector<const ObjectGroup*> out;
  auto it = id_membership_.find(object);
  if (it == id_membership_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& id : it->second) {
    const ObjectGroup* group = find(id);
    BROADWAY_CHECK(group != nullptr);
    out.push_back(group);
  }
  return out;
}

std::vector<std::string> GroupRegistry::all_members() const {
  std::set<std::string> unique;
  for (const auto& [id, group] : groups_) {
    unique.insert(group.members.begin(), group.members.end());
  }
  return {unique.begin(), unique.end()};
}

void GroupRegistry::index_group(ObjectGroup& group) {
  for (const std::string& member : group.members) {
    membership_[member].push_back(group.id);
  }
  if (table_ == nullptr) return;
  group.member_ids.reserve(group.members.size());
  for (const std::string& member : group.members) {
    const ObjectId object = table_->intern(member);
    group.member_ids.push_back(object);
    id_membership_[object].push_back(group.id);
  }
}

}  // namespace broadway

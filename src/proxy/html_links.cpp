#include "proxy/html_links.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace broadway {

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

// A minimal tag scanner.  Yields (tag_name_lowercase, attributes_region)
// for each element start tag, skipping comments and closing tags.
struct Tag {
  std::string name;
  std::string_view attributes;
};

std::vector<Tag> scan_tags(std::string_view html) {
  std::vector<Tag> out;
  std::size_t i = 0;
  while (i < html.size()) {
    const std::size_t open = html.find('<', i);
    if (open == std::string_view::npos) break;
    if (html.compare(open, 4, "<!--") == 0) {
      const std::size_t end = html.find("-->", open + 4);
      if (end == std::string_view::npos) break;
      i = end + 3;
      continue;
    }
    // A '<' not opening a tag (stray less-than in text) is skipped as
    // text rather than swallowing everything to the next '>'.
    if (open + 1 >= html.size() ||
        (!is_name_char(html[open + 1]) && html[open + 1] != '/' &&
         html[open + 1] != '!')) {
      i = open + 1;
      continue;
    }
    std::size_t close = html.find('>', open + 1);
    if (close == std::string_view::npos) break;
    std::string_view inside = html.substr(open + 1, close - open - 1);
    i = close + 1;
    if (inside.empty() || inside[0] == '/' || inside[0] == '!') continue;
    std::size_t name_end = 0;
    while (name_end < inside.size() && is_name_char(inside[name_end])) {
      ++name_end;
    }
    if (name_end == 0) continue;
    out.push_back(Tag{to_lower(inside.substr(0, name_end)),
                      inside.substr(name_end)});
  }
  return out;
}

// Extract the value of `attr` from an attribute region; empty if absent.
std::string attribute_value(std::string_view attrs, std::string_view attr) {
  std::size_t i = 0;
  while (i < attrs.size()) {
    // Find an attribute-name start.
    while (i < attrs.size() && !is_name_char(attrs[i])) ++i;
    std::size_t name_start = i;
    while (i < attrs.size() && is_name_char(attrs[i])) ++i;
    const std::string_view name = attrs.substr(name_start, i - name_start);
    // Optional "= value".
    std::size_t j = i;
    while (j < attrs.size() &&
           std::isspace(static_cast<unsigned char>(attrs[j]))) {
      ++j;
    }
    if (j >= attrs.size() || attrs[j] != '=') continue;  // valueless attr
    ++j;
    while (j < attrs.size() &&
           std::isspace(static_cast<unsigned char>(attrs[j]))) {
      ++j;
    }
    std::string value;
    if (j < attrs.size() && (attrs[j] == '"' || attrs[j] == '\'')) {
      const char quote = attrs[j];
      const std::size_t end = attrs.find(quote, j + 1);
      if (end == std::string_view::npos) return "";
      value = std::string(attrs.substr(j + 1, end - j - 1));
      i = end + 1;
    } else {
      std::size_t end = j;
      while (end < attrs.size() &&
             !std::isspace(static_cast<unsigned char>(attrs[end]))) {
        ++end;
      }
      value = std::string(attrs.substr(j, end - j));
      i = end;
    }
    if (iequals(name, attr)) return value;
  }
  return "";
}

void push_unique(std::vector<std::string>& out, std::string value) {
  if (value.empty()) return;
  if (std::find(out.begin(), out.end(), value) != out.end()) return;
  out.push_back(std::move(value));
}

}  // namespace

std::vector<std::string> extract_embedded_links(std::string_view html) {
  std::vector<std::string> out;
  for (const Tag& tag : scan_tags(html)) {
    if (tag.name == "img" || tag.name == "script" || tag.name == "iframe" ||
        tag.name == "embed" || tag.name == "audio" || tag.name == "video" ||
        tag.name == "source" || tag.name == "frame") {
      push_unique(out, attribute_value(tag.attributes, "src"));
    } else if (tag.name == "link") {
      // Only stylesheet links are render-blocking embedded objects.
      const std::string rel =
          to_lower(attribute_value(tag.attributes, "rel"));
      if (rel == "stylesheet") {
        push_unique(out, attribute_value(tag.attributes, "href"));
      }
    }
  }
  return out;
}

std::vector<std::string> extract_anchor_links(std::string_view html) {
  std::vector<std::string> out;
  for (const Tag& tag : scan_tags(html)) {
    if (tag.name == "a") {
      push_unique(out, attribute_value(tag.attributes, "href"));
    }
  }
  return out;
}

}  // namespace broadway

// Tracked objects: the per-object half of the polling engine.
//
// Every object kind the paper evaluates — temporal-domain (§3),
// value-domain (§4.1), virtual-group member (§4.2 adaptive) and
// partitioned-group member (§4.2 partitioned) — flows through one shared
// poll pipeline in the engine (exchange → loss/retry → store → record →
// policy update → coordinator notify).  A TrackedObject supplies the
// policy-specific stages of that pipeline: digesting a successful response
// and deciding the next TTR, plus crash-recovery reset.  New object kinds
// plug in by subclassing; the HTTP/retry/accounting logic is written once.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "consistency/partitioned.h"
#include "consistency/types.h"
#include "consistency/value_ttr.h"
#include "http/message.h"
#include "sim/periodic.h"
#include "util/small_vector.h"
#include "util/uri_table.h"

namespace broadway {

class MutualCoordinator;

/// What the pipeline should do after an object digested a successful
/// response.
struct PollOutcome {
  /// TTR to re-arm the object's own timer with; nullopt for objects polled
  /// jointly by a group (their schedule belongs to the group).
  std::optional<Duration> ttr;
  /// When set, mutual-consistency coordinators are notified with this
  /// observation (temporal-domain polls, excluding the initial fetch).
  std::optional<TemporalPollObservation> observation;
};

/// One uri tracked by the polling engine.
class TrackedObject {
 public:
  explicit TrackedObject(std::string uri) : uri_(std::move(uri)) {}
  virtual ~TrackedObject() = default;

  // Scheduled tasks and groups capture raw pointers to tracked objects.
  TrackedObject(const TrackedObject&) = delete;
  TrackedObject& operator=(const TrackedObject&) = delete;

  const std::string& uri() const { return uri_; }

  /// Interned id of uri() in the engine's shared table; set once at
  /// registration.
  ObjectId id() const { return id_; }
  void set_id(ObjectId id) { id_ = id; }

  /// Completion instant of the most recent successful poll (0 before any).
  TimePoint last_poll_completion() const { return last_poll_completion_; }
  void set_last_poll_completion(TimePoint t) { last_poll_completion_ = t; }

  /// TTR after each poll (Fig. 4(b) series).  Empty for group-polled
  /// members, whose schedule is the group's.
  const std::vector<std::pair<TimePoint, Duration>>& ttr_series() const {
    return ttr_series_;
  }
  void record_ttr(TimePoint now, Duration ttr) {
    ttr_series_.emplace_back(now, ttr);
  }

  /// The object's own refresh timer; null for group-polled members.
  PeriodicTask* task() const { return task_.get(); }
  void attach_task(std::unique_ptr<PeriodicTask> task) {
    task_ = std::move(task);
  }
  bool self_scheduled() const { return task_ != nullptr; }

  /// Coordinators watching this object's polls — the engine's per-object
  /// subscriber index, built at add_coordinator time from the
  /// coordinator's interned member set.  The poll pipeline notifies
  /// exactly this list, so an object in no δ-group pays nothing for the
  /// coordinator machinery.  Inline capacity 2: an object almost never
  /// belongs to more than a couple of groups.
  using Subscribers = SmallVector<MutualCoordinator*, 2>;
  const Subscribers& subscribers() const { return subscribers_; }
  void add_subscriber(MutualCoordinator* coordinator) {
    for (MutualCoordinator* existing : subscribers_) {
      if (existing == coordinator) return;
    }
    subscribers_.push_back(coordinator);
  }

  /// Client reads served for this object (hits and misses alike), bumped
  /// by the engine's serve_client_read.  A monotone total; policy-facing
  /// consumers (TemporalObject) diff it against the count at the previous
  /// poll to expose reads-per-poll-interval
  /// (TemporalPollObservation::client_reads).
  void note_client_read() { ++client_reads_; }
  std::uint64_t client_reads() const { return client_reads_; }

  /// Next index for the object's loss-injection draw (see hash_bernoulli):
  /// keying each draw by (engine seed, object id, draw index) keeps loss
  /// outcomes a property of the object's own poll history, so they survive
  /// re-partitioning the engine's objects across shard slices.
  std::uint64_t next_loss_draw() { return loss_draws_++; }

  /// Fire times of pending lost-poll retries, ascending.  The retry delay
  /// is a constant, so schedule order is fire order and a FIFO suffices.
  void push_pending_retry(TimePoint t) { pending_retries_.push_back(t); }
  void pop_pending_retry() { pending_retries_.erase(pending_retries_.begin()); }
  void clear_pending_retries() { pending_retries_.clear(); }
  TimePoint next_pending_retry() const {
    return pending_retries_.empty() ? kTimeInfinity : pending_retries_.front();
  }

  /// True for temporal-domain objects — the only kind coordinator hooks
  /// (trigger_poll and friends) apply to.
  virtual bool temporal() const { return false; }

  /// Pipeline stage: digest a successful response and decide what happens
  /// next.  `previous` is the completion instant of the preceding poll.
  virtual PollOutcome on_response(const Response& response, TimePoint now,
                                  TimePoint previous, PollCause cause) = 0;

  /// Crash recovery (§3.1): forget learned polling state.  Returns the TTR
  /// to re-arm the object's timer with; nullopt when the object has no own
  /// timer.  Cached payloads and observed values survive — they are on
  /// disk.
  virtual std::optional<Duration> reset() = 0;

 private:
  std::string uri_;
  ObjectId id_ = kInvalidObjectId;
  TimePoint last_poll_completion_ = 0.0;
  std::vector<std::pair<TimePoint, Duration>> ttr_series_;
  std::unique_ptr<PeriodicTask> task_;
  Subscribers subscribers_;
  std::uint64_t loss_draws_ = 0;
  std::uint64_t client_reads_ = 0;
  std::vector<TimePoint> pending_retries_;
};

/// Temporal-domain object driven by a RefreshPolicy (paper §3).
class TemporalObject final : public TrackedObject {
 public:
  TemporalObject(std::string uri, std::unique_ptr<RefreshPolicy> policy);

  bool temporal() const override { return true; }
  PollOutcome on_response(const Response& response, TimePoint now,
                          TimePoint previous, PollCause cause) override;
  std::optional<Duration> reset() override;

 private:
  std::unique_ptr<RefreshPolicy> policy_;
  /// client_reads() at the previous observation, for the per-interval
  /// diff exposed as TemporalPollObservation::client_reads.
  std::uint64_t reads_at_last_obs_ = 0;
};

/// Shared state of the value-domain kinds: the most recently observed
/// server value and the Δv poll observation built from each response.
class ValueDomainObject : public TrackedObject {
 public:
  using TrackedObject::TrackedObject;

  double last_value() const { return last_value_; }
  bool has_value() const { return has_value_; }

 protected:
  /// One absorbed value-domain response.
  struct ValueSample {
    ValuePollObservation obs;
    /// True when no prior value existed (initial fetch, or a retry racing
    /// it): policies fall back to their initial TTR.
    bool first = false;
  };

  /// Extract the object value of a 200 (a 304 keeps the previous value)
  /// and remember it.
  ValueSample absorb_value(const Response& response, TimePoint now,
                           TimePoint previous, PollCause cause);

 private:
  double last_value_ = 0.0;
  bool has_value_ = false;
};

/// Value-domain object with its own adaptive Δv policy (paper §4.1).
class ValueObject final : public ValueDomainObject {
 public:
  ValueObject(std::string uri, AdaptiveValueTtrPolicy::Config config);

  PollOutcome on_response(const Response& response, TimePoint now,
                          TimePoint previous, PollCause cause) override;
  std::optional<Duration> reset() override;

 private:
  AdaptiveValueTtrPolicy policy_;
};

/// Member of a partitioned-tolerance group (paper §4.2): polls
/// independently against the group policy's δᵢ share for its slot.
class PartitionedMemberObject final : public ValueDomainObject {
 public:
  /// `policy` is owned by the engine's group record and outlives the
  /// member.
  PartitionedMemberObject(std::string uri,
                          PartitionedTolerancePolicy* policy,
                          std::size_t index);

  PollOutcome on_response(const Response& response, TimePoint now,
                          TimePoint previous, PollCause cause) override;
  std::optional<Duration> reset() override;

 private:
  PartitionedTolerancePolicy* policy_;
  std::size_t index_;
};

/// Member of a virtual-object group (paper §4.2): fetched on each joint
/// poll; the group policy owns all scheduling.
class VirtualMemberObject final : public ValueDomainObject {
 public:
  explicit VirtualMemberObject(std::string uri);

  PollOutcome on_response(const Response& response, TimePoint now,
                          TimePoint previous, PollCause cause) override;
  std::optional<Duration> reset() override;
};

}  // namespace broadway

#include "proxy/cache.h"

#include "util/check.h"

namespace broadway {

void ProxyCache::store(CacheEntry entry) {
  BROADWAY_CHECK_MSG(!entry.uri.empty(), "cache entry without uri");
  auto it = entries_.find(entry.uri);
  if (it != entries_.end()) {
    BROADWAY_CHECK_MSG(entry.snapshot_time >= it->second.snapshot_time,
                       entry.uri << ": snapshot would move backwards");
    entry.refresh_count = it->second.refresh_count + 1;
    it->second = std::move(entry);
    return;
  }
  entries_.emplace(entry.uri, std::move(entry));
}

const CacheEntry* ProxyCache::find(const std::string& uri) const {
  auto it = entries_.find(uri);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry& ProxyCache::at(const std::string& uri) const {
  const CacheEntry* entry = find(uri);
  BROADWAY_CHECK_MSG(entry != nullptr, "cache miss for " << uri);
  return *entry;
}

bool ProxyCache::contains(const std::string& uri) const {
  return entries_.find(uri) != entries_.end();
}

const CacheEntry* ProxyCache::lookup_counted(const std::string& uri) {
  const CacheEntry* entry = find(uri);
  if (entry != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  return entry;
}

std::vector<std::string> ProxyCache::uris() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [uri, entry] : entries_) out.push_back(uri);
  return out;
}

void ProxyCache::clear() { entries_.clear(); }

}  // namespace broadway

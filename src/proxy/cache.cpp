#include "proxy/cache.h"

#include <algorithm>

#include "util/check.h"

namespace broadway {

ProxyCache::ProxyCache()
    : owned_table_(std::make_unique<UriTable>()),
      table_(owned_table_.get()) {}

ProxyCache::ProxyCache(UriTable& table) : table_(&table) {}

std::optional<CacheEntry>& ProxyCache::slot(ObjectId id) {
  if (entries_.size() <= id) entries_.resize(id + 1);
  return entries_[id];
}

void ProxyCache::store(CacheEntry entry) {
  BROADWAY_CHECK_MSG(!entry.uri.empty(), "cache entry without uri");
  std::optional<CacheEntry>& existing = slot(table_->intern(entry.uri));
  if (existing) {
    BROADWAY_CHECK_MSG(entry.snapshot_time >= existing->snapshot_time,
                       entry.uri << ": snapshot would move backwards");
    entry.refresh_count = existing->refresh_count + 1;
    *existing = std::move(entry);
    return;
  }
  ++count_;
  existing = std::move(entry);
}

CacheEntry& ProxyCache::refresh_entry(ObjectId id, TimePoint snapshot) {
  std::optional<CacheEntry>& existing = slot(id);
  if (existing) {
    BROADWAY_CHECK_MSG(snapshot >= existing->snapshot_time,
                       existing->uri << ": snapshot would move backwards");
    ++existing->refresh_count;
    return *existing;
  }
  ++count_;
  existing.emplace();
  existing->uri = table_->uri(id);
  return *existing;
}

const CacheEntry* ProxyCache::find(ObjectId id) const {
  if (id >= entries_.size() || !entries_[id]) return nullptr;
  return &*entries_[id];
}

const CacheEntry* ProxyCache::find(const std::string& uri) const {
  const ObjectId id = table_->find(uri);
  return id == kInvalidObjectId ? nullptr : find(id);
}

const CacheEntry& ProxyCache::at(const std::string& uri) const {
  const CacheEntry* entry = find(uri);
  BROADWAY_CHECK_MSG(entry != nullptr, "cache miss for " << uri);
  return *entry;
}

const CacheEntry* ProxyCache::lookup_counted(ObjectId id) {
  const CacheEntry* entry =
      id == kInvalidObjectId ? nullptr : find(id);
  if (entry != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  return entry;
}

const CacheEntry* ProxyCache::lookup_counted(const std::string& uri) {
  return lookup_counted(table_->find(uri));
}

std::vector<std::string> ProxyCache::uris() const {
  std::vector<std::string> out;
  out.reserve(count_);
  for (const auto& entry : entries_) {
    if (entry) out.push_back(entry->uri);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ProxyCache::clear() {
  entries_.clear();
  count_ = 0;
}

}  // namespace broadway

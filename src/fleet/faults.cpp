#include "fleet/faults.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace broadway {

namespace {

// Distinct hash streams for the loss and jitter draws: the same (object,
// src, dst, counter) key must yield independent decisions for "was it
// lost" and "how late is it".
constexpr std::uint64_t kLossSalt = 0x72656c61796c6f73ULL;    // "relaylos"
constexpr std::uint64_t kJitterSalt = 0x72656c61796a6974ULL;  // "relayjit"

// Packs the relay endpoints and object into one 64-bit hash stream.  The
// golden-ratio multiplier spreads small ids across the word; the salt
// separates the two draw families.  Collisions between distinct triples
// would only correlate two relays' draws, never break determinism.
std::uint64_t relay_stream(std::uint64_t salt, ObjectId object,
                           std::size_t src, std::size_t dst) {
  std::uint64_t stream = salt;
  stream = stream * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(object);
  stream = stream * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(src);
  stream = stream * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(dst);
  return stream;
}

}  // namespace

bool FaultSchedule::any() const {
  return has_crashes() || relay_loss > 0.0 || relay_jitter_max > 0.0;
}

bool FaultSchedule::has_crashes() const {
  for (const ProxyCrashes& entry : crashes) {
    if (!entry.windows.empty()) return true;
  }
  return false;
}

void FaultSchedule::validate(std::size_t proxy_limit) const {
  BROADWAY_CHECK_MSG(relay_loss >= 0.0 && relay_loss < 1.0,
                     "relay_loss=" << relay_loss);
  BROADWAY_CHECK_MSG(relay_jitter_max >= 0.0,
                     "relay_jitter_max=" << relay_jitter_max);
  BROADWAY_CHECK_MSG(retry_backoff_base > 0.0,
                     "retry_backoff_base=" << retry_backoff_base);
  BROADWAY_CHECK_MSG(retry_backoff_cap >= retry_backoff_base,
                     "retry_backoff_cap=" << retry_backoff_cap << " < base="
                                          << retry_backoff_base);
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const ProxyCrashes& entry = crashes[i];
    BROADWAY_CHECK_MSG(entry.proxy < proxy_limit,
                       "crash schedule for unknown proxy " << entry.proxy);
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      BROADWAY_CHECK_MSG(crashes[j].proxy != entry.proxy,
                         "duplicate crash schedule for proxy " << entry.proxy);
    }
    TimePoint previous_end = 0.0;
    for (const CrashWindow& window : entry.windows) {
      // crash_at == 0 would race the fleet's own start(); outages begin
      // strictly inside the run.
      BROADWAY_CHECK_MSG(window.crash_at > 0.0,
                         "crash_at=" << window.crash_at << " must be > 0");
      BROADWAY_CHECK_MSG(window.recover_at > window.crash_at,
                         "empty crash window [" << window.crash_at << ", "
                                                << window.recover_at << ")");
      BROADWAY_CHECK_MSG(window.crash_at >= previous_end,
                         "overlapping or unordered crash windows at t="
                             << window.crash_at);
      previous_end = window.recover_at;
    }
  }
}

const std::vector<CrashWindow>* FaultSchedule::windows_for(
    std::size_t proxy) const {
  for (const ProxyCrashes& entry : crashes) {
    if (entry.proxy == proxy && !entry.windows.empty()) return &entry.windows;
  }
  return nullptr;
}

bool FaultSchedule::dark(std::size_t proxy, TimePoint t) const {
  const std::vector<CrashWindow>* windows = windows_for(proxy);
  if (windows == nullptr) return false;
  for (const CrashWindow& window : *windows) {
    if (t < window.crash_at) return false;  // windows are ordered
    if (t < window.recover_at) return true;
  }
  return false;
}

TimePoint FaultSchedule::next_transition_after(std::size_t proxy,
                                               TimePoint t) const {
  const std::vector<CrashWindow>* windows = windows_for(proxy);
  if (windows == nullptr) return kTimeInfinity;
  for (const CrashWindow& window : *windows) {
    if (window.crash_at > t) return window.crash_at;
    if (window.recover_at > t) return window.recover_at;
  }
  return kTimeInfinity;
}

Duration FaultSchedule::total_dark_time(TimePoint horizon) const {
  Duration total = 0.0;
  for (const ProxyCrashes& entry : crashes) {
    for (const CrashWindow& window : entry.windows) {
      const TimePoint from = std::min(window.crash_at, horizon);
      const TimePoint to = std::min(window.recover_at, horizon);
      total += to - from;
    }
  }
  return total;
}

bool FaultSchedule::relay_lost(ObjectId object, std::size_t src,
                               std::size_t dst,
                               std::uint64_t counter) const {
  if (relay_loss <= 0.0) return false;
  return hash_bernoulli(seed, relay_stream(kLossSalt, object, src, dst),
                        counter, relay_loss);
}

Duration FaultSchedule::relay_jitter(ObjectId object, std::size_t src,
                                     std::size_t dst,
                                     std::uint64_t counter) const {
  if (relay_jitter_max <= 0.0) return 0.0;
  return relay_jitter_max *
         hash_u01(seed, relay_stream(kJitterSalt, object, src, dst), counter);
}

Duration FaultSchedule::retry_backoff(std::size_t attempt) const {
  Duration backoff = retry_backoff_base;
  for (std::size_t i = 0; i < attempt && backoff < retry_backoff_cap; ++i) {
    backoff *= 2.0;
  }
  return std::min(backoff, retry_backoff_cap);
}

std::uint64_t FaultSchedule::attempt_counter(std::uint64_t round,
                                             std::size_t attempt) const {
  return round * static_cast<std::uint64_t>(relay_retry_limit + 1) +
         static_cast<std::uint64_t>(attempt);
}

}  // namespace broadway

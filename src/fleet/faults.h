// Deterministic fault injection for the proxy fleet.
//
// The cooperative-consistency story of the paper assumes the proxy-proxy
// channel and the proxies themselves are perfect; this layer removes that
// assumption without giving up reproducibility.  A FaultSchedule describes
//   * proxy crash/recovery windows — a proxy is "dark" on [crash_at,
//     recover_at): its timers stop, inbound relays are dropped on the
//     floor, and client reads are served stale-or-miss from whatever the
//     cache held at crash time (paper §3.1: on recovery every TTR resets
//     as if the proxy had just started);
//   * per-relay loss and latency jitter on the proxy-proxy channel; and
//   * relay retry with capped exponential backoff.
//
// Every random decision is a counter-based hash draw (util/rng.h) keyed on
// data that is identical in every execution of the same configuration: the
// object id, the *global* ids of the sending and receiving proxies, and a
// per-(sender, object) fan-out round counter.  No mutable generator state
// is involved, so a faulty run produces byte-identical poll logs, client
// metrics, and fault ledgers whether it executes on one simulator or
// sharded across worker threads — the same trick PR 8 used for the poll
// loss draws.  Crash and recovery are pure functions of simulated time,
// which makes the "is the destination dark?" test at relay delivery immune
// to event-ordering differences between shard layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// One scheduled outage: the proxy is dark on [crash_at, recover_at).
struct CrashWindow {
  TimePoint crash_at = 0.0;
  TimePoint recover_at = 0.0;
};

/// The outage schedule of one proxy, keyed by *global* proxy id so the
/// schedule means the same thing inside a sharded slice as in the
/// reference single-simulator run.
struct ProxyCrashes {
  std::size_t proxy = 0;
  std::vector<CrashWindow> windows;
};

/// Immutable description of the faults to inject into a fleet run.  A
/// default-constructed schedule injects nothing and costs nothing on the
/// relay path.
struct FaultSchedule {
  /// Outage windows per proxy; at most one entry per proxy, windows
  /// strictly ordered and non-overlapping (see validate()).
  std::vector<ProxyCrashes> crashes;

  /// Probability that one relay transmission attempt is lost in the
  /// network.  Applies per attempt, so a retried relay re-draws.
  double relay_loss = 0.0;

  /// Each successful relay attempt adds a uniform [0, relay_jitter_max)
  /// delay on top of the fleet's base relay latency.
  Duration relay_jitter_max = 0.0;

  /// Retry attempt k (0-based) is re-sent backoff(k) after the loss, with
  /// backoff(k) = min(retry_backoff_cap, retry_backoff_base * 2^k).
  Duration retry_backoff_base = 1.0;
  Duration retry_backoff_cap = 60.0;

  /// Maximum number of retries per relay; 0 means lost relays are simply
  /// dropped.  With the limit at L an individual relay is transmitted at
  /// most L + 1 times.
  std::size_t relay_retry_limit = 0;

  /// Seed for the loss and jitter hash draws.
  std::uint64_t seed = 0x0fa1751dULL;

  /// True when the schedule injects anything at all (the fleet keeps the
  /// zero-copy fault-free relay path when this is false).
  bool any() const;

  /// True when at least one proxy has a crash window.
  bool has_crashes() const;

  /// Aborts on malformed schedules: overlapping or unordered windows,
  /// non-positive window start, loss outside [0, 1), negative jitter, a
  /// non-positive backoff base, a cap below the base, or (when
  /// `proxy_limit` is finite) a crash entry for a proxy id >= the limit.
  /// Pass SIZE_MAX as the limit when only a slice of the fleet is visible.
  void validate(std::size_t proxy_limit) const;

  /// The crash windows of `proxy`, or nullptr when it never crashes.
  const std::vector<CrashWindow>* windows_for(std::size_t proxy) const;

  /// True when `proxy` is dark at time `t` (t in [crash_at, recover_at)).
  /// Pure in (proxy, t): safe to evaluate from any shard at any point of
  /// the event interleave.
  bool dark(std::size_t proxy, TimePoint t) const;

  /// Earliest crash or recovery boundary of `proxy` strictly after `t`;
  /// kTimeInfinity when none remain.  The sharded driver folds this into
  /// its adaptive send bound: a dark proxy's timers are stopped, so
  /// without this bound the window edge would jump straight past the
  /// recovery and the re-armed polls behind it.
  TimePoint next_transition_after(std::size_t proxy, TimePoint t) const;

  /// Total scheduled dark time across all proxies, clamped to
  /// [0, horizon] per window — the "dark time" reporting row.
  Duration total_dark_time(TimePoint horizon) const;

  /// Loss draw for one transmission attempt of a relay of `object` from
  /// global proxy `src` to global proxy `dst`.  `counter` must be unique
  /// per attempt: use attempt_counter(round, attempt).
  bool relay_lost(ObjectId object, std::size_t src, std::size_t dst,
                  std::uint64_t counter) const;

  /// Latency jitter in [0, relay_jitter_max) for a successful attempt,
  /// keyed like relay_lost but on an independent hash stream.  Never
  /// negative, so jittered deliveries still respect the conservative
  /// window safety argument (delivery >= send + relay_latency).
  Duration relay_jitter(ObjectId object, std::size_t src, std::size_t dst,
                        std::uint64_t counter) const;

  /// Backoff before retry attempt `attempt` (0-based).
  Duration retry_backoff(std::size_t attempt) const;

  /// Unique draw counter for transmission attempt `attempt` of fan-out
  /// round `round`.  Rounds are counted per (sender, object) by the
  /// fleet, so the (stream, counter) pair never repeats.
  std::uint64_t attempt_counter(std::uint64_t round,
                                std::size_t attempt) const;
};

}  // namespace broadway

#include "fleet/sharded_fleet.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace broadway {
namespace {

/// Union-find over proxy ids (path halving; the fleet is small, but the
/// structure keeps group closure obviously correct).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins, so a component's representative is its smallest
    // member — handy for deterministic shard numbering.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(std::move(config)) {
  BROADWAY_CHECK_MSG(config_.fleet.proxy_ids.empty(),
                     "ShardedFleet assigns proxies to shards itself; leave "
                     "FleetConfig::proxy_ids empty");
  BROADWAY_CHECK_MSG(config_.fleet.proxies >= 1,
                     "fleet needs >= 1 proxy, got " << config_.fleet.proxies);
  BROADWAY_CHECK(config_.origin_setup != nullptr);
  proxy_count_ = config_.fleet.proxies;
}

ShardedFleet::~ShardedFleet() = default;

// ---- registration ----------------------------------------------------------

void ShardedFleet::add_temporal_object(std::size_t proxy,
                                       const std::string& uri,
                                       PolicyFactory make_policy) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  BROADWAY_CHECK(make_policy != nullptr);
  temporal_registrations_.push_back({proxy, uri, std::move(make_policy)});
}

void ShardedFleet::add_temporal_object_everywhere(const std::string& uri,
                                                  PolicyFactory make_policy) {
  BROADWAY_CHECK(make_policy != nullptr);
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    add_temporal_object(proxy, uri, make_policy);
  }
}

void ShardedFleet::add_value_object(std::size_t proxy, const std::string& uri,
                                    AdaptiveValueTtrPolicy::Config config) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  value_registrations_.push_back({proxy, uri, config});
}

void ShardedFleet::add_delta_group(std::vector<FleetMember> members,
                                   Duration delta_mutual) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  for (const FleetMember& member : members) {
    BROADWAY_CHECK_MSG(member.proxy < proxy_count_,
                       "member proxy " << member.proxy << " out of range");
  }
  group_registrations_.push_back({std::move(members), delta_mutual});
}

// ---- shard construction ----------------------------------------------------

void ShardedFleet::build_shards() {
  // δ-group coordination is synchronous, so grouped proxies must share a
  // simulator: shards are the connected components of the group graph.
  UnionFind components(proxy_count_);
  for (const GroupRegistration& group : group_registrations_) {
    for (std::size_t i = 1; i < group.members.size(); ++i) {
      components.unite(group.members[0].proxy, group.members[i].proxy);
    }
  }
  shard_of_proxy_.assign(proxy_count_, SIZE_MAX);
  local_of_proxy_.assign(proxy_count_, SIZE_MAX);
  std::vector<std::size_t> shard_of_root(proxy_count_, SIZE_MAX);
  std::vector<std::vector<std::size_t>> shard_members;
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    const std::size_t root = components.find(proxy);
    if (shard_of_root[root] == SIZE_MAX) {
      shard_of_root[root] = shard_members.size();
      shard_members.emplace_back();
    }
    const std::size_t shard = shard_of_root[root];
    shard_of_proxy_[proxy] = shard;
    local_of_proxy_[proxy] = shard_members[shard].size();
    shard_members[shard].push_back(proxy);
  }

  shards_.resize(shard_members.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    shard.proxies = std::move(shard_members[s]);
    Simulator::Config sim_config;
    if (config_.scheduler) sim_config.scheduler = *config_.scheduler;
    shard.sim = std::make_unique<Simulator>(sim_config);
    shard.origin =
        std::make_unique<OriginServer>(*shard.sim, config_.origin);
    config_.origin_setup(*shard.origin);
    FleetConfig slice = config_.fleet;
    slice.proxy_ids = shard.proxies;
    shard.fleet =
        std::make_unique<ProxyFleet>(*shard.sim, *shard.origin, slice);
    shard.outbox.resize(shards_.size());
  }

  // Replay the recorded registrations onto the owning shards, in the
  // original call order (temporal before value, matching the reference
  // runs the differential tests construct).
  for (const TemporalRegistration& reg : temporal_registrations_) {
    Shard& shard = shards_[shard_of_proxy_[reg.proxy]];
    shard.fleet->add_temporal_object(local_of_proxy_[reg.proxy], reg.uri,
                                     reg.make_policy());
  }
  for (const ValueRegistration& reg : value_registrations_) {
    Shard& shard = shards_[shard_of_proxy_[reg.proxy]];
    shard.fleet->add_value_object(local_of_proxy_[reg.proxy], reg.uri,
                                  reg.config);
  }
  for (const GroupRegistration& reg : group_registrations_) {
    const std::size_t shard_index = shard_of_proxy_[reg.members[0].proxy];
    std::vector<FleetMember> local_members = reg.members;
    for (FleetMember& member : local_members) {
      BROADWAY_CHECK(shard_of_proxy_[member.proxy] == shard_index);
      member.proxy = local_of_proxy_[member.proxy];
    }
    shards_[shard_index].fleet->add_delta_group(std::move(local_members),
                                               reg.delta_mutual);
  }
}

void ShardedFleet::build_remote_dests() {
  if (!config_.fleet.cooperative_push || shards_.size() <= 1) return;
  // Relay eligibility (tracked && self-scheduled) is fixed once start()
  // has run, so the fan-out lists are computed once.  Destinations are
  // kept in ascending global proxy id — the order the one-simulator
  // reference sends to them, and therefore the order their per-sender
  // sequence numbers must follow.
  const std::size_t objects = shards_[0].origin->uri_table().size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    shard.remote_dests.assign(objects, std::vector<RemoteDest>());
    for (ObjectId object = 0; object < static_cast<ObjectId>(objects);
         ++object) {
      for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
        const std::size_t dest_shard = shard_of_proxy_[proxy];
        if (dest_shard == s) continue;  // local siblings relay in-fleet
        const PollingEngine& engine =
            shards_[dest_shard].fleet->proxy(local_of_proxy_[proxy]);
        if (!engine.relay_eligible(object)) continue;
        shard.remote_dests[object].push_back(
            {static_cast<std::uint32_t>(dest_shard),
             static_cast<std::uint32_t>(local_of_proxy_[proxy])});
      }
    }
  }
}

void ShardedFleet::start() {
  BROADWAY_CHECK_MSG(!started_, "start() called twice");
  build_shards();
  if (config_.fleet.cooperative_push && shards_.size() > 1) {
    BROADWAY_CHECK_MSG(
        config_.fleet.relay_latency > 0.0,
        "cross-shard cooperative push needs relay_latency > 0 (it is the "
        "conservative lookahead window); got "
            << config_.fleet.relay_latency);
  }

  // Every replica must have interned the same uris in the same order —
  // ObjectIds travel across shards inside relay messages.
  const UriTable& reference = shards_[0].origin->uri_table();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const UriTable& replica = shards_[s].origin->uri_table();
    BROADWAY_CHECK_MSG(replica.size() == reference.size(),
                       "origin replicas interned different uri sets ("
                           << replica.size() << " vs " << reference.size()
                           << "); origin_setup must attach every object");
    for (ObjectId id = 0; id < static_cast<ObjectId>(reference.size());
         ++id) {
      BROADWAY_CHECK_MSG(replica.uri(id) == reference.uri(id),
                         "origin replicas disagree on ObjectId "
                             << id << ": " << replica.uri(id) << " vs "
                             << reference.uri(id));
    }
  }

  // Seal the tables: from here on the poll pipeline only looks uris up,
  // and an unexpected intern fails loudly instead of skewing ids.
  for (Shard& shard : shards_) {
    shard.origin->uri_table().freeze();
  }
  // Start engines shard-by-shard, proxies ascending within each (the
  // slice starts its proxies in local order == ascending global order).
  for (Shard& shard : shards_) {
    shard.fleet->start();
  }
  build_remote_dests();
  if (config_.fleet.cooperative_push && shards_.size() > 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].fleet->set_relay_exporter(
          [this, s](std::size_t from_global, const PollEvent& event) {
            export_relay(s, from_global, event);
          });
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  started_ = true;
}

// ---- execution -------------------------------------------------------------

bool ShardedFleet::message_order(const Message& a, const Message& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
  if (a.tag != b.tag) return a.tag < b.tag;
  return a.seq < b.seq;
}

void ShardedFleet::export_relay(std::size_t shard_index,
                                std::size_t from_global,
                                const PollEvent& event) {
  (void)from_global;
  Shard& shard = shards_[shard_index];
  if (event.object >= shard.remote_dests.size()) return;
  const std::vector<RemoteDest>& dests = shard.remote_dests[event.object];
  if (dests.empty()) return;
  // One copy per message, shared across its destinations (the PollEvent's
  // references die with this call; the history span must be detached from
  // origin storage the object may outgrow before delivery).
  auto response = std::make_shared<Response>(event.response);
  response->meta.own_history();
  Message message;
  message.sent_at = shard.sim->now();
  message.deliver_at = message.sent_at + config_.fleet.relay_latency;
  // The exporter runs inside the sender's poll event, so the simulator's
  // schedule tag is the sender chain's — the same tag the reference's
  // delivery event would have inherited.
  message.tag = shard.sim->schedule_tag();
  message.object = event.object;
  message.snapshot = event.snapshot;
  message.response = response;
  for (const RemoteDest& dest : dests) {
    message.seq = shard.export_seq++;
    message.dest_local = dest.local;
    shard.outbox[dest.shard].push_back(message);
  }
  shard.exported_sent += dests.size();
}

void ShardedFleet::run_shard_window(std::size_t shard_index,
                                    TimePoint window_end) {
  Shard& shard = shards_[shard_index];
  // Interleave the inbox (sorted by the canonical key; deliverable
  // messages form a prefix because deliver_at is the primary key) with
  // the local event queue under that same key, reproducing the exact
  // firing order of the one-simulator reference.
  std::size_t delivered = 0;
  while (delivered < shard.inbox.size() &&
         shard.inbox[delivered].deliver_at <= window_end) {
    const Message& message = shard.inbox[delivered];
    for (;;) {
      const Simulator::NextEvent head = shard.sim->next_event_info();
      if (!head.valid || head.time > window_end) break;
      // Local event first iff its (time, scheduled_at, tag) precedes the
      // message's (deliver_at, sent_at, tag).  Tags cannot tie: the
      // sender proxy is never hosted on the destination shard.
      bool local_first;
      if (head.time != message.deliver_at) {
        local_first = head.time < message.deliver_at;
      } else if (head.scheduled_at != message.sent_at) {
        local_first = head.scheduled_at < message.sent_at;
      } else {
        local_first = head.tag < message.tag;
      }
      if (!local_first) break;
      shard.sim->step();
    }
    // Inject the delivery exactly where the reference's delivery event
    // would have fired: clock at deliver_at, schedule tag set to the
    // sender chain's so follow-on events inherit it.
    shard.sim->advance_clock(message.deliver_at);
    const std::uint32_t outer_tag = shard.sim->schedule_tag();
    shard.sim->set_schedule_tag(message.tag);
    shard.fleet->deliver_relay(message.dest_local, message.object,
                               *message.response, message.snapshot);
    shard.sim->set_schedule_tag(outer_tag);
    ++delivered;
  }
  shard.inbox.erase(shard.inbox.begin(),
                    shard.inbox.begin() + static_cast<std::ptrdiff_t>(
                                              delivered));
  shard.sim->run_until(window_end);
}

void ShardedFleet::exchange_mailboxes() {
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    Shard& dest = shards_[d];
    bool added = false;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::vector<Message>& box = shards_[s].outbox[d];
      if (box.empty()) continue;
      dest.inbox.insert(dest.inbox.end(),
                        std::make_move_iterator(box.begin()),
                        std::make_move_iterator(box.end()));
      box.clear();
      added = true;
    }
    if (added) {
      // The key is total: tags identify the sending proxy (hence its
      // shard) and seq is monotone per source shard.
      std::sort(dest.inbox.begin(), dest.inbox.end(), message_order);
    }
  }
}

void ShardedFleet::run_until(TimePoint horizon) {
  BROADWAY_CHECK_MSG(started_, "run_until before start()");
  BROADWAY_CHECK_MSG(horizon >= now_, "run_until in the past");
  const bool windowed =
      config_.fleet.cooperative_push && shards_.size() > 1;
  if (!windowed) {
    // Shards are fully independent: one window to the horizon.
    pool_->run_batch(shards_.size(), [this, horizon](std::size_t s) {
      shards_[s].sim->run_until(horizon);
    });
    now_ = horizon;
    return;
  }
  // Conservative lookahead: a relay sent in window k delivers strictly
  // after the window's edge, so every message deliverable in window k+1
  // is already in its destination inbox when the window starts.
  while (now_ < horizon) {
    const TimePoint edge =
        std::min(horizon, now_ + config_.fleet.relay_latency);
    pool_->run_batch(shards_.size(), [this, edge](std::size_t s) {
      run_shard_window(s, edge);
    });
    exchange_mailboxes();
    now_ = edge;
  }
}

// ---- topology accessors ----------------------------------------------------

std::size_t ShardedFleet::thread_count() const {
  return pool_ != nullptr ? pool_->parallelism()
                          : std::max<std::size_t>(1, config_.threads);
}

std::size_t ShardedFleet::shard_of(std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "shard_of before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return shard_of_proxy_[proxy];
}

PollingEngine& ShardedFleet::proxy(std::size_t proxy) {
  BROADWAY_CHECK_MSG(started_, "proxy() before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return shards_[shard_of_proxy_[proxy]].fleet->proxy(
      local_of_proxy_[proxy]);
}

const PollingEngine& ShardedFleet::proxy(std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "proxy() before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return shards_[shard_of_proxy_[proxy]].fleet->proxy(
      local_of_proxy_[proxy]);
}

const OriginServer& ShardedFleet::origin_for_proxy(std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "origin_for_proxy before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return *shards_[shard_of_proxy_[proxy]].origin;
}

// ---- accounting ------------------------------------------------------------

std::size_t ShardedFleet::origin_requests() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.origin->requests_served();
  }
  return total;
}

std::size_t ShardedFleet::origin_polls() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->origin_polls();
  }
  return total;
}

std::size_t ShardedFleet::relays_sent() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_sent() + shard.exported_sent;
  }
  return total;
}

std::size_t ShardedFleet::relays_delivered() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_delivered();
  }
  return total;
}

std::size_t ShardedFleet::relays_applied() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_applied();
  }
  return total;
}

std::size_t ShardedFleet::relays_in_flight() const {
  // Local in-flight relays are scheduled inside their shard's simulator;
  // cross-shard ones sit in the mailboxes (outboxes are drained into
  // inboxes at every window edge, so at rest the inboxes hold them all).
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_in_flight() + shard.inbox.size();
    for (const std::vector<Message>& box : shard.outbox) {
      total += box.size();
    }
  }
  return total;
}

FleetOriginLoad ShardedFleet::origin_load() const {
  FleetOriginLoad load;
  for (const Shard& shard : shards_) {
    load.merge(shard.fleet->origin_load());
  }
  return load;
}

const ClientMetrics& ShardedFleet::client_metrics(std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "client_metrics before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return shards_[shard_of_proxy_[proxy]].fleet->client_traffic().metrics(
      local_of_proxy_[proxy]);
}

ClientMetrics ShardedFleet::merged_client_metrics() const {
  // Ascending global proxy id, whatever the shard layout — the same fold
  // order as the single-simulator reference, so the floating-point
  // aggregates come out bit-identical.
  ClientMetrics merged;
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    merged.merge(client_metrics(proxy));
  }
  return merged;
}

std::vector<ClientRequestRecord> ShardedFleet::merged_client_records() const {
  std::vector<ProxyClientRecords> streams;
  streams.reserve(proxy_count_);
  for (const Shard& shard : shards_) {
    const std::vector<ProxyClientRecords> tagged =
        shard.fleet->client_traffic().tagged_records();
    streams.insert(streams.end(), tagged.begin(), tagged.end());
  }
  return merge_client_records(std::move(streams));
}

std::vector<PollRecord> ShardedFleet::merged_poll_records() const {
  std::vector<ProxyPollRecords> logs;
  logs.reserve(proxy_count_);
  for (const Shard& shard : shards_) {
    for (std::size_t local = 0; local < shard.proxies.size(); ++local) {
      logs.push_back({shard.proxies[local],
                      &shard.fleet->proxy(local).poll_log().records()});
    }
  }
  return merge_poll_records(std::move(logs));
}

}  // namespace broadway

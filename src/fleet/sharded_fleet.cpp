#include "fleet/sharded_fleet.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "util/check.h"

namespace broadway {
namespace {

/// Union-find over dense indices (path halving; the fleet is small, but
/// the structure keeps group closure obviously correct).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins, so a component's representative is its smallest
    // member — handy for deterministic shard numbering.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(std::move(config)) {
  BROADWAY_CHECK_MSG(config_.fleet.proxy_ids.empty(),
                     "ShardedFleet assigns proxies to shards itself; leave "
                     "FleetConfig::proxy_ids empty");
  BROADWAY_CHECK_MSG(config_.fleet.proxies >= 1,
                     "fleet needs >= 1 proxy, got " << config_.fleet.proxies);
  BROADWAY_CHECK(config_.origin_setup != nullptr);
  // Validate the fault schedule against the whole fleet here: the slice
  // fleets see proxy_ids and cannot bound the global id range themselves.
  config_.fleet.faults.validate(config_.fleet.proxies);
  proxy_count_ = config_.fleet.proxies;
}

ShardedFleet::~ShardedFleet() = default;

// ---- registration ----------------------------------------------------------

void ShardedFleet::add_temporal_object(std::size_t proxy,
                                       const std::string& uri,
                                       PolicyFactory make_policy) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  BROADWAY_CHECK(make_policy != nullptr);
  temporal_registrations_.push_back({proxy, uri, std::move(make_policy)});
}

void ShardedFleet::add_temporal_object_everywhere(const std::string& uri,
                                                  PolicyFactory make_policy) {
  BROADWAY_CHECK(make_policy != nullptr);
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    add_temporal_object(proxy, uri, make_policy);
  }
}

void ShardedFleet::add_value_object(std::size_t proxy, const std::string& uri,
                                    AdaptiveValueTtrPolicy::Config config) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  value_registrations_.push_back({proxy, uri, config});
}

void ShardedFleet::add_delta_group(std::vector<FleetMember> members,
                                   Duration delta_mutual) {
  BROADWAY_CHECK_MSG(!started_, "registration after start()");
  for (const FleetMember& member : members) {
    BROADWAY_CHECK_MSG(member.proxy < proxy_count_,
                       "member proxy " << member.proxy << " out of range");
  }
  group_registrations_.push_back({std::move(members), delta_mutual});
}

// ---- shard construction ----------------------------------------------------

void ShardedFleet::build_shards() {
  // ---- enumerate registered (proxy, uri) pairs ----
  // Pairs are the atoms of both layouts: the legacy layout colocates all
  // of a proxy's pairs, the object-partition layout moves them
  // independently (modulo the closure below).  Pair indices follow
  // registration-scan order, so everything derived from them is
  // deterministic.
  pairs_.clear();
  std::map<std::pair<std::size_t, std::string>, std::size_t> pair_index;
  auto intern_pair = [&](std::size_t proxy, const std::string& uri) {
    auto [it, inserted] =
        pair_index.try_emplace({proxy, uri}, pairs_.size());
    if (inserted) pairs_.push_back({proxy, uri, 0, 0});
    return it->second;
  };
  for (const TemporalRegistration& reg : temporal_registrations_) {
    intern_pair(reg.proxy, reg.uri);
  }
  for (const ValueRegistration& reg : value_registrations_) {
    intern_pair(reg.proxy, reg.uri);
  }

  // ---- pair-level colocation closure ----
  // (a) A δ-group's members coordinate synchronously (one member's poll
  //     triggers sibling polls in the same event): one unit.
  UnionFind pair_components(pairs_.size());
  std::map<std::string, std::size_t> uri_index;
  for (const GroupRegistration& group : group_registrations_) {
    std::size_t first = SIZE_MAX;
    for (const FleetMember& member : group.members) {
      const auto it = pair_index.find({member.proxy, member.uri});
      BROADWAY_CHECK_MSG(it != pair_index.end(),
                         "δ-group member " << member.uri
                                           << " is not a registered object "
                                              "of proxy "
                                           << member.proxy);
      if (first == SIZE_MAX) {
        first = it->second;
      } else {
        pair_components.unite(first, it->second);
      }
      uri_index.try_emplace(member.uri, uri_index.size());
    }
  }
  // (b) Group-sibling *objects* colocate per proxy, transitively across
  //     chained groups: one cascade can relay several sibling objects to
  //     the same destination proxy in one event, and those records must
  //     land in one slice log so the per-proxy merge can preserve the
  //     reference order (the cross-slice tie-break replays registration
  //     order, which same-instant cascade records do not follow).
  UnionFind uri_components(uri_index.size());
  for (const GroupRegistration& group : group_registrations_) {
    const std::size_t first = uri_index.at(group.members[0].uri);
    for (std::size_t i = 1; i < group.members.size(); ++i) {
      uri_components.unite(first, uri_index.at(group.members[i].uri));
    }
  }
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> sibling_first;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const auto it = uri_index.find(pairs_[i].uri);
    if (it == uri_index.end()) continue;  // not a grouped object anywhere
    const auto key =
        std::make_pair(pairs_[i].proxy, uri_components.find(it->second));
    const auto [slot, inserted] = sibling_first.try_emplace(key, i);
    if (!inserted) pair_components.unite(slot->second, i);
  }
  // (b2) Cooperative push couples every relay-receiving pair of a proxy:
  //      applying a relay reschedules the receiver's refresh timer, and
  //      one send burst delivers to several of a proxy's objects at the
  //      same instant (the latency is a fleet constant), so those timers
  //      synchronise and later fire together.  Their same-instant poll
  //      order is the reference's schedule order — reproducible only
  //      inside one slice — so under push a proxy's pairs whose uri a
  //      second proxy also tracks form one unit.  Single-tracker pairs
  //      never receive a relay and stay free to split; they are also
  //      exactly the pairs that add no cross-shard traffic.
  if (config_.fleet.cooperative_push) {
    std::map<std::string, std::size_t> tracker_count;
    for (const PairInfo& pair : pairs_) ++tracker_count[pair.uri];
    std::vector<std::size_t> first_multi(proxy_count_, SIZE_MAX);
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (tracker_count.at(pairs_[i].uri) < 2) continue;
      std::size_t& first = first_multi[pairs_[i].proxy];
      if (first == SIZE_MAX) {
        first = i;
      } else {
        pair_components.unite(first, i);
      }
    }
  }
  // (c) Client request streams read a proxy's whole cache through one
  //     engine binding, so client traffic pins each proxy together.
  if (config_.fleet.client_traffic) {
    std::vector<std::size_t> first_of_proxy(proxy_count_, SIZE_MAX);
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      std::size_t& first = first_of_proxy[pairs_[i].proxy];
      if (first == SIZE_MAX) {
        first = i;
      } else {
        pair_components.unite(first, i);
      }
    }
  }
  // (d) Crash/recovery is engine-wide: recovery re-arms every object of
  //     the proxy in registration order, and the re-armed timers fire in
  //     same-instant bursts (shared reset TTRs) whose reference order is
  //     only reproducible inside one slice log — a proxy with crash
  //     windows keeps all its pairs together.
  if (config_.fleet.faults.has_crashes()) {
    std::vector<std::size_t> first_of_proxy(proxy_count_, SIZE_MAX);
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (config_.fleet.faults.windows_for(pairs_[i].proxy) == nullptr) {
        continue;
      }
      std::size_t& first = first_of_proxy[pairs_[i].proxy];
      if (first == SIZE_MAX) {
        first = i;
      } else {
        pair_components.unite(first, i);
      }
    }
    // (e) Sibling failover routes a dark owner's δ-poll to the
    //     lowest-global-id live tracker of the object, so resolving the
    //     choice needs every tracker's engine (liveness, eligibility) on
    //     the group's slice: all trackers of a grouped uri join the
    //     group's component (a group member is itself a tracker, which
    //     anchors the union to rule (a)'s component).
    if (!group_registrations_.empty()) {
      std::map<std::string, std::size_t> first_tracker;
      for (std::size_t i = 0; i < pairs_.size(); ++i) {
        if (uri_index.find(pairs_[i].uri) == uri_index.end()) continue;
        const auto [slot, inserted] =
            first_tracker.try_emplace(pairs_[i].uri, i);
        if (!inserted) pair_components.unite(slot->second, i);
      }
    }
  }
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    pairs_[i].root = pair_components.find(i);
  }
  // Per-proxy registration ranks for merge_slice_logs: pairs_ is in
  // registration-scan order, so the per-proxy subsequence is the order
  // the reference engine registered — and therefore started — the
  // proxy's objects.
  reg_rank_.assign(proxy_count_, {});
  for (const PairInfo& pair : pairs_) {
    auto& ranks = reg_rank_[pair.proxy];
    ranks.try_emplace(pair.uri, ranks.size());
  }

  // ---- shard layout ----
  std::vector<std::vector<std::size_t>> shard_members;
  if (config_.shards == 0) {
    // Legacy layout: one shard per δ-closure component of whole proxies,
    // numbered by smallest member proxy.
    UnionFind components(proxy_count_);
    for (const GroupRegistration& group : group_registrations_) {
      for (std::size_t i = 1; i < group.members.size(); ++i) {
        components.unite(group.members[0].proxy, group.members[i].proxy);
      }
    }
    // Rule (e) at whole-proxy granularity: with crash windows, sibling
    // failover must see every tracker of a grouped uri on the group's
    // shard, member or not.
    if (config_.fleet.faults.has_crashes() &&
        !group_registrations_.empty()) {
      std::map<std::string, std::size_t> first_tracker;
      for (const PairInfo& pair : pairs_) {
        if (uri_index.find(pair.uri) == uri_index.end()) continue;
        const auto [slot, inserted] =
            first_tracker.try_emplace(pair.uri, pair.proxy);
        if (!inserted) components.unite(slot->second, pair.proxy);
      }
    }
    std::vector<std::size_t> shard_of_proxy(proxy_count_, SIZE_MAX);
    std::vector<std::size_t> shard_of_root(proxy_count_, SIZE_MAX);
    for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
      const std::size_t root = components.find(proxy);
      if (shard_of_root[root] == SIZE_MAX) {
        shard_of_root[root] = shard_members.size();
        shard_members.emplace_back();
      }
      shard_of_proxy[proxy] = shard_of_root[root];
      shard_members[shard_of_root[root]].push_back(proxy);
    }
    for (PairInfo& pair : pairs_) {
      pair.shard = shard_of_proxy[pair.proxy];
    }
  } else {
    // Object-partition layout: colocation units (pair components) packed
    // into the requested bins by greedy LPT on pair count — the cheap
    // stand-in for a per-object poll-rate estimate, exact enough because
    // every registered object polls continuously.  Deterministic: units
    // order by (weight desc, smallest pair index asc), ties pick the
    // lowest-numbered bin.
    BROADWAY_CHECK_MSG(!pairs_.empty(),
                       "object-partition sharding needs at least one "
                       "registered object");
    std::vector<bool> has_pair(proxy_count_, false);
    for (const PairInfo& pair : pairs_) has_pair[pair.proxy] = true;
    for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
      BROADWAY_CHECK_MSG(has_pair[proxy],
                         "object-partition sharding: proxy "
                             << proxy
                             << " has no registered objects, so no slice "
                                "could host it");
    }
    // Units in ascending-root order (a root is its component's smallest
    // pair index — see UnionFind::unite).
    std::vector<std::size_t> unit_of_root(pairs_.size(), SIZE_MAX);
    std::vector<std::size_t> unit_weight;
    for (const PairInfo& pair : pairs_) {
      if (unit_of_root[pair.root] == SIZE_MAX) {
        unit_of_root[pair.root] = unit_weight.size();
        unit_weight.push_back(0);
      }
      ++unit_weight[unit_of_root[pair.root]];
    }
    std::vector<std::size_t> order(unit_weight.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&unit_weight](std::size_t a, std::size_t b) {
                       return unit_weight[a] > unit_weight[b];
                     });
    const std::size_t bins = config_.shards;
    std::vector<std::size_t> bin_load(bins, 0);
    std::vector<std::size_t> bin_of_unit(unit_weight.size(), SIZE_MAX);
    for (const std::size_t unit : order) {
      std::size_t best = 0;
      for (std::size_t b = 1; b < bins; ++b) {
        if (bin_load[b] < bin_load[best]) best = b;
      }
      bin_of_unit[unit] = best;
      bin_load[best] += unit_weight[unit];
    }
    // Drop empty bins (more bins than units) and renumber ascending.
    std::vector<std::size_t> shard_of_bin(bins, SIZE_MAX);
    for (std::size_t b = 0; b < bins; ++b) {
      if (bin_load[b] == 0) continue;
      shard_of_bin[b] = shard_members.size();
      shard_members.emplace_back();
    }
    std::vector<std::vector<bool>> proxy_on_shard(
        shard_members.size(), std::vector<bool>(proxy_count_, false));
    for (PairInfo& pair : pairs_) {
      pair.shard = shard_of_bin[bin_of_unit[unit_of_root[pair.root]]];
      proxy_on_shard[pair.shard][pair.proxy] = true;
    }
    for (std::size_t s = 0; s < shard_members.size(); ++s) {
      for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
        if (proxy_on_shard[s][proxy]) shard_members[s].push_back(proxy);
      }
    }
  }

  // ---- build the slices ----
  slices_of_proxy_.assign(proxy_count_, {});
  shards_.resize(shard_members.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    shard.proxies = std::move(shard_members[s]);
    for (std::size_t local = 0; local < shard.proxies.size(); ++local) {
      slices_of_proxy_[shard.proxies[local]].push_back(
          {static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(local)});
    }
    Simulator::Config sim_config;
    if (config_.scheduler) sim_config.scheduler = *config_.scheduler;
    shard.sim = std::make_unique<Simulator>(sim_config);
    shard.origin =
        std::make_unique<OriginServer>(*shard.sim, config_.origin);
    config_.origin_setup(*shard.origin);
    FleetConfig slice = config_.fleet;
    slice.proxy_ids = shard.proxies;
    shard.fleet =
        std::make_unique<ProxyFleet>(*shard.sim, *shard.origin, slice);
    shard.outbox.resize(shards_.size());
  }

  // ---- replay the recorded registrations onto the owning slices ----
  // Original call order (temporal before value, matching the reference
  // runs the differential tests construct); each pair goes to the slice
  // its component was assigned to.
  auto local_of = [this](std::size_t s, std::size_t proxy) {
    const std::vector<std::size_t>& members = shards_[s].proxies;
    const auto it =
        std::lower_bound(members.begin(), members.end(), proxy);
    BROADWAY_CHECK(it != members.end() && *it == proxy);
    return static_cast<std::size_t>(it - members.begin());
  };
  for (const TemporalRegistration& reg : temporal_registrations_) {
    const std::size_t s = pairs_[pair_index.at({reg.proxy, reg.uri})].shard;
    shards_[s].fleet->add_temporal_object(local_of(s, reg.proxy), reg.uri,
                                          reg.make_policy());
  }
  for (const ValueRegistration& reg : value_registrations_) {
    const std::size_t s = pairs_[pair_index.at({reg.proxy, reg.uri})].shard;
    shards_[s].fleet->add_value_object(local_of(s, reg.proxy), reg.uri,
                                       reg.config);
  }
  for (const GroupRegistration& reg : group_registrations_) {
    const std::size_t shard_index =
        pairs_[pair_index.at({reg.members[0].proxy, reg.members[0].uri})]
            .shard;
    std::vector<FleetMember> local_members = reg.members;
    for (FleetMember& member : local_members) {
      const std::size_t member_shard =
          pairs_[pair_index.at({member.proxy, member.uri})].shard;
      BROADWAY_CHECK(member_shard == shard_index);
      member.proxy = local_of(shard_index, member.proxy);
    }
    shards_[shard_index].fleet->add_delta_group(std::move(local_members),
                                               reg.delta_mutual);
  }
}

void ShardedFleet::build_remote_dests() {
  if (!config_.fleet.cooperative_push || shards_.size() <= 1) return;
  // Relay eligibility (tracked && self-scheduled) is fixed once start()
  // has run, so the fan-out lists are computed once.  Destinations are
  // kept in ascending global proxy id — the order the one-simulator
  // reference sends to them, and therefore the order their per-sender
  // sequence numbers must follow.  A (proxy, object) pair lives on
  // exactly one slice, so per source shard each proxy contributes at
  // most one destination, and the source pair itself is never among
  // them (its slice is the source shard).
  const std::size_t objects = shards_[0].origin->uri_table().size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    shard.remote_dests.assign(objects, std::vector<RemoteDest>());
    for (ObjectId object = 0; object < static_cast<ObjectId>(objects);
         ++object) {
      for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
        for (const SliceRef& slice : slices_of_proxy_[proxy]) {
          if (slice.shard == s) continue;  // local siblings relay in-fleet
          const PollingEngine& engine =
              shards_[slice.shard].fleet->proxy(slice.local);
          if (!engine.relay_eligible(object)) continue;
          shard.remote_dests[object].push_back({slice.shard, slice.local});
        }
      }
    }
  }
}

void ShardedFleet::build_send_watches() {
  // The adaptive window bound needs, per shard, the set of local pairs
  // whose own-schedule fire can lead — possibly through a same-instant
  // δ-trigger cascade — to a cross-shard-visible send.  That set is the
  // export closure: pairs with remote relay destinations (the export
  // set E), widened to every pair sharing a colocation component with
  // one (triggers only travel inside δ-groups, and group members share
  // a component by construction; the component may be wider — client
  // pinning, sibling-object rule — which only makes the bound more
  // conservative, never wrong).  The same closure marks the relay
  // *destinations* whose deliveries can spark a send, which the slice
  // fleets track through set_send_watch.
  if (!config_.fleet.cooperative_push || shards_.size() <= 1) {
    pairs_.clear();
    return;
  }
  const UriTable& table = shards_[0].origin->uri_table();
  std::vector<ObjectId> pair_object(pairs_.size(), kInvalidObjectId);
  std::vector<bool> marked(pairs_.size(), false);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    pair_object[i] = table.find(pairs_[i].uri);
    const Shard& home = shards_[pairs_[i].shard];
    if (pair_object[i] < home.remote_dests.size() &&
        !home.remote_dests[pair_object[i]].empty()) {
      marked[pairs_[i].root] = true;
    }
  }
  std::vector<std::vector<std::vector<bool>>> filters(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    filters[s].resize(shards_[s].proxies.size());
  }
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (!marked[pairs_[i].root]) continue;
    const std::size_t s = pairs_[i].shard;
    const std::vector<std::size_t>& members = shards_[s].proxies;
    const std::size_t local = static_cast<std::size_t>(
        std::lower_bound(members.begin(), members.end(), pairs_[i].proxy) -
        members.begin());
    shards_[s].export_watch.push_back(
        {&shards_[s].fleet->proxy(local), pair_object[i]});
    std::vector<bool>& flags = filters[s][local];
    if (flags.size() <= pair_object[i]) flags.resize(pair_object[i] + 1);
    flags[pair_object[i]] = true;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].fleet->set_send_watch(std::move(filters[s]));
  }
  pairs_.clear();
}

void ShardedFleet::start() {
  BROADWAY_CHECK_MSG(!started_, "start() called twice");
  build_shards();
  if (config_.fleet.cooperative_push && shards_.size() > 1) {
    BROADWAY_CHECK_MSG(
        config_.fleet.relay_latency > 0.0,
        "cross-shard cooperative push needs relay_latency > 0 (it is the "
        "conservative lookahead window); got "
            << config_.fleet.relay_latency);
  }

  // Every replica must have interned the same uris in the same order —
  // ObjectIds travel across shards inside relay messages.
  const UriTable& reference = shards_[0].origin->uri_table();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const UriTable& replica = shards_[s].origin->uri_table();
    BROADWAY_CHECK_MSG(replica.size() == reference.size(),
                       "origin replicas interned different uri sets ("
                           << replica.size() << " vs " << reference.size()
                           << "); origin_setup must attach every object");
    for (ObjectId id = 0; id < static_cast<ObjectId>(reference.size());
         ++id) {
      BROADWAY_CHECK_MSG(replica.uri(id) == reference.uri(id),
                         "origin replicas disagree on ObjectId "
                             << id << ": " << replica.uri(id) << " vs "
                             << reference.uri(id));
    }
  }

  // Seal the tables: from here on the poll pipeline only looks uris up,
  // and an unexpected intern fails loudly instead of skewing ids.
  for (Shard& shard : shards_) {
    shard.origin->uri_table().freeze();
  }
  // Start engines shard-by-shard, proxies ascending within each (the
  // slice starts its proxies in local order == ascending global order).
  for (Shard& shard : shards_) {
    shard.fleet->start();
  }
  build_remote_dests();
  if (config_.fleet.cooperative_push && shards_.size() > 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].fleet->set_relay_exporter(
          [this, s](std::size_t from_global, const PollEvent& event,
                    std::uint64_t round) {
            export_relay(s, from_global, event, round);
          });
    }
  }
  build_send_watches();
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  started_ = true;
}

// ---- execution -------------------------------------------------------------

bool ShardedFleet::message_order(const Message& a, const Message& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
  if (a.tag != b.tag) return a.tag < b.tag;
  return a.seq < b.seq;
}

void ShardedFleet::export_relay(std::size_t shard_index,
                                std::size_t from_global,
                                const PollEvent& event,
                                std::uint64_t round) {
  Shard& shard = shards_[shard_index];
  if (event.object >= shard.remote_dests.size()) return;
  const std::vector<RemoteDest>& dests = shard.remote_dests[event.object];
  if (dests.empty()) return;
  // One copy per message, shared across its destinations (the PollEvent's
  // references die with this call; the history span must be detached from
  // origin storage the object may outgrow before delivery).
  auto response = std::make_shared<Response>(event.response);
  response->meta.own_history();
  if (config_.fleet.faults.any()) {
    // Per-destination attempt chain: loss and jitter draw from the same
    // counter-keyed streams the slice fleets (and the one-simulator
    // reference) use, so the outcome per (object, src, dst, attempt) is
    // layout-invariant by construction.
    for (const RemoteDest& dest : dests) {
      export_attempt(shard_index, from_global, dest, event.object,
                     event.snapshot, response, round, 0);
    }
    return;
  }
  (void)from_global;
  Message message;
  message.sent_at = shard.sim->now();
  message.deliver_at = message.sent_at + config_.fleet.relay_latency;
  // The exporter runs inside the sender's poll event, so the simulator's
  // schedule tag is the sender chain's — the same tag the reference's
  // delivery event would have inherited.
  message.tag = shard.sim->schedule_tag();
  message.object = event.object;
  message.snapshot = event.snapshot;
  message.response = response;
  for (const RemoteDest& dest : dests) {
    message.seq = shard.export_seq++;
    message.dest_local = dest.local;
    shard.outbox[dest.shard].push_back(message);
  }
  shard.exported_sent += dests.size();
}

void ShardedFleet::export_attempt(std::size_t shard_index,
                                  std::size_t from_global,
                                  const RemoteDest& dest, ObjectId object,
                                  TimePoint snapshot,
                                  std::shared_ptr<const Response> response,
                                  std::uint64_t round, std::size_t attempt) {
  Shard& shard = shards_[shard_index];
  const FaultSchedule& faults = config_.fleet.faults;
  const std::size_t dst_global = shards_[dest.shard].proxies[dest.local];
  ++shard.exported_sent;
  if (attempt > 0) ++shard.exported_retried;
  const std::uint64_t counter = faults.attempt_counter(round, attempt);
  if (faults.relay_lost(object, from_global, dst_global, counter)) {
    ++shard.exported_lost;
    if (attempt >= faults.relay_retry_limit) return;  // abandoned
    // The retry lives on the sender's shard simulator under the sender
    // chain's schedule tag (schedule_after inherits it), exactly like the
    // reference's retry event; its fire instant is a future cross-shard
    // send, advertised through export_retries for the adaptive bound.
    const Duration backoff = faults.retry_backoff(attempt);
    const TimePoint fire = shard.sim->now() + backoff;
    shard.export_retries.insert(fire);
    const RemoteDest target = dest;
    shard.sim->schedule_after(
        backoff, [this, shard_index, from_global, target, object, snapshot,
                  response = std::move(response), round, attempt,
                  fire]() mutable {
          Shard& home = shards_[shard_index];
          home.export_retries.erase(home.export_retries.find(fire));
          export_attempt(shard_index, from_global, target, object, snapshot,
                         std::move(response), round, attempt + 1);
        });
    return;
  }
  Message message;
  message.sent_at = shard.sim->now();
  // Parenthesized to match the reference exactly: the slice fleet passes
  // (latency + jitter) as one schedule_after delay, so the delivery
  // instant is sent_at + (latency + jitter) down to the last ULP — the
  // other association can differ in the low bits and desynchronize every
  // event the delivery's apply_outcome timestamps downstream.
  message.deliver_at =
      message.sent_at +
      (config_.fleet.relay_latency +
       faults.relay_jitter(object, from_global, dst_global, counter));
  message.tag = shard.sim->schedule_tag();
  message.object = object;
  message.snapshot = snapshot;
  message.response = std::move(response);
  message.seq = shard.export_seq++;
  message.dest_local = dest.local;
  shard.outbox[dest.shard].push_back(std::move(message));
}

void ShardedFleet::run_shard_window(std::size_t shard_index,
                                    TimePoint window_end) {
  Shard& shard = shards_[shard_index];
  // Interleave the inbox (sorted by the canonical key; deliverable
  // messages form a prefix because deliver_at is the primary key) with
  // the local event queue under that same key, reproducing the exact
  // firing order of the one-simulator reference.
  std::size_t delivered = 0;
  while (delivered < shard.inbox.size() &&
         shard.inbox[delivered].deliver_at <= window_end) {
    const Message& message = shard.inbox[delivered];
    for (;;) {
      const Simulator::NextEvent head = shard.sim->next_event_info();
      if (!head.valid || head.time > window_end) break;
      // Local event first iff its (time, scheduled_at, tag) precedes the
      // message's (deliver_at, sent_at, tag).  A full tie would need the
      // sender proxy's chains on two shards to fire at one instant —
      // impossible for whole-proxy shards, and measure-zero under object
      // partitioning (a proxy's same-instant δ-cascade is colocated by
      // construction; its slices otherwise run independent timers).  On
      // a tie the message is delivered first, deterministically.
      bool local_first;
      if (head.time != message.deliver_at) {
        local_first = head.time < message.deliver_at;
      } else if (head.scheduled_at != message.sent_at) {
        local_first = head.scheduled_at < message.sent_at;
      } else {
        local_first = head.tag < message.tag;
      }
      if (!local_first) break;
      shard.sim->step();
    }
    // Inject the delivery exactly where the reference's delivery event
    // would have fired: clock at deliver_at, schedule tag set to the
    // sender chain's so follow-on events inherit it.
    shard.sim->advance_clock(message.deliver_at);
    const std::uint32_t outer_tag = shard.sim->schedule_tag();
    shard.sim->set_schedule_tag(message.tag);
    shard.fleet->deliver_relay(message.dest_local, message.object,
                               *message.response, message.snapshot);
    shard.sim->set_schedule_tag(outer_tag);
    ++delivered;
  }
  shard.inbox.erase(shard.inbox.begin(),
                    shard.inbox.begin() + static_cast<std::ptrdiff_t>(
                                              delivered));
  shard.sim->run_until(window_end);
}

void ShardedFleet::exchange_mailboxes() {
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    Shard& dest = shards_[d];
    bool added = false;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::vector<Message>& box = shards_[s].outbox[d];
      if (box.empty()) continue;
      dest.inbox.insert(dest.inbox.end(),
                        std::make_move_iterator(box.begin()),
                        std::make_move_iterator(box.end()));
      box.clear();
      added = true;
    }
    if (added) {
      // The key is total: tags identify the sending proxy (hence its
      // shard) and seq is monotone per source shard.
      std::sort(dest.inbox.begin(), dest.inbox.end(), message_order);
    }
  }
}

TimePoint ShardedFleet::shard_send_bound(const Shard& shard,
                                         TimePoint cutoff) const {
  // Four sources can produce this shard's next cross-shard-visible
  // send, each strictly in the future at a window barrier:
  //  * an inbox message — its delivery can trigger watched polls at the
  //    delivery instant (the inbox is sorted, so front is earliest);
  //  * an in-flight local relay headed to a watched pair — same trigger
  //    argument (the slice fleet tracks those deliveries);
  //  * a watched pair's own refresh timer or pending lost-poll retry;
  //  * with demand fills on, a client-stream candidate firing — a miss
  //    fetches through to the origin inside the request event and relays
  //    out like any poll.  Candidate instants over-approximate requests
  //    (thinning may reject, the read may hit), which is conservative.
  // Under fault injection three more sources join (see below): pending
  // export-path retries (their fires ARE cross-shard sends), pending
  // local relay retries (their deliveries can trigger watched δ-sibling
  // exports before any timer the watch list sees), and crash/recovery
  // transitions (a dark proxy's timers are stopped, so its next send is
  // invisible until recovery re-arms them).
  // Trigger cascades are same-instant, so a bound over these instants
  // bounds every send.  The scan stops early once the running bound
  // reaches `cutoff` — the caller falls back to a fixed-width window
  // there, which keeps dense topologies at near-zero scan cost.
  TimePoint bound = kTimeInfinity;
  if (!shard.inbox.empty()) {
    bound = std::min(bound, shard.inbox.front().deliver_at);
  }
  bound = std::min(bound, shard.fleet->next_watched_delivery());
  if (bound <= cutoff) return bound;
  const FaultSchedule& faults = config_.fleet.faults;
  if (faults.any()) {
    if (!shard.export_retries.empty()) {
      bound = std::min(bound, *shard.export_retries.begin());
      if (bound <= cutoff) return bound;
    }
    bound = std::min(bound, shard.fleet->next_relay_retry());
    if (bound <= cutoff) return bound;
    if (faults.has_crashes()) {
      for (const std::size_t proxy : shard.proxies) {
        if (faults.windows_for(proxy) == nullptr) continue;
        bound = std::min(
            bound, faults.next_transition_after(proxy, shard.sim->now()));
        if (bound <= cutoff) return bound;
      }
    }
  }
  if (config_.fleet.engine.demand_fill && !shard.export_watch.empty()) {
    // export_watch is non-empty exactly when some local pair has remote
    // relay destinations — the only case a demand fill can leave the
    // shard.
    bound = std::min(bound, shard.fleet->next_client_fire());
    if (bound <= cutoff) return bound;
  }
  for (const auto& [engine, object] : shard.export_watch) {
    bound = std::min(bound, engine->next_send_time(object));
    if (bound <= cutoff) return bound;
  }
  return bound;
}

void ShardedFleet::run_until(TimePoint horizon) {
  BROADWAY_CHECK_MSG(started_, "run_until before start()");
  BROADWAY_CHECK_MSG(horizon >= now_, "run_until in the past");
  const bool windowed =
      config_.fleet.cooperative_push && shards_.size() > 1;
  window_costs_.resize(shards_.size());
  const auto fill_costs = [this] {
    // Cheap per-shard load estimate for LPT claiming: pending events
    // plus deliverable inbox messages.  Hints never affect results —
    // only which worker runs which shard first.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      window_costs_[s] = static_cast<double>(shards_[s].sim->pending() +
                                             shards_[s].inbox.size());
    }
  };
  if (!windowed) {
    // Shards are fully independent: one window to the horizon.
    fill_costs();
    pool_->run_batch(
        shards_.size(),
        [this, horizon](std::size_t s) { shards_[s].sim->run_until(horizon); },
        window_costs_);
    now_ = horizon;
    return;
  }
  // Conservative lookahead: a relay sent in window k delivers strictly
  // after the window's edge, so every message deliverable in window k+1
  // is already in its destination inbox when the window starts.
  const Duration latency = config_.fleet.relay_latency;
  const bool adaptive = config_.window_policy == WindowPolicy::kAdaptive;
  while (now_ < horizon) {
    TimePoint edge = std::min(horizon, now_ + latency);
    if (adaptive && edge < horizon) {
      // Jump the edge to min(horizon, max(now + L, bound)), where bound
      // is the earliest instant any shard can next produce a
      // cross-shard-visible send.  Safety: every send in the window
      // happens at or after bound (bound > now strictly — all its
      // sources are future instants), so every delivery lands at or
      // after bound + L > edge, strictly outside the window — no
      // delivery instant's local events are ever consumed early.  Note
      // the edge stops *at* bound, not bound + L: Simulator::run_until
      // is inclusive, so closing the window at bound + L would consume
      // local events at the very instant a message sent at bound
      // arrives.
      const TimePoint cutoff = now_ + latency;
      TimePoint bound = kTimeInfinity;
      for (const Shard& shard : shards_) {
        bound = std::min(bound, shard_send_bound(shard, cutoff));
        if (bound <= cutoff) break;  // a fixed window is already tight
      }
      if (bound > cutoff) edge = std::min(horizon, bound);
    }
    fill_costs();
    pool_->run_batch(
        shards_.size(),
        [this, edge](std::size_t s) { run_shard_window(s, edge); },
        window_costs_);
    exchange_mailboxes();
    now_ = edge;
  }
}

// ---- topology accessors ----------------------------------------------------

std::size_t ShardedFleet::thread_count() const {
  return pool_ != nullptr ? pool_->parallelism()
                          : std::max<std::size_t>(1, config_.threads);
}

const ShardedFleet::SliceRef& ShardedFleet::sole_slice(
    std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "per-proxy access before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  const std::vector<SliceRef>& slices = slices_of_proxy_[proxy];
  BROADWAY_CHECK_MSG(slices.size() == 1,
                     "proxy " << proxy << " is partition-split across "
                              << slices.size()
                              << " shards; per-proxy accessors need a "
                                 "single slice (use the merged views)");
  return slices[0];
}

std::size_t ShardedFleet::shard_of(std::size_t proxy) const {
  return sole_slice(proxy).shard;
}

std::size_t ShardedFleet::slice_count(std::size_t proxy) const {
  BROADWAY_CHECK_MSG(started_, "slice_count before start()");
  BROADWAY_CHECK_MSG(proxy < proxy_count_, "proxy " << proxy);
  return slices_of_proxy_[proxy].size();
}

PollingEngine& ShardedFleet::proxy(std::size_t proxy) {
  const SliceRef& slice = sole_slice(proxy);
  return shards_[slice.shard].fleet->proxy(slice.local);
}

const PollingEngine& ShardedFleet::proxy(std::size_t proxy) const {
  const SliceRef& slice = sole_slice(proxy);
  return shards_[slice.shard].fleet->proxy(slice.local);
}

const OriginServer& ShardedFleet::origin_for_proxy(std::size_t proxy) const {
  return *shards_[sole_slice(proxy).shard].origin;
}

// ---- accounting ------------------------------------------------------------

std::size_t ShardedFleet::origin_requests() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.origin->requests_served();
  }
  return total;
}

std::size_t ShardedFleet::origin_polls() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->origin_polls();
  }
  return total;
}

std::size_t ShardedFleet::relays_sent() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_sent() + shard.exported_sent;
  }
  return total;
}

std::size_t ShardedFleet::relays_delivered() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_delivered();
  }
  return total;
}

std::size_t ShardedFleet::relays_applied() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_applied();
  }
  return total;
}

std::size_t ShardedFleet::relays_in_flight() const {
  // Local in-flight relays are scheduled inside their shard's simulator;
  // cross-shard ones sit in the mailboxes (outboxes are drained into
  // inboxes at every window edge, so at rest the inboxes hold them all).
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_in_flight() + shard.inbox.size();
    for (const std::vector<Message>& box : shard.outbox) {
      total += box.size();
    }
  }
  return total;
}

std::size_t ShardedFleet::relays_lost() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_lost() + shard.exported_lost;
  }
  return total;
}

std::size_t ShardedFleet::relays_retried() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_retried() + shard.exported_retried;
  }
  return total;
}

std::size_t ShardedFleet::relays_dropped_dark() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.fleet->relays_dropped_dark();
  }
  return total;
}

FleetOriginLoad ShardedFleet::origin_load() const {
  FleetOriginLoad load;
  for (const Shard& shard : shards_) {
    load.merge(shard.fleet->origin_load());
  }
  return load;
}

const ClientMetrics& ShardedFleet::client_metrics(std::size_t proxy) const {
  // Client traffic pins each proxy to one slice (see build_shards), so
  // the sole-slice lookup cannot fail for a client-bearing fleet.
  const SliceRef& slice = sole_slice(proxy);
  return shards_[slice.shard].fleet->client_traffic().metrics(slice.local);
}

ClientMetrics ShardedFleet::merged_client_metrics() const {
  // Ascending global proxy id, whatever the shard layout — the same fold
  // order as the single-simulator reference, so the floating-point
  // aggregates come out bit-identical.
  ClientMetrics merged;
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    merged.merge(client_metrics(proxy));
  }
  return merged;
}

std::vector<ClientRequestRecord> ShardedFleet::merged_client_records() const {
  std::vector<ProxyClientRecords> streams;
  streams.reserve(proxy_count_);
  for (const Shard& shard : shards_) {
    const std::vector<ProxyClientRecords> tagged =
        shard.fleet->client_traffic().tagged_records();
    streams.insert(streams.end(), tagged.begin(), tagged.end());
  }
  return merge_client_records(std::move(streams));
}

std::vector<PollRecord> ShardedFleet::merge_slice_logs(
    std::size_t proxy) const {
  // A partition-split proxy's records live in several slice logs.
  // Rebuild the reference single-engine log order by merging on append
  // time — the instant the reference engine would have appended the
  // record: a relay is logged at its delivery (complete_time),
  // everything else at its fire (snapshot_time).  Cross-slice ties are
  // broken by the pair's per-proxy *registration rank*: after the
  // colocation rules, the only pairs that can tie systematically are
  // never-relayed ones (the t = 0 initial burst, first fires under the
  // shared initial TTR, quiet periods multiplying equal TTRs), and those
  // replay the reference's start order — registration order — because
  // every tied firing reschedules in pop order, keeping the invariant
  // inductively.  Same-instant δ-cascade and relay-coupled records share
  // a slice by construction (colocation rules a/b/b2), so their relative
  // order is in-log and preserved.
  struct Cursor {
    const std::vector<PollRecord>* records;
    std::size_t next = 0;
  };
  const auto append_time = [](const PollRecord& record) {
    return record.cause == PollCause::kRelay ? record.complete_time
                                             : record.snapshot_time;
  };
  std::vector<Cursor> cursors;
  std::size_t total = 0;
  for (const SliceRef& slice : slices_of_proxy_[proxy]) {
    const std::vector<PollRecord>& records =
        shards_[slice.shard].fleet->proxy(slice.local).poll_log().records();
    cursors.push_back({&records, 0});
    total += records.size();
  }
  const std::map<std::string, std::size_t>& ranks = reg_rank_[proxy];
  const auto rank_of = [&ranks](const PollRecord& record) {
    return ranks.at(record.uri);
  };
  std::vector<PollRecord> merged;
  merged.reserve(total);
  while (merged.size() < total) {
    std::size_t best = SIZE_MAX;
    for (std::size_t c = 0; c < cursors.size(); ++c) {
      if (cursors[c].next >= cursors[c].records->size()) continue;
      if (best == SIZE_MAX) {
        best = c;
        continue;
      }
      const PollRecord& candidate = (*cursors[c].records)[cursors[c].next];
      const PollRecord& leader = (*cursors[best].records)[cursors[best].next];
      const TimePoint tc = append_time(candidate);
      const TimePoint tl = append_time(leader);
      if (tc < tl || (tc == tl && rank_of(candidate) < rank_of(leader))) {
        best = c;
      }
    }
    merged.push_back((*cursors[best].records)[cursors[best].next]);
    ++cursors[best].next;
  }
  return merged;
}

std::vector<PollRecord> ShardedFleet::merged_poll_records() const {
  // merge_poll_records keys on (snapshot_time, proxy, in-log position),
  // so each proxy's records must arrive in its reference in-log order:
  // directly for single-slice proxies, via the slice merge for split
  // ones (owned storage, reserved up front so the pointers stay put).
  std::vector<std::vector<PollRecord>> split_storage;
  split_storage.reserve(proxy_count_);
  std::vector<ProxyPollRecords> logs;
  logs.reserve(proxy_count_);
  for (std::size_t proxy = 0; proxy < proxy_count_; ++proxy) {
    const std::vector<SliceRef>& slices = slices_of_proxy_[proxy];
    if (slices.size() == 1) {
      logs.push_back({proxy, &shards_[slices[0].shard]
                                  .fleet->proxy(slices[0].local)
                                  .poll_log()
                                  .records()});
    } else {
      split_storage.push_back(merge_slice_logs(proxy));
      logs.push_back({proxy, &split_storage.back()});
    }
  }
  return merge_poll_records(std::move(logs));
}

}  // namespace broadway

// Sharded multithreaded fleet simulation with conservative lookahead.
//
// ProxyFleet runs N proxies on ONE simulator — one logical timeline, one
// core.  ShardedFleet partitions the fleet into shards that each own a
// full simulation stack (Simulator, OriginServer replica, a ProxyFleet
// *slice* hosting that shard's proxies, metrics), and runs the shards on
// a ThreadPool.  The proxy–proxy relay latency is the classic
// conservative-lookahead window of parallel discrete-event simulation: a
// relay sent at time t cannot affect another shard before t + latency,
// so every shard may run `relay_latency` ahead of the slowest one
// without ever seeing a message from its past.  Execution proceeds in
// windows: run every shard to the window edge in parallel, barrier,
// exchange the cross-shard relays through per-pair mailboxes, repeat.
// With WindowPolicy::kFixed the edge advances by relay_latency each
// time; with kAdaptive (the default) it jumps to the earliest instant
// any shard can next produce a cross-shard-visible send, collapsing
// idle stretches into one barrier (see run_until).
//
// Determinism is the acceptance bar, not a best effort: a sharded run
// must produce byte-identical per-proxy poll logs, TTR series and
// fidelity as the single-simulator ProxyFleet, at any thread count
// (tests/test_sharded_differential.cpp).  Three mechanisms make it hold:
//
//  * Owner tags.  Every event carries the Simulator schedule tag of the
//    chain that created it (ProxyFleet::start seeds each proxy's timers
//    with its global id; retries, reschedules and relay deliveries
//    inherit it).  A cross-shard message is stamped with its sender's
//    tag, send time and a per-source-shard sequence number.
//  * Canonical merge order.  Inside a window, a shard interleaves its
//    local events with its inbox by the key (fire time, schedule time,
//    owner tag, source seq) — the same order in which the one-simulator
//    reference fires those events.  Messages are injected between local
//    events via Simulator::advance_clock + ProxyFleet::deliver_relay
//    under the sender's tag, exactly as if the reference's delivery
//    event had fired there.
//  * Replicated, frozen state.  Each shard's origin replica is built by
//    the same setup callback, so intern order — and therefore every
//    ObjectId — is identical across shards (verified at start());
//    origin state is a pure function of time given the traces, so
//    replicas never need reconciling.  All UriTables are frozen at
//    start(): the hot path does lookups only, and an unexpected intern
//    is a loud CheckFailure instead of a cross-shard id skew.
//
// δ-groups couple their member proxies synchronously (a member's poll
// can trigger immediate early polls on sibling members), so grouped
// members must share a timeline.  The legacy layout (shards = 0) takes
// the union-find closure over whole proxies — one shard per component.
// Object-partition sharding (shards > 0) closes over (proxy, object)
// *pairs* instead: a proxy's ungrouped objects may split across shards
// as independent engine slices, so shard count can exceed proxy count
// and a hot proxy no longer serializes a run.  Either way the layout
// depends only on the topology and the `shards` knob — never on the
// thread count — so merged output is thread-schedule independent by
// construction.
//
// Accounting merges deterministically at sweep end: FleetOriginLoad
// counters are sums, and merged_poll_records() orders the fleet-wide
// record stream by (snapshot time, proxy, in-log position) — see
// metrics/accounting.h.  In-flight relays are never dropped: messages
// that outlive a run_until horizon stay in the mailboxes and deliver
// when the clock catches up (relays_in_flight() counts them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fleet/proxy_fleet.h"
#include "metrics/accounting.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace broadway {

/// How the sharded driver chooses each lookahead-window edge.
enum class WindowPolicy {
  /// Fixed steps of relay_latency — one barrier + exchange per step,
  /// whatever the traffic.
  kFixed,
  /// Jump each window edge to the earliest instant any shard can next
  /// produce a cross-shard-visible send (clamped below by one full
  /// latency step): edge = min(horizon, max(now + L, min_shards(bound))).
  /// Idle stretches collapse into one window; a window never closes at
  /// or past bound + L, so no delivery can land on an instant whose
  /// local events were already consumed.  Byte-identical output to
  /// kFixed by construction.
  kAdaptive,
};

/// Sharded-fleet configuration.
struct ShardedFleetConfig {
  /// The fleet being simulated (proxies, cooperative push, relay
  /// latency, engine template, retention).  With cooperative push across
  /// more than one shard, relay_latency must be > 0 — it is the
  /// lookahead window.  FleetConfig::proxy_ids must be empty; the driver
  /// assigns proxies to shards itself.
  FleetConfig fleet;

  /// Worker threads driving the shards (<= 1 runs shards inline on the
  /// calling thread, in shard order).  The shard *structure* — and hence
  /// every simulation result — depends only on the topology, never on
  /// this value.
  std::size_t threads = 1;

  /// Builds one shard's origin content.  Called once per shard; must
  /// attach the same traces in the same order every time so replicas
  /// intern identically (verified at start()).  Runs before any proxy
  /// registration touches the shard.
  using OriginSetup = std::function<void(OriginServer&)>;
  OriginSetup origin_setup;

  /// Per-shard origin replica configuration.
  OriginServer::Config origin;

  /// Event-queue backend for every shard simulator; unset = the
  /// Simulator default (the BROADWAY_SCHEDULER environment knob).
  std::optional<SchedulerBackend> scheduler;

  /// Window-edge policy (see WindowPolicy).  Never changes merged
  /// output; kAdaptive only reduces barrier/exchange iterations.
  WindowPolicy window_policy = WindowPolicy::kAdaptive;

  /// Requested shard count for object-partition sharding.  0 (default)
  /// keeps the legacy layout: one shard per δ-closure of whole proxies.
  /// > 0 partitions at (proxy, object) granularity: colocation units are
  /// the δ-group closures over *pairs* (a group's members, every proxy's
  /// pairs of group-sibling objects, and — with client traffic — each
  /// proxy's whole working set), packed into at most this many shards by
  /// greedy LPT on pair count.  A proxy whose pairs land on several
  /// shards runs one engine *slice* per shard; merged output is
  /// byte-identical to the whole-proxy layout at any shard count.
  std::size_t shards = 0;
};

/// A fleet of proxies simulated as parallel shards.
class ShardedFleet {
 public:
  using PolicyFactory = ProxyFleet::PolicyFactory;

  explicit ShardedFleet(ShardedFleetConfig config);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // ---- registration (before start()) ----
  // Registrations are recorded and replayed onto the shards at start(),
  // once the δ-group topology has fixed the shard assignment.

  /// Track a temporal object on one proxy.  `make_policy` is invoked at
  /// start() (policies carry learned state; the shard owns the instance).
  void add_temporal_object(std::size_t proxy, const std::string& uri,
                           PolicyFactory make_policy);

  /// Track the same uri on every proxy (one policy instance per proxy).
  void add_temporal_object_everywhere(const std::string& uri,
                                      PolicyFactory make_policy);

  /// Track a value-domain object on one proxy.
  void add_value_object(std::size_t proxy, const std::string& uri,
                        AdaptiveValueTtrPolicy::Config config);

  /// Register a cross-proxy δ-group.  Member proxies are unioned into
  /// one shard (their coordination is synchronous).
  void add_delta_group(std::vector<FleetMember> members,
                       Duration delta_mutual);

  /// Build the shards, replay registrations, freeze every UriTable,
  /// start every engine.  No registration may follow.
  void start();

  /// Advance the whole fleet to `horizon`, running shards in parallel
  /// windows of relay_latency.  Callable repeatedly with increasing
  /// horizons; cross-shard relays still in flight at one call's horizon
  /// deliver during the next.
  void run_until(TimePoint horizon);

  // ---- topology ----

  std::size_t size() const { return proxy_count_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const;
  /// Shard hosting global proxy `proxy` (valid after start(); requires
  /// the proxy to live on a single shard — see slice_count()).
  std::size_t shard_of(std::size_t proxy) const;
  /// Number of engine slices global proxy `proxy` runs as (1 unless
  /// object-partition sharding split it; valid after start()).
  std::size_t slice_count(std::size_t proxy) const;
  TimePoint now() const { return now_; }

  /// Global proxy accessors (valid after start(); require a single-slice
  /// proxy — partition-split proxies have no one engine to return).
  PollingEngine& proxy(std::size_t proxy);
  const PollingEngine& proxy(std::size_t proxy) const;
  /// The origin replica serving global proxy `proxy`.
  const OriginServer& origin_for_proxy(std::size_t proxy) const;

  // ---- accounting (deterministic merges over the shards) ----

  /// Origin requests served, summed over the replicas (each replica
  /// serves exactly its own proxies, so the sum is the fleet total).
  std::size_t origin_requests() const;

  /// Successful non-initial origin polls across the fleet.
  std::size_t origin_polls() const;

  /// Relay messages sent / delivered / accepted, local and cross-shard.
  std::size_t relays_sent() const;
  std::size_t relays_delivered() const;
  std::size_t relays_applied() const;

  /// Relay messages sent but not yet delivered (scheduled local
  /// deliveries plus mailbox residents).  The ledger invariant
  /// relays_sent() == relays_delivered() + relays_in_flight() +
  /// relays_lost() holds at any instant; without injected loss the last
  /// term is 0 and in-flight drains once the clock passes the last
  /// send + relay_latency (+ jitter).
  std::size_t relays_in_flight() const;

  /// Relay attempts dropped by injected loss (FleetConfig::faults),
  /// local and cross-shard.  Each lost attempt was counted as a fresh
  /// send; retransmissions re-enter relays_sent() too.
  std::size_t relays_lost() const;

  /// Retransmission attempts (attempt > 0) scheduled after losses.
  std::size_t relays_retried() const;

  /// Relays delivered to a crashed (dark) proxy and discarded there —
  /// counted delivered, never applied.
  std::size_t relays_dropped_dark() const;

  /// Aggregate origin load over every proxy's poll log.
  FleetOriginLoad origin_load() const;

  /// Fleet-wide record stream in (snapshot time, proxy, log position)
  /// order — byte-identical to the same merge over a single-simulator
  /// reference run.
  std::vector<PollRecord> merged_poll_records() const;

  // ---- client traffic (FleetConfig::client_traffic) ----

  /// True when the fleet config armed client request streams.
  bool has_client_traffic() const {
    return config_.fleet.client_traffic.has_value();
  }

  /// Client metrics of global proxy `proxy` (valid after start()).
  const ClientMetrics& client_metrics(std::size_t proxy) const;

  /// Fleet-wide client metrics, folded in ascending global proxy id
  /// order — byte-identical to the single-simulator reference.
  ClientMetrics merged_client_metrics() const;

  /// Fleet-wide request stream in (time, proxy, in-stream position)
  /// order (requires ClientTrafficConfig::record_requests).
  std::vector<ClientRequestRecord> merged_client_records() const;

 private:
  /// One cross-shard relay message at rest.  Ordering key: (deliver_at,
  /// sent_at, tag, seq) — see the file comment.
  struct Message {
    TimePoint deliver_at = 0.0;
    TimePoint sent_at = 0.0;
    std::uint32_t tag = 0;   ///< sender chain's schedule tag
    std::uint64_t seq = 0;   ///< per-source-shard send order
    std::uint32_t dest_local = 0;  ///< local proxy index in the dest shard
    ObjectId object = kInvalidObjectId;
    TimePoint snapshot = 0.0;
    std::shared_ptr<const Response> response;
  };

  /// A remote relay destination, precomputed per (source shard, object).
  struct RemoteDest {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;  ///< local proxy index within `shard`
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    std::unique_ptr<OriginServer> origin;
    std::unique_ptr<ProxyFleet> fleet;
    std::vector<std::size_t> proxies;  ///< global ids, ascending
    /// Messages awaiting delivery here, sorted by the canonical key.
    std::vector<Message> inbox;
    /// Messages produced this window, keyed by destination shard.
    std::vector<std::vector<Message>> outbox;
    /// Remote destinations per object for relays leaving this shard,
    /// ascending global proxy id.  Empty slot = no remote trackers.
    std::vector<std::vector<RemoteDest>> remote_dests;
    /// Local (engine, object) pairs whose next own-schedule fire bounds
    /// this shard's next cross-shard-visible send — the export closure
    /// restricted to this shard (see build_send_watches).
    std::vector<std::pair<const PollingEngine*, ObjectId>> export_watch;
    std::uint64_t export_seq = 0;
    std::size_t exported_sent = 0;
    /// Fire times of pending export-path relay retries (fault injection,
    /// FleetConfig::faults).  A lost cross-shard attempt reschedules on
    /// this shard's simulator; its fire is a future cross-shard send the
    /// adaptive bound must not jump past.
    std::multiset<TimePoint> export_retries;
    /// Export-path fault ledger (same semantics as the ProxyFleet
    /// counters: every attempt counts as a fresh send).
    std::size_t exported_lost = 0;
    std::size_t exported_retried = 0;
  };

  /// One engine slice of a global proxy.
  struct SliceRef {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;  ///< local proxy index within `shard`
  };

  struct TemporalRegistration {
    std::size_t proxy;
    std::string uri;
    PolicyFactory make_policy;
  };
  struct ValueRegistration {
    std::size_t proxy;
    std::string uri;
    AdaptiveValueTtrPolicy::Config config;
  };
  struct GroupRegistration {
    std::vector<FleetMember> members;
    Duration delta_mutual;
  };

  static bool message_order(const Message& a, const Message& b);
  void build_shards();
  void build_partitioned_layout();
  void build_remote_dests();
  void build_send_watches();
  void export_relay(std::size_t shard_index, std::size_t from_global,
                    const PollEvent& event, std::uint64_t round);
  /// One cross-shard send attempt under fault injection: draws loss and
  /// jitter from the same counter-keyed streams the one-simulator
  /// reference uses, reschedules itself on loss (sender-shard simulator,
  /// capped exponential backoff), and enqueues the outbox message on
  /// success.
  void export_attempt(std::size_t shard_index, std::size_t from_global,
                      const RemoteDest& dest, ObjectId object,
                      TimePoint snapshot,
                      std::shared_ptr<const Response> response,
                      std::uint64_t round, std::size_t attempt);
  void run_shard_window(std::size_t shard_index, TimePoint window_end);
  void exchange_mailboxes();
  /// Earliest instant this shard can next produce a cross-shard-visible
  /// send; returns early (possibly short of the true minimum) once the
  /// running bound drops to `cutoff` or below, since the caller falls
  /// back to a fixed-width window there anyway.
  TimePoint shard_send_bound(const Shard& shard, TimePoint cutoff) const;
  /// The single slice of an unsplit proxy (CHECKs slice_count == 1).
  const SliceRef& sole_slice(std::size_t proxy) const;
  /// Merge a split proxy's slice logs back into reference in-log order.
  std::vector<PollRecord> merge_slice_logs(std::size_t proxy) const;

  ShardedFleetConfig config_;
  std::size_t proxy_count_ = 0;
  bool started_ = false;
  TimePoint now_ = 0.0;
  std::vector<TemporalRegistration> temporal_registrations_;
  std::vector<ValueRegistration> value_registrations_;
  std::vector<GroupRegistration> group_registrations_;
  std::vector<Shard> shards_;
  std::vector<std::vector<SliceRef>> slices_of_proxy_;  // ascending shard
  // Partition bookkeeping from build_shards, consumed by
  // build_send_watches and cleared after start(): one entry per
  // registered (proxy, uri) pair.
  struct PairInfo {
    std::size_t proxy = 0;
    std::string uri;
    std::size_t root = 0;   // colocation-component representative
    std::size_t shard = 0;  // hosting shard
  };
  std::vector<PairInfo> pairs_;
  // Per-proxy registration ranks (uri -> position in the proxy's
  // registration order): the cross-slice tie-break merge_slice_logs uses
  // to replay the reference's same-instant record order for pairs that
  // were allowed to split (see the colocation rules in build_shards).
  std::vector<std::map<std::string, std::size_t>> reg_rank_;
  std::vector<double> window_costs_;  // per-shard hints, reused
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace broadway

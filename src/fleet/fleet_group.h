// Cross-proxy δ-groups: mutual temporal consistency spanning a fleet.
//
// The paper's §3.2 coordinators keep a group of objects mutually
// consistent *within one proxy*.  In a fleet, a user may read related
// objects through different proxies (one edge cache per region serving the
// same portal page), so the δ bound must hold across proxies: when any
// fleet member observes an update of one group member, the proxies holding
// the other members refresh them unless a previous/next poll already falls
// within δ — the same window test as TriggeredPollCoordinator, evaluated
// against each member's *own* proxy schedule.  Relay refreshes count as
// polls for the window test, so cooperative push naturally suppresses
// redundant triggers.
//
// Like the engine-local coordinators, the group is id-keyed on the hot
// path: member uris are interned once at bind() through each proxy's
// `resolve` hook (the fleet shares one origin, so ids are fleet-global),
// and `on_poll` / the δ-window test work on (proxy, ObjectId) pairs —
// no per-call uri hashing or string compares.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/types.h"
#include "util/time.h"
#include "util/uri_table.h"

namespace broadway {

/// One member of a cross-proxy δ-group: object `uri` as tracked by the
/// fleet proxy with index `proxy`.
struct FleetMember {
  std::size_t proxy = 0;
  std::string uri;
};

/// Triggered-poll mutual consistency across proxies.  Owned and driven by
/// ProxyFleet: the fleet routes every non-initial temporal poll
/// observation (own polls and applied relays) of a member object to the
/// groups subscribed to it and the group triggers the lagging members'
/// proxies.
class FleetDeltaGroup {
 public:
  /// `members` must name >= 2 distinct (proxy, uri) pairs of temporal
  /// objects; `delta_mutual` is δ of the paper's Eq. (4).
  FleetDeltaGroup(std::vector<FleetMember> members, Duration delta_mutual);

  FleetDeltaGroup(const FleetDeltaGroup&) = delete;
  FleetDeltaGroup& operator=(const FleetDeltaGroup&) = delete;

  /// Attach per-proxy engine hooks, indexed by fleet proxy index, and
  /// intern every member uri through its proxy's resolve hook.  Called
  /// once by the fleet at registration.
  void bind(std::vector<CoordinatorHooks> hooks_by_proxy);

  /// Observation of a completed poll (or applied relay) of `object` at
  /// `proxy`.  Triggers polls of the other members outside their δ
  /// window; cascades terminate because a fresh poll is inside the window.
  void on_poll(std::size_t proxy, ObjectId object,
               const TemporalPollObservation& obs);

  const std::vector<FleetMember>& members() const { return members_; }
  /// Interned member ids, parallel to members(); filled by bind().
  const std::vector<ObjectId>& member_ids() const { return member_ids_; }
  Duration delta_mutual() const { return delta_mutual_; }

  /// Cross-proxy triggered polls this group has requested.
  std::size_t triggers_requested() const { return triggers_requested_; }

  /// Sentinel return of a FailoverResolver: no live proxy can absorb the
  /// member's responsibility right now — the member is skipped.
  static constexpr std::size_t kNoLiveProxy =
      std::numeric_limits<std::size_t>::max();

  /// Routes a member's δ-responsibility around proxy outages: given the
  /// member's own proxy, its object and the observation instant, returns
  /// the proxy index currently responsible — the owner itself when live, a
  /// deterministic designated sibling while the owner is dark (fault
  /// injection, fleet/faults.h), or kNoLiveProxy when nobody can take
  /// over.  Both the δ-window test and the trigger are evaluated against
  /// the returned proxy's own schedule; when the owner recovers, the
  /// resolver returns it again and responsibility re-homes automatically.
  using FailoverResolver = std::function<std::size_t(
      std::size_t proxy, ObjectId object, TimePoint now)>;

  /// Install the failover route (installed by ProxyFleet when the fault
  /// schedule contains crash windows; absent otherwise).
  void set_failover(FailoverResolver resolver) {
    failover_ = std::move(resolver);
  }

  /// Triggers this group redirected to a failover sibling because the
  /// owning proxy was dark (subset of triggers_requested()).
  std::size_t failover_triggers() const { return failover_triggers_; }

 private:
  bool is_member(std::size_t proxy, ObjectId object) const;
  /// δ-window test for `object` against `proxy`'s own schedule.
  bool outside_delta_window(std::size_t proxy, ObjectId object,
                            TimePoint now) const;

  std::vector<FleetMember> members_;
  std::vector<ObjectId> member_ids_;  // interned at bind()
  Duration delta_mutual_;
  std::vector<CoordinatorHooks> hooks_by_proxy_;
  FailoverResolver failover_;  // empty = owners are always live
  std::size_t triggers_requested_ = 0;
  std::size_t failover_triggers_ = 0;
};

}  // namespace broadway

// A fleet of proxies sharing one origin server (paper §5.1 outlook).
//
// The paper evaluates a single proxy against one origin; its extension
// headers (src/http/extensions.h) and push channel (src/origin/push.h) are
// explicitly designed for a *network* of caches.  ProxyFleet realises
// that: N PollingEngines bound to one OriginServer through one simulator,
// with
//
//  * per-fleet origin-load accounting — polls/sec seen by the origin
//    across all proxies (metrics/accounting's FleetOriginLoad);
//  * an optional **cooperative push mode**: the proxy that polls an object
//    relays the response to sibling proxies tracking the same uri over a
//    PushChannel-style proxy–proxy relay carrying X-Modification-History /
//    X-Last-Modified-Precise, so siblings refresh (200 relays) or
//    revalidate (304 relays) without an origin round-trip;
//  * fleet-aware δ-groups (FleetDeltaGroup): mutual temporal consistency
//    for groups whose members are cached on *different* proxies.
//
// Relay correctness: every successful non-initial poll is relayed, so a
// sibling's view always advances with the freshest observation anywhere in
// the fleet; PollingEngine::apply_relay restricts the relayed modification
// history to the updates the sibling has not seen and rejects stale or
// non-validating relays.  Each relay is recorded at the receiving proxy as
// PollCause::kRelay — visible to the fidelity evaluation, excluded from
// origin-poll counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "client/client_traffic.h"
#include "fleet/faults.h"
#include "fleet/fleet_group.h"
#include "metrics/accounting.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/small_vector.h"

namespace broadway {

/// Fleet configuration.
struct FleetConfig {
  /// Number of proxies.
  std::size_t proxies = 2;
  /// Relay successful polls (200 refreshes, 304 validations) to sibling
  /// proxies tracking the same uri.  Off = independent polling.
  bool cooperative_push = true;
  /// Proxy–proxy delivery latency; 0 = synchronous relay.
  Duration relay_latency = 0.0;
  /// Per-engine template; proxy i runs with seed = engine.seed + i so
  /// loss-injection streams are independent across the fleet.
  EngineConfig engine;
  /// Bound every proxy's poll-log memory for long-horizon runs: keep at
  /// most this many records per object per proxy (0 = unlimited).
  /// Forwarded to PollingEngine::set_poll_log_retention on every engine;
  /// fleet counters (origin polls, relays, origin load) stay exact under
  /// truncation — only per-object record series shorten.
  std::size_t poll_log_retention = 0;
  /// Global proxy ids hosted by this fleet instance (ShardedFleet builds
  /// one ProxyFleet *slice* per shard).  Empty = this fleet is the whole
  /// fleet and proxy i's global id is i.  When set, `proxies` is ignored
  /// and engine seeds / event tags use the global ids, so a slice's
  /// engines behave bit-for-bit like the same proxies in a whole fleet.
  std::vector<std::size_t> proxy_ids;
  /// Drive client request streams at every proxy (src/client/): one
  /// aggregated Poisson stream per proxy, seeded and tagged by global
  /// proxy id, started at start() after the engines.  A shard slice
  /// inherits this config unchanged, so sharded client metrics are
  /// byte-identical to the whole-fleet run.
  std::optional<ClientTrafficConfig> client_traffic;
  /// Deterministic fault injection (fleet/faults.h): proxy crash windows,
  /// relay loss, latency jitter and relay retry.  Keyed entirely by
  /// global ids and counter-based hash draws, so a shard slice inherits
  /// this config unchanged and faulty runs stay byte-identical to the
  /// whole-fleet reference.  Default-constructed = no faults (the relay
  /// path keeps its zero-copy synchronous fast path).
  FaultSchedule faults;
};

/// N polling engines on one origin, with cooperative proxy–proxy push.
class ProxyFleet {
 public:
  ProxyFleet(Simulator& sim, OriginServer& origin, FleetConfig config);

  ProxyFleet(const ProxyFleet&) = delete;
  ProxyFleet& operator=(const ProxyFleet&) = delete;

  std::size_t size() const { return engines_.size(); }
  PollingEngine& proxy(std::size_t index);
  const PollingEngine& proxy(std::size_t index) const;
  const FleetConfig& config() const { return config_; }

  /// Global id of local proxy `index` (== index for a whole fleet).
  std::size_t global_id(std::size_t index) const {
    BROADWAY_CHECK_MSG(index < proxy_ids_.size(), "proxy " << index);
    return proxy_ids_[index];
  }

  // ---- registration (before start()) ----

  /// Track a temporal object on one proxy.
  void add_temporal_object(std::size_t proxy, const std::string& uri,
                           std::unique_ptr<RefreshPolicy> policy);

  /// Track the same uri on *every* proxy; `make_policy` builds one policy
  /// instance per proxy (policies carry learned state and cannot be
  /// shared).
  using PolicyFactory = std::function<std::unique_ptr<RefreshPolicy>()>;
  void add_temporal_object_everywhere(const std::string& uri,
                                      const PolicyFactory& make_policy);

  /// Track a value-domain object on one proxy.
  void add_value_object(std::size_t proxy, const std::string& uri,
                        AdaptiveValueTtrPolicy::Config config);

  /// Register a cross-proxy δ-group.  Members must already be registered
  /// temporal objects on their proxies.
  FleetDeltaGroup& add_delta_group(std::vector<FleetMember> members,
                                   Duration delta_mutual);

  /// Start every engine (proxy 0 first; deterministic FIFO ordering).
  /// Each engine starts under a schedule tag equal to its global proxy
  /// id, so its timers — and everything they transitively schedule —
  /// carry a stable owner for cross-shard ordering.
  void start();

  // ---- cross-fleet relay (ShardedFleet plumbing) ----

  /// Observer for relays that must leave this fleet instance.  Called
  /// once per relayable poll (inside the poll event, after local
  /// siblings were handled); the callee fans out to proxies hosted
  /// elsewhere.  Event references die with the call — copy the response
  /// (and own_history()) before stashing it.  `round` is the sender's
  /// per-(proxy, object) relay fan-out round — a pure function of the
  /// sender's poll history — which keys the exporter's fault draws so a
  /// remote destination draws exactly what it would have drawn locally.
  using RelayExporter = std::function<void(
      std::size_t from_global, const PollEvent& event, std::uint64_t round)>;
  void set_relay_exporter(RelayExporter exporter) {
    relay_exporter_ = std::move(exporter);
  }

  /// Deliver a relay message that originated outside this fleet instance
  /// to local proxy `to`.  Counts and δ-group notifications behave
  /// exactly like a local delivery; the caller is responsible for clock
  /// position (sim.now() == delivery time) and for setting the schedule
  /// tag to the sender's so follow-on events inherit it.
  void deliver_relay(std::size_t to, ObjectId object,
                     const Response& response, TimePoint snapshot) {
    BROADWAY_CHECK_MSG(to < engines_.size(), "proxy " << to);
    deliver(to, object, response, snapshot);
  }

  /// Mark the (local proxy, object) pairs whose relay *deliveries* can
  /// cause a cross-fleet-visible send at the delivery instant (a delivery
  /// can trigger δ-sibling polls, which may export).  `watch[local]` is a
  /// per-ObjectId flag vector; pairs beyond its length are unwatched.
  /// Pending latency-delayed relays to watched pairs contribute their
  /// delivery times to next_watched_delivery(), the fleet's share of the
  /// sharded driver's adaptive window bound.
  void set_send_watch(std::vector<std::vector<bool>> watch) {
    send_watch_ = std::move(watch);
  }

  /// Earliest pending watched relay delivery; kTimeInfinity when none.
  TimePoint next_watched_delivery() const {
    return pending_watched_.empty() ? kTimeInfinity
                                    : *pending_watched_.begin();
  }

  /// Earliest pending local relay-retry firing; kTimeInfinity when none.
  /// A retry that fires inside a lookahead window can deliver and trigger
  /// δ-sibling polls that export, so the sharded driver folds this into
  /// its adaptive send bound alongside next_watched_delivery().
  TimePoint next_relay_retry() const {
    return pending_relay_retries_.empty() ? kTimeInfinity
                                          : *pending_relay_retries_.begin();
  }

  // ---- accounting ----

  /// Aggregate origin load over every proxy's poll log.
  FleetOriginLoad origin_load() const;

  /// Successful non-initial origin polls across the fleet (the paper's
  /// "number of polls" summed over proxies).
  std::size_t origin_polls() const;

  /// Relay messages delivered on the proxy–proxy channel (counted at the
  /// receiving proxy; with relay latency, messages still in flight when
  /// the simulation stops are not included).
  std::size_t relays_delivered() const { return relays_delivered_; }

  /// Relay messages the receiving proxy accepted (refresh or validation).
  std::size_t relays_applied() const { return relays_applied_; }

  // ---- client traffic ----

  /// True when FleetConfig::client_traffic armed request streams.
  bool has_client_traffic() const { return client_traffic_ != nullptr; }

  /// The client traffic driver (requires has_client_traffic()).
  FleetClientTraffic& client_traffic();
  const FleetClientTraffic& client_traffic() const;

  /// Client metrics folded over the local proxies in ascending global id
  /// order (requires has_client_traffic()).
  ClientMetrics merged_client_metrics() const {
    return client_traffic().merged_metrics();
  }

  /// Fleet-wide request stream in (time, proxy, in-stream position)
  /// order (requires has_client_traffic() and
  /// ClientTrafficConfig::record_requests).
  std::vector<ClientRequestRecord> merged_client_records() const {
    return merge_client_records(client_traffic().tagged_records());
  }

  /// Earliest pending client-stream candidate firing; kTimeInfinity when
  /// no client traffic is armed.  With demand fills on, a client request
  /// can reach the origin and relay out, so the sharded driver folds this
  /// into its adaptive send bound.
  TimePoint next_client_fire() const {
    return client_traffic_ == nullptr ? kTimeInfinity
                                      : client_traffic_->next_fire();
  }

  /// Relay transmission attempts on the *local* channel (one per
  /// destination per attempt — a retried relay counts again; exported
  /// relays are counted by the exporter's owner).  The fault ledger
  ///   relays_sent == relays_delivered + relays_in_flight + relays_lost
  /// holds at every instant: an attempt is lost, in flight, or delivered,
  /// and nothing else.  Without faults and with zero latency every send
  /// is delivered in the same call, so sent == delivered.
  std::size_t relays_sent() const { return relays_sent_; }

  /// Local relay messages scheduled but not yet delivered.  At a quiesced
  /// horizon past the last send + relay_latency this is 0; a sweep that
  /// stops mid-window sees the exact number of messages the counters have
  /// not yet absorbed (never silently dropped — extending the run
  /// delivers them).  Pending retry *waits* are not in flight: a lost
  /// attempt is already counted in relays_lost and its retry, once sent,
  /// counts as a fresh attempt.
  std::size_t relays_in_flight() const { return relays_in_flight_; }

  /// Relay transmission attempts eaten by injected loss
  /// (FaultSchedule::relay_loss).  Each lost attempt below the retry
  /// limit schedules a backoff retry; one at the limit abandons the
  /// relay.
  std::size_t relays_lost() const { return relays_lost_; }

  /// Retry attempts sent after a loss (attempts with attempt index > 0).
  /// With a retry limit high enough that abandonment never occurs this
  /// equals relays_lost.
  std::size_t relays_retried() const { return relays_retried_; }

  /// Relays delivered to a proxy that was dark (crashed) at the delivery
  /// instant: the message arrived but nobody read it.  A subset of
  /// relays_delivered, never of relays_applied.
  std::size_t relays_dropped_dark() const { return relays_dropped_dark_; }

  const OriginServer& origin() const { return origin_; }

 private:
  Simulator& sim_;
  OriginServer& origin_;
  FleetConfig config_;
  std::vector<std::unique_ptr<PollingEngine>> engines_;
  std::vector<std::unique_ptr<FleetDeltaGroup>> groups_;
  // Per-(proxy, object) δ-group subscriber index, built at
  // add_delta_group time: groups_by_member_[proxy][object] lists the
  // groups watching that member, so notify_groups costs
  // O(groups-watching-this-object) — nothing for ungrouped objects —
  // instead of a virtual call into every registered group per poll.
  // Object ids index the fleet-shared origin table, so a plain vector
  // (sized lazily) serves as the map.
  std::vector<std::vector<SmallVector<FleetDeltaGroup*, 2>>>
      groups_by_member_;
  std::vector<std::size_t> proxy_ids_;  // local index -> global proxy id
  std::unique_ptr<FleetClientTraffic> client_traffic_;  // null = no clients
  RelayExporter relay_exporter_;
  // Watched destination pairs (see set_send_watch) and the delivery times
  // of in-flight relays headed to them.  Latency jitter makes deliveries
  // complete out of send order, so an ordered multiset replaces the
  // fault-free FIFO.
  std::vector<std::vector<bool>> send_watch_;
  std::multiset<TimePoint> pending_watched_;
  // Fire times of pending relay-retry events (fault injection), for
  // next_relay_retry().
  std::multiset<TimePoint> pending_relay_retries_;
  // Per-(local proxy, object) relay fan-out round counters: incremented
  // once per relayable poll, they key the per-attempt fault draws.  Only
  // maintained while faults are active.
  std::vector<std::vector<std::uint64_t>> relay_rounds_;
  bool faults_active_ = false;  // config_.faults.any(), cached
  std::size_t relays_sent_ = 0;
  std::size_t relays_in_flight_ = 0;
  std::size_t relays_delivered_ = 0;
  std::size_t relays_applied_ = 0;
  std::size_t relays_lost_ = 0;
  std::size_t relays_retried_ = 0;
  std::size_t relays_dropped_dark_ = 0;

  /// Fleet-level stage of engine i's poll pipeline: relay to siblings,
  /// then feed δ-groups.
  void on_poll(std::size_t proxy, const PollEvent& event);

  /// Send one relay message from local proxy `from` to proxy `to`
  /// (delivered now, or after relay_latency + jitter).  `snapshot` is the
  /// relaying proxy's poll fire time, `round` the sender's fan-out round
  /// for the fault draws.  The fault-free synchronous path hands the
  /// pipeline's response straight through by reference; a latency-delayed
  /// or fault-injected relay copies it (detaching the typed history span
  /// first — the origin may update the object before delivery).
  void relay(std::size_t from, std::size_t to, ObjectId object,
             const Response& response, TimePoint snapshot,
             std::uint64_t round);

  /// One transmission attempt of a fault-injected relay: draws loss (a
  /// lost attempt below the retry limit schedules the next attempt after
  /// the capped exponential backoff) and jitter, then delivers.  The
  /// retry chain is owned by the simulator, not the sending engine — a
  /// sender crash does not cancel messages already handed to the network.
  void relay_attempt(std::size_t src_global, std::size_t to, ObjectId object,
                     std::shared_ptr<const Response> message,
                     TimePoint snapshot, std::uint64_t round,
                     std::size_t attempt);

  /// Consume the next fan-out round of (local proxy, object).
  std::uint64_t next_relay_round(std::size_t proxy_index, ObjectId object);

  /// Failover route for δ-groups (FleetDeltaGroup::FailoverResolver):
  /// `proxy_index`'s designated sibling while it is dark — the
  /// lowest-global-id live proxy tracking `object` as a self-scheduled
  /// temporal object — or kNoLiveProxy when every tracker is dark.
  std::size_t failover_target(std::size_t proxy_index, ObjectId object,
                              TimePoint now) const;

  /// Delivery: count the message, apply it, feed δ-groups on success.
  void deliver(std::size_t to, ObjectId object, const Response& response,
               TimePoint snapshot);

  /// δ-groups subscribed to (proxy, object) hear about a member refresh
  /// (own poll or applied relay).
  void notify_groups(std::size_t proxy, ObjectId object,
                     const TemporalPollObservation& obs);

  bool watched_dest(std::size_t to, ObjectId object) const {
    return to < send_watch_.size() && object < send_watch_[to].size() &&
           send_watch_[to][object];
  }

  std::vector<CoordinatorHooks> hooks_by_proxy();
};

}  // namespace broadway

#include "fleet/proxy_fleet.h"

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

ProxyFleet::ProxyFleet(Simulator& sim, OriginServer& origin,
                       FleetConfig config)
    : sim_(sim), origin_(origin), config_(std::move(config)) {
  BROADWAY_CHECK_MSG(config_.relay_latency >= 0.0,
                     "relay latency " << config_.relay_latency);
  // A whole fleet hosts proxies 0..proxies-1; a shard slice hosts the
  // explicit (global) ids it was given.  Everything id-dependent — seeds,
  // schedule tags — uses the global id, so a proxy behaves identically
  // whichever fleet instance hosts it.
  proxy_ids_ = config_.proxy_ids;
  if (proxy_ids_.empty()) {
    BROADWAY_CHECK_MSG(config_.proxies >= 1,
                       "fleet needs >= 1 proxy, got " << config_.proxies);
    proxy_ids_.resize(config_.proxies);
    for (std::size_t i = 0; i < config_.proxies; ++i) proxy_ids_[i] = i;
  }
  engines_.reserve(proxy_ids_.size());
  for (std::size_t i = 0; i < proxy_ids_.size(); ++i) {
    EngineConfig engine_config = config_.engine;
    engine_config.seed = config_.engine.seed + proxy_ids_[i];
    engines_.push_back(
        std::make_unique<PollingEngine>(sim_, origin_, engine_config));
    engines_.back()->set_poll_log_retention(config_.poll_log_retention);
    // The listener feeds δ-groups as well as the relay channel, so it is
    // installed even when cooperative push is off.
    engines_.back()->set_poll_listener(
        [this, i](const PollEvent& event) { on_poll(i, event); });
  }
  if (config_.client_traffic) {
    std::vector<FleetClientTraffic::ProxyBinding> bindings;
    bindings.reserve(engines_.size());
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      bindings.push_back({engines_[i].get(), proxy_ids_[i]});
    }
    client_traffic_ = std::make_unique<FleetClientTraffic>(
        sim_, origin_, std::move(bindings), *config_.client_traffic);
  }
}

FleetClientTraffic& ProxyFleet::client_traffic() {
  BROADWAY_CHECK_MSG(client_traffic_ != nullptr,
                     "fleet configured without client traffic");
  return *client_traffic_;
}

const FleetClientTraffic& ProxyFleet::client_traffic() const {
  BROADWAY_CHECK_MSG(client_traffic_ != nullptr,
                     "fleet configured without client traffic");
  return *client_traffic_;
}

PollingEngine& ProxyFleet::proxy(std::size_t index) {
  BROADWAY_CHECK_MSG(index < engines_.size(), "proxy " << index);
  return *engines_[index];
}

const PollingEngine& ProxyFleet::proxy(std::size_t index) const {
  BROADWAY_CHECK_MSG(index < engines_.size(), "proxy " << index);
  return *engines_[index];
}

// ---- registration ----------------------------------------------------------

void ProxyFleet::add_temporal_object(std::size_t proxy_index,
                                     const std::string& uri,
                                     std::unique_ptr<RefreshPolicy> policy) {
  proxy(proxy_index).add_temporal_object(uri, std::move(policy));
}

void ProxyFleet::add_temporal_object_everywhere(
    const std::string& uri, const PolicyFactory& make_policy) {
  BROADWAY_CHECK(make_policy != nullptr);
  for (auto& engine : engines_) {
    engine->add_temporal_object(uri, make_policy());
  }
}

void ProxyFleet::add_value_object(std::size_t proxy_index,
                                  const std::string& uri,
                                  AdaptiveValueTtrPolicy::Config config) {
  proxy(proxy_index).add_value_object(uri, config);
}

std::vector<CoordinatorHooks> ProxyFleet::hooks_by_proxy() {
  std::vector<CoordinatorHooks> hooks;
  hooks.reserve(engines_.size());
  for (auto& engine : engines_) {
    hooks.push_back(engine->coordinator_hooks());
  }
  return hooks;
}

FleetDeltaGroup& ProxyFleet::add_delta_group(std::vector<FleetMember> members,
                                             Duration delta_mutual) {
  for (const FleetMember& member : members) {
    BROADWAY_CHECK_MSG(member.proxy < engines_.size(),
                       "member proxy " << member.proxy << " out of range");
    // Temporal-only, checked here so a bad member fails at registration
    // instead of aborting mid-simulation on the first trigger.
    BROADWAY_CHECK_MSG(engines_[member.proxy]->tracks_temporal(member.uri),
                       "member " << member.uri
                                 << " is not a temporal object of proxy "
                                 << member.proxy);
  }
  auto group =
      std::make_unique<FleetDeltaGroup>(std::move(members), delta_mutual);
  group->bind(hooks_by_proxy());
  // Subscribe the group to each member's (proxy, object) slot so the
  // notify path only visits groups actually watching the polled object.
  if (groups_by_member_.empty()) groups_by_member_.resize(engines_.size());
  for (std::size_t i = 0; i < group->members().size(); ++i) {
    const std::size_t proxy_index = group->members()[i].proxy;
    const ObjectId object = group->member_ids()[i];
    auto& by_object = groups_by_member_[proxy_index];
    if (by_object.size() <= object) by_object.resize(object + 1);
    by_object[object].push_back(group.get());
  }
  groups_.push_back(std::move(group));
  return *groups_.back();
}

void ProxyFleet::start() {
  // Each engine starts under its own global id as the schedule tag: its
  // timers, their retries, and anything those events schedule later all
  // inherit the tag (Simulator tag inheritance), giving every event a
  // stable owning proxy.  Tags never affect single-simulator ordering;
  // the sharded driver uses them as the cross-shard tie-break.
  const std::uint32_t outer = sim_.schedule_tag();
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    sim_.set_schedule_tag(static_cast<std::uint32_t>(proxy_ids_[i]));
    engines_[i]->start();
  }
  sim_.set_schedule_tag(outer);
  // Client streams arm after every engine: the reference order is
  // "engines 0..N-1, then clients 0..N-1", and each shard slice replays
  // the same relative order over its own proxies, so same-instant FIFO
  // ties resolve identically under sharding.
  if (client_traffic_ != nullptr) client_traffic_->start();
}

// ---- the relay channel -----------------------------------------------------

void ProxyFleet::on_poll(std::size_t proxy_index, const PollEvent& event) {
  // Initial fetches are not relayed: every proxy fetches its own working
  // set once at start-up (siblings may not even have started yet).
  if (config_.cooperative_push && event.cause != PollCause::kInitial) {
    for (std::size_t j = 0; j < engines_.size(); ++j) {
      if (j == proxy_index) continue;
      if (!engines_[j]->relay_eligible(event.object)) continue;
      relay(j, event.object, event.response, event.snapshot);
    }
    // Destinations hosted by other fleet instances (sharding): hand the
    // poll to the exporter, which fans out through the cross-shard
    // mailboxes.  Local and exported deliveries land on different
    // simulators, so their relative send order here is immaterial.
    if (relay_exporter_ != nullptr) {
      relay_exporter_(proxy_ids_[proxy_index], event);
    }
  }
  if (event.observation != nullptr) {
    notify_groups(proxy_index, event.object, *event.observation);
  }
}

void ProxyFleet::relay(std::size_t to, ObjectId object,
                       const Response& response, TimePoint snapshot) {
  ++relays_sent_;
  if (config_.relay_latency <= 0.0) {
    // Synchronous relay: the receiving engine reads the polling engine's
    // response in place — no copy anywhere on the path.
    deliver(to, object, response, snapshot);
    return;
  }
  // One copy: the PollEvent's references die with the poll pipeline, and
  // a typed history span points into origin storage the object may
  // outgrow before delivery — detach it into the in-flight message
  // (shared_ptr keeps the scheduling closure copyable).
  auto message = std::make_shared<Response>(response);
  message->meta.own_history();
  ++relays_in_flight_;
  // Deliveries to watched pairs feed the adaptive window bound: push the
  // delivery time now, pop it when the message lands.  Sends are in time
  // order and the latency is constant, so the FIFO stays sorted and the
  // delivery lambdas pop in push order.
  const bool watched = watched_dest(to, object);
  if (watched) pending_watched_.push_back(sim_.now() + config_.relay_latency);
  sim_.schedule_after(config_.relay_latency,
                      [this, to, object, message, snapshot, watched] {
                        --relays_in_flight_;
                        if (watched) pending_watched_.pop_front();
                        deliver(to, object, *message, snapshot);
                      });
}

void ProxyFleet::deliver(std::size_t to, ObjectId object,
                         const Response& response, TimePoint snapshot) {
  ++relays_delivered_;
  if (!engines_[to]->apply_relay(object, response, snapshot)) return;
  ++relays_applied_;
  if (response.ok()) {
    // δ-groups hear about the relayed refresh: the receiving member's
    // copy advanced even though the origin poll happened elsewhere.
    TemporalPollObservation obs;
    obs.poll_time = sim_.now();
    obs.modified = true;
    obs.last_modified = wire_last_modified(response);
    notify_groups(to, object, obs);
  }
}

void ProxyFleet::notify_groups(std::size_t proxy_index, ObjectId object,
                               const TemporalPollObservation& obs) {
  if (groups_by_member_.empty()) return;  // no δ-groups registered
  const auto& by_object = groups_by_member_[proxy_index];
  if (object >= by_object.size()) return;
  for (FleetDeltaGroup* group : by_object[object]) {
    group->on_poll(proxy_index, object, obs);
  }
}

// ---- accounting ------------------------------------------------------------

FleetOriginLoad ProxyFleet::origin_load() const {
  std::vector<const PollLog*> logs;
  logs.reserve(engines_.size());
  for (const auto& engine : engines_) {
    logs.push_back(&engine->poll_log());
  }
  return fleet_origin_load(logs);
}

std::size_t ProxyFleet::origin_polls() const {
  std::size_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->polls_performed();
  }
  return total;
}

}  // namespace broadway

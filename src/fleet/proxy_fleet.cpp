#include "fleet/proxy_fleet.h"

#include <limits>

#include "http/extensions.h"
#include "util/check.h"

namespace broadway {

ProxyFleet::ProxyFleet(Simulator& sim, OriginServer& origin,
                       FleetConfig config)
    : sim_(sim), origin_(origin), config_(std::move(config)) {
  BROADWAY_CHECK_MSG(config_.relay_latency >= 0.0,
                     "relay latency " << config_.relay_latency);
  // A whole fleet hosts proxies 0..proxies-1; a shard slice hosts the
  // explicit (global) ids it was given.  Everything id-dependent — seeds,
  // schedule tags — uses the global id, so a proxy behaves identically
  // whichever fleet instance hosts it.
  proxy_ids_ = config_.proxy_ids;
  if (proxy_ids_.empty()) {
    BROADWAY_CHECK_MSG(config_.proxies >= 1,
                       "fleet needs >= 1 proxy, got " << config_.proxies);
    proxy_ids_.resize(config_.proxies);
    for (std::size_t i = 0; i < config_.proxies; ++i) proxy_ids_[i] = i;
  }
  // A slice cannot see the whole fleet's proxy count, so only the whole
  // fleet range-checks the crash schedule's proxy ids (the sharded driver
  // checks them against its own count before slicing).
  config_.faults.validate(config_.proxy_ids.empty()
                              ? config_.proxies
                              : std::numeric_limits<std::size_t>::max());
  faults_active_ = config_.faults.any();
  if (faults_active_) relay_rounds_.resize(proxy_ids_.size());
  engines_.reserve(proxy_ids_.size());
  for (std::size_t i = 0; i < proxy_ids_.size(); ++i) {
    EngineConfig engine_config = config_.engine;
    engine_config.seed = config_.engine.seed + proxy_ids_[i];
    engines_.push_back(
        std::make_unique<PollingEngine>(sim_, origin_, engine_config));
    engines_.back()->set_poll_log_retention(config_.poll_log_retention);
    // The listener feeds δ-groups as well as the relay channel, so it is
    // installed even when cooperative push is off.
    engines_.back()->set_poll_listener(
        [this, i](const PollEvent& event) { on_poll(i, event); });
  }
  if (config_.client_traffic) {
    std::vector<FleetClientTraffic::ProxyBinding> bindings;
    bindings.reserve(engines_.size());
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      bindings.push_back({engines_[i].get(), proxy_ids_[i]});
    }
    client_traffic_ = std::make_unique<FleetClientTraffic>(
        sim_, origin_, std::move(bindings), *config_.client_traffic);
  }
}

FleetClientTraffic& ProxyFleet::client_traffic() {
  BROADWAY_CHECK_MSG(client_traffic_ != nullptr,
                     "fleet configured without client traffic");
  return *client_traffic_;
}

const FleetClientTraffic& ProxyFleet::client_traffic() const {
  BROADWAY_CHECK_MSG(client_traffic_ != nullptr,
                     "fleet configured without client traffic");
  return *client_traffic_;
}

PollingEngine& ProxyFleet::proxy(std::size_t index) {
  BROADWAY_CHECK_MSG(index < engines_.size(), "proxy " << index);
  return *engines_[index];
}

const PollingEngine& ProxyFleet::proxy(std::size_t index) const {
  BROADWAY_CHECK_MSG(index < engines_.size(), "proxy " << index);
  return *engines_[index];
}

// ---- registration ----------------------------------------------------------

void ProxyFleet::add_temporal_object(std::size_t proxy_index,
                                     const std::string& uri,
                                     std::unique_ptr<RefreshPolicy> policy) {
  proxy(proxy_index).add_temporal_object(uri, std::move(policy));
}

void ProxyFleet::add_temporal_object_everywhere(
    const std::string& uri, const PolicyFactory& make_policy) {
  BROADWAY_CHECK(make_policy != nullptr);
  for (auto& engine : engines_) {
    engine->add_temporal_object(uri, make_policy());
  }
}

void ProxyFleet::add_value_object(std::size_t proxy_index,
                                  const std::string& uri,
                                  AdaptiveValueTtrPolicy::Config config) {
  proxy(proxy_index).add_value_object(uri, config);
}

std::vector<CoordinatorHooks> ProxyFleet::hooks_by_proxy() {
  std::vector<CoordinatorHooks> hooks;
  hooks.reserve(engines_.size());
  for (auto& engine : engines_) {
    hooks.push_back(engine->coordinator_hooks());
  }
  return hooks;
}

FleetDeltaGroup& ProxyFleet::add_delta_group(std::vector<FleetMember> members,
                                             Duration delta_mutual) {
  for (const FleetMember& member : members) {
    BROADWAY_CHECK_MSG(member.proxy < engines_.size(),
                       "member proxy " << member.proxy << " out of range");
    // Temporal-only, checked here so a bad member fails at registration
    // instead of aborting mid-simulation on the first trigger.
    BROADWAY_CHECK_MSG(engines_[member.proxy]->tracks_temporal(member.uri),
                       "member " << member.uri
                                 << " is not a temporal object of proxy "
                                 << member.proxy);
  }
  auto group =
      std::make_unique<FleetDeltaGroup>(std::move(members), delta_mutual);
  group->bind(hooks_by_proxy());
  if (config_.faults.has_crashes()) {
    // While a member's proxy is dark its designated sibling absorbs the
    // δ responsibility; the route is a pure function of (proxy, object,
    // time), so it re-homes on recovery by itself.
    group->set_failover(
        [this](std::size_t proxy_index, ObjectId object, TimePoint now) {
          return failover_target(proxy_index, object, now);
        });
  }
  // Subscribe the group to each member's (proxy, object) slot so the
  // notify path only visits groups actually watching the polled object.
  if (groups_by_member_.empty()) groups_by_member_.resize(engines_.size());
  for (std::size_t i = 0; i < group->members().size(); ++i) {
    const std::size_t proxy_index = group->members()[i].proxy;
    const ObjectId object = group->member_ids()[i];
    auto& by_object = groups_by_member_[proxy_index];
    if (by_object.size() <= object) by_object.resize(object + 1);
    by_object[object].push_back(group.get());
  }
  groups_.push_back(std::move(group));
  return *groups_.back();
}

void ProxyFleet::start() {
  // Each engine starts under its own global id as the schedule tag: its
  // timers, their retries, and anything those events schedule later all
  // inherit the tag (Simulator tag inheritance), giving every event a
  // stable owning proxy.  Tags never affect single-simulator ordering;
  // the sharded driver uses them as the cross-shard tie-break.
  const std::uint32_t outer = sim_.schedule_tag();
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    sim_.set_schedule_tag(static_cast<std::uint32_t>(proxy_ids_[i]));
    engines_[i]->start();
  }
  // Crash/recovery events arm after every engine and before the client
  // streams, under the crashing proxy's own tag — a fixed relative order
  // each shard slice replays over its own proxies, like the engine loop
  // above.
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    const std::vector<CrashWindow>* windows =
        config_.faults.windows_for(proxy_ids_[i]);
    if (windows == nullptr) continue;
    sim_.set_schedule_tag(static_cast<std::uint32_t>(proxy_ids_[i]));
    PollingEngine* engine = engines_[i].get();
    for (const CrashWindow& window : *windows) {
      sim_.schedule_at(window.crash_at, [engine] { engine->crash(); });
      sim_.schedule_at(window.recover_at, [engine] { engine->recover(); });
    }
  }
  sim_.set_schedule_tag(outer);
  // Client streams arm after every engine: the reference order is
  // "engines 0..N-1, then clients 0..N-1", and each shard slice replays
  // the same relative order over its own proxies, so same-instant FIFO
  // ties resolve identically under sharding.
  if (client_traffic_ != nullptr) client_traffic_->start();
}

// ---- the relay channel -----------------------------------------------------

void ProxyFleet::on_poll(std::size_t proxy_index, const PollEvent& event) {
  // Initial fetches are not relayed: every proxy fetches its own working
  // set once at start-up (siblings may not even have started yet).
  if (config_.cooperative_push && event.cause != PollCause::kInitial) {
    // The fan-out round is a pure function of the sender's poll history
    // (one round per relayable poll of this (proxy, object)), so every
    // shard layout derives identical fault-draw keys from it.
    const std::uint64_t round =
        faults_active_ ? next_relay_round(proxy_index, event.object) : 0;
    for (std::size_t j = 0; j < engines_.size(); ++j) {
      if (j == proxy_index) continue;
      if (!engines_[j]->relay_eligible(event.object)) continue;
      relay(proxy_index, j, event.object, event.response, event.snapshot,
            round);
    }
    // Destinations hosted by other fleet instances (sharding): hand the
    // poll to the exporter, which fans out through the cross-shard
    // mailboxes.  Local and exported deliveries land on different
    // simulators, so their relative send order here is immaterial.
    if (relay_exporter_ != nullptr) {
      relay_exporter_(proxy_ids_[proxy_index], event, round);
    }
  }
  if (event.observation != nullptr) {
    notify_groups(proxy_index, event.object, *event.observation);
  }
}

std::uint64_t ProxyFleet::next_relay_round(std::size_t proxy_index,
                                           ObjectId object) {
  auto& rounds = relay_rounds_[proxy_index];
  if (rounds.size() <= object) rounds.resize(object + 1, 0);
  return rounds[object]++;
}

void ProxyFleet::relay(std::size_t from, std::size_t to, ObjectId object,
                       const Response& response, TimePoint snapshot,
                       std::uint64_t round) {
  if (!faults_active_) {
    ++relays_sent_;
    if (config_.relay_latency <= 0.0) {
      // Synchronous relay: the receiving engine reads the polling
      // engine's response in place — no copy anywhere on the path.
      deliver(to, object, response, snapshot);
      return;
    }
    // One copy: the PollEvent's references die with the poll pipeline,
    // and a typed history span points into origin storage the object may
    // outgrow before delivery — detach it into the in-flight message
    // (shared_ptr keeps the scheduling closure copyable).
    auto message = std::make_shared<Response>(response);
    message->meta.own_history();
    ++relays_in_flight_;
    // Deliveries to watched pairs feed the adaptive window bound: push
    // the delivery time now, pop it when the message lands.
    const bool watched = watched_dest(to, object);
    const TimePoint deliver_at = sim_.now() + config_.relay_latency;
    if (watched) pending_watched_.insert(deliver_at);
    sim_.schedule_after(
        config_.relay_latency,
        [this, to, object, message, snapshot, watched, deliver_at] {
          --relays_in_flight_;
          if (watched) pending_watched_.erase(pending_watched_.find(deliver_at));
          deliver(to, object, *message, snapshot);
        });
    return;
  }
  // Fault path: a lost first attempt must still retry after the
  // PollEvent's references die, so the copy happens up front.
  auto message = std::make_shared<Response>(response);
  message->meta.own_history();
  relay_attempt(proxy_ids_[from], to, object, std::move(message), snapshot,
                round, /*attempt=*/0);
}

void ProxyFleet::relay_attempt(std::size_t src_global, std::size_t to,
                               ObjectId object,
                               std::shared_ptr<const Response> message,
                               TimePoint snapshot, std::uint64_t round,
                               std::size_t attempt) {
  const FaultSchedule& faults = config_.faults;
  // The ledger invariant sent == delivered + in_flight + lost holds at
  // every instant: each attempt is counted sent here and ends up in
  // exactly one of the other three buckets below.
  ++relays_sent_;
  if (attempt > 0) ++relays_retried_;
  const std::uint64_t counter = faults.attempt_counter(round, attempt);
  const std::size_t dst_global = proxy_ids_[to];
  if (faults.relay_lost(object, src_global, dst_global, counter)) {
    ++relays_lost_;
    if (attempt >= faults.relay_retry_limit) return;  // abandoned
    // The retry chain belongs to the network substrate, not the sending
    // engine: a sender crash between attempts does not cancel it.
    const Duration backoff = faults.retry_backoff(attempt);
    const TimePoint fire = sim_.now() + backoff;
    pending_relay_retries_.insert(fire);
    sim_.schedule_after(
        backoff, [this, src_global, to, object, message, snapshot, round,
                  attempt, fire] {
          pending_relay_retries_.erase(pending_relay_retries_.find(fire));
          relay_attempt(src_global, to, object, message, snapshot, round,
                        attempt + 1);
        });
    return;
  }
  const Duration delay =
      config_.relay_latency +
      faults.relay_jitter(object, src_global, dst_global, counter);
  if (delay <= 0.0) {
    deliver(to, object, *message, snapshot);
    return;
  }
  ++relays_in_flight_;
  const bool watched = watched_dest(to, object);
  const TimePoint deliver_at = sim_.now() + delay;
  if (watched) pending_watched_.insert(deliver_at);
  sim_.schedule_after(
      delay, [this, to, object, message, snapshot, watched, deliver_at] {
        --relays_in_flight_;
        if (watched) pending_watched_.erase(pending_watched_.find(deliver_at));
        deliver(to, object, *message, snapshot);
      });
}

void ProxyFleet::deliver(std::size_t to, ObjectId object,
                         const Response& response, TimePoint snapshot) {
  ++relays_delivered_;
  if (faults_active_ && config_.faults.dark(proxy_ids_[to], sim_.now())) {
    // The dark proxy's process is down: the message arrived (it counts
    // as delivered — the network did its job) but nobody read it.  The
    // pure time-based test makes the drop decision independent of where
    // the crash event sits in this simulator's same-instant event order.
    ++relays_dropped_dark_;
    return;
  }
  if (!engines_[to]->apply_relay(object, response, snapshot)) return;
  ++relays_applied_;
  if (response.ok()) {
    // δ-groups hear about the relayed refresh: the receiving member's
    // copy advanced even though the origin poll happened elsewhere.
    TemporalPollObservation obs;
    obs.poll_time = sim_.now();
    obs.modified = true;
    obs.last_modified = wire_last_modified(response);
    notify_groups(to, object, obs);
  }
}

void ProxyFleet::notify_groups(std::size_t proxy_index, ObjectId object,
                               const TemporalPollObservation& obs) {
  if (groups_by_member_.empty()) return;  // no δ-groups registered
  const auto& by_object = groups_by_member_[proxy_index];
  if (object >= by_object.size()) return;
  for (FleetDeltaGroup* group : by_object[object]) {
    group->on_poll(proxy_index, object, obs);
  }
}

std::size_t ProxyFleet::failover_target(std::size_t proxy_index,
                                        ObjectId object,
                                        TimePoint now) const {
  if (!config_.faults.dark(proxy_ids_[proxy_index], now)) return proxy_index;
  // Designated sibling: the lowest-global-id live proxy tracking the
  // object as a self-scheduled temporal object.  Local index order is
  // ascending global id order, and the sharded driver colocates every
  // tracker of a grouped uri with the group when crash windows exist, so
  // each fleet instance resolves the same sibling the whole fleet would.
  for (std::size_t j = 0; j < engines_.size(); ++j) {
    if (j == proxy_index) continue;
    if (config_.faults.dark(proxy_ids_[j], now)) continue;
    if (!engines_[j]->relay_eligible(object)) continue;
    if (!engines_[j]->tracks_temporal(object)) continue;
    return j;
  }
  return FleetDeltaGroup::kNoLiveProxy;
}

// ---- accounting ------------------------------------------------------------

FleetOriginLoad ProxyFleet::origin_load() const {
  std::vector<const PollLog*> logs;
  logs.reserve(engines_.size());
  for (const auto& engine : engines_) {
    logs.push_back(&engine->poll_log());
  }
  return fleet_origin_load(logs);
}

std::size_t ProxyFleet::origin_polls() const {
  std::size_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->polls_performed();
  }
  return total;
}

}  // namespace broadway

#include "fleet/fleet_group.h"

#include "util/check.h"

namespace broadway {

FleetDeltaGroup::FleetDeltaGroup(std::vector<FleetMember> members,
                                 Duration delta_mutual)
    : members_(std::move(members)), delta_mutual_(delta_mutual) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(delta_mutual_ >= 0.0, "delta " << delta_mutual_);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t j = i + 1; j < members_.size(); ++j) {
      BROADWAY_CHECK_MSG(members_[i].proxy != members_[j].proxy ||
                             members_[i].uri != members_[j].uri,
                         "duplicate member " << members_[i].uri);
    }
  }
}

void FleetDeltaGroup::bind(std::vector<CoordinatorHooks> hooks_by_proxy) {
  for (const FleetMember& member : members_) {
    BROADWAY_CHECK_MSG(member.proxy < hooks_by_proxy.size(),
                       "member proxy " << member.proxy << " out of range");
  }
  hooks_by_proxy_ = std::move(hooks_by_proxy);
}

bool FleetDeltaGroup::is_member(std::size_t proxy,
                                const std::string& uri) const {
  for (const FleetMember& member : members_) {
    if (member.proxy == proxy && member.uri == uri) return true;
  }
  return false;
}

bool FleetDeltaGroup::outside_delta_window(const FleetMember& member,
                                           TimePoint now) const {
  const CoordinatorHooks& hooks = hooks_by_proxy_[member.proxy];
  // Same reasoning as MutualCoordinator::outside_delta_window, against the
  // member's own proxy: a recent refresh (own poll or relay) means its
  // copy already originated within δ; an imminent poll restores that soon
  // enough.
  const TimePoint last = hooks.last_poll_time(member.uri);
  if (now - last <= delta_mutual_) return false;
  const TimePoint next = hooks.next_poll_time(member.uri);
  if (next - now <= delta_mutual_) return false;
  return true;
}

void FleetDeltaGroup::on_poll(std::size_t proxy, const std::string& uri,
                              const TemporalPollObservation& obs) {
  if (!obs.modified) return;
  if (!is_member(proxy, uri)) return;
  BROADWAY_CHECK_MSG(!hooks_by_proxy_.empty(), "group used before bind()");
  for (const FleetMember& member : members_) {
    if (member.proxy == proxy && member.uri == uri) continue;
    if (!outside_delta_window(member, obs.poll_time)) continue;
    ++triggers_requested_;
    // Recursion: the triggered poll re-enters on_poll for `member` via the
    // fleet's listener; its zero-age last poll then falls inside the δ
    // window, so cascades terminate.
    hooks_by_proxy_[member.proxy].trigger_poll(member.uri);
  }
}

}  // namespace broadway

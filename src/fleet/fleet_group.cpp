#include "fleet/fleet_group.h"

#include "util/check.h"

namespace broadway {

FleetDeltaGroup::FleetDeltaGroup(std::vector<FleetMember> members,
                                 Duration delta_mutual)
    : members_(std::move(members)), delta_mutual_(delta_mutual) {
  BROADWAY_CHECK_MSG(members_.size() >= 2, "group needs >= 2 members");
  BROADWAY_CHECK_MSG(delta_mutual_ >= 0.0, "delta " << delta_mutual_);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t j = i + 1; j < members_.size(); ++j) {
      BROADWAY_CHECK_MSG(members_[i].proxy != members_[j].proxy ||
                             members_[i].uri != members_[j].uri,
                         "duplicate member " << members_[i].uri);
    }
  }
}

void FleetDeltaGroup::bind(std::vector<CoordinatorHooks> hooks_by_proxy) {
  for (const FleetMember& member : members_) {
    BROADWAY_CHECK_MSG(member.proxy < hooks_by_proxy.size(),
                       "member proxy " << member.proxy << " out of range");
  }
  hooks_by_proxy_ = std::move(hooks_by_proxy);
  member_ids_.clear();
  member_ids_.reserve(members_.size());
  for (const FleetMember& member : members_) {
    member_ids_.push_back(hooks_by_proxy_[member.proxy].resolve(member.uri));
  }
}

bool FleetDeltaGroup::is_member(std::size_t proxy, ObjectId object) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].proxy == proxy && member_ids_[i] == object) return true;
  }
  return false;
}

bool FleetDeltaGroup::outside_delta_window(std::size_t proxy, ObjectId object,
                                           TimePoint now) const {
  const CoordinatorHooks& hooks = hooks_by_proxy_[proxy];
  // Same reasoning as MutualCoordinator::outside_delta_window, against the
  // responsible proxy (the member's own, or its failover sibling while
  // the owner is dark): a recent refresh (own poll or relay) means its
  // copy already originated within δ; an imminent poll restores that soon
  // enough.
  const TimePoint last = hooks.last_poll_time(object);
  if (now - last <= delta_mutual_) return false;
  const TimePoint next = hooks.next_poll_time(object);
  if (next - now <= delta_mutual_) return false;
  return true;
}

void FleetDeltaGroup::on_poll(std::size_t proxy, ObjectId object,
                              const TemporalPollObservation& obs) {
  if (!obs.modified) return;
  BROADWAY_CHECK_MSG(!hooks_by_proxy_.empty(), "group used before bind()");
  if (!is_member(proxy, object)) return;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].proxy == proxy && member_ids_[i] == object) continue;
    std::size_t target = members_[i].proxy;
    const ObjectId member = member_ids_[i];
    if (failover_ != nullptr) {
      // Ids are fleet-global (one shared intern table), so the sibling
      // addresses the same object under the same id.
      target = failover_(target, member, obs.poll_time);
      if (target == kNoLiveProxy) continue;  // outage with no live tracker
    }
    if (!outside_delta_window(target, member, obs.poll_time)) continue;
    ++triggers_requested_;
    if (target != members_[i].proxy) ++failover_triggers_;
    // Recursion: the triggered poll re-enters on_poll for this member via
    // the fleet's listener; its zero-age last poll then falls inside the δ
    // window, so cascades terminate.
    hooks_by_proxy_[target].trigger_poll(member);
  }
}

}  // namespace broadway

#include "sim/periodic.h"

#include "util/check.h"

namespace broadway {

PeriodicTask::PeriodicTask(Simulator& sim, Body body)
    : sim_(sim), body_(std::move(body)) {
  BROADWAY_CHECK(body_ != nullptr);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(Duration initial_delay) {
  BROADWAY_CHECK_MSG(!active(), "PeriodicTask started twice");
  arm(initial_delay);
}

void PeriodicTask::stop() {
  if (pending_ != kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void PeriodicTask::reschedule(Duration delay) {
  stop();
  arm(delay);
}

bool PeriodicTask::active() const {
  return pending_ != kInvalidEventId && sim_.is_pending(pending_);
}

TimePoint PeriodicTask::next_fire_time() const {
  if (pending_ == kInvalidEventId) return kTimeInfinity;
  return sim_.fire_time(pending_);
}

void PeriodicTask::arm(Duration delay) {
  BROADWAY_CHECK_MSG(delay >= 0.0, "PeriodicTask delay " << delay);
  pending_ = sim_.schedule_after(delay, [this] { fire(); });
}

void PeriodicTask::fire() {
  pending_ = kInvalidEventId;
  const Duration next = body_();
  // The body may have rescheduled or stopped us explicitly; only self-arm
  // when it did not and asked for another firing.
  if (next >= 0.0 && pending_ == kInvalidEventId) arm(next);
}

}  // namespace broadway

// Periodic and self-rescheduling tasks on top of the Simulator.
//
// The proxy's polling loop is a self-rescheduling task whose period (the
// TTR) changes after every firing; PeriodicTask supports both the fixed
// period used by the baseline polling approach and the variable period used
// by the adaptive policies.
#pragma once

#include <functional>

#include "sim/simulator.h"
#include "util/time.h"

namespace broadway {

/// A repeating task.  Each firing invokes `body`, whose return value is the
/// delay until the next firing; returning a negative value stops the task.
/// The task can also be rescheduled or stopped externally between firings.
class PeriodicTask {
 public:
  /// `body` is invoked at each firing; it returns the next delay.
  using Body = std::function<Duration()>;

  /// Does not start the task; call `start`.
  PeriodicTask(Simulator& sim, Body body);

  // Pending events capture `this`.
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask();

  /// Schedule the first firing `initial_delay` from now.
  void start(Duration initial_delay);

  /// Cancel the pending firing, if any.
  void stop();

  /// Replace the pending firing with one `delay` from now.  May be called
  /// whether or not a firing is pending.  This is how triggered polls
  /// (paper §3.2) pull a scheduled poll forward.
  void reschedule(Duration delay);

  /// True if a firing is pending.
  bool active() const;

  /// Absolute time of the pending firing; kTimeInfinity if inactive.
  TimePoint next_fire_time() const;

 private:
  Simulator& sim_;
  Body body_;
  EventId pending_ = kInvalidEventId;

  void fire();
  void arm(Duration delay);
};

}  // namespace broadway

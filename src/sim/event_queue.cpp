#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

namespace {

// Below this, bucket widths stop being meaningful time intervals (the
// simulation is double seconds; a nanosecond bucket already holds at most
// one distinguishable instant) and floor(t / width) risks overflowing.
constexpr double kMinWidth = 1e-9;

// floor(t / width) can exceed what fits in 64 bits for huge horizons with
// tiny widths; clamp instead of overflowing.  Clamped entries all share
// one far-future virtual bucket and are disambiguated by the (time, seq)
// comparison, so ordering stays exact.
constexpr double kMaxVbucket = 9.0e18;

}  // namespace

CalendarQueue::CalendarQueue(LiveFn live, const void* context)
    : live_(live), live_context_(context),
      bucket_heads_(kMinBuckets, kNilChunk) {}

std::uint64_t CalendarQueue::vbucket_of(TimePoint t) const {
  const double q = t * inv_width_;
  if (q >= kMaxVbucket) return static_cast<std::uint64_t>(kMaxVbucket);
  return static_cast<std::uint64_t>(q);
}

std::uint32_t CalendarQueue::allocate_chunk(std::size_t bucket) {
  std::uint32_t index;
  if (free_chunks_ != kNilChunk) {
    index = free_chunks_;
    free_chunks_ = arena_[index].next;
  } else {
    arena_.emplace_back();
    index = static_cast<std::uint32_t>(arena_.size() - 1);
  }
  Chunk& chunk = arena_[index];
  chunk.count = 0;
  chunk.next = bucket_heads_[bucket];
  bucket_heads_[bucket] = index;
  return index;
}

EventEntry CalendarQueue::remove_at(std::size_t bucket, std::uint32_t chunk,
                                    std::uint32_t slot) {
  Chunk& node = arena_[chunk];
  const EventEntry entry = node.entries[slot];
  node.entries[slot] = node.entries[--node.count];
  if (node.count == 0) {
    // Unlink the emptied chunk from its bucket chain (chains are one or
    // two chunks at the target load) and recycle it.
    std::uint32_t* link = &bucket_heads_[bucket];
    while (*link != chunk) link = &arena_[*link].next;
    *link = node.next;
    node.next = free_chunks_;
    free_chunks_ = chunk;
  }
  --size_;
  return entry;
}

void CalendarQueue::place(const EventEntry& entry, std::uint64_t vbucket) {
  const std::size_t b = wrap(vbucket);
  std::uint32_t head = bucket_heads_[b];
  if (head == kNilChunk || arena_[head].count == kChunkCapacity) {
    head = allocate_chunk(b);
  }
  Chunk& chunk = arena_[head];
  const std::uint32_t slot = chunk.count++;
  chunk.entries[slot] = entry;
  ++size_;
  if (cache_valid_ &&
      fires_before(entry, arena_[cache_chunk_].entries[cache_slot_])) {
    cache_bucket_ = b;
    cache_chunk_ = head;
    cache_slot_ = slot;
  }
}

void CalendarQueue::push(const EventEntry& entry) {
  BROADWAY_CHECK_MSG(entry.time >= 0.0 && std::isfinite(entry.time),
                     "calendar push at " << entry.time);
  maybe_resize_for_push();
  const std::uint64_t vb = vbucket_of(entry.time);
  // An entry behind the cursor (possible after a sparse-regime jump)
  // rewinds it so the next scan cannot walk past the new minimum.
  if (vb < current_vbucket_) current_vbucket_ = vb;
  place(entry, vb);
}

const EventEntry* CalendarQueue::peek() {
  // Tombstone-aware pop, lazily: the scan itself compares raw entries —
  // no liveness calls on the hot path — and only the *selected* minimum
  // is validated.  A dead winner is swap-removed and the search repeats,
  // exactly the heap backend's skip loop; cancellations are rare enough
  // in the engine's workloads (reschedules of already-fired timers are
  // no-ops) that this beats checking every scanned entry.
  while (true) {
    if (!cache_valid_) locate_min();
    if (!cache_valid_) return nullptr;
    EventEntry& entry = arena_[cache_chunk_].entries[cache_slot_];
    if (is_live(entry)) return &entry;
    remove_at(cache_bucket_, cache_chunk_, cache_slot_);
    cache_valid_ = false;
  }
}

EventEntry CalendarQueue::pop() {
  const EventEntry* head = peek();  // locates + validates the minimum
  BROADWAY_CHECK_MSG(head != nullptr, "pop from an empty calendar queue");
  const EventEntry entry = remove_at(cache_bucket_, cache_chunk_,
                                     cache_slot_);
  cache_valid_ = false;
  maybe_resize_for_pop();
  return entry;
}

void CalendarQueue::locate_min() {
  cache_valid_ = false;
  if (size_ == 0) return;
  const std::size_t n = bucket_heads_.size();
  // Walk one calendar year from the cursor.  The first bucket holding an
  // entry of the cursor's own virtual bucket holds the queue minimum:
  // every earlier virtual bucket was already scanned empty, and entries
  // of later virtual buckets — even ones sharing the wrapped slot — have
  // strictly later times.
  for (std::size_t step = 0; step < n; ++step) {
    const std::uint64_t vb = current_vbucket_;
    const std::size_t b = wrap(vb);
    std::uint32_t best_chunk = kNilChunk;
    std::uint32_t best_slot = 0;
    for (std::uint32_t c = bucket_heads_[b]; c != kNilChunk;
         c = arena_[c].next) {
      const Chunk& chunk = arena_[c];
      for (std::uint32_t i = 0; i < chunk.count; ++i) {
        if (vbucket_of(chunk.entries[i].time) != vb) continue;  // later year
        if (best_chunk == kNilChunk ||
            fires_before(chunk.entries[i],
                         arena_[best_chunk].entries[best_slot])) {
          best_chunk = c;
          best_slot = i;
        }
      }
    }
    if (best_chunk != kNilChunk) {
      cache_valid_ = true;
      cache_bucket_ = b;
      cache_chunk_ = best_chunk;
      cache_slot_ = best_slot;
      return;
    }
    ++current_vbucket_;
  }
  // A whole year is empty: the pending set is sparse relative to the
  // bucket span.  Direct-search the minimum and jump the cursor to it.
  std::size_t best_bucket = 0;
  std::uint32_t best_chunk = kNilChunk;
  std::uint32_t best_slot = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::uint32_t c = bucket_heads_[b]; c != kNilChunk;
         c = arena_[c].next) {
      const Chunk& chunk = arena_[c];
      for (std::uint32_t i = 0; i < chunk.count; ++i) {
        if (best_chunk == kNilChunk ||
            fires_before(chunk.entries[i],
                         arena_[best_chunk].entries[best_slot])) {
          best_bucket = b;
          best_chunk = c;
          best_slot = i;
        }
      }
    }
  }
  BROADWAY_CHECK(best_chunk != kNilChunk);  // size_ > 0
  current_vbucket_ = vbucket_of(arena_[best_chunk].entries[best_slot].time);
  cache_valid_ = true;
  cache_bucket_ = best_bucket;
  cache_chunk_ = best_chunk;
  cache_slot_ = best_slot;
}

void CalendarQueue::maybe_resize_for_push() {
  // Target load: a handful of entries per bucket.  Fewer, fatter buckets
  // beat load-1 sizing here — a bucket scan is a short contiguous sweep,
  // while thousands of near-empty buckets are a cache miss each.
  if (size_ + 1 > bucket_heads_.size() * 4) {
    rebuild(bucket_heads_.size() * 2);
  }
}

void CalendarQueue::maybe_resize_for_pop() {
  if (bucket_heads_.size() > kMinBuckets &&
      size_ < bucket_heads_.size() / 2) {
    rebuild(bucket_heads_.size() / 2);
  }
}

void CalendarQueue::rebuild(std::size_t new_bucket_count) {
  ++resizes_;
  std::vector<EventEntry>& entries = rebuild_scratch_;
  entries.clear();
  entries.reserve(size_);
  for (const std::uint32_t head : bucket_heads_) {
    for (std::uint32_t c = head; c != kNilChunk; c = arena_[c].next) {
      const Chunk& chunk = arena_[c];
      for (std::uint32_t i = 0; i < chunk.count; ++i) {
        if (is_live(chunk.entries[i])) {
          entries.push_back(chunk.entries[i]);  // drop tombstones
        }
      }
    }
  }
  // Reset the slab wholesale: every chunk is free again (the vector keeps
  // its capacity, so this is pointer bookkeeping, not an allocation).
  arena_.clear();
  free_chunks_ = kNilChunk;
  bucket_heads_.assign(new_bucket_count, kNilChunk);
  size_ = 0;
  width_ = derive_width(entries);
  inv_width_ = 1.0 / width_;
  cache_valid_ = false;
  std::uint64_t min_vbucket = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t vb = vbucket_of(entries[i].time);
    place(entries[i], vb);
    if (i == 0 || vb < min_vbucket) min_vbucket = vb;
  }
  current_vbucket_ = min_vbucket;
  cache_valid_ = false;
}

double CalendarQueue::derive_width(
    const std::vector<EventEntry>& entries) const {
  if (entries.size() < 2) return width_;
  // Sample up to 64 entry times uniformly, sort them, and average the
  // adjacent gaps after dropping the largest quartile (one far-future
  // outlier must not blow the width up for everyone else).  Each sampled
  // gap spans `stride` population intervals, so divide it back out.
  constexpr std::size_t kSampleLimit = 64;
  const std::size_t stride =
      std::max<std::size_t>(1, entries.size() / kSampleLimit);
  std::vector<double> times;
  times.reserve(kSampleLimit + 1);
  for (std::size_t i = 0; i < entries.size(); i += stride) {
    times.push_back(entries[i].time);
  }
  if (times.size() < 2) return width_;
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  gaps.reserve(times.size() - 1);
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  const std::size_t keep = std::max<std::size_t>(1, gaps.size() * 3 / 4);
  double sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) sum += gaps[i];
  const double mean_gap = sum / (static_cast<double>(keep) *
                                 static_cast<double>(stride));
  if (mean_gap <= 0.0) return width_;  // simultaneous burst: keep width
  // A bucket window of ~4 mean intervals pairs with the ~4-entry load
  // target above: the expected in-window scan stays a short contiguous
  // sweep while one calendar year still spans the whole pending set.
  return std::max(4.0 * mean_gap, kMinWidth);
}

}  // namespace broadway

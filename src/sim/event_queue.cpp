#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace broadway {

namespace {

// Below this, bucket widths stop being meaningful time intervals (the
// simulation is double seconds; a nanosecond bucket already holds at most
// one distinguishable instant) and floor(t / width) risks overflowing.
constexpr double kMinWidth = 1e-9;

// floor(t / width) can exceed what fits in 64 bits for huge horizons with
// tiny widths; clamp instead of overflowing.  Clamped entries all share
// one far-future virtual bucket and are disambiguated by the (time, seq)
// comparison, so ordering stays exact.
constexpr double kMaxVbucket = 9.0e18;

}  // namespace

CalendarQueue::CalendarQueue(LiveFn live, const void* context)
    : live_(live), live_context_(context), buckets_(kMinBuckets) {}

std::uint64_t CalendarQueue::vbucket_of(TimePoint t) const {
  const double q = t * inv_width_;
  if (q >= kMaxVbucket) return static_cast<std::uint64_t>(kMaxVbucket);
  return static_cast<std::uint64_t>(q);
}

void CalendarQueue::push(const EventEntry& entry) {
  BROADWAY_CHECK_MSG(entry.time >= 0.0 && std::isfinite(entry.time),
                     "calendar push at " << entry.time);
  maybe_resize_for_push();
  const std::uint64_t vb = vbucket_of(entry.time);
  const std::size_t b = wrap(vb);
  buckets_[b].push_back(entry);
  ++size_;
  // An entry behind the cursor (possible after a sparse-regime jump)
  // rewinds it so the next scan cannot walk past the new minimum.
  if (vb < current_vbucket_) current_vbucket_ = vb;
  if (cache_valid_ &&
      fires_before(entry, buckets_[cache_bucket_][cache_index_])) {
    cache_bucket_ = b;
    cache_index_ = buckets_[b].size() - 1;
  }
}

const EventEntry* CalendarQueue::peek() {
  // Tombstone-aware pop, lazily: the scan itself compares raw entries —
  // no liveness calls on the hot path — and only the *selected* minimum
  // is validated.  A dead winner is swap-removed and the search repeats,
  // exactly the heap backend's skip loop; cancellations are rare enough
  // in the engine's workloads (reschedules of already-fired timers are
  // no-ops) that this beats checking every scanned entry.
  while (true) {
    if (!cache_valid_) locate_min();
    if (!cache_valid_) return nullptr;
    std::vector<EventEntry>& bucket = buckets_[cache_bucket_];
    if (is_live(bucket[cache_index_])) return &bucket[cache_index_];
    bucket[cache_index_] = bucket.back();
    bucket.pop_back();
    --size_;
    cache_valid_ = false;
  }
}

EventEntry CalendarQueue::pop() {
  const EventEntry* head = peek();  // locates + validates the minimum
  BROADWAY_CHECK_MSG(head != nullptr, "pop from an empty calendar queue");
  std::vector<EventEntry>& bucket = buckets_[cache_bucket_];
  const EventEntry entry = bucket[cache_index_];
  bucket[cache_index_] = bucket.back();
  bucket.pop_back();
  --size_;
  cache_valid_ = false;
  maybe_resize_for_pop();
  return entry;
}

void CalendarQueue::locate_min() {
  cache_valid_ = false;
  if (size_ == 0) return;
  const std::size_t n = buckets_.size();
  // Walk one calendar year from the cursor.  The first bucket holding an
  // entry of the cursor's own virtual bucket holds the queue minimum:
  // every earlier virtual bucket was already scanned empty, and entries
  // of later virtual buckets — even ones sharing the wrapped slot — have
  // strictly later times.
  for (std::size_t step = 0; step < n; ++step) {
    const std::uint64_t vb = current_vbucket_;
    const std::vector<EventEntry>& bucket = buckets_[wrap(vb)];
    std::size_t best = kNpos;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (vbucket_of(bucket[i].time) != vb) continue;  // a later year
      if (best == kNpos || fires_before(bucket[i], bucket[best])) best = i;
    }
    if (best != kNpos) {
      cache_valid_ = true;
      cache_bucket_ = wrap(vb);
      cache_index_ = best;
      return;
    }
    ++current_vbucket_;
  }
  // A whole year is empty: the pending set is sparse relative to the
  // bucket span.  Direct-search the minimum and jump the cursor to it.
  std::size_t best_bucket = kNpos;
  std::size_t best_index = kNpos;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      if (best_bucket == kNpos ||
          fires_before(buckets_[b][i], buckets_[best_bucket][best_index])) {
        best_bucket = b;
        best_index = i;
      }
    }
  }
  BROADWAY_CHECK(best_bucket != kNpos);  // size_ > 0
  current_vbucket_ = vbucket_of(buckets_[best_bucket][best_index].time);
  cache_valid_ = true;
  cache_bucket_ = best_bucket;
  cache_index_ = best_index;
}

void CalendarQueue::maybe_resize_for_push() {
  // Target load: a handful of entries per bucket.  Fewer, fatter buckets
  // beat load-1 sizing here — a bucket scan is a short contiguous sweep,
  // while thousands of near-empty bucket vectors are a cache miss each.
  if (size_ + 1 > buckets_.size() * 4) rebuild(buckets_.size() * 2);
}

void CalendarQueue::maybe_resize_for_pop() {
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    rebuild(buckets_.size() / 2);
  }
}

void CalendarQueue::rebuild(std::size_t new_bucket_count) {
  ++resizes_;
  std::vector<EventEntry> entries;
  entries.reserve(size_);
  for (std::vector<EventEntry>& bucket : buckets_) {
    for (const EventEntry& entry : bucket) {
      if (is_live(entry)) entries.push_back(entry);  // drop tombstones
    }
    bucket.clear();
  }
  size_ = entries.size();
  width_ = derive_width(entries);
  inv_width_ = 1.0 / width_;
  buckets_.assign(new_bucket_count, {});
  std::uint64_t min_vbucket = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t vb = vbucket_of(entries[i].time);
    buckets_[wrap(vb)].push_back(entries[i]);
    if (i == 0 || vb < min_vbucket) min_vbucket = vb;
  }
  current_vbucket_ = min_vbucket;
  cache_valid_ = false;
}

double CalendarQueue::derive_width(
    const std::vector<EventEntry>& entries) const {
  if (entries.size() < 2) return width_;
  // Sample up to 64 entry times uniformly, sort them, and average the
  // adjacent gaps after dropping the largest quartile (one far-future
  // outlier must not blow the width up for everyone else).  Each sampled
  // gap spans `stride` population intervals, so divide it back out.
  constexpr std::size_t kSampleLimit = 64;
  const std::size_t stride =
      std::max<std::size_t>(1, entries.size() / kSampleLimit);
  std::vector<double> times;
  times.reserve(kSampleLimit + 1);
  for (std::size_t i = 0; i < entries.size(); i += stride) {
    times.push_back(entries[i].time);
  }
  if (times.size() < 2) return width_;
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  gaps.reserve(times.size() - 1);
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  const std::size_t keep = std::max<std::size_t>(1, gaps.size() * 3 / 4);
  double sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) sum += gaps[i];
  const double mean_gap = sum / (static_cast<double>(keep) *
                                 static_cast<double>(stride));
  if (mean_gap <= 0.0) return width_;  // simultaneous burst: keep width
  // A bucket window of ~4 mean intervals pairs with the ~4-entry load
  // target above: the expected in-window scan stays a short contiguous
  // sweep while one calendar year still spans the whole pending set.
  return std::max(4.0 * mean_gap, kMinWidth);
}

}  // namespace broadway

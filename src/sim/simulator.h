// Discrete-event simulation engine.
//
// The paper evaluates its consistency mechanisms with an event-based
// simulator ("we implemented an event-based simulator to evaluate the
// efficacy of various cache consistency mechanisms", §6.1.1).  This engine
// is that substrate: a virtual clock plus an ordered queue of callbacks.
//
// Ordering guarantees:
//  * events fire in non-decreasing time order;
//  * events scheduled for the same instant fire in the order they were
//    scheduled (FIFO tie-break), which makes runs reproducible.
//
// Events may schedule or cancel other events while running.  Cancelling an
// already-fired or unknown event is a no-op and reported via the return
// value, never an error — timers race with the actions that obsolete them
// in every real proxy, and the engine absorbs that race.
//
// Storage: pending callbacks live in a generation-tagged slot pool (an
// EventId encodes slot index + generation), so scheduling an event is a
// slot reuse plus a binary-heap push — no per-event node allocation, no
// hashing — and cancellation just bumps the slot's generation, turning the
// heap entry into a tombstone that pop skips.  At fleet scale every poll
// is at least one event; this is the floor under the whole simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

/// Sentinel returned by APIs that may have nothing scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// The simulation engine.  Not thread-safe: a simulation is a single
/// logical timeline.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  // A simulation owns its pending callbacks; copying one timeline into
  // another has no meaningful semantics.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t`.  `t` must not be in the
  /// past (it may equal `now()`, in which case the event runs after all
  /// currently-runnable events scheduled earlier).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` to run `d` from now.  `d` must be non-negative.
  EventId schedule_after(Duration d, Callback fn);

  /// Cancel a pending event.  Returns true if the event existed and was
  /// removed; false if it already fired, was already cancelled, or never
  /// existed.
  bool cancel(EventId id);

  /// True if the event is still pending.
  bool is_pending(EventId id) const;

  /// Time at which the pending event will fire; kTimeInfinity if unknown.
  TimePoint fire_time(EventId id) const;

  /// Run a single event.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= horizon, then advance the clock to
  /// `horizon` (even if no event fires exactly there).  Events scheduled
  /// beyond the horizon remain pending.
  std::size_t run_until(TimePoint horizon);

  /// Number of pending events.
  std::size_t pending() const { return pending_count_; }

  /// Id of the event whose callback is currently executing;
  /// kInvalidEventId outside any callback.  Lets a callback deregister
  /// itself from caller-side bookkeeping (e.g. the polling engine's
  /// pending-retry set) without capturing its own id at schedule time.
  EventId current_event() const { return current_event_; }

  /// Total events executed over the lifetime of the simulator.
  std::uint64_t executed() const { return executed_; }

 private:
  struct QueueEntry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    EventId id;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  // One pooled event slot.  `generation` advances every time the slot is
  // released (fire or cancel), so a stale EventId — and the heap entry
  // carrying it — can never address a reused slot.
  struct Slot {
    Callback fn;
    TimePoint time = 0.0;
    std::uint32_t generation = 1;  // generation 0 never exists: see below
    bool live = false;
  };

  // EventId layout: generation (high 32 bits) | slot index (low 32 bits).
  // Generations start at 1 so no valid id equals kInvalidEventId (0).
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// The slot addressed by `id` iff it is live and the generation matches.
  const Slot* live_slot(EventId id) const;
  Slot* live_slot(EventId id);

  /// Release a slot back to the free list (bumps the generation).
  void release(std::uint32_t index);

  TimePoint now_ = 0.0;
  EventId current_event_ = kInvalidEventId;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Pop tombstones until the head is live (or the queue is empty).
  void drop_dead_entries();
};

}  // namespace broadway

// Discrete-event simulation engine.
//
// The paper evaluates its consistency mechanisms with an event-based
// simulator ("we implemented an event-based simulator to evaluate the
// efficacy of various cache consistency mechanisms", §6.1.1).  This engine
// is that substrate: a virtual clock plus an ordered queue of callbacks.
//
// Ordering guarantees:
//  * events fire in non-decreasing time order;
//  * events scheduled for the same instant fire in the order they were
//    scheduled (FIFO tie-break), which makes runs reproducible.
//
// Events may schedule or cancel other events while running.  Cancelling an
// already-fired or unknown event is a no-op and reported via the return
// value, never an error — timers race with the actions that obsolete them
// in every real proxy, and the engine absorbs that race.
//
// Storage: pending callbacks live in a generation-tagged slot pool (an
// EventId encodes slot index + generation), so scheduling an event is a
// slot reuse plus a queue push — no per-event node allocation, no hashing
// — and cancellation just bumps the slot's generation, turning the queue
// entry into a tombstone that pop skips.  At fleet scale every poll is at
// least one event; this is the floor under the whole simulation.
//
// Scheduler backends (see event_queue.h): the ordered queue itself is
// either a binary heap (the reference) or a calendar/bucket queue (the
// default — O(1) expected schedule/pop).  Config::scheduler selects one;
// the BROADWAY_SCHEDULER environment variable ("heap" / "calendar")
// overrides the default so the whole test suite can run under either
// backend.  tests/test_sim_event_queue.cpp pins the two to byte-identical
// fire sequences.
//
// FIFO sequence reservation: same-instant order is decided by a global
// sequence number stamped at schedule time.  A caller that replaces N
// up-front schedules with one self-rechaining event (batch trace
// attachment) can reserve the N numbers at attach time and spend them as
// the chain advances — the interleaving with every other event is then
// exactly as if all N had been scheduled eagerly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.h"
#include "util/time.h"

namespace broadway {

/// The simulation engine.  Not thread-safe: a simulation is a single
/// logical timeline.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Peek at the earliest pending event without running it (see
  /// next_event_info).  `valid` is false when the queue is empty and the
  /// other fields are then meaningless.
  struct NextEvent {
    bool valid = false;
    TimePoint time = 0.0;          ///< when the event fires
    TimePoint scheduled_at = 0.0;  ///< now() at the moment it was scheduled
    std::uint32_t tag = 0;         ///< schedule tag in force when scheduled
    std::uint64_t seq = 0;         ///< FIFO tie-break sequence number
  };

  /// Engine configuration.
  struct Config {
    /// Pending-event structure; defaults to the calendar queue, or to
    /// the BROADWAY_SCHEDULER environment variable when set.
    SchedulerBackend scheduler = default_scheduler();

    /// kCalendar, unless BROADWAY_SCHEDULER names a backend ("heap" /
    /// "binary-heap" / "calendar"); unknown values warn and fall back.
    static SchedulerBackend default_scheduler();
  };

  Simulator() : Simulator(Config{}) {}
  explicit Simulator(Config config);

  // A simulation owns its pending callbacks; copying one timeline into
  // another has no meaningful semantics.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The backend this simulator runs on.
  SchedulerBackend scheduler() const { return backend_; }

  /// Current simulation time.  Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t`.  `t` must not be in the
  /// past (it may equal `now()`, in which case the event runs after all
  /// currently-runnable events scheduled earlier).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` to run `d` from now.  `d` must be non-negative.
  EventId schedule_after(Duration d, Callback fn);

  /// Reserve `count` consecutive FIFO sequence numbers and return the
  /// first.  Events scheduled later with these numbers (via
  /// schedule_at_reserved) tie-break against same-instant events exactly
  /// as if they had been scheduled at reservation time.
  std::uint64_t reserve_sequence(std::uint64_t count);

  /// Schedule `fn` at `t` with a previously reserved sequence number.
  /// Each reserved number must be used at most once.
  EventId schedule_at_reserved(TimePoint t, std::uint64_t seq, Callback fn);

  /// Cancel a pending event.  Returns true if the event existed and was
  /// removed; false if it already fired, was already cancelled, or never
  /// existed.
  bool cancel(EventId id);

  /// True if the event is still pending.
  bool is_pending(EventId id) const;

  /// Time at which the pending event will fire; kTimeInfinity if unknown.
  TimePoint fire_time(EventId id) const;

  /// Run a single event.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= horizon, then advance the clock to
  /// `horizon` (even if no event fires exactly there).  Events scheduled
  /// beyond the horizon remain pending.
  std::size_t run_until(TimePoint horizon);

  /// Earliest pending event, without running it: fire time, the clock
  /// value at which it was scheduled, and the schedule tag in force then.
  /// A parallel driver interleaving an external message stream with the
  /// local queue needs exactly this triple to decide which side fires
  /// next under the canonical (fire, scheduled, tag) order.
  NextEvent next_event_info();

  /// Jump the clock forward to `t` without running anything.  `t` must
  /// not be in the past and no pending event may fire before it — this is
  /// for drivers that deliver externally-ordered work (e.g. cross-shard
  /// messages) between events, not for skipping them.
  void advance_clock(TimePoint t);

  /// Tag stamped on events scheduled from now on.  While an event runs,
  /// the tag reverts to the one it was scheduled under, so chains of
  /// events (timers rescheduling themselves, retries) inherit the tag of
  /// the action that started them.  The fleet uses proxy ids as tags to
  /// give every event a stable owner for deterministic cross-shard
  /// ordering; standalone simulations can ignore tags entirely (tag 0).
  void set_schedule_tag(std::uint32_t tag) { schedule_tag_ = tag; }
  std::uint32_t schedule_tag() const { return schedule_tag_; }

  /// Number of pending events.
  std::size_t pending() const { return pending_count_; }

  /// Id of the event whose callback is currently executing;
  /// kInvalidEventId outside any callback.  Lets a callback deregister
  /// itself from caller-side bookkeeping (e.g. the polling engine's
  /// pending-retry set) without capturing its own id at schedule time.
  EventId current_event() const { return current_event_; }

  /// Total events executed over the lifetime of the simulator.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Later {
    bool operator()(const EventEntry& a, const EventEntry& b) const {
      return fires_before(b, a);
    }
  };
  // One pooled event slot.  `generation` advances every time the slot is
  // released (fire or cancel), so a stale EventId — and the queue entry
  // carrying it — can never address a reused slot.
  struct Slot {
    Callback fn;
    TimePoint time = 0.0;
    TimePoint scheduled_at = 0.0;  // now() when the event was scheduled
    std::uint32_t generation = 1;  // generation 0 never exists: see below
    std::uint32_t tag = 0;         // schedule tag in force at schedule time
    bool live = false;
  };

  // EventId layout: generation (high 32 bits) | slot index (low 32 bits).
  // Generations start at 1 so no valid id equals kInvalidEventId (0).
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// The slot addressed by `id` iff it is live and the generation matches.
  const Slot* live_slot(EventId id) const;
  Slot* live_slot(EventId id);

  /// CalendarQueue liveness predicate (tombstone purging).
  static bool entry_live(const void* context, EventId id);

  /// Release a slot back to the free list (bumps the generation).
  void release(std::uint32_t index);

  EventId schedule_with_seq(TimePoint t, std::uint64_t seq, Callback fn);

  // ---- backend facade ----

  void queue_push(const EventEntry& entry);
  /// Earliest live entry, or nullptr when nothing is pending (dead heap
  /// entries are dropped; the calendar purges internally).
  const EventEntry* queue_peek();
  /// Remove the entry last returned by queue_peek().
  EventEntry queue_pop();

  TimePoint now_ = 0.0;
  EventId current_event_ = kInvalidEventId;
  std::uint32_t schedule_tag_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  SchedulerBackend backend_;
  std::priority_queue<EventEntry, std::vector<EventEntry>, Later> heap_;
  CalendarQueue calendar_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace broadway

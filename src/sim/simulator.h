// Discrete-event simulation engine.
//
// The paper evaluates its consistency mechanisms with an event-based
// simulator ("we implemented an event-based simulator to evaluate the
// efficacy of various cache consistency mechanisms", §6.1.1).  This engine
// is that substrate: a virtual clock plus an ordered queue of callbacks.
//
// Ordering guarantees:
//  * events fire in non-decreasing time order;
//  * events scheduled for the same instant fire in the order they were
//    scheduled (FIFO tie-break), which makes runs reproducible.
//
// Events may schedule or cancel other events while running.  Cancelling an
// already-fired or unknown event is a no-op and reported via the return
// value, never an error — timers race with the actions that obsolete them
// in every real proxy, and the engine absorbs that race.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

/// Sentinel returned by APIs that may have nothing scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// The simulation engine.  Not thread-safe: a simulation is a single
/// logical timeline.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  // A simulation owns its pending callbacks; copying one timeline into
  // another has no meaningful semantics.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t`.  `t` must not be in the
  /// past (it may equal `now()`, in which case the event runs after all
  /// currently-runnable events scheduled earlier).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` to run `d` from now.  `d` must be non-negative.
  EventId schedule_after(Duration d, Callback fn);

  /// Cancel a pending event.  Returns true if the event existed and was
  /// removed; false if it already fired, was already cancelled, or never
  /// existed.
  bool cancel(EventId id);

  /// True if the event is still pending.
  bool is_pending(EventId id) const;

  /// Time at which the pending event will fire; kTimeInfinity if unknown.
  TimePoint fire_time(EventId id) const;

  /// Run a single event.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with time <= horizon, then advance the clock to
  /// `horizon` (even if no event fires exactly there).  Events scheduled
  /// beyond the horizon remain pending.
  std::size_t run_until(TimePoint horizon);

  /// Number of pending events.
  std::size_t pending() const { return callbacks_.size(); }

  /// Total events executed over the lifetime of the simulator.
  std::uint64_t executed() const { return executed_; }

 private:
  struct QueueEntry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    EventId id;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct PendingInfo {
    Callback fn;
    TimePoint time;
  };

  TimePoint now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  // Cancellation is O(1): erase from this map; the heap entry becomes a
  // tombstone that pop skips.
  std::unordered_map<EventId, PendingInfo> callbacks_;

  // Pop tombstones until the head is live (or the queue is empty).
  void drop_dead_entries();
};

}  // namespace broadway

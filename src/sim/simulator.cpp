#include "sim/simulator.h"

#include <cmath>

#include "util/check.h"
#include "util/env.h"

namespace broadway {

SchedulerBackend Simulator::Config::default_scheduler() {
  return env_choice("BROADWAY_SCHEDULER",
                    {"calendar", "heap", "binary-heap"},
                    /*fallback=*/0) == 0
             ? SchedulerBackend::kCalendar
             : SchedulerBackend::kBinaryHeap;
}

Simulator::Simulator(Config config)
    : backend_(config.scheduler),
      calendar_(&Simulator::entry_live, this) {}

bool Simulator::entry_live(const void* context, EventId id) {
  return static_cast<const Simulator*>(context)->live_slot(id) != nullptr;
}

const Simulator::Slot* Simulator::live_slot(EventId id) const {
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return nullptr;
  const Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation_of(id)) return nullptr;
  return &slot;
}

Simulator::Slot* Simulator::live_slot(EventId id) {
  return const_cast<Slot*>(
      static_cast<const Simulator*>(this)->live_slot(id));
}

void Simulator::release(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  ++slot.generation;
  if (slot.generation == 0) ++slot.generation;  // skip 0 on wrap
  slot.fn = nullptr;  // drop captured state promptly
  free_slots_.push_back(index);
  --pending_count_;
}

// ---- backend facade --------------------------------------------------------

void Simulator::queue_push(const EventEntry& entry) {
  if (backend_ == SchedulerBackend::kBinaryHeap) {
    heap_.push(entry);
  } else {
    calendar_.push(entry);
  }
}

const EventEntry* Simulator::queue_peek() {
  if (backend_ == SchedulerBackend::kBinaryHeap) {
    // Pop tombstones until the head is live (or the heap is empty).
    while (!heap_.empty() && live_slot(heap_.top().id) == nullptr) {
      heap_.pop();
    }
    return heap_.empty() ? nullptr : &heap_.top();
  }
  return calendar_.peek();
}

EventEntry Simulator::queue_pop() {
  if (backend_ == SchedulerBackend::kBinaryHeap) {
    const EventEntry entry = heap_.top();
    heap_.pop();
    return entry;
  }
  return calendar_.pop();
}

// ---- scheduling ------------------------------------------------------------

EventId Simulator::schedule_with_seq(TimePoint t, std::uint64_t seq,
                                     Callback fn) {
  BROADWAY_CHECK_MSG(std::isfinite(t), "schedule_at(" << t << ")");
  BROADWAY_CHECK_MSG(t >= now_,
                     "schedule_at in the past: t=" << t << " now=" << now_);
  BROADWAY_CHECK(fn != nullptr);
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    BROADWAY_CHECK_MSG(slots_.size() < 0xffffffffu, "event pool full");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.time = t;
  slot.scheduled_at = now_;
  slot.tag = schedule_tag_;
  slot.live = true;
  ++pending_count_;
  const EventId id = make_id(index, slot.generation);
  queue_push(EventEntry{t, seq, id});
  return id;
}

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  return schedule_with_seq(t, next_seq_++, std::move(fn));
}

EventId Simulator::schedule_after(Duration d, Callback fn) {
  BROADWAY_CHECK_MSG(d >= 0.0, "schedule_after(" << d << ")");
  return schedule_at(now_ + d, std::move(fn));
}

std::uint64_t Simulator::reserve_sequence(std::uint64_t count) {
  const std::uint64_t base = next_seq_;
  next_seq_ += count;
  return base;
}

EventId Simulator::schedule_at_reserved(TimePoint t, std::uint64_t seq,
                                        Callback fn) {
  BROADWAY_CHECK_MSG(seq < next_seq_,
                     "sequence " << seq << " was never reserved");
  return schedule_with_seq(t, seq, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  Slot* slot = live_slot(id);
  if (slot == nullptr) return false;
  release(slot_of(id));
  return true;
}

bool Simulator::is_pending(EventId id) const {
  return live_slot(id) != nullptr;
}

TimePoint Simulator::fire_time(EventId id) const {
  const Slot* slot = live_slot(id);
  return slot == nullptr ? kTimeInfinity : slot->time;
}

// ---- execution -------------------------------------------------------------

bool Simulator::step() {
  if (queue_peek() == nullptr) return false;
  const EventEntry entry = queue_pop();
  Slot* slot = live_slot(entry.id);
  BROADWAY_CHECK(slot != nullptr);
  Callback fn = std::move(slot->fn);
  const std::uint32_t tag = slot->tag;
  release(slot_of(entry.id));
  BROADWAY_CHECK_MSG(entry.time >= now_, "event time went backwards");
  now_ = entry.time;
  ++executed_;
  // Expose the running event's id for the duration of the callback
  // (callbacks nest only through step()-free paths, so a plain save and
  // restore covers reentrant step() calls too).  The schedule tag reverts
  // to the firing event's tag so follow-on schedules inherit its owner.
  const EventId outer = current_event_;
  const std::uint32_t outer_tag = schedule_tag_;
  current_event_ = entry.id;
  schedule_tag_ = tag;
  fn();
  schedule_tag_ = outer_tag;
  current_event_ = outer;
  return true;
}

Simulator::NextEvent Simulator::next_event_info() {
  NextEvent info;
  const EventEntry* head = queue_peek();
  if (head == nullptr) return info;
  const Slot* slot = live_slot(head->id);
  BROADWAY_CHECK(slot != nullptr);
  info.valid = true;
  info.time = head->time;
  info.scheduled_at = slot->scheduled_at;
  info.tag = slot->tag;
  info.seq = head->seq;
  return info;
}

void Simulator::advance_clock(TimePoint t) {
  BROADWAY_CHECK_MSG(t >= now_, "advance_clock into the past: t="
                                    << t << " now=" << now_);
  const EventEntry* head = queue_peek();
  BROADWAY_CHECK_MSG(head == nullptr || head->time >= t,
                     "advance_clock would skip a pending event");
  now_ = t;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(TimePoint horizon) {
  BROADWAY_CHECK_MSG(horizon >= now_, "run_until in the past");
  std::size_t executed = 0;
  while (true) {
    const EventEntry* head = queue_peek();
    if (head == nullptr || head->time > horizon) break;
    step();
    ++executed;
  }
  now_ = horizon;
  return executed;
}

}  // namespace broadway

#include "sim/simulator.h"

#include <cmath>

#include "util/check.h"

namespace broadway {

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  BROADWAY_CHECK_MSG(std::isfinite(t), "schedule_at(" << t << ")");
  BROADWAY_CHECK_MSG(t >= now_,
                     "schedule_at in the past: t=" << t << " now=" << now_);
  BROADWAY_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, PendingInfo{std::move(fn), t});
  return id;
}

EventId Simulator::schedule_after(Duration d, Callback fn) {
  BROADWAY_CHECK_MSG(d >= 0.0, "schedule_after(" << d << ")");
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::is_pending(EventId id) const {
  return callbacks_.find(id) != callbacks_.end();
}

TimePoint Simulator::fire_time(EventId id) const {
  auto it = callbacks_.find(id);
  return it == callbacks_.end() ? kTimeInfinity : it->second.time;
}

void Simulator::drop_dead_entries() {
  while (!queue_.empty() &&
         callbacks_.find(queue_.top().id) == callbacks_.end()) {
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_dead_entries();
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(entry.id);
  BROADWAY_CHECK(it != callbacks_.end());
  Callback fn = std::move(it->second.fn);
  callbacks_.erase(it);
  BROADWAY_CHECK_MSG(entry.time >= now_, "event time went backwards");
  now_ = entry.time;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(TimePoint horizon) {
  BROADWAY_CHECK_MSG(horizon >= now_, "run_until in the past");
  std::size_t executed = 0;
  while (true) {
    drop_dead_entries();
    if (queue_.empty() || queue_.top().time > horizon) break;
    step();
    ++executed;
  }
  now_ = horizon;
  return executed;
}

}  // namespace broadway

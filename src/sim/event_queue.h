// Event-queue backends for the Simulator: the pending-event structure the
// whole simulation runs on.
//
// Two backends coexist behind Simulator::Config::scheduler:
//
//  * kBinaryHeap — std::priority_queue of (time, seq) entries.  O(log n)
//    per operation; the reference implementation every other backend is
//    differentially pinned against (tests/test_sim_event_queue.cpp).
//  * kCalendar — the CalendarQueue below, a calendar/bucket queue in the
//    style of Brown (CACM '88): events hash into fixed-width time buckets
//    by floor(t / width), giving O(1) expected schedule and pop when the
//    bucket width tracks the observed event-interval distribution.  At
//    fleet scale (every poll is at least one event) the binary heap's
//    log-factor and its pop-path cache misses dominate the simulator, so
//    this is the default backend.
//
// Ordering contract (both backends): entries leave in strictly
// non-decreasing (time, seq) order.  `seq` is the Simulator's global
// schedule sequence number, so events at the same instant fire exactly in
// the order they were scheduled — the FIFO tie-break every reproducibility
// guarantee in this codebase leans on.
//
// Tombstones: the Simulator cancels events by bumping a slot generation,
// leaving the queue entry in place.  The CalendarQueue takes an optional
// liveness predicate and purges dead entries as its scans encounter them
// (tombstone-aware pop); the heap backend leaves skipping to the
// Simulator's pop loop, as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace broadway {

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled.  Layout (slot index + generation) is the Simulator's.
using EventId = std::uint64_t;

/// Sentinel returned by APIs that may have nothing scheduled.
inline constexpr EventId kInvalidEventId = 0;

/// Which pending-event structure a Simulator runs on.
enum class SchedulerBackend {
  kBinaryHeap,
  kCalendar,
};

/// One pending entry: fire time, FIFO tie-break, event handle.
struct EventEntry {
  TimePoint time;
  std::uint64_t seq;
  EventId id;
};

/// Strict event ordering: earlier time first, then lower sequence number
/// (same-instant FIFO).
inline bool fires_before(const EventEntry& a, const EventEntry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Calendar/bucket event queue.
///
/// Structure: `bucket_count()` (a power of two) unsorted buckets of
/// entries; an entry at time t lives in bucket floor(t / width) mod count.
/// A cursor walks virtual (unwrapped) buckets in time order; the earliest
/// entry whose virtual bucket matches the cursor is the queue minimum, so
/// a pop scans one lightly-loaded bucket instead of sifting a heap.  When
/// a whole calendar "year" (count consecutive buckets) is empty the queue
/// falls back to a direct scan and jumps the cursor to the true minimum —
/// the sparse regime a fixed-width calendar is otherwise bad at.
///
/// Sizing: the queue lazily resizes on load-factor drift (entries > 2x
/// buckets grows, entries < buckets/4 shrinks) and re-derives the bucket
/// width from the observed inter-event interval distribution of the
/// entries present at resize time (trimmed mean of sampled adjacent gaps),
/// targeting a handful of entries per bucket window.
///
/// Storage: bucket entries live in fixed-capacity chunks drawn from one
/// per-queue slab (`arena_chunks()` introspects it) with an index-threaded
/// free list — a bucket is a singly-linked chain of chunk indices, and the
/// chunk capacity matches the ~4-entries-per-bucket load target, so almost
/// every bucket is one contiguous chunk.  Compared to a vector per bucket,
/// the whole calendar is two allocations (slab + bucket heads) instead of
/// `bucket_count()` independently growing arrays: pushes, pops, drains and
/// rebuilds recycle chunks through the free list and never touch the
/// global heap once the slab reaches its high-water mark.
///
/// The queue stores entries only; callers own callbacks and cancellation
/// state.  Not thread-safe, like the Simulator it backs.
class CalendarQueue {
 public:
  /// Liveness predicate for tombstone purging: return false for entries
  /// whose event was cancelled (or already fired).  Called with `context`
  /// during scans; a null function treats every entry as live.
  using LiveFn = bool (*)(const void* context, EventId id);

  explicit CalendarQueue(LiveFn live = nullptr,
                         const void* context = nullptr);

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Insert an entry.  Entries may arrive in any time order, but never
  /// earlier than the last popped time (the Simulator schedules only at
  /// t >= now) — the cursor rewinds when an entry lands behind it.
  void push(const EventEntry& entry);

  /// Earliest live entry, or nullptr when the queue is empty (dead
  /// entries encountered on the way are purged).  The returned pointer is
  /// valid until the next push/pop.
  const EventEntry* peek();

  /// Remove and return the earliest live entry.  Requires a preceding
  /// peek() != nullptr (checked).
  EventEntry pop();

  /// Entries stored, including not-yet-purged tombstones.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // ---- introspection (tests and diagnostics) ----

  std::size_t bucket_count() const { return bucket_heads_.size(); }
  double bucket_width() const { return width_; }
  std::uint64_t resizes() const { return resizes_; }
  /// Chunks the slab has ever allocated (live + free-listed).  Stable
  /// across drain/refill cycles at equal load — the pin that bucket
  /// storage recycles instead of re-allocating.
  std::size_t arena_chunks() const { return arena_.size(); }

 private:
  static constexpr std::size_t kMinBuckets = 8;

  /// Entries per chunk: sized to the ~4-entries-per-bucket load target so
  /// the common bucket is one chunk, with headroom before chaining.
  static constexpr std::uint32_t kChunkCapacity = 8;
  /// Null chunk index (bucket chain / free list terminator).
  static constexpr std::uint32_t kNilChunk = 0xffffffffu;

  /// One slab node: a short unsorted run of entries plus the chain link
  /// (next chunk of the same bucket, or the next free chunk).
  struct Chunk {
    EventEntry entries[kChunkCapacity];
    std::uint32_t count = 0;
    std::uint32_t next = kNilChunk;
  };

  LiveFn live_;
  const void* live_context_;
  std::vector<Chunk> arena_;                  ///< the per-queue slab
  std::uint32_t free_chunks_ = kNilChunk;     ///< free list through `next`
  std::vector<std::uint32_t> bucket_heads_;   ///< kNilChunk = empty bucket
  double width_ = 1.0;
  double inv_width_ = 1.0;  ///< 1 / width_: bucket mapping multiplies
  /// Cursor: the virtual (unwrapped) bucket index the next minimum is
  /// searched from.  Advanced by scans, rewound by push, recomputed on
  /// resize.
  std::uint64_t current_vbucket_ = 0;
  std::size_t size_ = 0;
  std::uint64_t resizes_ = 0;
  // Cached location of the minimum — (bucket, chunk, slot) — filled by
  // peek(); invalidated by pop and resize (push keeps it fresh instead).
  bool cache_valid_ = false;
  std::size_t cache_bucket_ = 0;
  std::uint32_t cache_chunk_ = 0;
  std::uint32_t cache_slot_ = 0;
  // Scratch for rebuild(): collected live entries (capacity persists, so
  // steady-state rebuilds allocate nothing).
  std::vector<EventEntry> rebuild_scratch_;

  bool is_live(const EventEntry& entry) const {
    return live_ == nullptr || live_(live_context_, entry.id);
  }
  std::uint64_t vbucket_of(TimePoint t) const;
  std::size_t wrap(std::uint64_t vbucket) const {
    return static_cast<std::size_t>(
        vbucket & (bucket_heads_.size() - 1));  // power of two
  }

  /// Pop a chunk off the free list (or grow the slab) and link it at the
  /// head of `bucket`'s chain.
  std::uint32_t allocate_chunk(std::size_t bucket);
  /// Swap-remove the entry at (bucket, chunk, slot); an emptied chunk is
  /// unlinked from the bucket chain and returned to the free list.
  EventEntry remove_at(std::size_t bucket, std::uint32_t chunk,
                       std::uint32_t slot);
  /// Insert without load-factor checks (push and rebuild share this).
  void place(const EventEntry& entry, std::uint64_t vbucket);

  /// Find the minimum entry (live or tombstone) and fill the cache;
  /// leaves the cache invalid only when the queue is empty.  peek()
  /// validates the winner and removes it when dead.
  void locate_min();

  void maybe_resize_for_push();
  void maybe_resize_for_pop();
  void rebuild(std::size_t new_bucket_count);

  /// Bucket width from the inter-event interval distribution of
  /// `entries` (sorted sample, trimmed mean of adjacent gaps); falls back
  /// to the current width when the distribution is degenerate.
  double derive_width(const std::vector<EventEntry>& entries) const;
};

}  // namespace broadway

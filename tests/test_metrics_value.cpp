// Ground-truth Δv (Eq. 3) and Mv (Eq. 5) evaluation.
#include "metrics/value_fidelity.h"

#include <gtest/gtest.h>

#include "trace/value_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

std::vector<PollInstant> at(std::initializer_list<TimePoint> times) {
  std::vector<PollInstant> out;
  for (TimePoint t : times) out.push_back(PollInstant{t, t});
  return out;
}

TEST(ValueFidelity, FlatValuePerfect) {
  const ValueTrace trace("v", 100.0, {}, 100.0);
  const auto report =
      evaluate_value_fidelity(trace, at({0.0, 50.0}), 1.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 1.0);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
}

TEST(ValueFidelity, DriftBeyondDeltaViolates) {
  // Cached 100 at t=0; server jumps to 102 at t=20; refresh at 60.
  // Deviation 2 >= Δ=1 from 20 to 60 -> 40 s out of sync.
  const ValueTrace trace("v", 100.0, {{20.0, 102.0}}, 100.0);
  const auto report =
      evaluate_value_fidelity(trace, at({0.0, 60.0}), 1.0, 100.0);
  EXPECT_EQ(report.windows, 2u);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 40.0);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 0.5);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 0.6);
}

TEST(ValueFidelity, SmallDriftWithinDelta) {
  const ValueTrace trace("v", 100.0, {{20.0, 100.5}}, 100.0);
  const auto report =
      evaluate_value_fidelity(trace, at({0.0, 60.0}), 1.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
}

TEST(ValueFidelity, ExcursionAndReturnStillCounts) {
  // Value spikes away and returns between polls: the window still
  // violated while the spike lasted.
  const ValueTrace trace("v", 100.0, {{20.0, 105.0}, {30.0, 100.0}},
                         100.0);
  const auto report =
      evaluate_value_fidelity(trace, at({0.0, 90.0}), 1.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 10.0);  // 20 -> 30
}

TEST(ValueFidelity, TailWindowEvaluated) {
  const ValueTrace trace("v", 100.0, {{80.0, 104.0}}, 100.0);
  const auto report =
      evaluate_value_fidelity(trace, at({0.0, 50.0}), 1.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 20.0);  // 80 -> 100
}

TEST(ValueFidelity, Validation) {
  const ValueTrace trace("v", 1.0, {}, 10.0);
  EXPECT_THROW(evaluate_value_fidelity(trace, {}, 1.0, 10.0), CheckFailure);
  EXPECT_THROW(evaluate_value_fidelity(trace, at({0.0}), 0.0, 10.0),
               CheckFailure);
}

TEST(MutualValue, ConsistentWhenBothTracked) {
  // f = a - b.  Both cached at 0 and refreshed at 50; drift between the
  // two sides stays under δ.
  const ValueTrace a("a", 100.0, {{20.0, 100.4}}, 100.0);
  const ValueTrace b("b", 50.0, {{30.0, 50.2}}, 100.0);
  DifferenceFunction f;
  const auto report = evaluate_mutual_value(a, at({0.0, 50.0}), b,
                                            at({0.0, 50.0}), f, 1.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
  EXPECT_EQ(report.polls, 4u);
}

TEST(MutualValue, DivergenceOfFViolates) {
  // a jumps +2 at 20 (unrefreshed until 60): f(server) - f(proxy) = 2
  // over [20, 60) -> violation for 40 s with δ = 1.
  const ValueTrace a("a", 100.0, {{20.0, 102.0}}, 100.0);
  const ValueTrace b("b", 50.0, {}, 100.0);
  DifferenceFunction f;
  const auto report = evaluate_mutual_value(a, at({0.0, 60.0}), b,
                                            at({0.0}), f, 1.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 40.0);
}

TEST(MutualValue, OppositeDriftsCancelInF) {
  // Both server values rise by the same amount: f = a - b is unchanged,
  // so the pair stays Mv-consistent even though each object individually
  // drifted beyond δ.
  const ValueTrace a("a", 100.0, {{20.0, 103.0}}, 100.0);
  const ValueTrace b("b", 50.0, {{20.0, 53.0}}, 100.0);
  DifferenceFunction f;
  const auto report = evaluate_mutual_value(a, at({0.0}), b, at({0.0}), f,
                                            1.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
}

TEST(MutualValue, StaleCancellationAlsoWorksProxySide) {
  // Proxy refreshes only a; b's staleness offsets in f when drifts align.
  const ValueTrace a("a", 100.0, {{20.0, 103.0}}, 100.0);
  const ValueTrace b("b", 50.0, {{20.0, 53.0}}, 100.0);
  DifferenceFunction f;
  // a refreshed at 30 (holds 103), b stale (holds 50):
  // f(P) = 103 - 50 = 53; f(S) = 103 - 53 = 50; |50 - 53| = 3 >= 1 ->
  // violation from 30 on.
  const auto report = evaluate_mutual_value(a, at({0.0, 30.0}), b,
                                            at({0.0}), f, 1.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 70.0);
}

TEST(MutualValue, ThreeObjectWeightedSum) {
  const ValueTrace a("a", 10.0, {{10.0, 12.0}}, 100.0);
  const ValueTrace b("b", 20.0, {}, 100.0);
  const ValueTrace c("c", 30.0, {}, 100.0);
  WeightedSumFunction f({1.0, 1.0, 1.0});
  const ValueTrace* traces[] = {&a, &b, &c};
  const auto pa = at({0.0});
  const auto pb = at({0.0});
  const auto pc = at({0.0});
  const std::vector<PollInstant>* polls[] = {&pa, &pb, &pc};
  // f(S) rises by 2 at t=10; proxy holds the old sum: violation with δ=1
  // from 10 to 100.
  const auto report = evaluate_mutual_value(traces, polls, f, 1.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 90.0);
  EXPECT_EQ(report.polls, 3u);
}

TEST(MutualValue, SeriesTracksServerAndProxy) {
  const ValueTrace a("a", 100.0, {{20.0, 102.0}}, 100.0);
  const ValueTrace b("b", 50.0, {}, 100.0);
  DifferenceFunction f;
  const auto series =
      mutual_value_series(a, at({0.0, 60.0}), b, at({0.0}), f, 100.0);
  ASSERT_GE(series.size(), 3u);
  // At t=0 both agree at 50.
  EXPECT_DOUBLE_EQ(series.front().f_server, 50.0);
  EXPECT_DOUBLE_EQ(series.front().f_proxy, 50.0);
  // Between 20 and 60 the server leads by 2.
  bool saw_divergence = false;
  for (const auto& sample : series) {
    if (sample.time >= 20.0 && sample.time < 60.0) {
      EXPECT_DOUBLE_EQ(sample.f_server, 52.0);
      EXPECT_DOUBLE_EQ(sample.f_proxy, 50.0);
      saw_divergence = true;
    }
    if (sample.time >= 60.0) {
      EXPECT_DOUBLE_EQ(sample.f_proxy, 52.0);
    }
  }
  EXPECT_TRUE(saw_divergence);
}

TEST(MutualValue, Validation) {
  const ValueTrace a("a", 1.0, {}, 10.0);
  const ValueTrace b("b", 1.0, {}, 10.0);
  DifferenceFunction f;
  EXPECT_THROW(
      evaluate_mutual_value(a, {}, b, at({0.0}), f, 1.0, 10.0),
      CheckFailure);
  EXPECT_THROW(
      evaluate_mutual_value(a, at({0.0}), b, at({0.0}), f, 0.0, 10.0),
      CheckFailure);
}

}  // namespace
}  // namespace broadway

// Violation detection against the two scenarios of the paper's Fig. 1:
// (a) a single update more than Δ before the poll; (b) multiple updates
// where only the *first* since the previous poll breaches the bound.
#include "consistency/violation.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

TemporalPollObservation make_obs(TimePoint prev, TimePoint now,
                                 std::vector<TimePoint> history) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = !history.empty();
  if (!history.empty()) obs.last_modified = history.back();
  obs.history = std::move(history);
  return obs;
}

TEST(ViolationDetector, NoChangeNoViolation) {
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  const auto verdict = detector.examine(make_obs(0.0, 100.0, {}));
  EXPECT_FALSE(verdict.violated);
  EXPECT_FALSE(verdict.first_update.has_value());
}

TEST(ViolationDetector, Fig1aSingleOldUpdateViolates) {
  // Poll at 100, previous at 0, one update at 20, Δ = 60: the copy was out
  // of sync for 80 > 60.
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  const auto verdict = detector.examine(make_obs(0.0, 100.0, {20.0}));
  EXPECT_TRUE(verdict.violated);
  EXPECT_DOUBLE_EQ(*verdict.first_update, 20.0);
  EXPECT_DOUBLE_EQ(verdict.out_sync, 80.0);
}

TEST(ViolationDetector, RecentSingleUpdateDoesNotViolate) {
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  const auto verdict = detector.examine(make_obs(0.0, 100.0, {70.0}));
  EXPECT_FALSE(verdict.violated);
  EXPECT_DOUBLE_EQ(verdict.out_sync, 30.0);
}

TEST(ViolationDetector, BoundaryIsNotAViolation) {
  // Exactly Δ out of sync satisfies Eq. (2)'s strict inequality at all
  // earlier instants; the violation begins strictly beyond Δ.
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  const auto verdict = detector.examine(make_obs(0.0, 100.0, {40.0}));
  EXPECT_FALSE(verdict.violated);
}

TEST(ViolationDetector, Fig1bMultiUpdateCaughtWithHistory) {
  // Updates at 20 and 90; the *last* is within Δ=60 of the poll at 100,
  // but the first breaches the bound.  With the history extension the
  // detector sees it.
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  const auto verdict = detector.examine(make_obs(0.0, 100.0, {20.0, 90.0}));
  EXPECT_TRUE(verdict.violated);
  EXPECT_DOUBLE_EQ(*verdict.first_update, 20.0);
}

TEST(ViolationDetector, Fig1bMissedWithLastModifiedOnly) {
  // Same scenario without history: standard HTTP reveals only the newest
  // update (90), which looks fine — the violation goes undetected.  This
  // is exactly the §3.1 limitation the extension addresses.
  ViolationDetector detector(60.0, ViolationDetection::kLastModifiedOnly);
  TemporalPollObservation obs = make_obs(0.0, 100.0, {20.0, 90.0});
  obs.history.clear();  // stock HTTP: no history header
  const auto verdict = detector.examine(obs);
  EXPECT_FALSE(verdict.violated);
  EXPECT_DOUBLE_EQ(*verdict.first_update, 90.0);
}

TEST(ViolationDetector, ExactHistoryFallsBackToLastModified) {
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  TemporalPollObservation obs = make_obs(0.0, 100.0, {20.0});
  obs.history.clear();  // origin had the extension disabled
  const auto verdict = detector.examine(obs);
  EXPECT_TRUE(verdict.violated);  // 20 is also the last-modified
  EXPECT_DOUBLE_EQ(*verdict.first_update, 20.0);
}

TEST(ViolationDetector, ProbabilisticLearnsGapAndInfersEarlierUpdate) {
  ViolationDetector detector(60.0, ViolationDetection::kProbabilistic);
  // Teach the detector a ~40 s inter-update gap from successive
  // last-modified values (no history available).
  TimePoint poll = 0.0;
  TimePoint update = 0.0;
  for (int i = 0; i < 10; ++i) {
    const TimePoint prev_poll = poll;
    poll += 50.0;
    update += 40.0;
    TemporalPollObservation obs = make_obs(prev_poll, poll, {update});
    obs.history.clear();
    detector.examine(obs);
  }
  // Every poll found the object modified, so the detector can only bound
  // the gap from above: the estimate is conservative (<= the true 40 s)
  // but must stay in a sane band.
  EXPECT_LE(detector.estimated_update_gap(), 45.0);
  EXPECT_GE(detector.estimated_update_gap(), 10.0);

  // Now a long interval where the newest update looks recent but the
  // learned rate implies earlier updates existed: inferred first update
  // near prev_poll + gap -> violation.
  TemporalPollObservation obs =
      make_obs(poll, poll + 200.0, {poll + 190.0});
  obs.history.clear();
  const auto verdict = detector.examine(obs);
  EXPECT_TRUE(verdict.violated);
  EXPECT_LT(*verdict.first_update, poll + 100.0);
}

TEST(ViolationDetector, ProbabilisticWithoutStatsUsesLastModified) {
  ViolationDetector detector(60.0, ViolationDetection::kProbabilistic);
  TemporalPollObservation obs = make_obs(0.0, 100.0, {90.0});
  obs.history.clear();
  const auto verdict = detector.examine(obs);
  EXPECT_FALSE(verdict.violated);
  EXPECT_DOUBLE_EQ(*verdict.first_update, 90.0);
}

TEST(ViolationDetector, ResetForgetsStatistics) {
  ViolationDetector detector(60.0, ViolationDetection::kProbabilistic);
  TemporalPollObservation obs = make_obs(0.0, 50.0, {10.0, 20.0, 30.0});
  detector.examine(obs);
  EXPECT_LT(detector.estimated_update_gap(), kTimeInfinity);
  detector.reset();
  EXPECT_EQ(detector.estimated_update_gap(), kTimeInfinity);
}

TEST(ViolationDetector, RejectsBadConstruction) {
  EXPECT_THROW(ViolationDetector(0.0, ViolationDetection::kExactHistory),
               CheckFailure);
}

TEST(ViolationDetector, RejectsOutOfOrderPolls) {
  ViolationDetector detector(60.0, ViolationDetection::kExactHistory);
  EXPECT_THROW(detector.examine(make_obs(100.0, 50.0, {})), CheckFailure);
}

}  // namespace
}  // namespace broadway

// Evaluator cross-checks: the exact (interval-arithmetic) fidelity
// evaluators against brute-force dense sampling of the same timeline, on
// randomised traces and poll schedules.  If the two disagree beyond the
// sampling resolution, the evaluator has a hole.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "consistency/function.h"
#include "metrics/fidelity.h"
#include "metrics/mutual_fidelity.h"
#include "metrics/value_fidelity.h"
#include "trace/generators.h"
#include "trace/stock.h"
#include "trace/update_trace.h"
#include "util/rng.h"

namespace broadway {
namespace {

constexpr double kHorizon = 2000.0;
constexpr double kDt = 0.25;  // sampling resolution

std::vector<PollInstant> random_polls(Rng& rng, double horizon) {
  std::vector<PollInstant> polls = {{0.0, 0.0}};
  TimePoint t = 0.0;
  while (true) {
    t += rng.uniform(5.0, 120.0);
    if (t >= horizon) break;
    polls.push_back(PollInstant{t, t});
  }
  return polls;
}

// Brute force: at each sample instant, is the cached copy out of
// tolerance?  Integrates violation time at kDt resolution.
double brute_force_temporal(const UpdateTrace& trace,
                            const std::vector<PollInstant>& polls,
                            double delta, double horizon) {
  double out_sync = 0.0;
  for (double t = kDt / 2.0; t < horizon; t += kDt) {
    // Latest poll completed at or before t.
    auto it = std::upper_bound(polls.begin(), polls.end(), t,
                               [](double lhs, const PollInstant& rhs) {
                                 return lhs < rhs.complete;
                               });
    const PollInstant& poll = *(it - 1);
    const auto first_unseen = trace.first_update_after(poll.snapshot);
    if (first_unseen && t >= *first_unseen + delta) out_sync += kDt;
  }
  return out_sync;
}

double brute_force_value(const ValueTrace& trace,
                         const std::vector<PollInstant>& polls,
                         double delta, double horizon) {
  double out_sync = 0.0;
  for (double t = kDt / 2.0; t < horizon; t += kDt) {
    auto it = std::upper_bound(polls.begin(), polls.end(), t,
                               [](double lhs, const PollInstant& rhs) {
                                 return lhs < rhs.complete;
                               });
    const PollInstant& poll = *(it - 1);
    const double cached = trace.value_at(poll.snapshot);
    if (std::abs(trace.value_at(t) - cached) >= delta) out_sync += kDt;
  }
  return out_sync;
}

class CrossCheckSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheckSweep, TemporalEvaluatorMatchesBruteForce) {
  Rng rng(GetParam());
  const auto updates = generate_poisson(rng, 1.0 / 90.0, kHorizon);
  const UpdateTrace trace("x", updates, kHorizon);
  const auto polls = random_polls(rng, kHorizon);
  const double delta = rng.uniform(10.0, 200.0);

  const auto report =
      evaluate_temporal_fidelity(trace, polls, delta, kHorizon);
  const double brute = brute_force_temporal(trace, polls, delta, kHorizon);
  // Dense sampling is accurate to ~kDt per violation boundary.
  const double slack =
      kDt * (2.0 * static_cast<double>(report.violations) + 4.0);
  EXPECT_NEAR(report.out_sync_time, brute, slack);
}

TEST_P(CrossCheckSweep, ValueEvaluatorMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  StockWalkConfig config;
  config.duration = kHorizon;
  config.updates = 400;
  config.initial_value = 100.0;
  config.min_value = 90.0;
  config.max_value = 110.0;
  config.step_sigma = 0.8;
  const ValueTrace trace = generate_stock_walk(rng, config);
  const auto polls = random_polls(rng, kHorizon);
  const double delta = rng.uniform(0.5, 4.0);

  const auto report =
      evaluate_value_fidelity(trace, polls, delta, kHorizon);
  const double brute = brute_force_value(trace, polls, delta, kHorizon);
  const double slack =
      kDt * (2.0 * static_cast<double>(trace.count()) * 0.2 + 8.0);
  EXPECT_NEAR(report.out_sync_time, brute, slack);
}

TEST_P(CrossCheckSweep, MutualValueEvaluatorMatchesBruteForce) {
  Rng rng(GetParam() + 2000);
  StockWalkConfig config;
  config.duration = kHorizon;
  config.updates = 300;
  config.initial_value = 100.0;
  config.min_value = 90.0;
  config.max_value = 110.0;
  config.step_sigma = 0.6;
  Rng rng_a = rng.fork();
  Rng rng_b = rng.fork();
  config.name = "a";
  const ValueTrace a = generate_stock_walk(rng_a, config);
  config.name = "b";
  const ValueTrace b = generate_stock_walk(rng_b, config);
  const auto polls_a = random_polls(rng, kHorizon);
  const auto polls_b = random_polls(rng, kHorizon);
  const double delta = rng.uniform(0.5, 3.0);
  DifferenceFunction f;

  const auto report =
      evaluate_mutual_value(a, polls_a, b, polls_b, f, delta, kHorizon);

  double brute = 0.0;
  for (double t = kDt / 2.0; t < kHorizon; t += kDt) {
    auto cached = [t](const ValueTrace& trace,
                      const std::vector<PollInstant>& polls) {
      auto it = std::upper_bound(polls.begin(), polls.end(), t,
                                 [](double lhs, const PollInstant& rhs) {
                                   return lhs < rhs.complete;
                                 });
      return trace.value_at((it - 1)->snapshot);
    };
    const double f_server = a.value_at(t) - b.value_at(t);
    const double f_proxy = cached(a, polls_a) - cached(b, polls_b);
    if (std::abs(f_server - f_proxy) >= delta) brute += kDt;
  }
  const double slack = kDt * (static_cast<double>(a.count() + b.count()) *
                                  0.2 +
                              8.0);
  EXPECT_NEAR(report.out_sync_time, brute, slack);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckSweep,
                         testing::Values(101u, 202u, 303u, 404u, 505u,
                                         606u));

}  // namespace
}  // namespace broadway

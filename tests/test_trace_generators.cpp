#include "trace/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/update_trace.h"
#include "util/check.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(SortUnique, CollapsesCloseInstants) {
  const auto out = sort_unique({3.0, 1.0, 1.0000001, 2.0}, 1e-3);
  EXPECT_EQ(out, (std::vector<TimePoint>{1.0, 2.0, 3.0}));
}

TEST(GeneratePoisson, CountNearExpectation) {
  Rng rng(1);
  const double rate = 1.0 / 60.0;  // one per minute
  const Duration duration = hours(10.0);
  const auto times = generate_poisson(rng, rate, duration);
  const double expected = rate * duration;  // 600
  EXPECT_NEAR(static_cast<double>(times.size()), expected,
              4.0 * std::sqrt(expected));
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GE(times.front(), 0.0);
  EXPECT_LT(times.back(), duration);
}

TEST(GeneratePoisson, Deterministic) {
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(generate_poisson(a, 0.01, 10000.0),
            generate_poisson(b, 0.01, 10000.0));
}

TEST(GenerateWithCount, ExactCount) {
  Rng rng(5);
  const auto times = generate_with_count(rng, DiurnalProfile::newsroom(),
                                         13.0, hours(49.5), 113);
  EXPECT_EQ(times.size(), 113u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_TRUE(std::adjacent_find(times.begin(), times.end()) == times.end());
  EXPECT_GE(times.front(), 0.0);
  EXPECT_LT(times.back(), hours(49.5));
}

TEST(GenerateWithCount, DiurnalShapeShowsQuietNights) {
  Rng rng(5);
  // Start at midnight so night hours are [0,6) each day.
  const auto times = generate_with_count(rng, DiurnalProfile::newsroom(),
                                         0.0, days(4.0), 800);
  std::size_t night = 0;
  for (TimePoint t : times) {
    const double h = hour_of_day(t);
    if (h >= 1.0 && h < 6.0) ++night;
  }
  // Night spans ~21% of the day but must carry far fewer than 21% of the
  // updates.
  EXPECT_LT(static_cast<double>(night) / 800.0, 0.05);
}

TEST(GenerateWithCount, Deterministic) {
  Rng a(9);
  Rng b(9);
  const DiurnalProfile profile = DiurnalProfile::newsroom();
  EXPECT_EQ(generate_with_count(a, profile, 13.0, hours(20.0), 100),
            generate_with_count(b, profile, 13.0, hours(20.0), 100));
}

TEST(GenerateBursty, ProducesBurstStructure) {
  Rng rng(21);
  BurstConfig config;
  config.burst_rate = 1.0 / 10.0;
  config.calm_rate = 1.0 / 3600.0;
  config.mean_burst_length = 300.0;
  config.mean_calm_length = 3600.0;
  const auto times = generate_bursty(rng, config, days(1.0));
  ASSERT_GT(times.size(), 20u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // Burstiness: the gap distribution is over-dispersed relative to a
  // homogeneous Poisson process (coefficient of variation > 1).
  UpdateTrace trace("bursty", times, days(1.0));
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  double prev = times.front();
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - prev;
    prev = times[i];
    ++n;
    const double d = gap - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (gap - mean);
  }
  const double cv = std::sqrt(m2 / static_cast<double>(n - 1)) / mean;
  EXPECT_GT(cv, 1.2);
}

TEST(GeneratePeriodic, ExactSchedule) {
  const auto times = generate_periodic(10.0, 3.0, 35.0);
  EXPECT_EQ(times, (std::vector<TimePoint>{3.0, 13.0, 23.0, 33.0}));
}

TEST(GeneratePeriodic, Validation) {
  EXPECT_THROW(generate_periodic(0.0, 0.0, 10.0), CheckFailure);
  EXPECT_THROW(generate_periodic(1.0, -1.0, 10.0), CheckFailure);
}

TEST(Generators, FeedUpdateTraceConstructor) {
  Rng rng(3);
  const Duration duration = hours(10.0);
  const auto times = generate_poisson(rng, 1.0 / 120.0, duration);
  EXPECT_NO_THROW(UpdateTrace("ok", times, duration));
}

}  // namespace
}  // namespace broadway

#include "trace/update_trace.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

UpdateTrace simple_trace() {
  // Updates at 10, 20, 40 over [0, 100).
  return UpdateTrace("t", {10.0, 20.0, 40.0}, 100.0);
}

TEST(UpdateTrace, BasicAccessors) {
  const UpdateTrace trace = simple_trace();
  EXPECT_EQ(trace.count(), 3u);
  EXPECT_DOUBLE_EQ(trace.duration(), 100.0);
  EXPECT_DOUBLE_EQ(trace.mean_update_interval(), 100.0 / 3.0);
  EXPECT_EQ(trace.name(), "t");
}

TEST(UpdateTrace, EmptyTraceMeanIntervalInfinite) {
  const UpdateTrace trace("empty", {}, 50.0);
  EXPECT_EQ(trace.mean_update_interval(), kTimeInfinity);
  EXPECT_EQ(trace.version_at(49.0), 0u);
}

TEST(UpdateTrace, VersionCountsUpdatesAtOrBefore) {
  const UpdateTrace trace = simple_trace();
  EXPECT_EQ(trace.version_at(0.0), 0u);
  EXPECT_EQ(trace.version_at(9.999), 0u);
  EXPECT_EQ(trace.version_at(10.0), 1u);  // inclusive at the instant
  EXPECT_EQ(trace.version_at(39.0), 2u);
  EXPECT_EQ(trace.version_at(99.0), 3u);
}

TEST(UpdateTrace, VersionIsMonotone) {
  const UpdateTrace trace = simple_trace();
  std::size_t prev = 0;
  for (double t = 0.0; t < 100.0; t += 0.5) {
    const std::size_t v = trace.version_at(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(UpdateTrace, LastUpdateAtOrBefore) {
  const UpdateTrace trace = simple_trace();
  EXPECT_FALSE(trace.last_update_at_or_before(9.0).has_value());
  EXPECT_DOUBLE_EQ(*trace.last_update_at_or_before(10.0), 10.0);
  EXPECT_DOUBLE_EQ(*trace.last_update_at_or_before(25.0), 20.0);
  EXPECT_DOUBLE_EQ(*trace.last_update_at_or_before(99.0), 40.0);
}

TEST(UpdateTrace, FirstUpdateAfter) {
  const UpdateTrace trace = simple_trace();
  EXPECT_DOUBLE_EQ(*trace.first_update_after(0.0), 10.0);
  EXPECT_DOUBLE_EQ(*trace.first_update_after(10.0), 20.0);  // strictly after
  EXPECT_DOUBLE_EQ(*trace.first_update_after(25.0), 40.0);
  EXPECT_FALSE(trace.first_update_after(40.0).has_value());
}

TEST(UpdateTrace, UpdatesInHalfOpenInterval) {
  const UpdateTrace trace = simple_trace();
  EXPECT_EQ(trace.updates_in(0.0, 100.0), 3u);
  EXPECT_EQ(trace.updates_in(10.0, 20.0), 1u);  // (10, 20] contains only 20
  EXPECT_EQ(trace.updates_in(40.0, 99.0), 0u);
  EXPECT_EQ(trace.updates_in(5.0, 5.0), 0u);
}

TEST(UpdateTrace, ValidityIntervals) {
  const UpdateTrace trace = simple_trace();
  const ValidityInterval v0 = trace.validity_at(5.0);
  EXPECT_DOUBLE_EQ(v0.begin, 0.0);
  EXPECT_DOUBLE_EQ(v0.end, 10.0);
  const ValidityInterval v2 = trace.validity_at(25.0);
  EXPECT_DOUBLE_EQ(v2.begin, 20.0);
  EXPECT_DOUBLE_EQ(v2.end, 40.0);
  const ValidityInterval v3 = trace.validity_at(50.0);
  EXPECT_DOUBLE_EQ(v3.begin, 40.0);
  EXPECT_EQ(v3.end, kTimeInfinity);
}

TEST(UpdateTrace, ValidityOfVersionBoundsChecked) {
  const UpdateTrace trace = simple_trace();
  EXPECT_NO_THROW(trace.validity_of_version(3));
  EXPECT_THROW(trace.validity_of_version(4), CheckFailure);
}

TEST(UpdateTrace, BucketCounts) {
  const UpdateTrace trace = simple_trace();
  const auto buckets = trace.bucket_counts(25.0);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // 10, 20
  EXPECT_EQ(buckets[1], 1u);  // 40
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 0u);
}

TEST(UpdateTrace, ConstructorValidation) {
  EXPECT_THROW(UpdateTrace("bad", {2.0, 1.0}, 10.0), CheckFailure);   // unsorted
  EXPECT_THROW(UpdateTrace("bad", {1.0, 1.0}, 10.0), CheckFailure);   // dup
  EXPECT_THROW(UpdateTrace("bad", {11.0}, 10.0), CheckFailure);       // outside
  EXPECT_THROW(UpdateTrace("bad", {}, 0.0), CheckFailure);            // no span
}

TEST(IntervalGap, OverlapIsZero) {
  EXPECT_DOUBLE_EQ(interval_gap({0.0, 10.0}, {5.0, 15.0}), 0.0);
  EXPECT_DOUBLE_EQ(interval_gap({0.0, kTimeInfinity}, {5.0, 6.0}), 0.0);
}

TEST(IntervalGap, DisjointMeasuresDistance) {
  EXPECT_DOUBLE_EQ(interval_gap({0.0, 10.0}, {25.0, 30.0}), 15.0);
  EXPECT_DOUBLE_EQ(interval_gap({25.0, 30.0}, {0.0, 10.0}), 15.0);  // symmetric
}

TEST(IntervalGap, TouchingIsZero) {
  EXPECT_DOUBLE_EQ(interval_gap({0.0, 10.0}, {10.0, 20.0}), 0.0);
}

}  // namespace
}  // namespace broadway

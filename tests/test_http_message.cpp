#include "http/message.h"

#include <gtest/gtest.h>

#include "http/extensions.h"

namespace broadway {
namespace {

TEST(Headers, SetReplacesAllValues) {
  Headers headers;
  headers.add("X-Test", "one");
  headers.add("x-test", "two");
  headers.set("X-TEST", "final");
  EXPECT_EQ(headers.get_all("x-test").size(), 1u);
  EXPECT_EQ(*headers.get("X-Test"), "final");
}

TEST(Headers, LookupIsCaseInsensitive) {
  Headers headers;
  headers.set("Last-Modified", "whenever");
  EXPECT_TRUE(headers.has("last-modified"));
  EXPECT_TRUE(headers.has("LAST-MODIFIED"));
  EXPECT_EQ(*headers.get("lAsT-mOdIfIeD"), "whenever");
}

TEST(Headers, AddPreservesRepeats) {
  Headers headers;
  headers.add("Via", "proxy-1");
  headers.add("Via", "proxy-2");
  const auto all = headers.get_all("via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "proxy-1");
  EXPECT_EQ(all[1], "proxy-2");
  // get() returns the first.
  EXPECT_EQ(*headers.get("Via"), "proxy-1");
}

TEST(Headers, RemoveReturnsCount) {
  Headers headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  EXPECT_EQ(headers.remove("A"), 2u);
  EXPECT_FALSE(headers.has("a"));
  EXPECT_TRUE(headers.has("B"));
  EXPECT_EQ(headers.remove("missing"), 0u);
}

TEST(Headers, EntriesPreserveInsertionOrder) {
  Headers headers;
  headers.add("First", "1");
  headers.add("Second", "2");
  headers.add("Third", "3");
  ASSERT_EQ(headers.entries().size(), 3u);
  EXPECT_EQ(headers.entries()[0].first, "First");
  EXPECT_EQ(headers.entries()[2].first, "Third");
}

TEST(Method, Conversions) {
  EXPECT_EQ(to_string(Method::kGet), "GET");
  EXPECT_EQ(to_string(Method::kHead), "HEAD");
  EXPECT_EQ(parse_method("GET"), Method::kGet);
  EXPECT_EQ(parse_method("HEAD"), Method::kHead);
  EXPECT_FALSE(parse_method("POST").has_value());
  EXPECT_FALSE(parse_method("get").has_value());  // methods are case-sensitive
}

TEST(StatusCode, Conversions) {
  EXPECT_EQ(reason_phrase(StatusCode::kOk), "OK");
  EXPECT_EQ(reason_phrase(StatusCode::kNotModified), "Not Modified");
  EXPECT_EQ(parse_status(200), StatusCode::kOk);
  EXPECT_EQ(parse_status(304), StatusCode::kNotModified);
  EXPECT_EQ(parse_status(404), StatusCode::kNotFound);
  EXPECT_FALSE(parse_status(418).has_value());
}

TEST(Request, ConditionalGetCarriesValidators) {
  const Request req = Request::conditional_get("/news/story.html", 3725.5);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.uri, "/news/story.html");
  EXPECT_TRUE(req.headers.has(kHdrIfModifiedSince));
  const auto parsed = get_if_modified_since(req.headers);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(*parsed, 3725.5, 1e-3);  // precise header keeps sub-seconds
}

TEST(Response, StatusPredicates) {
  Response ok;
  ok.status = StatusCode::kOk;
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(ok.not_modified());
  Response nm;
  nm.status = StatusCode::kNotModified;
  EXPECT_TRUE(nm.not_modified());
  EXPECT_FALSE(nm.ok());
}

}  // namespace
}  // namespace broadway

#include "http/message.h"

#include <gtest/gtest.h>

#include "http/extensions.h"

namespace broadway {
namespace {

TEST(Headers, SetReplacesAllValues) {
  Headers headers;
  headers.add("X-Test", "one");
  headers.add("x-test", "two");
  headers.set("X-TEST", "final");
  EXPECT_EQ(headers.get_all("x-test").size(), 1u);
  EXPECT_EQ(*headers.get("X-Test"), "final");
}

TEST(Headers, LookupIsCaseInsensitive) {
  Headers headers;
  headers.set("Last-Modified", "whenever");
  EXPECT_TRUE(headers.has("last-modified"));
  EXPECT_TRUE(headers.has("LAST-MODIFIED"));
  EXPECT_EQ(*headers.get("lAsT-mOdIfIeD"), "whenever");
}

TEST(Headers, AddPreservesRepeats) {
  Headers headers;
  headers.add("Via", "proxy-1");
  headers.add("Via", "proxy-2");
  const auto all = headers.get_all("via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "proxy-1");
  EXPECT_EQ(all[1], "proxy-2");
  // get() returns the first.
  EXPECT_EQ(*headers.get("Via"), "proxy-1");
}

TEST(Headers, RemoveReturnsCount) {
  Headers headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  EXPECT_EQ(headers.remove("A"), 2u);
  EXPECT_FALSE(headers.has("a"));
  EXPECT_TRUE(headers.has("B"));
  EXPECT_EQ(headers.remove("missing"), 0u);
}

TEST(Headers, EntriesPreserveInsertionOrder) {
  Headers headers;
  headers.add("First", "1");
  headers.add("Second", "2");
  headers.add("Third", "3");
  ASSERT_EQ(headers.entries().size(), 3u);
  EXPECT_EQ(headers.entries()[0].first, "First");
  EXPECT_EQ(headers.entries()[2].first, "Third");
}

TEST(Headers, SetPushesReplacementToTheBack) {
  // set() = remove + add: the replacement does not keep the old slot.
  Headers headers;
  headers.add("A", "1");
  headers.add("B", "2");
  headers.set("a", "updated");
  ASSERT_EQ(headers.entries().size(), 2u);
  EXPECT_EQ(headers.entries()[0].first, "B");
  EXPECT_EQ(headers.entries()[1].first, "a");  // stored as passed to set()
  EXPECT_EQ(headers.entries()[1].second, "updated");
}

TEST(Headers, RemovePreservesOrderOfSurvivors) {
  Headers headers;
  headers.add("Keep-1", "a");
  headers.add("Drop", "b");
  headers.add("Keep-2", "c");
  headers.add("drop", "d");
  headers.add("Keep-3", "e");
  EXPECT_EQ(headers.remove("DROP"), 2u);
  ASSERT_EQ(headers.size(), 3u);
  EXPECT_EQ(headers.entries()[0].first, "Keep-1");
  EXPECT_EQ(headers.entries()[1].first, "Keep-2");
  EXPECT_EQ(headers.entries()[2].first, "Keep-3");
}

TEST(Headers, EmptyAndMissingLookups) {
  Headers headers;
  EXPECT_TRUE(headers.empty());
  EXPECT_EQ(headers.size(), 0u);
  EXPECT_FALSE(headers.get("anything").has_value());
  EXPECT_TRUE(headers.get_all("anything").empty());
  headers.add("Empty-Value", "");
  EXPECT_TRUE(headers.has("empty-value"));
  EXPECT_EQ(*headers.get("Empty-Value"), "");
  EXPECT_FALSE(headers.empty());
}

TEST(Headers, ClearKeepsNothing) {
  Headers headers;
  headers.add("A", "1");
  headers.add("B", "2");
  headers.clear();
  EXPECT_TRUE(headers.empty());
  EXPECT_FALSE(headers.has("A"));
  headers.add("C", "3");  // usable after clear
  EXPECT_EQ(*headers.get("C"), "3");
}

TEST(Headers, GetAllIsCaseInsensitiveAndOrdered) {
  Headers headers;
  headers.add("Via", "one");
  headers.add("VIA", "two");
  headers.add("via", "three");
  const auto all = headers.get_all("vIa");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "one");
  EXPECT_EQ(all[1], "two");
  EXPECT_EQ(all[2], "three");
}

TEST(Method, Conversions) {
  EXPECT_EQ(to_string(Method::kGet), "GET");
  EXPECT_EQ(to_string(Method::kHead), "HEAD");
  EXPECT_EQ(parse_method("GET"), Method::kGet);
  EXPECT_EQ(parse_method("HEAD"), Method::kHead);
  EXPECT_FALSE(parse_method("POST").has_value());
  EXPECT_FALSE(parse_method("get").has_value());  // methods are case-sensitive
}

TEST(StatusCode, Conversions) {
  EXPECT_EQ(reason_phrase(StatusCode::kOk), "OK");
  EXPECT_EQ(reason_phrase(StatusCode::kNotModified), "Not Modified");
  EXPECT_EQ(parse_status(200), StatusCode::kOk);
  EXPECT_EQ(parse_status(304), StatusCode::kNotModified);
  EXPECT_EQ(parse_status(404), StatusCode::kNotFound);
  EXPECT_FALSE(parse_status(418).has_value());
}

TEST(Request, ConditionalGetCarriesValidators) {
  const Request req = Request::conditional_get("/news/story.html", 3725.5);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.uri, "/news/story.html");
  EXPECT_TRUE(req.headers.has(kHdrIfModifiedSince));
  const auto parsed = get_if_modified_since(req.headers);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(*parsed, 3725.5, 1e-3);  // precise header keeps sub-seconds
}

TEST(Response, StatusPredicates) {
  Response ok;
  ok.status = StatusCode::kOk;
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(ok.not_modified());
  Response nm;
  nm.status = StatusCode::kNotModified;
  EXPECT_TRUE(nm.not_modified());
  EXPECT_FALSE(nm.ok());
}

TEST(Request, ConditionalGetMirrorsTypedSideband) {
  // The typed value equals what a parse of the stamped headers yields —
  // both are millisecond-quantised.
  const Request req = Request::conditional_get("/page", 3725.5009);
  ASSERT_TRUE(req.meta.if_modified_since.has_value());
  EXPECT_EQ(*req.meta.if_modified_since,
            *get_if_modified_since(req.headers));
}

TEST(Request, ResetReturnsToDefaults) {
  Request req = Request::conditional_get("/page", 10.0);
  req.object = 7;
  req.meta.active = true;
  req.reset();
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_TRUE(req.uri.empty());
  EXPECT_EQ(req.object, kInvalidObjectId);
  EXPECT_TRUE(req.headers.empty());
  EXPECT_FALSE(req.meta.active);
  EXPECT_FALSE(req.meta.if_modified_since.has_value());
}

TEST(ResponseMeta, HistoryViewAndOwnership) {
  const std::vector<TimePoint> storage = {1.0, 2.0, 3.0};
  Response response;
  response.meta.active = true;
  response.meta.set_history_view(storage.data(), storage.size());
  ASSERT_EQ(response.meta.history_size(), 3u);
  EXPECT_EQ(response.meta.history_data(), storage.data());  // zero-copy

  // Detaching copies the span into owned storage...
  response.meta.own_history();
  ASSERT_EQ(response.meta.history_size(), 3u);
  EXPECT_NE(response.meta.history_data(), storage.data());
  EXPECT_EQ(response.meta.history_data()[2], 3.0);

  // ...and a copy of an owned history is independent and deep.
  Response copy = response;
  ASSERT_EQ(copy.meta.history_size(), 3u);
  EXPECT_NE(copy.meta.history_data(), response.meta.history_data());
  EXPECT_EQ(copy.meta.history_data()[0], 1.0);

  response.reset();
  EXPECT_FALSE(response.meta.active);
  EXPECT_FALSE(response.meta.history_present);
  EXPECT_EQ(response.meta.history_size(), 0u);
}

}  // namespace
}  // namespace broadway

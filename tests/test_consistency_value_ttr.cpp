// Adaptive value-domain TTR (paper §4.1, Eqs. 9–10).
#include "consistency/value_ttr.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

AdaptiveValueTtrPolicy::Config test_config() {
  AdaptiveValueTtrPolicy::Config config;
  config.delta = 1.0;          // $1 tolerance
  config.bounds = {5.0, 600.0};
  config.smoothing_w = 1.0;    // no smoothing: raw Eq. 9 visible
  config.alpha = 1.0;          // no conservative mixing
  return config;
}

ValuePollObservation obs(TimePoint prev, TimePoint now, double prev_value,
                         double value) {
  ValuePollObservation out;
  out.previous_poll_time = prev;
  out.poll_time = now;
  out.previous_value = prev_value;
  out.value = value;
  return out;
}

TEST(AdaptiveValueTtr, InitialTtrIsMin) {
  AdaptiveValueTtrPolicy policy(test_config());
  EXPECT_DOUBLE_EQ(policy.initial_ttr(), 5.0);
}

TEST(AdaptiveValueTtr, Eq9TtrIsDeltaOverRate) {
  AdaptiveValueTtrPolicy policy(test_config());
  // Value moved 0.5 in 10 s -> r = 0.05/s -> TTR = 1.0/0.05 = 20 s.
  const Duration ttr = policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5));
  EXPECT_DOUBLE_EQ(ttr, 20.0);
  EXPECT_DOUBLE_EQ(policy.last_rate(), 0.05);
}

TEST(AdaptiveValueTtr, FlatValueBacksOffGeometrically) {
  AdaptiveValueTtrPolicy policy(test_config());  // flat_growth = 2
  // Each quiet interval doubles the TTR: 5 -> 10 -> 20 -> ... -> 600 cap.
  TimePoint t = 0.0;
  Duration expected = 5.0;
  for (int i = 0; i < 12; ++i) {
    const TimePoint next = t + policy.current_ttr();
    const Duration ttr = policy.next_ttr(obs(t, next, 100.0, 100.0));
    expected = std::min(600.0, expected * 2.0);
    EXPECT_DOUBLE_EQ(ttr, expected);
    t = next;
  }
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 600.0);
}

TEST(AdaptiveValueTtr, QuietIntervalDoesNotEraseRateEstimate) {
  AdaptiveValueTtrPolicy policy(test_config());
  policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5));  // r = 0.05
  EXPECT_DOUBLE_EQ(policy.estimated_rate(), 0.05);
  policy.next_ttr(obs(10.0, 30.0, 100.5, 100.5));  // quiet
  EXPECT_DOUBLE_EQ(policy.last_rate(), 0.0);
  EXPECT_DOUBLE_EQ(policy.estimated_rate(), 0.05);  // survives
}

TEST(AdaptiveValueTtr, FastMovementClampsToMin) {
  AdaptiveValueTtrPolicy policy(test_config());
  // Moved 10 in 1 s -> raw TTR 0.1 s -> clamped to 5.
  const Duration ttr = policy.next_ttr(obs(0.0, 1.0, 100.0, 110.0));
  EXPECT_DOUBLE_EQ(ttr, 5.0);
}

TEST(AdaptiveValueTtr, SmoothingBlendsEstimates) {
  AdaptiveValueTtrPolicy::Config config = test_config();
  config.smoothing_w = 0.5;
  AdaptiveValueTtrPolicy policy(config);
  // First estimate: raw 20 (smoothed = 20, no previous).
  policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5));
  // Second: raw 40; smoothed = 0.5*40 + 0.5*20 = 30.
  const Duration ttr = policy.next_ttr(obs(10.0, 20.0, 100.5, 100.75));
  EXPECT_DOUBLE_EQ(ttr, 30.0);
}

TEST(AdaptiveValueTtr, AlphaMixesWithObservedMinimum) {
  AdaptiveValueTtrPolicy::Config config = test_config();
  config.alpha = 0.5;
  AdaptiveValueTtrPolicy policy(config);
  // First: raw/smoothed 20; observed min 20; mix = 20.
  EXPECT_DOUBLE_EQ(policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5)), 20.0);
  // Second: raw/smoothed 100 (moved 0.1 in 10 s); observed min stays 20;
  // mix = 0.5*100 + 0.5*20 = 60.  The conservative floor holds the TTR
  // down exactly as Eq. 10 intends.
  EXPECT_NEAR(policy.next_ttr(obs(10.0, 20.0, 100.5, 100.6)), 60.0, 1e-9);
}

TEST(AdaptiveValueTtr, SetDeltaRescalesFutureEstimates) {
  AdaptiveValueTtrPolicy policy(test_config());
  policy.set_delta(2.0);
  // r = 0.05 -> TTR = 2.0/0.05 = 40.
  EXPECT_DOUBLE_EQ(policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5)), 40.0);
  EXPECT_THROW(policy.set_delta(0.0), CheckFailure);
}

TEST(AdaptiveValueTtr, ZeroElapsedKeepsCurrentTtr) {
  AdaptiveValueTtrPolicy policy(test_config());
  policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5));  // TTR 20
  const Duration ttr = policy.next_ttr(obs(10.0, 10.0, 100.5, 100.5));
  EXPECT_DOUBLE_EQ(ttr, 20.0);
}

TEST(AdaptiveValueTtr, ResetRestoresColdState) {
  AdaptiveValueTtrPolicy policy(test_config());
  policy.next_ttr(obs(0.0, 10.0, 100.0, 100.5));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 5.0);
  EXPECT_DOUBLE_EQ(policy.last_rate(), 0.0);
}

TEST(AdaptiveValueTtr, TtrAlwaysWithinBoundsProperty) {
  AdaptiveValueTtrPolicy::Config config = test_config();
  config.smoothing_w = 0.4;
  config.alpha = 0.6;
  AdaptiveValueTtrPolicy policy(config);
  double value = 100.0;
  TimePoint t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const TimePoint next = t + policy.current_ttr();
    value += ((i * 31) % 17 - 8) * 0.05;
    const Duration ttr = policy.next_ttr(obs(t, next, value, value));
    EXPECT_GE(ttr, config.bounds.min);
    EXPECT_LE(ttr, config.bounds.max);
    t = next;
  }
}

TEST(AdaptiveValueTtr, ConfigValidation) {
  auto config = test_config();
  config.delta = 0.0;
  EXPECT_THROW(AdaptiveValueTtrPolicy{config}, CheckFailure);
  config = test_config();
  config.smoothing_w = 0.0;
  EXPECT_THROW(AdaptiveValueTtrPolicy{config}, CheckFailure);
  config = test_config();
  config.alpha = 1.5;
  EXPECT_THROW(AdaptiveValueTtrPolicy{config}, CheckFailure);
}

TEST(AdaptiveValueTtr, PaperDefaults) {
  const auto config =
      AdaptiveValueTtrPolicy::Config::paper_defaults(0.5, {5.0, 300.0});
  EXPECT_DOUBLE_EQ(config.delta, 0.5);
  EXPECT_DOUBLE_EQ(config.bounds.min, 5.0);
  EXPECT_DOUBLE_EQ(config.smoothing_w, 0.5);
  EXPECT_DOUBLE_EQ(config.alpha, 0.7);
}

}  // namespace
}  // namespace broadway

// Wire-level loopback: every proxy<->origin exchange serialised through
// the HTTP codec and re-parsed on each side, proving the typed in-memory
// path and the RFC-2616 text path carry identical information.
#include <gtest/gtest.h>

#include "http/codec.h"
#include "http/extensions.h"
#include "origin/origin_server.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {
namespace {

// Round-trips a request through the codec, hands it to the origin, and
// round-trips the response back — the loopback "network".
Response loopback_exchange(OriginServer& origin, const Request& request) {
  const std::string request_wire = serialize(request);
  const Request at_server = parse_request(request_wire);
  const Response response = origin.handle(at_server);
  const std::string response_wire = serialize(response);
  return parse_response(response_wire);
}

TEST(WireLoopback, ConditionalGetFreshness) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  sim.run_until(100.0);

  const Response fresh =
      loopback_exchange(origin, Request::conditional_get("/page", 50.0));
  EXPECT_TRUE(fresh.not_modified());

  origin.store().at("/page").apply_update(100.0);
  const Response stale =
      loopback_exchange(origin, Request::conditional_get("/page", 50.0));
  EXPECT_TRUE(stale.ok());
  EXPECT_DOUBLE_EQ(*get_last_modified(stale.headers), 100.0);
  EXPECT_FALSE(stale.body.empty());
}

TEST(WireLoopback, HistoryExtensionSurvivesTheWire) {
  Simulator sim;
  OriginServer origin(sim);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(400.0);
  for (double t : {100.0, 200.0, 300.0}) object.apply_update(t);

  const Response response =
      loopback_exchange(origin, Request::conditional_get("/page", 150.0));
  const auto history = get_modification_history(response.headers);
  ASSERT_TRUE(history.has_value());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_NEAR((*history)[0], 200.0, 1e-3);
  EXPECT_NEAR((*history)[1], 300.0, 1e-3);
}

TEST(WireLoopback, ValueObjectSurvivesTheWire) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_value_object("/stock", 160.0625);
  Request request;
  request.uri = "/stock";
  const Response response = loopback_exchange(origin, request);
  EXPECT_DOUBLE_EQ(*get_object_value(response.headers), 160.0625);
}

TEST(WireLoopback, ToleranceDirectivesSurviveTheWire) {
  // The §5.1 cache-control-style extensions: a downstream proxy states
  // its tolerances; the (future) origin can shed updates accordingly.
  Request request = Request::conditional_get("/page", 10.0);
  set_delta_tolerance(request.headers, 300.0);
  set_group(request.headers, "breaking-news", 120.0);

  const Request parsed = parse_request(serialize(request));
  EXPECT_NEAR(*get_delta_tolerance(parsed.headers), 300.0, 1e-3);
  EXPECT_EQ(*get_group_id(parsed.headers), "breaking-news");
  EXPECT_NEAR(*get_group_delta(parsed.headers), 120.0, 1e-3);
}

TEST(WireLoopback, NotFoundSurvivesTheWire) {
  Simulator sim;
  OriginServer origin(sim);
  Request request;
  request.uri = "/ghost";
  const Response response = loopback_exchange(origin, request);
  EXPECT_EQ(response.status, StatusCode::kNotFound);
}

TEST(WireLoopback, SubSecondPrecisionPreserved) {
  // RFC 1123 dates truncate to seconds; the precise-time extension keeps
  // the simulation's sub-second validators intact across the wire.
  Simulator sim;
  OriginServer origin(sim);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(10.0);
  object.apply_update(3.625);
  sim.run_until(100.0);

  const Response response =
      loopback_exchange(origin, Request::conditional_get("/page", 1.25));
  EXPECT_TRUE(response.ok());
  EXPECT_NEAR(*get_last_modified(response.headers), 3.625, 1e-3);

  // And the validator in the other direction: 3.625 counts as fresh for a
  // client whose copy is from 3.7 — only with sub-second precision.
  const Response fresh =
      loopback_exchange(origin, Request::conditional_get("/page", 3.7));
  EXPECT_TRUE(fresh.not_modified());
}

}  // namespace
}  // namespace broadway

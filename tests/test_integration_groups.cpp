// Integration coverage beyond the paper's two-object experiments:
// n-object groups, overlapping groups with multiple coordinators, and the
// push-channel extension on value traces.
#include <gtest/gtest.h>

#include <memory>

#include "consistency/fixed_poll.h"
#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "harness/experiments.h"
#include "http/extensions.h"
#include "metrics/mutual_fidelity.h"
#include "origin/push.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/paper_workloads.h"
#include "util/rng.h"
#include "util/time.h"

namespace broadway {
namespace {

// Four correlated objects: a master stream and three derived streams that
// update (with jitter) when the master does.
std::vector<UpdateTrace> correlated_group(std::uint64_t seed,
                                          Duration duration) {
  Rng rng(seed);
  const auto master = generate_poisson(rng, 1.0 / minutes(8.0), duration);
  std::vector<UpdateTrace> out;
  out.emplace_back("/g/master", master, duration);
  for (int k = 1; k <= 3; ++k) {
    std::vector<TimePoint> times;
    for (TimePoint t : master) {
      if (rng.bernoulli(0.6)) {
        times.push_back(
            std::min(duration * (1 - 1e-9), t + rng.uniform(1.0, 30.0)));
      }
    }
    out.emplace_back("/g/derived" + std::to_string(k),
                     sort_unique(times), duration);
  }
  return out;
}

TEST(GroupIntegration, FourObjectTriggeredGroupKeepsAllPairsConsistent) {
  const Duration duration = hours(8.0);
  const auto traces = correlated_group(91, duration);

  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  std::vector<std::string> members;
  for (const UpdateTrace& trace : traces) {
    origin.attach_update_trace(trace.name(), trace);
    engine.add_temporal_object(
        trace.name(), std::make_unique<LimdPolicy>(
                          LimdPolicy::Config::paper_defaults(
                              minutes(5.0), minutes(30.0))));
    members.push_back(trace.name());
  }
  const Duration delta_mutual = minutes(1.0);
  engine.add_coordinator(
      std::make_unique<TriggeredPollCoordinator>(members, delta_mutual));
  engine.start();
  sim.run_until(duration);

  // Every pair in the group must be near-perfectly mutually consistent.
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      const auto report = evaluate_mutual_temporal(
          traces[i], successful_polls(engine.poll_log(), traces[i].name()),
          traces[j], successful_polls(engine.poll_log(), traces[j].name()),
          delta_mutual, duration);
      EXPECT_GT(report.fidelity_time(), 0.99)
          << traces[i].name() << " vs " << traces[j].name();
    }
  }
  EXPECT_GT(engine.triggered_polls(), 0u);
}

TEST(GroupIntegration, OverlappingGroupsCoexist) {
  // Object B belongs to two groups with different δ; both coordinators
  // must act without interfering.
  const Duration duration = hours(4.0);
  Rng rng(17);
  const UpdateTrace a("/a", generate_poisson(rng, 1.0 / minutes(6.0),
                                             duration), duration);
  const UpdateTrace b("/b", generate_poisson(rng, 1.0 / minutes(9.0),
                                             duration), duration);
  const UpdateTrace c("/c", generate_poisson(rng, 1.0 / minutes(12.0),
                                             duration), duration);

  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  for (const UpdateTrace* trace : {&a, &b, &c}) {
    origin.attach_update_trace(trace->name(), *trace);
    engine.add_temporal_object(
        trace->name(), std::make_unique<LimdPolicy>(
                           LimdPolicy::Config::paper_defaults(
                               minutes(5.0), minutes(30.0))));
  }
  engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/a", "/b"}, minutes(1.0)));
  engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/b", "/c"}, minutes(2.0)));
  engine.start();
  EXPECT_NO_THROW(sim.run_until(duration));

  const auto ab = evaluate_mutual_temporal(
      a, successful_polls(engine.poll_log(), "/a"), b,
      successful_polls(engine.poll_log(), "/b"), minutes(1.0), duration);
  const auto bc = evaluate_mutual_temporal(
      b, successful_polls(engine.poll_log(), "/b"), c,
      successful_polls(engine.poll_log(), "/c"), minutes(2.0), duration);
  EXPECT_GT(ab.fidelity_time(), 0.98);
  EXPECT_GT(bc.fidelity_time(), 0.98);
}

TEST(GroupIntegration, PushChannelOnValueTrace) {
  Simulator sim;
  OriginServer origin(sim);
  PushChannel channel(sim, origin, 0.0);
  const ValueTrace trace("/stock", 100.0,
                         {{10.0, 101.0}, {20.0, 99.5}, {30.0, 102.0}},
                         100.0);
  channel.attach_pushed_trace("/stock", trace);  // creates the object
  std::vector<double> pushed_values;
  channel.subscribe("/stock",
                    [&](const std::string&, const Response& response) {
                      pushed_values.push_back(
                          *get_object_value(response.headers));
                    });
  sim.run_until(100.0);
  EXPECT_EQ(pushed_values, (std::vector<double>{101.0, 99.5, 102.0}));
}

// Detection-mode sweep: with the history extension on, LIMD fidelity
// never loses to the blind modes on any paper trace.
class DetectionSweep
    : public testing::TestWithParam<std::tuple<int, ViolationDetection>> {};

TEST_P(DetectionSweep, ExactHistoryNeverWorse) {
  const auto traces = make_all_temporal_traces();
  const UpdateTrace& trace =
      traces[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const ViolationDetection mode = std::get<1>(GetParam());

  TemporalRunConfig exact;
  exact.delta = minutes(5.0);
  exact.detection = ViolationDetection::kExactHistory;
  exact.origin_history = true;
  TemporalRunConfig other = exact;
  other.detection = mode;
  other.origin_history = false;

  const auto with_history = run_limd_individual(trace, exact);
  const auto without = run_limd_individual(trace, other);
  EXPECT_GE(with_history.fidelity.fidelity_time() + 0.03,
            without.fidelity.fidelity_time())
      << trace.name() << " vs " << to_string(mode);
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndModes, DetectionSweep,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(ViolationDetection::kLastModifiedOnly,
                                     ViolationDetection::kProbabilistic)));

}  // namespace
}  // namespace broadway

// End-to-end Mt experiments (Fig. 5 / Fig. 6 shapes).
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "metrics/accounting.h"
#include "trace/paper_workloads.h"
#include "util/time.h"

namespace broadway {
namespace {

MutualTemporalRunConfig mutual_config(MutualApproach approach,
                                      Duration delta_mutual) {
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);  // the paper's Fig. 5 setting
  config.base.ttr_max = minutes(60.0);
  config.delta_mutual = delta_mutual;
  config.approach = approach;
  return config;
}

struct PairRun {
  MutualTemporalRunResult baseline;
  MutualTemporalRunResult triggered;
  MutualTemporalRunResult heuristic;
};

PairRun run_pair(Duration delta_mutual) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  PairRun out;
  out.baseline = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kBaseline, delta_mutual));
  out.triggered = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kTriggered, delta_mutual));
  out.heuristic = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kHeuristic, delta_mutual));
  return out;
}

TEST(IntegrationMutual, PollOrderingMatchesFig5a) {
  // Fig. 5(a): triggered >= heuristic >= baseline in polls.
  const PairRun runs = run_pair(minutes(5.0));
  EXPECT_GE(runs.triggered.polls, runs.heuristic.polls);
  EXPECT_GE(runs.heuristic.polls, runs.baseline.polls);
  // Baseline never triggers.
  EXPECT_EQ(runs.baseline.triggered, 0u);
  EXPECT_GT(runs.triggered.triggered, 0u);
}

TEST(IntegrationMutual, FidelityOrderingMatchesFig5b) {
  const PairRun runs = run_pair(minutes(5.0));
  EXPECT_GE(runs.triggered.mutual.fidelity_time() + 1e-9,
            runs.heuristic.mutual.fidelity_time());
  EXPECT_GE(runs.heuristic.mutual.fidelity_time() + 1e-9,
            runs.baseline.mutual.fidelity_time());
}

TEST(IntegrationMutual, TriggeredFidelityIsNearPerfect) {
  // The paper: "by definition, the triggered poll technique has a
  // fidelity of 1".  Ground-truth measurement allows only the sub-δ
  // windows the δ-window rule tolerates.
  for (double delta_min : {2.0, 10.0, 30.0}) {
    const UpdateTrace a = make_cnn_fn_trace();
    const UpdateTrace b = make_nytimes_ap_trace();
    const auto result = run_mutual_temporal(
        a, b, mutual_config(MutualApproach::kTriggered, minutes(delta_min)));
    EXPECT_GT(result.mutual.fidelity_time(), 0.99) << delta_min;
  }
}

TEST(IntegrationMutual, HeuristicOverheadIsModest) {
  // The paper's headline: "less than a 20% increase in the number of
  // polls" for the heuristic vs baseline LIMD.
  const PairRun runs = run_pair(minutes(10.0));
  EXPECT_LE(static_cast<double>(runs.heuristic.polls),
            1.25 * static_cast<double>(runs.baseline.polls));
}

TEST(IntegrationMutual, HeuristicFidelityInPaperRange) {
  // Fig. 5(b): heuristic fidelities 0.87–1.0 depending on δ.
  for (double delta_min : {5.0, 15.0, 30.0}) {
    const UpdateTrace a = make_cnn_fn_trace();
    const UpdateTrace b = make_nytimes_ap_trace();
    const auto result = run_mutual_temporal(
        a, b, mutual_config(MutualApproach::kHeuristic, minutes(delta_min)));
    EXPECT_GT(result.mutual.fidelity_time(), 0.85) << delta_min;
  }
}

TEST(IntegrationMutual, LargerDeltaNeedsFewerTriggers) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  const auto tight = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kTriggered, minutes(1.0)));
  const auto loose = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kTriggered, minutes(30.0)));
  EXPECT_GE(tight.triggered, loose.triggered);
}

TEST(IntegrationMutual, IndividualConsistencyPreserved) {
  // Mt augments Δt; the individual guarantees must not regress when a
  // coordinator is added (§2's separation of concerns).
  const PairRun runs = run_pair(minutes(5.0));
  EXPECT_GE(runs.triggered.individual_a.fidelity_time() + 0.02,
            runs.baseline.individual_a.fidelity_time());
  EXPECT_GE(runs.triggered.individual_b.fidelity_time() + 0.02,
            runs.baseline.individual_b.fidelity_time());
}

TEST(IntegrationMutual, TriggeredPollsBucketizeForFig6) {
  const UpdateTrace a = make_nytimes_ap_trace();
  const UpdateTrace b = make_nytimes_reuters_trace();
  const auto result = run_mutual_temporal(
      a, b, mutual_config(MutualApproach::kHeuristic, minutes(10.0)));
  const Duration horizon = std::min(a.duration(), b.duration());
  const auto buckets = polls_per_bucket(result.poll_log, hours(2.0),
                                        horizon, PollCause::kTriggered);
  EXPECT_FALSE(buckets.empty());
  std::size_t total = 0;
  for (std::size_t b2 : buckets) total += b2;
  EXPECT_EQ(total, result.triggered);
}

TEST(IntegrationMutual, AllPairsOrderingHolds) {
  // The paper simulates every pair from Table 2 (§6.2.2).  The poll
  // ordering must hold for each pair.
  const auto traces = make_all_temporal_traces();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      const auto triggered = run_mutual_temporal(
          traces[i], traces[j],
          mutual_config(MutualApproach::kTriggered, minutes(10.0)));
      const auto baseline = run_mutual_temporal(
          traces[i], traces[j],
          mutual_config(MutualApproach::kBaseline, minutes(10.0)));
      EXPECT_GE(triggered.polls, baseline.polls)
          << traces[i].name() << " + " << traces[j].name();
      // Ground truth grants the triggered approach only the sub-δ desync
      // windows its δ-window rule deliberately tolerates, so a lucky
      // baseline can edge it by a sliver; near-perfection is the claim.
      EXPECT_GE(triggered.mutual.fidelity_time() + 0.005,
                baseline.mutual.fidelity_time())
          << traces[i].name() << " + " << traces[j].name();
      EXPECT_GT(triggered.mutual.fidelity_time(), 0.99)
          << traces[i].name() << " + " << traces[j].name();
    }
  }
}

}  // namespace
}  // namespace broadway

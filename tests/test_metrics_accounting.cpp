#include "metrics/accounting.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

PollRecord record(TimePoint t, const std::string& uri, PollCause cause,
                  bool failed = false) {
  PollRecord out;
  out.snapshot_time = t;
  out.complete_time = t;
  out.uri = uri;
  out.cause = cause;
  out.failed = failed;
  return out;
}

std::vector<PollRecord> sample_log() {
  return {
      record(0.0, "/a", PollCause::kInitial),
      record(0.0, "/b", PollCause::kInitial),
      record(10.0, "/a", PollCause::kScheduled),
      record(12.0, "/b", PollCause::kScheduled),
      record(12.0, "/a", PollCause::kTriggered),
      record(20.0, "/a", PollCause::kScheduled, /*failed=*/true),
      record(25.0, "/a", PollCause::kRetry),
      record(35.0, "/b", PollCause::kTriggered),
  };
}

TEST(Accounting, CountByCause) {
  const PollCauseCounts counts = count_by_cause(sample_log());
  EXPECT_EQ(counts.initial, 2u);
  EXPECT_EQ(counts.scheduled, 2u);
  EXPECT_EQ(counts.triggered, 2u);
  EXPECT_EQ(counts.retry, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.total_refreshes(), 5u);
}

TEST(Accounting, PollsPerBucketAll) {
  const auto buckets = polls_per_bucket(sample_log(), 10.0, 40.0);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // two initial fetches at t=0
  EXPECT_EQ(buckets[1], 3u);  // 10, 12, 12
  EXPECT_EQ(buckets[2], 1u);  // 25 (the failed 20 is skipped)
  EXPECT_EQ(buckets[3], 1u);  // 35
}

TEST(Accounting, PollsPerBucketFilteredByCause) {
  const auto triggered = polls_per_bucket(sample_log(), 10.0, 40.0,
                                          PollCause::kTriggered);
  EXPECT_EQ(triggered, (std::vector<std::size_t>{0, 1, 0, 1}));
}

TEST(Accounting, PollsPerBucketFilteredByUri) {
  const auto only_a =
      polls_per_bucket(sample_log(), 10.0, 40.0, std::nullopt, "/a");
  EXPECT_EQ(only_a, (std::vector<std::size_t>{1, 2, 1, 0}));
}

TEST(Accounting, EventsBeyondHorizonDropped) {
  auto log = sample_log();
  log.push_back(record(100.0, "/a", PollCause::kScheduled));
  const auto buckets = polls_per_bucket(log, 10.0, 40.0);
  std::size_t total = 0;
  for (std::size_t b : buckets) total += b;
  EXPECT_EQ(total, 7u);  // the t=100 record is outside the horizon
}

TEST(Accounting, Validation) {
  const std::vector<PollRecord> empty;
  EXPECT_THROW(polls_per_bucket(empty, 0.0, 10.0), CheckFailure);
  EXPECT_THROW(polls_per_bucket(empty, 1.0, 0.0), CheckFailure);
}

TEST(Accounting, FleetOriginLoadMerge) {
  FleetOriginLoad a;
  a.origin_messages = 10;
  a.origin_polls = 8;
  a.relay_refreshes = 3;
  a.failed = 1;
  FleetOriginLoad b;
  b.origin_messages = 5;
  b.origin_polls = 4;
  b.relay_refreshes = 2;
  b.failed = 2;
  a.merge(b);
  EXPECT_EQ(a.origin_messages, 15u);
  EXPECT_EQ(a.origin_polls, 12u);
  EXPECT_EQ(a.relay_refreshes, 5u);
  EXPECT_EQ(a.failed, 3u);
  EXPECT_DOUBLE_EQ(a.polls_per_second(6.0), 2.0);
}

TEST(Accounting, MergePollRecordsOrdersBySnapshotThenProxy) {
  // Proxy 1's log contains a relay record whose snapshot (5.0) predates
  // the record logged before it — in-log order is not snapshot order,
  // which is exactly why the merge semantics are a stable sort.
  const std::vector<PollRecord> log0 = {
      record(0.0, "/a", PollCause::kInitial),
      record(10.0, "/a", PollCause::kScheduled),
  };
  const std::vector<PollRecord> log1 = {
      record(0.0, "/a", PollCause::kInitial),
      record(10.0, "/b", PollCause::kScheduled),
      record(5.0, "/a", PollCause::kRelay),
  };
  const auto merged =
      merge_poll_records({{0, &log0}, {1, &log1}});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].snapshot_time, 0.0);  // proxy 0 initial
  EXPECT_EQ(merged[0].uri, "/a");
  EXPECT_EQ(merged[1].snapshot_time, 0.0);  // proxy 1 initial
  EXPECT_EQ(merged[2].cause, PollCause::kRelay);  // snapshot 5.0
  EXPECT_EQ(merged[3].snapshot_time, 10.0);  // proxy 0 before proxy 1
  EXPECT_EQ(merged[3].uri, "/a");
  EXPECT_EQ(merged[4].uri, "/b");
}

TEST(Accounting, MergePollRecordsIsCallerOrderIndependent) {
  const std::vector<PollRecord> log0 = {
      record(1.0, "/a", PollCause::kScheduled),
      record(2.0, "/a", PollCause::kScheduled),
  };
  const std::vector<PollRecord> log1 = {
      record(1.0, "/b", PollCause::kScheduled),
  };
  const auto forward = merge_poll_records({{0, &log0}, {1, &log1}});
  const auto backward = merge_poll_records({{1, &log1}, {0, &log0}});
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].uri, backward[i].uri) << "record " << i;
    EXPECT_EQ(forward[i].snapshot_time, backward[i].snapshot_time);
  }
}

}  // namespace
}  // namespace broadway

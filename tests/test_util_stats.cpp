#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/ewma.h"

namespace broadway {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, SingleObservationHasZeroVariance) {
  OnlineStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats left;
  OnlineStats right;
  OnlineStats combined;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    left.add(v);
    combined.add(v);
  }
  for (int i = 0; i < 77; ++i) {
    const double v = i * -0.11 + 8.0;
    right.add(v);
    combined.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats stats;
  stats.add(1.0);
  stats.add(2.0);
  OnlineStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Percentiles, InterpolatesBetweenOrderStatistics) {
  Percentiles p({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 40.0);
  EXPECT_DOUBLE_EQ(p.median(), 25.0);
  EXPECT_DOUBLE_EQ(p.at(1.0 / 3.0), 20.0);
}

TEST(Percentiles, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Percentiles({}).at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentiles({7.0}).at(0.99), 7.0);
}

TEST(Percentiles, RejectsOutOfRangeQuantile) {
  Percentiles p({1.0, 2.0});
  EXPECT_THROW(p.at(-0.1), CheckFailure);
  EXPECT_THROW(p.at(1.1), CheckFailure);
}

TEST(PercentileFree, MatchesClass) {
  std::vector<double> sample = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 3.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (half-open)
  h.add(25.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(Ewma, FirstObservationReplacesInitial) {
  Ewma ewma(0.5, 100.0);
  EXPECT_TRUE(ewma.empty());
  EXPECT_DOUBLE_EQ(ewma.value(), 100.0);
  ewma.observe(10.0);
  EXPECT_FALSE(ewma.empty());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);  // cold start unbiased
}

TEST(Ewma, BlendsSubsequentObservations) {
  Ewma ewma(0.25);
  ewma.observe(10.0);
  ewma.observe(20.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 0.25 * 20.0 + 0.75 * 10.0);
}

TEST(Ewma, ResetForgets) {
  Ewma ewma(0.5);
  ewma.observe(5.0);
  ewma.reset(1.0);
  EXPECT_TRUE(ewma.empty());
  EXPECT_DOUBLE_EQ(ewma.value(), 1.0);
}

TEST(Ewma, RejectsBadWeight) {
  EXPECT_THROW(Ewma(0.0), CheckFailure);
  EXPECT_THROW(Ewma(1.5), CheckFailure);
}

}  // namespace
}  // namespace broadway

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace broadway {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(42.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  double seen = -1.0;
  sim.schedule_after(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 15.0);
}

TEST(Simulator, RejectsPastAndBadSchedules) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), CheckFailure);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), CheckFailure);
  EXPECT_THROW(sim.schedule_at(kTimeInfinity, [] {}), CheckFailure);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_after(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, EventAtCurrentInstantRunsAfterEarlierScheduled) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    // Same-instant event lands after the other t=1 event already queued.
    sim.schedule_at(1.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceIsHarmless) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(999999));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, FireTimeReportsSchedule) {
  Simulator sim;
  const EventId id = sim.schedule_at(7.5, [] {});
  EXPECT_DOUBLE_EQ(sim.fire_time(id), 7.5);
  EXPECT_EQ(sim.fire_time(424242), kTimeInfinity);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunLimitStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(i, [&] { ++count; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, RunUntilInclusiveOfHorizonEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(2.5, [&] { ran = true; });
  sim.run_until(2.5);
  EXPECT_TRUE(ran);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i + 1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, CurrentEventIdentifiesTheRunningCallback) {
  Simulator sim;
  EXPECT_EQ(sim.current_event(), kInvalidEventId);
  EventId seen_first = kInvalidEventId;
  EventId seen_second = kInvalidEventId;
  const EventId first = sim.schedule_at(1.0, [&] {
    seen_first = sim.current_event();
  });
  const EventId second = sim.schedule_at(2.0, [&] {
    seen_second = sim.current_event();
  });
  sim.run();
  EXPECT_EQ(seen_first, first);
  EXPECT_EQ(seen_second, second);
  EXPECT_EQ(sim.current_event(), kInvalidEventId);
}

TEST(Simulator, EventIdsAreNeverRevivedBySlotReuse) {
  // Slot-pool ids carry a generation: after an event fires (or is
  // cancelled), its id must stay dead even though the slot is reused by
  // later schedules.
  Simulator sim;
  const EventId first = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.is_pending(first));
  std::vector<EventId> later;
  for (int i = 0; i < 64; ++i) {
    later.push_back(sim.schedule_at(10.0 + i, [] {}));
  }
  // The old id addresses a reused slot now, but a stale generation.
  EXPECT_FALSE(sim.is_pending(first));
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.fire_time(first), kTimeInfinity);
  for (const EventId id : later) EXPECT_TRUE(sim.is_pending(id));
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ManyEventsStaySorted) {
  Simulator sim;
  std::vector<double> fired;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const double t = ((i * 7919) % 1000) + 1.0;
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace broadway

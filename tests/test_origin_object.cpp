#include "origin/object.h"

#include <gtest/gtest.h>

#include "origin/store.h"
#include "util/check.h"

namespace broadway {
namespace {

TEST(VersionedObject, StartsAtVersionZero) {
  VersionedObject object("/a", 5.0);
  EXPECT_EQ(object.version(), 0u);
  EXPECT_DOUBLE_EQ(object.last_modified(), 5.0);
  EXPECT_FALSE(object.value().has_value());
}

TEST(VersionedObject, UpdatesIncrementVersionMonotonically) {
  VersionedObject object("/a", 0.0);
  object.apply_update(10.0);
  object.apply_update(20.0);
  EXPECT_EQ(object.version(), 2u);
  EXPECT_DOUBLE_EQ(object.last_modified(), 20.0);
  EXPECT_THROW(object.apply_update(15.0), CheckFailure);  // time reversal
}

TEST(VersionedObject, ModifiedSinceIsStrict) {
  VersionedObject object("/a", 0.0);
  object.apply_update(10.0);
  EXPECT_TRUE(object.modified_since(9.0));
  EXPECT_FALSE(object.modified_since(10.0));
  EXPECT_FALSE(object.modified_since(11.0));
}

TEST(VersionedObject, ValueDomainCarriesValues) {
  VersionedObject stock("/stock", 0.0, 36.1);
  EXPECT_DOUBLE_EQ(*stock.value(), 36.1);
  stock.apply_update(5.0, 36.2);
  EXPECT_DOUBLE_EQ(*stock.value(), 36.2);
  // Domain mismatch is a programming error.
  EXPECT_THROW(stock.apply_update(6.0), CheckFailure);
  VersionedObject page("/page", 0.0);
  EXPECT_THROW(page.apply_update(1.0, 3.14), CheckFailure);
}

TEST(VersionedObject, HistorySinceFiltersAndCaps) {
  VersionedObject object("/a", 0.0);
  for (double t : {10.0, 20.0, 30.0, 40.0, 50.0}) object.apply_update(t);
  EXPECT_EQ(object.history_since(0.0, 0),
            (std::vector<TimePoint>{10.0, 20.0, 30.0, 40.0, 50.0}));
  EXPECT_EQ(object.history_since(20.0, 0),
            (std::vector<TimePoint>{30.0, 40.0, 50.0}));
  // Cap keeps the *most recent* entries.
  EXPECT_EQ(object.history_since(0.0, 2),
            (std::vector<TimePoint>{40.0, 50.0}));
  EXPECT_TRUE(object.history_since(50.0, 0).empty());
}

TEST(VersionedObject, RenderBodyEmbedsVersionAndLinks) {
  VersionedObject object("/news/story", 0.0);
  object.set_embedded_links({"/news/photo1.jpg", "/news/chart.png"});
  object.apply_update(1.0);
  const std::string body = object.render_body();
  EXPECT_NE(body.find("version 1"), std::string::npos);
  EXPECT_NE(body.find("src=\"/news/photo1.jpg\""), std::string::npos);
  EXPECT_NE(body.find("src=\"/news/chart.png\""), std::string::npos);
}

TEST(VersionedObject, Validation) {
  EXPECT_THROW(VersionedObject("", 0.0), CheckFailure);
  EXPECT_THROW(VersionedObject("/a", -1.0), CheckFailure);
}

TEST(ObjectStore, CreateFindAt) {
  ObjectStore store;
  store.create("/a", 0.0);
  store.create("/b", 0.0, 1.5);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.find("/a"), nullptr);
  EXPECT_EQ(store.find("/missing"), nullptr);
  EXPECT_TRUE(store.contains("/b"));
  EXPECT_DOUBLE_EQ(*store.at("/b").value(), 1.5);
  EXPECT_THROW(store.at("/missing"), CheckFailure);
}

TEST(ObjectStore, RejectsDuplicates) {
  ObjectStore store;
  store.create("/a", 0.0);
  EXPECT_THROW(store.create("/a", 1.0), CheckFailure);
}

TEST(ObjectStore, UrisSorted) {
  ObjectStore store;
  store.create("/c", 0.0);
  store.create("/a", 0.0);
  store.create("/b", 0.0);
  EXPECT_EQ(store.uris(), (std::vector<std::string>{"/a", "/b", "/c"}));
}

TEST(ObjectStore, PointersStableAcrossInserts) {
  ObjectStore store;
  VersionedObject& a = store.create("/a", 0.0);
  for (int i = 0; i < 100; ++i) {
    store.create("/obj" + std::to_string(i), 0.0);
  }
  a.apply_update(1.0);
  EXPECT_EQ(store.at("/a").version(), 1u);
}

}  // namespace
}  // namespace broadway

#include "http/date.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(HttpDate, EpochIsMondayAug6_2001) {
  EXPECT_EQ(format_http_date(0.0), "Mon, 06 Aug 2001 00:00:00 GMT");
}

TEST(HttpDate, FormatsPaperTraceStart) {
  // CNN/FN collection started Aug 7 13:04 — one day plus 13h04m in.
  const TimePoint t = days(1.0) + hours(13.0) + minutes(4.0);
  EXPECT_EQ(format_http_date(t), "Tue, 07 Aug 2001 13:04:00 GMT");
}

TEST(HttpDate, TruncatesSubSeconds) {
  EXPECT_EQ(format_http_date(1.75), "Mon, 06 Aug 2001 00:00:01 GMT");
}

TEST(HttpDate, RoundTripsWholeSeconds) {
  for (double t : {0.0, 59.0, 3600.0, 86399.0, 86400.0, 2 * 86400.0 + 3661.0,
                   30.0 * 86400.0, 365.0 * 86400.0}) {
    const auto parsed = parse_http_date(format_http_date(t));
    ASSERT_TRUE(parsed.has_value()) << format_http_date(t);
    EXPECT_DOUBLE_EQ(*parsed, t);
  }
}

TEST(HttpDate, CrossesMonthAndYearBoundaries) {
  // Aug 2001 has 31 days: day offset 26 from Aug 6 lands Sep 1.
  EXPECT_EQ(format_http_date(days(26.0)), "Sat, 01 Sep 2001 00:00:00 GMT");
  // 148 days after Aug 6 2001 is Jan 1 2002.
  EXPECT_EQ(format_http_date(days(148.0)), "Tue, 01 Jan 2002 00:00:00 GMT");
}

TEST(HttpDate, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_http_date("").has_value());
  EXPECT_FALSE(parse_http_date("yesterday").has_value());
  EXPECT_FALSE(parse_http_date("Mon, 06 Aug 2001 00:00:00 PST").has_value());
  EXPECT_FALSE(parse_http_date("Mon, 06 Xxx 2001 00:00:00 GMT").has_value());
  // Wrong weekday for the date.
  EXPECT_FALSE(parse_http_date("Tue, 06 Aug 2001 00:00:00 GMT").has_value());
  // Before the simulation epoch.
  EXPECT_FALSE(parse_http_date("Sun, 05 Aug 2001 23:59:59 GMT").has_value());
}

TEST(HttpDate, FormatRejectsNegative) {
  EXPECT_THROW(format_http_date(-1.0), CheckFailure);
}

TEST(CivilCalendar, KnownDates) {
  using namespace httpdate_detail;
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
  int y;
  unsigned m, d;
  civil_from_days(0, y, m, d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1u);
  EXPECT_EQ(d, 1u);
}

TEST(CivilCalendar, RoundTripsAcrossLeapYears) {
  using namespace httpdate_detail;
  for (long long day = -1000; day <= 40000; day += 37) {
    int y;
    unsigned m, d;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day);
  }
}

TEST(CivilCalendar, WeekdayKnownValues) {
  using namespace httpdate_detail;
  EXPECT_EQ(weekday_from_days(0), 4u);  // 1970-01-01 was a Thursday
  EXPECT_EQ(weekday_from_days(days_from_civil(2001, 8, 6)), 1u);  // Monday
  EXPECT_EQ(weekday_from_days(days_from_civil(2001, 9, 11)), 2u);  // Tuesday
}

}  // namespace
}  // namespace broadway

// SmallVector: the inline-storage vector behind the per-poll observation
// history.  The crosscheck that the type change is invisible to policy
// behaviour lives in the existing suites (every consistency/violation/
// rate test plus test_wire_differential run through it); these tests pin
// the container mechanics themselves, in particular the inline -> heap
// spill boundary.
#include "util/small_vector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "consistency/types.h"
#include "http/extensions.h"
#include "http/message.h"

namespace broadway {
namespace {

using SV = SmallVector<double, 4>;

TEST(SmallVector, StartsEmptyAndInline) {
  SV v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_FALSE(v.spilled());
}

TEST(SmallVector, StaysInlineUpToCapacity) {
  SV v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.spilled());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsBeyondInlineCapacityAndKeepsContents) {
  SV v;
  for (int i = 0; i < 23; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 23u);
  EXPECT_TRUE(v.spilled());
  EXPECT_GE(v.capacity(), 23u);
  for (int i = 0; i < 23; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.front(), 0.0);
  EXPECT_EQ(v.back(), 22.0);
}

TEST(SmallVector, InitializerListAndVectorAssignment) {
  SV v = {1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  v = {4.0, 5.0};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4.0);
  const std::vector<double> big = {1, 2, 3, 4, 5, 6, 7, 8};
  v = big;
  EXPECT_EQ(v.size(), 8u);
  EXPECT_TRUE(v.spilled());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), big.begin()));
}

TEST(SmallVector, CopyAndMoveAcrossTheSpillBoundary) {
  for (const std::size_t count : {3u, 30u}) {
    SV original;
    for (std::size_t i = 0; i < count; ++i) {
      original.push_back(static_cast<double>(i));
    }
    SV copied(original);
    EXPECT_EQ(copied, original);

    SV moved(std::move(original));
    EXPECT_EQ(moved, copied);
    EXPECT_TRUE(original.empty());  // moved-from: valid and empty

    SV assigned;
    assigned.push_back(-1.0);
    assigned = copied;
    EXPECT_EQ(assigned, copied);

    SV move_assigned;
    move_assigned = std::move(moved);
    EXPECT_EQ(move_assigned, copied);
    EXPECT_TRUE(moved.empty());
  }
}

TEST(SmallVector, EraseShiftsTheTail) {
  SV v = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};  // spilled
  const auto first = std::upper_bound(v.begin(), v.end(), 2.0);
  v.erase(v.begin(), first);
  EXPECT_EQ(v, (SV{3.0, 4.0, 5.0, 6.0}));
  v.erase(v.begin() + 1, v.begin() + 3);
  EXPECT_EQ(v, (SV{3.0, 6.0}));
  v.erase(v.begin(), v.begin());  // empty range: no-op
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, ClearKeepsCapacity) {
  SV v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const std::size_t capacity = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), capacity);
}

// The observation pipeline's exact usage: decode a wire history longer
// than the inline capacity and restrict it, typed and string paths alike.
TEST(SmallVector, ObservationHistorySpillsThroughTheWirePath) {
  static_assert(TemporalPollObservation::History::inline_capacity() == 8);
  std::vector<TimePoint> instants;
  for (int i = 1; i <= 20; ++i) instants.push_back(i * 10.0);

  Response typed;
  typed.status = StatusCode::kOk;
  typed.meta.active = true;
  typed.meta.set_history_view(instants.data(), instants.size());

  Response wire;
  wire.status = StatusCode::kOk;
  set_modification_history(wire.headers, instants);

  for (Response* response : {&typed, &wire}) {
    TemporalPollObservation obs;
    ASSERT_TRUE(wire_modification_history(*response, obs.history));
    ASSERT_EQ(obs.history.size(), 20u);
    EXPECT_TRUE(obs.history.spilled());
    // The on_response restriction: drop everything at or before 95.0.
    const auto first =
        std::upper_bound(obs.history.begin(), obs.history.end(), 95.0);
    obs.history.erase(obs.history.begin(), first);
    ASSERT_EQ(obs.history.size(), 11u);
    EXPECT_EQ(obs.history.front(), 100.0);
    EXPECT_EQ(obs.history.back(), 200.0);
  }
}

TEST(SmallVector, ShortHistoryStaysInline) {
  Response typed;
  typed.status = StatusCode::kOk;
  typed.meta.active = true;
  const std::vector<TimePoint> instants = {10.0, 20.0, 30.0};
  typed.meta.set_history_view(instants.data(), instants.size());
  TemporalPollObservation obs;
  ASSERT_TRUE(wire_modification_history(typed, obs.history));
  EXPECT_EQ(obs.history.size(), 3u);
  EXPECT_FALSE(obs.history.spilled());
}

}  // namespace
}  // namespace broadway

// Failure injection: lost polls with retry, and proxy crash recovery
// (paper §3.1: recovery = reset all TTRs to TTR_min).
#include <gtest/gtest.h>

#include <memory>

#include "consistency/fixed_poll.h"
#include "consistency/limd.h"
#include "metrics/accounting.h"
#include "proxy/client.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/update_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

TEST(FailureInjection, LostPollsAreRetried) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig config;
  config.loss_probability = 0.3;
  config.retry_delay = 1.0;
  config.seed = 123;
  PollingEngine engine(sim, origin, config);
  origin.add_object("/a");
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  engine.start();
  sim.run_until(1000.0);

  EXPECT_GT(engine.failed_polls(), 0u);
  const PollCauseCounts counts = count_by_cause(engine.poll_log());
  EXPECT_EQ(counts.failed, engine.failed_polls());
  EXPECT_GT(counts.retry, 0u);
  // Every failure eventually produced a successful retry (or another
  // failure that retried again): successful polls keep flowing.
  EXPECT_GT(engine.polls_performed("/a"), 50u);
}

TEST(FailureInjection, LossyPollingStillRefreshesCache) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig config;
  config.loss_probability = 0.5;
  config.retry_delay = 1.0;
  config.seed = 7;
  PollingEngine engine(sim, origin, config);
  const UpdateTrace trace("/a", generate_periodic(50.0, 25.0, 1000.0),
                          1000.0);
  origin.attach_update_trace("/a", trace);
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  engine.start();
  sim.run_until(1000.0);
  const CacheEntry& entry = engine.cache().at("/a");
  // The last update (975) was eventually fetched despite 50% loss.
  EXPECT_DOUBLE_EQ(*entry.last_modified, 975.0);
}

TEST(CrashRecovery, ResetsTtrToMin) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.add_object("/quiet");
  LimdPolicy::Config config = LimdPolicy::Config::paper_defaults(60.0, 600.0);
  engine.add_temporal_object("/quiet",
                             std::make_unique<LimdPolicy>(config));
  engine.start();
  sim.run_until(3000.0);
  // TTR has grown well beyond the minimum by now.
  const auto& series_before = engine.ttr_series("/quiet");
  ASSERT_FALSE(series_before.empty());
  EXPECT_GT(series_before.back().second, 120.0);

  engine.crash_and_recover();
  sim.run_until(3070.0);
  // First post-recovery poll happens within TTR_min of the crash.
  const auto times = engine.poll_completion_times("/quiet");
  ASSERT_GE(times.size(), 2u);
  EXPECT_LE(times.back() - 3000.0, 60.0 + 1e-9);
}

TEST(CrashRecovery, PendingRetriesDieWithTheProxy) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig config;
  config.loss_probability = 0.6;
  config.retry_delay = 50.0;  // far longer than the poll period
  config.seed = 11;
  PollingEngine engine(sim, origin, config);
  origin.add_object("/a");
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  engine.start();

  const TimePoint crash_time = 95.0;
  sim.run_until(crash_time);
  // Retries fire retry_delay after their loss, so every loss in the last
  // retry_delay before the crash still has its retry pending.
  const auto fired_retries = [&engine] {
    std::size_t fired = 0;
    for (const PollRecord& record : engine.poll_log()) {
      if (record.cause == PollCause::kRetry) ++fired;
    }
    return fired;
  };
  ASSERT_GT(engine.failed_polls(), fired_retries());  // retries in flight

  const std::size_t records_at_crash = engine.poll_log().size();
  engine.crash_and_recover();
  sim.run_until(crash_time + config.retry_delay + 5.0);

  // A retry scheduled before the crash would fire within retry_delay of
  // it; a retry for a post-crash loss cannot.  So no retry may fire in
  // that window: polls lost before the crash must not replay against the
  // reset policy state.
  for (std::size_t i = records_at_crash; i < engine.poll_log().size(); ++i) {
    const PollRecord& record = engine.poll_log()[i];
    if (record.complete_time < crash_time + config.retry_delay) {
      EXPECT_NE(record.cause, PollCause::kRetry)
          << "pre-crash retry fired at " << record.complete_time;
    }
  }
  // Polling itself carries on from the recovered schedule.
  EXPECT_GT(engine.poll_log().size(), records_at_crash);
}

TEST(CrashRecovery, CacheSurvivesCrash) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.add_object("/a");
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  engine.start();
  sim.run_until(100.0);
  engine.crash_and_recover();
  EXPECT_TRUE(engine.cache().contains("/a"));
}

TEST(CrashRecovery, BeforeStartIsAnError) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  EXPECT_THROW(engine.crash_and_recover(), CheckFailure);
}

TEST(ClientWorkload, ObservesFreshAndStaleResponses) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  // Updates every 100 s; proxy polls every 40 s: some client reads land in
  // the stale window.
  const UpdateTrace trace("/page", generate_periodic(100.0, 50.0, 2000.0),
                          2000.0);
  origin.attach_update_trace("/page", trace);
  engine.add_temporal_object("/page",
                             std::make_unique<FixedPollPolicy>(40.0));

  // 0.5 req/s: one every 2 s on average.
  ClientWorkload client(sim, engine.cache(), origin,
                        ClientWorkload::Config::from_uris(
                            origin, /*request_rate=*/0.5, {{"/page", 1.0}},
                            /*seed=*/99));

  engine.start();
  client.start();
  sim.run_until(2000.0);

  const ClientMetrics& stats = client.stats();
  EXPECT_GT(stats.requests, 500u);
  EXPECT_EQ(stats.hits, stats.requests);  // everything was prefetched
  EXPECT_GT(stats.fresh, 0u);
  EXPECT_GT(stats.stale, 0u);
  EXPECT_EQ(stats.fresh + stats.stale, stats.hits);
  // Staleness lag is bounded by the polling period.
  EXPECT_LE(stats.staleness.max(), 40.0 + 1e-9);
}

TEST(ClientWorkload, MissesForUnregisteredObjects) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.add_object("/cached");
  origin.add_object("/uncached");
  engine.add_temporal_object("/cached",
                             std::make_unique<FixedPollPolicy>(10.0));
  ClientWorkload client(sim, engine.cache(), origin,
                        ClientWorkload::Config::from_uris(
                            origin, /*request_rate=*/1.0,
                            {{"/cached", 1.0}, {"/uncached", 1.0}}));
  engine.start();
  client.start();
  sim.run_until(200.0);
  EXPECT_GT(client.stats().misses, 0u);
  EXPECT_GT(client.stats().hits, 0u);
}

TEST(ClientWorkload, UnknownUriFailsFastAtConstruction) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/real");
  // A uri the origin never interned cannot silently get zero traffic.
  EXPECT_THROW(ClientWorkload::Config::from_uris(origin, 1.0,
                                                 {{"/tpyo", 1.0}}),
               CheckFailure);
  // Nor can a raw id the table never handed out.
  ClientWorkload::Config config;
  config.popularity = {{static_cast<ObjectId>(12345), 1.0}};
  ProxyCache cache(origin.uri_table());
  EXPECT_THROW(ClientWorkload(sim, cache, origin, config), CheckFailure);
}

}  // namespace
}  // namespace broadway

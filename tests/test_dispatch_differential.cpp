// The coordinator-dispatch differential: id-keyed subscription-routed
// dispatch (the default) against the legacy string-keyed broadcast fan-out
// (EngineConfig::legacy_dispatch).
//
// The dispatch rewrite must be a pure representation change: over seeded
// random group topologies — multiple triggered and rate-heuristic
// coordinators, overlapping member sets, ungrouped bystander objects, loss
// injection and a mid-run crash — both dispatch modes must produce
// byte-identical poll logs, identical TTR series, identical triggered-poll
// counts and identical fidelity, under both scheduler backends.  A second
// set of pins covers the mechanism itself: the per-object subscriber
// index, and that an engine with zero coordinators performs zero notify
// work.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "consistency/fixed_poll.h"
#include "consistency/heuristic.h"
#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "metrics/fidelity.h"
#include "metrics/mutual_fidelity.h"
#include "origin/origin_server.h"
#include "proxy/poll_log.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/update_trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

constexpr Duration kHorizon = 20000.0;

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(60.0, 900.0);
    if (t >= kHorizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), kHorizon);
}

// One seeded random topology: every object temporal under LIMD, a random
// mix of triggered / heuristic coordinators over random (overlapping)
// member subsets, with at least one ungrouped bystander.
struct Topology {
  std::vector<UpdateTrace> traces;
  struct Group {
    bool heuristic = false;
    Duration delta = 0.0;
    std::vector<std::string> members;
  };
  std::vector<Group> groups;
};

Topology make_topology(std::uint64_t seed) {
  Rng rng(seed * 7919 + 17);
  Topology topology;
  const std::size_t objects =
      static_cast<std::size_t>(rng.uniform_int(5, 9));
  for (std::size_t i = 0; i < objects; ++i) {
    topology.traces.push_back(irregular_trace(
        "/object/" + std::to_string(i), 1000 * seed + i));
  }
  const std::size_t groups =
      static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t g = 0; g < groups; ++g) {
    Topology::Group group;
    group.heuristic = rng.bernoulli(0.4);
    group.delta = rng.uniform(60.0, 600.0);
    // Sample 2–4 distinct members; objects - 1 keeps at least one
    // bystander outside every group.
    const std::size_t wanted =
        static_cast<std::size_t>(rng.uniform_int(2, 4));
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i + 1 < objects; ++i) candidates.push_back(i);
    for (std::size_t pick = 0; pick < wanted && !candidates.empty();
         ++pick) {
      const std::size_t at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(candidates.size()) - 1));
      group.members.push_back(topology.traces[candidates[at]].name());
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(at));
    }
    if (group.members.size() >= 2) topology.groups.push_back(group);
  }
  return topology;
}

struct RunArtifacts {
  std::vector<PollRecord> records;
  std::vector<std::vector<std::pair<TimePoint, Duration>>> ttr_series;
  std::size_t triggered = 0;
  std::uint64_t notifies = 0;
  double individual_fidelity = 0.0;
  double mutual_fidelity = 0.0;
};

RunArtifacts run_topology(const Topology& topology,
                          SchedulerBackend backend, bool legacy_dispatch) {
  Simulator::Config sim_config;
  sim_config.scheduler = backend;
  Simulator sim(sim_config);
  OriginServer origin(sim);

  EngineConfig config;
  config.legacy_dispatch = legacy_dispatch;
  config.rtt = 0.25;
  config.loss_probability = 0.05;
  config.retry_delay = 4.0;
  config.seed = 77;
  PollingEngine engine(sim, origin, config);

  for (const UpdateTrace& trace : topology.traces) {
    origin.attach_update_trace(trace.name(), trace);
    engine.add_temporal_object(
        trace.name(), std::make_unique<LimdPolicy>(
                          LimdPolicy::Config::paper_defaults(300.0)));
  }
  for (const Topology::Group& group : topology.groups) {
    if (group.heuristic) {
      RateHeuristicCoordinator::Config heuristic;
      heuristic.delta_mutual = group.delta;
      engine.add_coordinator(std::make_unique<RateHeuristicCoordinator>(
          group.members, heuristic));
    } else {
      engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
          group.members, group.delta));
    }
  }

  engine.start();
  sim.run_until(kHorizon / 2);
  engine.crash_and_recover();  // coordinator reset is part of the contract
  sim.run_until(kHorizon);

  RunArtifacts artifacts;
  artifacts.records = engine.poll_log().records();
  for (const UpdateTrace& trace : topology.traces) {
    artifacts.ttr_series.push_back(engine.ttr_series(trace.name()));
  }
  artifacts.triggered = engine.triggered_polls();
  artifacts.notifies = engine.coordinator_notifies();
  const auto polls_a =
      successful_polls(engine.poll_log(), topology.traces[0].name());
  const auto polls_b =
      successful_polls(engine.poll_log(), topology.traces[1].name());
  artifacts.individual_fidelity =
      evaluate_temporal_fidelity(topology.traces[0], polls_a, 300.0,
                                 kHorizon)
          .fidelity_time();
  artifacts.mutual_fidelity =
      evaluate_mutual_temporal(topology.traces[0], polls_a,
                               topology.traces[1], polls_b, 300.0, kHorizon)
          .fidelity_time();
  return artifacts;
}

void expect_records_identical(const std::vector<PollRecord>& a,
                              const std::vector<PollRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].uri, b[i].uri);
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].cause, b[i].cause);
    EXPECT_EQ(a[i].modified, b[i].modified);
    EXPECT_EQ(a[i].failed, b[i].failed);
    EXPECT_EQ(a[i].snapshot_time, b[i].snapshot_time);
    EXPECT_EQ(a[i].complete_time, b[i].complete_time);
  }
}

TEST(DispatchDifferential, RoutedMatchesLegacyOverRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Topology topology = make_topology(seed);
    ASSERT_FALSE(topology.groups.empty());
    for (const SchedulerBackend backend :
         {SchedulerBackend::kBinaryHeap, SchedulerBackend::kCalendar}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", backend " +
                   (backend == SchedulerBackend::kBinaryHeap ? "heap"
                                                             : "calendar"));
      const RunArtifacts routed =
          run_topology(topology, backend, /*legacy_dispatch=*/false);
      const RunArtifacts legacy =
          run_topology(topology, backend, /*legacy_dispatch=*/true);
      ASSERT_FALSE(routed.records.empty());
      expect_records_identical(routed.records, legacy.records);
      EXPECT_EQ(routed.ttr_series, legacy.ttr_series);
      EXPECT_EQ(routed.triggered, legacy.triggered);
      EXPECT_EQ(routed.individual_fidelity, legacy.individual_fidelity);
      EXPECT_EQ(routed.mutual_fidelity, legacy.mutual_fidelity);
      // The broadcast path dispatches at least as many notifications as
      // the routed path (every coordinator, every temporal poll); routing
      // skips the non-subscribers without changing any observable above.
      EXPECT_GE(legacy.notifies, routed.notifies);
      EXPECT_GT(routed.notifies, 0u);
    }
  }
}

TEST(DispatchDifferential, ZeroCoordinatorEngineDoesNoNotifyWork) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  for (int i = 0; i < 4; ++i) {
    const UpdateTrace trace =
        irregular_trace("/object/" + std::to_string(i), 400 + i);
    origin.attach_update_trace(trace.name(), trace);
    engine.add_temporal_object(
        trace.name(), std::make_unique<LimdPolicy>(
                          LimdPolicy::Config::paper_defaults(300.0)));
  }
  engine.start();
  sim.run_until(kHorizon);
  EXPECT_GT(engine.polls_performed(), 0u);
  // The subscriber index is empty, so stage 6 never dispatches.
  EXPECT_EQ(engine.coordinator_notifies(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.subscriber_count("/object/" + std::to_string(i)), 0u);
  }
}

TEST(DispatchDifferential, SubscriberIndexFollowsGroupMembership) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  for (const char* uri : {"/a", "/b", "/c"}) {
    origin.add_object(uri);
    engine.add_temporal_object(uri,
                               std::make_unique<FixedPollPolicy>(100.0));
  }
  engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/a", "/b"}, 60.0));
  engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/b", "/c"}, 60.0));
  // A null coordinator subscribes to nothing.
  engine.add_coordinator(std::make_unique<NullCoordinator>());

  EXPECT_EQ(engine.subscriber_count("/a"), 1u);
  EXPECT_EQ(engine.subscriber_count("/b"), 2u);  // overlapping groups
  EXPECT_EQ(engine.subscriber_count("/c"), 1u);
  EXPECT_EQ(engine.subscriber_count("/unknown"), 0u);
}

TEST(DispatchDifferential, UnknownMemberFailsAtRegistration) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.add_object("/a");
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  // Member interning happens at add_coordinator, so a bad member list
  // fails fast instead of aborting mid-simulation on the first trigger.
  EXPECT_THROW(
      engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
          std::vector<std::string>{"/a", "/ghost"}, 60.0)),
      CheckFailure);
}

}  // namespace
}  // namespace broadway

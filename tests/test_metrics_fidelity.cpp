// Ground-truth Δt fidelity evaluation on hand-computed scenarios.
#include "metrics/fidelity.h"

#include <gtest/gtest.h>

#include "trace/update_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

std::vector<PollInstant> at(std::initializer_list<TimePoint> times) {
  std::vector<PollInstant> out;
  for (TimePoint t : times) out.push_back(PollInstant{t, t});
  return out;
}

TEST(TemporalFidelity, NoUpdatesMeansPerfectFidelity) {
  const UpdateTrace trace("t", {}, 100.0);
  const auto report =
      evaluate_temporal_fidelity(trace, at({0.0, 50.0}), 10.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 0.0);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 1.0);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
}

TEST(TemporalFidelity, PollEveryDeltaIsPerfect) {
  // The baseline approach "by definition always provides perfect
  // fidelity" (§6.2.1).
  const UpdateTrace trace("t", {15.0, 34.0, 55.0, 76.0}, 100.0);
  std::vector<PollInstant> polls = at({0.0});
  for (double t = 10.0; t < 100.0; t += 10.0) {
    polls.push_back(PollInstant{t, t});
  }
  const auto report = evaluate_temporal_fidelity(trace, polls, 10.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 1.0);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
}

TEST(TemporalFidelity, MissedUpdateViolatesExactSpan) {
  // Update at 10, polls at 0 and 50, Δ = 15.  The copy fetched at 0 is out
  // of tolerance from 10+15=25 until the refresh at 50: 25 s, one
  // violated window.
  const UpdateTrace trace("t", {10.0}, 100.0);
  const auto report =
      evaluate_temporal_fidelity(trace, at({0.0, 50.0}), 15.0, 100.0);
  EXPECT_EQ(report.windows, 2u);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 25.0);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 0.5);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0 - 25.0 / 100.0);
}

TEST(TemporalFidelity, TailWindowCounted) {
  // Update at 60 after the last poll at 50: the tail window [50, 100)
  // violates from 60+15=75 to 100 -> 25 s.
  const UpdateTrace trace("t", {60.0}, 100.0);
  const auto report =
      evaluate_temporal_fidelity(trace, at({0.0, 50.0}), 15.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 25.0);
}

TEST(TemporalFidelity, MultiUpdateWindowUsesFirstUnseen) {
  // Fig. 1(b) ground truth: updates at 10 and 45, poll at 0 then 50,
  // Δ = 15.  Out-of-sync begins at 10+15=25 even though the *last* update
  // (45) is within Δ of the refresh.
  const UpdateTrace trace("t", {10.0, 45.0}, 100.0);
  const auto report =
      evaluate_temporal_fidelity(trace, at({0.0, 50.0}), 15.0, 100.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 25.0);
}

TEST(TemporalFidelity, LargeDeltaForgivesStaleness) {
  const UpdateTrace trace("t", {10.0}, 100.0);
  const auto report =
      evaluate_temporal_fidelity(trace, at({0.0, 45.0}), 40.0, 100.0);
  // Out of sync would begin at 10+40=50, but the refresh lands at 45.
  EXPECT_EQ(report.violations, 0u);
}

TEST(TemporalFidelity, SnapshotVsCompletionMatters) {
  // With RTT, a copy completed at 12 reflects server state at 10.  An
  // update at 11 is unseen by that copy.
  const UpdateTrace trace("t", {11.0}, 100.0);
  std::vector<PollInstant> polls = {{0.0, 0.0}, {10.0, 12.0}};
  const auto report = evaluate_temporal_fidelity(trace, polls, 5.0, 100.0);
  // Window [12, 100): out of sync from 11+5=16 -> 84 s.
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 84.0);
}

TEST(TemporalFidelity, CoincidentPollsYieldEmptyWindow) {
  const UpdateTrace trace("t", {10.0}, 100.0);
  std::vector<PollInstant> polls = {{0.0, 0.0}, {20.0, 20.0}, {20.0, 20.0},
                                    {90.0, 90.0}};
  const auto report = evaluate_temporal_fidelity(trace, polls, 15.0, 100.0);
  EXPECT_EQ(report.windows, 4u);
  EXPECT_EQ(report.violations, 0u);
}

TEST(TemporalFidelity, Validation) {
  const UpdateTrace trace("t", {10.0}, 100.0);
  EXPECT_THROW(evaluate_temporal_fidelity(trace, {}, 10.0, 100.0),
               CheckFailure);
  EXPECT_THROW(evaluate_temporal_fidelity(trace, at({0.0}), 0.0, 100.0),
               CheckFailure);
  EXPECT_THROW(evaluate_temporal_fidelity(trace, at({0.0}), 10.0, 0.0),
               CheckFailure);
}

TEST(SuccessfulPolls, FiltersLogByUriAndFailure) {
  std::vector<PollRecord> log;
  PollRecord a;
  a.uri = "/a";
  a.snapshot_time = 1.0;
  a.complete_time = 1.5;
  log.push_back(a);
  PollRecord failed = a;
  failed.failed = true;
  failed.snapshot_time = 2.0;
  log.push_back(failed);
  PollRecord other = a;
  other.uri = "/b";
  log.push_back(other);
  const auto polls = successful_polls(log, "/a");
  ASSERT_EQ(polls.size(), 1u);
  EXPECT_DOUBLE_EQ(polls[0].snapshot, 1.0);
  EXPECT_DOUBLE_EQ(polls[0].complete, 1.5);
}

}  // namespace
}  // namespace broadway

// PollLog: the per-uri indices and running counters must agree exactly
// with a brute-force scan of the full record vector — on a randomized
// record stream and on a live engine driving all four object kinds.
#include "proxy/poll_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "consistency/fixed_poll.h"
#include "consistency/limd.h"
#include "consistency/partitioned.h"
#include "consistency/triggered.h"
#include "consistency/virtual_object.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/rng.h"

namespace broadway {
namespace {

// Reference implementations: scan every record.
std::vector<TimePoint> scan_completion_times(
    const std::vector<PollRecord>& records, const std::string& uri) {
  std::vector<TimePoint> out;
  for (const PollRecord& record : records) {
    if (!record.failed && record.uri == uri) {
      out.push_back(record.complete_time);
    }
  }
  return out;
}

std::vector<TimePoint> scan_snapshot_times(
    const std::vector<PollRecord>& records, const std::string& uri) {
  std::vector<TimePoint> out;
  for (const PollRecord& record : records) {
    if (!record.failed && record.uri == uri) {
      out.push_back(record.snapshot_time);
    }
  }
  return out;
}

std::size_t scan_polls_performed(const std::vector<PollRecord>& records,
                                 const std::string& uri) {
  std::size_t count = 0;
  for (const PollRecord& record : records) {
    if (record.failed || record.cause == PollCause::kInitial) continue;
    if (!uri.empty() && record.uri != uri) continue;
    ++count;
  }
  return count;
}

std::size_t scan_triggered_polls(const std::vector<PollRecord>& records,
                                 const std::string& uri) {
  std::size_t count = 0;
  for (const PollRecord& record : records) {
    if (record.failed || record.cause != PollCause::kTriggered) continue;
    if (!uri.empty() && record.uri != uri) continue;
    ++count;
  }
  return count;
}

std::size_t scan_failed_polls(const std::vector<PollRecord>& records) {
  std::size_t count = 0;
  for (const PollRecord& record : records) {
    if (record.failed) ++count;
  }
  return count;
}

void expect_log_matches_scan(const PollLog& log,
                             const std::vector<std::string>& uris) {
  const std::vector<PollRecord>& records = log.records();
  EXPECT_EQ(log.polls_performed(), scan_polls_performed(records, ""));
  EXPECT_EQ(log.triggered_polls(), scan_triggered_polls(records, ""));
  EXPECT_EQ(log.failed_polls(), scan_failed_polls(records));
  for (const std::string& uri : uris) {
    SCOPED_TRACE(uri);
    EXPECT_EQ(log.completion_times(uri), scan_completion_times(records, uri));
    EXPECT_EQ(log.snapshot_times(uri), scan_snapshot_times(records, uri));
    EXPECT_EQ(log.polls_performed(uri), scan_polls_performed(records, uri));
    EXPECT_EQ(log.triggered_polls(uri), scan_triggered_polls(records, uri));
    const std::vector<std::size_t>& successful = log.successful_records(uri);
    for (std::size_t i = 0; i < successful.size(); ++i) {
      ASSERT_LT(successful[i], records.size());
      EXPECT_FALSE(records[successful[i]].failed);
      EXPECT_EQ(records[successful[i]].uri, uri);
      if (i > 0) EXPECT_GT(successful[i], successful[i - 1]);
    }
  }
}

TEST(PollLog, IndexMatchesBruteForceOnRandomizedWorkload) {
  Rng rng(20260728);
  const std::vector<std::string> uris = {"/a", "/b", "/c", "/d", "/e",
                                         "/f", "/g", "/h"};
  const PollCause causes[] = {PollCause::kInitial, PollCause::kScheduled,
                              PollCause::kTriggered, PollCause::kRetry};
  PollLog log;
  TimePoint t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    PollRecord record;
    t += rng.uniform(0.0, 5.0);
    record.snapshot_time = t;
    record.complete_time = t + rng.uniform(0.0, 2.0);
    record.uri = uris[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(uris.size()) - 1))];
    record.cause = causes[rng.uniform_int(0, 3)];
    record.failed = rng.bernoulli(0.2);
    record.modified = !record.failed && rng.bernoulli(0.5);
    log.append(std::move(record));
  }
  ASSERT_EQ(log.size(), 5000u);

  std::vector<std::string> queried = uris;
  queried.push_back("/never-polled");
  expect_log_matches_scan(log, queried);
}

TEST(PollLog, UnknownUriAnswersEmpty) {
  PollLog log;
  EXPECT_TRUE(log.completion_times("/nope").empty());
  EXPECT_TRUE(log.snapshot_times("/nope").empty());
  EXPECT_TRUE(log.successful_records("/nope").empty());
  EXPECT_EQ(log.polls_performed("/nope"), 0u);
  EXPECT_EQ(log.triggered_polls("/nope"), 0u);
  EXPECT_EQ(log.polls_performed(), 0u);
  EXPECT_EQ(log.failed_polls(), 0u);
}

// All four object kinds, a coordinator and loss injection drive one
// engine; every indexed accessor must agree with a scan of the log it
// produced.
TEST(PollLog, EngineAccessorsMatchBruteForceScan) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig config;
  config.rtt = 0.5;
  config.loss_probability = 0.2;
  config.retry_delay = 3.0;
  config.seed = 9;
  PollingEngine engine(sim, origin, config);

  const Duration horizon = 2000.0;
  origin.attach_update_trace(
      "/t1", UpdateTrace("/t1", generate_periodic(40.0, 20.0, horizon),
                         horizon));
  origin.attach_update_trace(
      "/t2", UpdateTrace("/t2", generate_periodic(90.0, 45.0, horizon),
                         horizon));
  engine.add_temporal_object("/t1", std::make_unique<FixedPollPolicy>(25.0));
  engine.add_temporal_object(
      "/t2", std::make_unique<LimdPolicy>(
                 LimdPolicy::Config::paper_defaults(60.0, 600.0)));
  engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/t1", "/t2"}, 30.0));

  origin.attach_value_trace(
      "/v1", ValueTrace("/v1", 100.0, {{200.0, 104.0}, {900.0, 95.0}},
                        horizon));
  AdaptiveValueTtrPolicy::Config value_config;
  value_config.delta = 0.5;
  value_config.bounds = {10.0, 200.0};
  engine.add_value_object("/v1", value_config);

  origin.attach_value_trace(
      "/g1", ValueTrace("/g1", 50.0, {{300.0, 53.0}}, horizon));
  origin.attach_value_trace(
      "/g2", ValueTrace("/g2", 48.0, {{700.0, 44.0}}, horizon));
  VirtualObjectPolicy::Config virtual_config;
  virtual_config.delta = 0.5;
  virtual_config.bounds = {20.0, 200.0};
  engine.add_virtual_group(
      {"/g1", "/g2"},
      std::make_unique<VirtualObjectPolicy>(
          std::make_unique<DifferenceFunction>(), virtual_config));

  origin.attach_value_trace(
      "/p1", ValueTrace("/p1", 10.0, {{150.0, 12.5}}, horizon));
  origin.attach_value_trace(
      "/p2", ValueTrace("/p2", 11.0, {{450.0, 9.0}}, horizon));
  engine.add_partitioned_group(
      {"/p1", "/p2"},
      std::make_unique<PartitionedTolerancePolicy>(
          std::make_unique<DifferenceFunction>(),
          PartitionedTolerancePolicy::Config::paper_defaults(
              1.0, TtrBounds{15.0, 200.0})));

  engine.start();
  sim.run_until(horizon);

  const PollLog& log = engine.poll_log();
  ASSERT_GT(log.size(), 100u);
  EXPECT_GT(engine.failed_polls(), 0u);
  EXPECT_GT(engine.triggered_polls(), 0u);

  const std::vector<std::string> uris = {"/t1", "/t2", "/v1", "/g1",
                                         "/g2", "/p1", "/p2", "/absent"};
  expect_log_matches_scan(log, uris);
  for (const std::string& uri : uris) {
    SCOPED_TRACE(uri);
    EXPECT_EQ(engine.poll_completion_times(uri), log.completion_times(uri));
    EXPECT_EQ(engine.poll_snapshot_times(uri), log.snapshot_times(uri));
    EXPECT_EQ(engine.polls_performed(uri), log.polls_performed(uri));
    EXPECT_EQ(engine.triggered_polls(uri), log.triggered_polls(uri));
  }

  // ttr_series over a mixed registry: self-scheduled objects have series,
  // group-polled members and unknown uris answer empty instead of
  // aborting the run.
  EXPECT_FALSE(engine.ttr_series("/t1").empty());
  EXPECT_FALSE(engine.ttr_series("/v1").empty());
  EXPECT_FALSE(engine.ttr_series("/p1").empty());
  EXPECT_TRUE(engine.ttr_series("/g1").empty());
  EXPECT_TRUE(engine.ttr_series("/g2").empty());
  EXPECT_TRUE(engine.ttr_series("/absent").empty());
}

// ---- windowed retention ----------------------------------------------------

// Replay the same randomized stream into an unwindowed and a windowed log:
// every counter must agree exactly; only the retained series shrink.
TEST(PollLogRetention, CountersMatchUnwindowedExactly) {
  Rng rng(424242);
  const std::vector<std::string> uris = {"/a", "/b", "/c", "/d"};
  const PollCause causes[] = {PollCause::kInitial, PollCause::kScheduled,
                              PollCause::kTriggered, PollCause::kRetry,
                              PollCause::kRelay};
  PollLog unwindowed;
  PollLog windowed;
  windowed.set_retention_window(16);
  TimePoint t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    PollRecord record;
    t += rng.uniform(0.0, 5.0);
    record.snapshot_time = t;
    record.complete_time = t + 1.0;
    record.uri = uris[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(uris.size()) - 1))];
    record.cause = causes[rng.uniform_int(0, 4)];
    record.failed = rng.bernoulli(0.15);
    record.modified = !record.failed && rng.bernoulli(0.5);
    PollRecord copy = record;
    unwindowed.append(std::move(record));
    windowed.append(std::move(copy));
  }

  EXPECT_EQ(windowed.polls_performed(), unwindowed.polls_performed());
  EXPECT_EQ(windowed.triggered_polls(), unwindowed.triggered_polls());
  EXPECT_EQ(windowed.relay_refreshes(), unwindowed.relay_refreshes());
  EXPECT_EQ(windowed.initial_polls(), unwindowed.initial_polls());
  EXPECT_EQ(windowed.failed_polls(), unwindowed.failed_polls());
  for (const std::string& uri : uris) {
    SCOPED_TRACE(uri);
    EXPECT_EQ(windowed.polls_performed(uri), unwindowed.polls_performed(uri));
    EXPECT_EQ(windowed.triggered_polls(uri), unwindowed.triggered_polls(uri));
    EXPECT_EQ(windowed.relay_refreshes(uri), unwindowed.relay_refreshes(uri));
  }

  // The windowed log actually evicted (that is its point) ...
  EXPECT_LT(windowed.size(), unwindowed.size());
  windowed.compact();
  for (const std::string& uri : uris) {
    SCOPED_TRACE(uri);
    std::size_t live = 0;
    for (const PollRecord& record : windowed) {
      if (record.uri == uri) ++live;
    }
    EXPECT_LE(live, 16u);
    // ... and what it retains is exactly the newest suffix of the full
    // stream's per-uri series.
    const std::vector<TimePoint> full = unwindowed.completion_times(uri);
    const std::vector<TimePoint> kept = windowed.completion_times(uri);
    ASSERT_LE(kept.size(), full.size());
    EXPECT_TRUE(std::equal(kept.rbegin(), kept.rend(), full.rbegin()));
  }

  // Index invariants still hold on the compacted storage.
  for (const std::string& uri : uris) {
    const std::vector<std::size_t>& successful =
        windowed.successful_records(uri);
    for (std::size_t i = 0; i < successful.size(); ++i) {
      ASSERT_LT(successful[i], windowed.size());
      EXPECT_FALSE(windowed[successful[i]].failed);
      EXPECT_EQ(windowed[successful[i]].uri, uri);
      if (i > 0) EXPECT_GT(successful[i], successful[i - 1]);
    }
  }
}

TEST(PollLogRetention, WindowCanBeEnabledAfterTheFact) {
  PollLog log;
  for (int i = 0; i < 100; ++i) {
    PollRecord record;
    record.snapshot_time = record.complete_time = static_cast<double>(i);
    record.uri = "/only";
    record.cause = i == 0 ? PollCause::kInitial : PollCause::kScheduled;
    record.modified = true;
    log.append(std::move(record));
  }
  EXPECT_EQ(log.size(), 100u);
  log.set_retention_window(10);
  log.compact();
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.polls_performed("/only"), 99u);  // counters never rewind
  const std::vector<TimePoint> kept = log.completion_times("/only");
  ASSERT_EQ(kept.size(), 10u);
  EXPECT_EQ(kept.front(), 90.0);
  EXPECT_EQ(kept.back(), 99.0);
}

// A long-horizon engine run under a retention window: counters equal the
// unwindowed twin's, memory stays bounded.
TEST(PollLogRetention, EngineCountersSurviveEviction) {
  const Duration horizon = 50000.0;
  auto run = [&](std::size_t window) {
    Simulator sim;
    OriginServer origin(sim);
    origin.attach_update_trace(
        "/t", UpdateTrace("/t", generate_periodic(40.0, 20.0, horizon),
                          horizon));
    PollingEngine engine(sim, origin);
    engine.add_temporal_object("/t",
                               std::make_unique<FixedPollPolicy>(25.0));
    if (window > 0) {
      engine.set_poll_log_retention(window);
    }
    engine.start();
    sim.run_until(horizon);
    return engine.polls_performed("/t");
  };
  EXPECT_EQ(run(0), run(32));
}

}  // namespace
}  // namespace broadway

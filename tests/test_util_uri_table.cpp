#include "util/uri_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"

namespace broadway {
namespace {

TEST(UriTable, InternsDenselyInOrder) {
  UriTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.intern("/a"), 0u);
  EXPECT_EQ(table.intern("/b"), 1u);
  EXPECT_EQ(table.intern("/c"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(UriTable, InternIsIdempotent) {
  UriTable table;
  const ObjectId id = table.intern("/object");
  EXPECT_EQ(table.intern("/object"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(UriTable, FindDoesNotIntern) {
  UriTable table;
  EXPECT_EQ(table.find("/missing"), kInvalidObjectId);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains("/missing"));
  table.intern("/present");
  EXPECT_EQ(table.find("/present"), 0u);
  EXPECT_TRUE(table.contains("/present"));
}

TEST(UriTable, UriRoundTrips) {
  UriTable table;
  const ObjectId id = table.intern("/news/story.html");
  EXPECT_EQ(table.uri(id), "/news/story.html");
}

TEST(UriTable, InternedReferencesAreStableAcrossGrowth) {
  UriTable table;
  const std::string& first = table.uri(table.intern("/first"));
  const char* data = first.data();
  for (int i = 0; i < 10000; ++i) {
    table.intern("/filler/" + std::to_string(i));
  }
  // Deque storage: the original string never moved.
  EXPECT_EQ(first.data(), data);
  EXPECT_EQ(table.uri(0), "/first");
  EXPECT_EQ(table.size(), 10001u);
}

TEST(UriTable, FreezeRejectsNewUris) {
  UriTable table;
  const ObjectId a = table.intern("/a");
  EXPECT_FALSE(table.frozen());
  table.freeze();
  EXPECT_TRUE(table.frozen());
  // Interning a known uri degrades to a lookup...
  EXPECT_EQ(table.intern("/a"), a);
  // ...but a new uri is a setup bug, caught loudly.
  EXPECT_THROW(table.intern("/new"), CheckFailure);
  EXPECT_EQ(table.size(), 1u);
  // Read-only surface still works.
  EXPECT_EQ(table.find("/a"), a);
  EXPECT_EQ(table.find("/new"), kInvalidObjectId);
  EXPECT_EQ(table.uri(a), "/a");
}

TEST(UriTable, FreezeIsIdempotent) {
  UriTable table;
  table.intern("/x");
  table.freeze();
  table.freeze();
  EXPECT_TRUE(table.frozen());
  EXPECT_EQ(table.intern("/x"), 0u);
}

TEST(UriTable, FrozenTableIsSafeForConcurrentLookup) {
  UriTable table;
  constexpr int kUris = 256;
  for (int i = 0; i < kUris; ++i) {
    table.intern("/object/" + std::to_string(i));
  }
  table.freeze();
  // Hammer the read-only surface — including intern() of known uris, the
  // exact call the shard hot path makes — from several threads.  Run
  // under TSan this pins the "frozen => concurrent lookup is safe"
  // contract; without TSan it still checks the answers.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, &mismatches] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kUris; ++i) {
          const std::string uri = "/object/" + std::to_string(i);
          if (table.intern(uri) != static_cast<ObjectId>(i)) ++mismatches;
          if (table.find(uri) != static_cast<ObjectId>(i)) ++mismatches;
          if (table.uri(static_cast<ObjectId>(i)) != uri) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kUris));
}

}  // namespace
}  // namespace broadway

#include "util/uri_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace broadway {
namespace {

TEST(UriTable, InternsDenselyInOrder) {
  UriTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.intern("/a"), 0u);
  EXPECT_EQ(table.intern("/b"), 1u);
  EXPECT_EQ(table.intern("/c"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(UriTable, InternIsIdempotent) {
  UriTable table;
  const ObjectId id = table.intern("/object");
  EXPECT_EQ(table.intern("/object"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(UriTable, FindDoesNotIntern) {
  UriTable table;
  EXPECT_EQ(table.find("/missing"), kInvalidObjectId);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains("/missing"));
  table.intern("/present");
  EXPECT_EQ(table.find("/present"), 0u);
  EXPECT_TRUE(table.contains("/present"));
}

TEST(UriTable, UriRoundTrips) {
  UriTable table;
  const ObjectId id = table.intern("/news/story.html");
  EXPECT_EQ(table.uri(id), "/news/story.html");
}

TEST(UriTable, InternedReferencesAreStableAcrossGrowth) {
  UriTable table;
  const std::string& first = table.uri(table.intern("/first"));
  const char* data = first.data();
  for (int i = 0; i < 10000; ++i) {
    table.intern("/filler/" + std::to_string(i));
  }
  // Deque storage: the original string never moved.
  EXPECT_EQ(first.data(), data);
  EXPECT_EQ(table.uri(0), "/first");
  EXPECT_EQ(table.size(), 10001u);
}

}  // namespace
}  // namespace broadway

// Partitioned tolerance Mv policy and δ apportioning (paper §4.2).
#include "consistency/partitioned.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

TEST(ApportionTolerances, PaperTwoObjectFormula) {
  // δ_a = (r_b / (r_a + r_b))·δ and δ_b = (r_a / (r_a + r_b))·δ.
  const auto out = apportion_tolerances(1.0, {0.3, 0.1}, {1.0, -1.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 0.1 / 0.4, 1e-12);
  EXPECT_NEAR(out[1], 0.3 / 0.4, 1e-12);
}

TEST(ApportionTolerances, FasterObjectGetsSmallerShare) {
  const auto out = apportion_tolerances(2.0, {10.0, 1.0}, {1.0, -1.0});
  EXPECT_LT(out[0], out[1]);
}

TEST(ApportionTolerances, BudgetInvariantHolds) {
  // Σ|cᵢ|·δᵢ = δ for arbitrary inputs.
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
    std::vector<double> rates(n);
    std::vector<double> coefficients(n);
    for (std::size_t i = 0; i < n; ++i) {
      rates[i] = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.001, 10.0);
      coefficients[i] =
          (rng.bernoulli(0.5) ? 1.0 : -1.0) * rng.uniform(0.1, 3.0);
    }
    const double delta = rng.uniform(0.1, 10.0);
    const auto out = apportion_tolerances(delta, rates, coefficients);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GT(out[i], 0.0);
      total += std::abs(coefficients[i]) * out[i];
    }
    EXPECT_NEAR(total, delta, delta * 1e-9);
  }
}

TEST(ApportionTolerances, EqualRatesSplitEvenly) {
  const auto out = apportion_tolerances(1.0, {0.5, 0.5}, {1.0, -1.0});
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[1], 0.5, 1e-12);
}

TEST(ApportionTolerances, AllUnknownRatesSplitEvenly) {
  const auto out = apportion_tolerances(1.0, {0.0, 0.0}, {1.0, -1.0});
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[1], 0.5, 1e-12);
}

TEST(ApportionTolerances, UnknownRateTreatedAsSlow) {
  // The unmeasured object gets the larger share (it appears static).
  const auto out = apportion_tolerances(1.0, {1.0, 0.0}, {1.0, -1.0});
  EXPECT_GT(out[1], out[0]);
}

TEST(ApportionTolerances, CoefficientsScaleShares) {
  // f = 2a − b: object a's tolerance costs double.  Equal rates.
  const auto out = apportion_tolerances(1.0, {0.5, 0.5}, {2.0, -1.0});
  EXPECT_NEAR(2.0 * out[0] + 1.0 * out[1], 1.0, 1e-9);
  // Equal weights -> equal |c|·δ shares -> δ_a = 0.25, δ_b = 0.5.
  EXPECT_NEAR(out[0], 0.25, 1e-9);
  EXPECT_NEAR(out[1], 0.50, 1e-9);
}

TEST(ApportionTolerances, Validation) {
  EXPECT_THROW(apportion_tolerances(0.0, {1.0}, {1.0}), CheckFailure);
  EXPECT_THROW(apportion_tolerances(1.0, {}, {}), CheckFailure);
  EXPECT_THROW(apportion_tolerances(1.0, {1.0}, {1.0, 2.0}), CheckFailure);
  EXPECT_THROW(apportion_tolerances(1.0, {-1.0, 1.0}, {1.0, 1.0}),
               CheckFailure);
  EXPECT_THROW(apportion_tolerances(1.0, {1.0, 1.0}, {0.0, 1.0}),
               CheckFailure);  // zero coefficient
}

PartitionedTolerancePolicy::Config policy_config() {
  PartitionedTolerancePolicy::Config config;
  config.delta = 1.0;
  config.bounds = {5.0, 600.0};
  config.smoothing_w = 1.0;
  config.alpha = 1.0;
  return config;
}

std::unique_ptr<PartitionedTolerancePolicy> make_policy(
    PartitionedTolerancePolicy::Config config) {
  return std::make_unique<PartitionedTolerancePolicy>(
      std::make_unique<DifferenceFunction>(), config);
}

ValuePollObservation obs(TimePoint prev, TimePoint now, double prev_value,
                         double value) {
  ValuePollObservation out;
  out.previous_poll_time = prev;
  out.poll_time = now;
  out.previous_value = prev_value;
  out.value = value;
  return out;
}

TEST(PartitionedPolicy, RequiresLinearFunction) {
  EXPECT_THROW(PartitionedTolerancePolicy(std::make_unique<RatioFunction>(),
                                          policy_config()),
               CheckFailure);
}

TEST(PartitionedPolicy, InitialSplitIsEqual) {
  auto policy = make_policy(policy_config());
  EXPECT_EQ(policy->arity(), 2u);
  EXPECT_NEAR(policy->tolerance(0), 0.5, 1e-9);
  EXPECT_NEAR(policy->tolerance(1), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(policy->initial_ttr(0), 5.0);
}

TEST(PartitionedPolicy, ReapportionsTowardSlowObject) {
  auto policy = make_policy(policy_config());
  // Object 0 moves fast, object 1 barely moves.
  policy->next_ttr(0, obs(0.0, 10.0, 100.0, 101.0));  // r0 = 0.1
  policy->next_ttr(1, obs(0.0, 10.0, 36.0, 36.01));   // r1 = 0.001
  EXPECT_LT(policy->tolerance(0), policy->tolerance(1));
  EXPECT_NEAR(policy->tolerance(0) + policy->tolerance(1), 1.0, 1e-9);
}

TEST(PartitionedPolicy, BudgetInvariantThroughOperation) {
  auto policy = make_policy(policy_config());
  Rng rng(17);
  double v0 = 100.0;
  double v1 = 36.0;
  TimePoint t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 10.0;
    const double old0 = v0;
    const double old1 = v1;
    v0 += rng.uniform(-0.5, 0.5);
    v1 += rng.uniform(-0.05, 0.05);
    policy->next_ttr(0, obs(t - 10.0, t, old0, v0));
    policy->next_ttr(1, obs(t - 10.0, t, old1, v1));
    EXPECT_NEAR(policy->tolerance(0) + policy->tolerance(1), 1.0, 1e-9);
    EXPECT_GT(policy->tolerance(0), 0.0);
    EXPECT_GT(policy->tolerance(1), 0.0);
  }
}

TEST(PartitionedPolicy, FasterObjectPolledMoreOften) {
  auto policy = make_policy(policy_config());
  // Feed matching observations; the fast object's TTR must come out lower.
  const Duration ttr_fast = policy->next_ttr(0, obs(0.0, 10.0, 100.0, 101.0));
  const Duration ttr_slow = policy->next_ttr(1, obs(0.0, 10.0, 36.0, 36.001));
  EXPECT_LT(ttr_fast, ttr_slow);
}

TEST(PartitionedPolicy, ReapportionIntervalThrottles) {
  auto config = policy_config();
  config.reapportion_interval = 1000.0;
  auto policy = make_policy(config);
  policy->next_ttr(0, obs(0.0, 10.0, 100.0, 101.0));
  const double tolerance_after_first = policy->tolerance(0);
  // Well within the throttle window: rates change but shares must not.
  policy->next_ttr(1, obs(0.0, 20.0, 36.0, 37.0));
  EXPECT_DOUBLE_EQ(policy->tolerance(0), tolerance_after_first);
}

TEST(PartitionedPolicy, ResetRestoresEqualSplit) {
  auto policy = make_policy(policy_config());
  policy->next_ttr(0, obs(0.0, 10.0, 100.0, 101.0));
  policy->next_ttr(1, obs(0.0, 10.0, 36.0, 36.001));
  EXPECT_NE(policy->tolerance(0), policy->tolerance(1));
  policy->reset();
  EXPECT_NEAR(policy->tolerance(0), 0.5, 1e-9);
  EXPECT_NEAR(policy->tolerance(1), 0.5, 1e-9);
}

TEST(PartitionedPolicy, ThreeObjectWeightedSum) {
  // n-object generalisation with a weighted index.
  PartitionedTolerancePolicy policy(
      std::make_unique<WeightedSumFunction>(
          std::vector<double>{0.5, 0.3, 0.2}),
      policy_config());
  EXPECT_EQ(policy.arity(), 3u);
  double total = 0.0;
  const std::vector<double> coefficients = {0.5, 0.3, 0.2};
  for (std::size_t i = 0; i < 3; ++i) {
    total += coefficients[i] * policy.tolerance(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PartitionedPolicy, IndexBoundsChecked) {
  auto policy = make_policy(policy_config());
  EXPECT_THROW(policy->tolerance(2), CheckFailure);
  EXPECT_THROW(policy->initial_ttr(5), CheckFailure);
}

}  // namespace
}  // namespace broadway

// Harness-level behaviour: determinism of experiment runners and the
// report-rendering helpers the benches rely on.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(Harness, LimdRunsAreDeterministic) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  const auto first = run_limd_individual(trace, config);
  const auto second = run_limd_individual(trace, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_DOUBLE_EQ(first.fidelity.fidelity_time(),
                   second.fidelity.fidelity_time());
  ASSERT_EQ(first.ttr_series.size(), second.ttr_series.size());
}

TEST(Harness, MutualRunsAreDeterministic) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.delta_mutual = minutes(5.0);
  config.approach = MutualApproach::kHeuristic;
  const auto first = run_mutual_temporal(a, b, config);
  const auto second = run_mutual_temporal(a, b, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_EQ(first.triggered, second.triggered);
  EXPECT_DOUBLE_EQ(first.mutual.fidelity_time(),
                   second.mutual.fidelity_time());
}

TEST(Harness, ValueRunsAreDeterministic) {
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  MutualValueRunConfig config;
  config.delta = 1.0;
  config.approach = MutualValueApproach::kPartitioned;
  const auto first = run_mutual_value(a, b, config);
  const auto second = run_mutual_value(a, b, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_EQ(first.mutual.violations, second.mutual.violations);
}

TEST(Harness, SeriesOnlyCollectedWhenAsked) {
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  MutualValueRunConfig config;
  config.delta = 1.0;
  config.collect_series = false;
  EXPECT_TRUE(run_mutual_value(a, b, config).series.empty());
  config.collect_series = true;
  EXPECT_FALSE(run_mutual_value(a, b, config).series.empty());
}

TEST(Harness, MutualRunReportsIndividualFidelity) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.approach = MutualApproach::kTriggered;
  const auto result = run_mutual_temporal(a, b, config);
  EXPECT_GT(result.individual_a.windows, 0u);
  EXPECT_GT(result.individual_b.windows, 0u);
  EXPECT_FALSE(result.poll_log.empty());
}

// ---- ScenarioBase knobs ----------------------------------------------------

TEST(Harness, DurationKnobTruncatesTheRun) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  const auto full = run_limd_individual(trace, config);
  config.duration = trace.duration() / 2.0;
  const auto half = run_limd_individual(trace, config);
  EXPECT_LT(half.polls, full.polls);
  EXPECT_GT(half.polls, 0u);
}

TEST(Harness, SchedulerKnobIsResultInvariant) {
  // The calendar queue is pinned event-for-event against the heap, so an
  // explicit backend override must not change any result.
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  config.scheduler = SchedulerBackend::kBinaryHeap;
  const auto heap = run_limd_individual(trace, config);
  config.scheduler = SchedulerBackend::kCalendar;
  const auto calendar = run_limd_individual(trace, config);
  EXPECT_EQ(heap.polls, calendar.polls);
  EXPECT_EQ(heap.ttr_series, calendar.ttr_series);
  EXPECT_DOUBLE_EQ(heap.fidelity.fidelity_time(),
                   calendar.fidelity.fidelity_time());
}

TEST(Harness, RetentionKnobKeepsPollCountsExact) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  const auto unlimited = run_limd_individual(trace, config);
  config.poll_log_retention = 4;
  const auto windowed = run_limd_individual(trace, config);
  // Counters never rewind under eviction; only record series shorten.
  EXPECT_EQ(windowed.polls, unlimited.polls);
}

// ---- fleet + client traffic ------------------------------------------------

namespace client_fleet {

std::vector<UpdateTrace> synthetic_traces() {
  std::vector<UpdateTrace> traces;
  for (int o = 0; o < 3; ++o) {
    std::vector<TimePoint> updates;
    for (TimePoint t = 120.0 + 70.0 * o; t < 6000.0; t += 240.0 + 35.0 * o) {
      updates.push_back(t);
    }
    traces.push_back(UpdateTrace("/object/" + std::to_string(o),
                                 std::move(updates), 6000.0));
  }
  return traces;
}

ClientFleetRunConfig config() {
  ClientFleetRunConfig config;
  config.fleet.proxies = 3;
  config.fleet.cooperative_push = true;
  config.fleet.relay_latency = 0.7;
  config.fleet.base.delta = 600.0;
  config.fleet.base.engine.rtt = 0.1;
  config.fleet.base.engine.loss_probability = 0.05;
  config.fleet.base.engine.retry_delay = 2.0;
  config.fleet.base.seed = 71;
  config.client.request_rate = 1.0;
  config.transactions.rate = 0.02;
  config.transactions.objects = 2;
  config.transactions.delta = 300.0;
  return config;
}

}  // namespace client_fleet

TEST(Harness, ClientFleetRunReportsClientSideMetrics) {
  const auto traces = client_fleet::synthetic_traces();
  const auto result =
      run_fleet_client_temporal(traces, client_fleet::config());
  EXPECT_GT(result.fleet.origin_polls, 0u);
  EXPECT_GT(result.clients.requests, 0u);
  EXPECT_GT(result.clients.hit_rate(), 0.0);
  EXPECT_EQ(result.clients.fresh + result.clients.stale, result.clients.hits);
  ASSERT_EQ(result.per_proxy_clients.size(), 3u);
  std::uint64_t sum = 0;
  for (const ClientMetrics& per : result.per_proxy_clients) {
    sum += per.requests;
  }
  EXPECT_EQ(sum, result.clients.requests);
  EXPECT_GT(result.transactions.transactions, 0u);
  EXPECT_EQ(result.transactions.complete + result.transactions.incomplete,
            result.transactions.transactions);
}

TEST(Harness, ClientFleetRunIsIdenticalSingleSimAndSharded) {
  const auto traces = client_fleet::synthetic_traces();
  ClientFleetRunConfig config = client_fleet::config();
  const auto reference = run_fleet_client_temporal(traces, config);
  config.threads = 4;
  const auto sharded = run_fleet_client_temporal(traces, config);

  EXPECT_EQ(reference.fleet.origin_requests, sharded.fleet.origin_requests);
  EXPECT_EQ(reference.fleet.origin_polls, sharded.fleet.origin_polls);
  EXPECT_EQ(reference.fleet.relays_applied, sharded.fleet.relays_applied);
  EXPECT_EQ(reference.fleet.mean_fidelity_time,
            sharded.fleet.mean_fidelity_time);
  EXPECT_EQ(reference.clients.requests, sharded.clients.requests);
  EXPECT_EQ(reference.clients.hits, sharded.clients.hits);
  EXPECT_EQ(reference.clients.stale, sharded.clients.stale);
  EXPECT_EQ(reference.clients.age.mean(), sharded.clients.age.mean());
  EXPECT_EQ(reference.clients.staleness.sum(), sharded.clients.staleness.sum());
  EXPECT_EQ(reference.transactions.transactions,
            sharded.transactions.transactions);
  EXPECT_EQ(reference.transactions.violations,
            sharded.transactions.violations);
  EXPECT_EQ(reference.transactions.spread.mean(),
            sharded.transactions.spread.mean());
}

TEST(Reporting, BannerFormat) {
  std::ostringstream os;
  print_banner(os, "Table 9");
  EXPECT_EQ(os.str(), "\n== Table 9 ==\n");
}

TEST(Reporting, AsciiChartContainsAxesAndGlyphs) {
  std::vector<std::pair<double, double>> series;
  for (int i = 0; i <= 10; ++i) {
    series.emplace_back(i, i * i);
  }
  AsciiChartOptions options;
  options.width = 40;
  options.height = 10;
  options.x_label = "x";
  const std::string chart = render_ascii_chart(series, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);  // y max
  EXPECT_NE(chart.find('+'), std::string::npos);    // axis corners
}

TEST(Reporting, AsciiChartTwoSeriesUsesDistinctGlyphs) {
  std::vector<std::pair<double, double>> up, down;
  for (int i = 0; i <= 10; ++i) {
    up.emplace_back(i, i);
    down.emplace_back(i, 10 - i);
  }
  AsciiChartOptions options;
  options.width = 40;
  options.height = 10;
  const std::string chart = render_ascii_chart2(up, down, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);  // the crossing point
}

TEST(Reporting, EmptySeriesHandled) {
  AsciiChartOptions options;
  EXPECT_EQ(render_ascii_chart({}, options), "(empty series)\n");
}

}  // namespace
}  // namespace broadway

// Harness-level behaviour: determinism of experiment runners and the
// report-rendering helpers the benches rely on.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(Harness, LimdRunsAreDeterministic) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  const auto first = run_limd_individual(trace, config);
  const auto second = run_limd_individual(trace, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_DOUBLE_EQ(first.fidelity.fidelity_time(),
                   second.fidelity.fidelity_time());
  ASSERT_EQ(first.ttr_series.size(), second.ttr_series.size());
}

TEST(Harness, MutualRunsAreDeterministic) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.delta_mutual = minutes(5.0);
  config.approach = MutualApproach::kHeuristic;
  const auto first = run_mutual_temporal(a, b, config);
  const auto second = run_mutual_temporal(a, b, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_EQ(first.triggered, second.triggered);
  EXPECT_DOUBLE_EQ(first.mutual.fidelity_time(),
                   second.mutual.fidelity_time());
}

TEST(Harness, ValueRunsAreDeterministic) {
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  MutualValueRunConfig config;
  config.delta = 1.0;
  config.approach = MutualValueApproach::kPartitioned;
  const auto first = run_mutual_value(a, b, config);
  const auto second = run_mutual_value(a, b, config);
  EXPECT_EQ(first.polls, second.polls);
  EXPECT_EQ(first.mutual.violations, second.mutual.violations);
}

TEST(Harness, SeriesOnlyCollectedWhenAsked) {
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  MutualValueRunConfig config;
  config.delta = 1.0;
  config.collect_series = false;
  EXPECT_TRUE(run_mutual_value(a, b, config).series.empty());
  config.collect_series = true;
  EXPECT_FALSE(run_mutual_value(a, b, config).series.empty());
}

TEST(Harness, MutualRunReportsIndividualFidelity) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.approach = MutualApproach::kTriggered;
  const auto result = run_mutual_temporal(a, b, config);
  EXPECT_GT(result.individual_a.windows, 0u);
  EXPECT_GT(result.individual_b.windows, 0u);
  EXPECT_FALSE(result.poll_log.empty());
}

TEST(Reporting, BannerFormat) {
  std::ostringstream os;
  print_banner(os, "Table 9");
  EXPECT_EQ(os.str(), "\n== Table 9 ==\n");
}

TEST(Reporting, AsciiChartContainsAxesAndGlyphs) {
  std::vector<std::pair<double, double>> series;
  for (int i = 0; i <= 10; ++i) {
    series.emplace_back(i, i * i);
  }
  AsciiChartOptions options;
  options.width = 40;
  options.height = 10;
  options.x_label = "x";
  const std::string chart = render_ascii_chart(series, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);  // y max
  EXPECT_NE(chart.find('+'), std::string::npos);    // axis corners
}

TEST(Reporting, AsciiChartTwoSeriesUsesDistinctGlyphs) {
  std::vector<std::pair<double, double>> up, down;
  for (int i = 0; i <= 10; ++i) {
    up.emplace_back(i, i);
    down.emplace_back(i, 10 - i);
  }
  AsciiChartOptions options;
  options.width = 40;
  options.height = 10;
  const std::string chart = render_ascii_chart2(up, down, options);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);  // the crossing point
}

TEST(Reporting, EmptySeriesHandled) {
  AsciiChartOptions options;
  EXPECT_EQ(render_ascii_chart({}, options), "(empty series)\n");
}

}  // namespace
}  // namespace broadway

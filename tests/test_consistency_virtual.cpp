// Virtual-object Mv policy (paper §4.2, Eqs. 11–12).
#include "consistency/virtual_object.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/check.h"

namespace broadway {
namespace {

VirtualObjectPolicy::Config test_config() {
  VirtualObjectPolicy::Config config;
  config.delta = 1.0;
  config.bounds = {5.0, 600.0};
  config.smoothing_w = 1.0;  // raw Eq. 12 visible
  config.alpha = 1.0;
  config.gamma_backoff = 0.5;
  config.gamma_recovery = 1.1;
  config.gamma_min = 0.05;
  return config;
}

std::unique_ptr<VirtualObjectPolicy> make_policy(
    VirtualObjectPolicy::Config config) {
  return std::make_unique<VirtualObjectPolicy>(
      std::make_unique<DifferenceFunction>(), config);
}

TEST(VirtualObjectPolicy, FirstPollReturnsMin) {
  auto policy = make_policy(test_config());
  const double values[] = {160.0, 36.0};
  EXPECT_DOUBLE_EQ(policy->next_ttr(0.0, values), 5.0);
  EXPECT_DOUBLE_EQ(policy->last_f(), 124.0);
  EXPECT_DOUBLE_EQ(policy->current_gamma(), 1.0);
}

TEST(VirtualObjectPolicy, Eq12TtrIsGammaDeltaOverRate) {
  auto policy = make_policy(test_config());
  const double first[] = {160.0, 36.0};
  policy->next_ttr(0.0, first);
  // f moves 124 -> 124.5 in 10 s: r = 0.05, drift 0.5 < δ=1 -> γ grows to 1
  // (capped).  TTR = 1 * 1/0.05 = 20.
  const double second[] = {160.5, 36.0};
  EXPECT_DOUBLE_EQ(policy->next_ttr(10.0, second), 20.0);
  EXPECT_DOUBLE_EQ(policy->current_gamma(), 1.0);
}

TEST(VirtualObjectPolicy, GammaBacksOffOnViolationEvidence) {
  auto policy = make_policy(test_config());
  const double first[] = {160.0, 36.0};
  policy->next_ttr(0.0, first);
  // f jumps by 2 > δ=1 across the interval: guarantee was violated.
  const double second[] = {162.0, 36.0};
  policy->next_ttr(10.0, second);
  EXPECT_DOUBLE_EQ(policy->current_gamma(), 0.5);
  // TTR shrinks accordingly: r = 0.2, TTR = 0.5 * 1/0.2 = 2.5 -> clamp 5.
  EXPECT_DOUBLE_EQ(policy->current_ttr(), 5.0);
}

TEST(VirtualObjectPolicy, GammaRecoversGradually) {
  auto policy = make_policy(test_config());
  const double v0[] = {160.0, 36.0};
  policy->next_ttr(0.0, v0);
  const double v1[] = {162.0, 36.0};  // violation: γ -> 0.5
  policy->next_ttr(10.0, v1);
  double expected = 0.5;
  double base = 162.0;
  TimePoint t = 10.0;
  for (int i = 0; i < 5; ++i) {
    base += 0.2;  // small drift, no violation
    t += 10.0;
    const double values[] = {base, 36.0};
    policy->next_ttr(t, values);
    expected = std::min(1.0, expected * 1.1);
    EXPECT_NEAR(policy->current_gamma(), expected, 1e-12);
  }
}

TEST(VirtualObjectPolicy, GammaFloorHolds) {
  VirtualObjectPolicy::Config config = test_config();
  config.gamma_min = 0.2;
  auto policy = make_policy(config);
  double base = 160.0;
  TimePoint t = 0.0;
  const double v0[] = {base, 36.0};
  policy->next_ttr(t, v0);
  for (int i = 0; i < 10; ++i) {
    base += 5.0;  // repeated violations
    t += 10.0;
    const double values[] = {base, 36.0};
    policy->next_ttr(t, values);
  }
  EXPECT_DOUBLE_EQ(policy->current_gamma(), 0.2);
}

TEST(VirtualObjectPolicy, FlatFunctionBacksOffGeometrically) {
  auto policy = make_policy(test_config());  // flat_growth = 2
  const double values[] = {160.0, 36.0};
  policy->next_ttr(0.0, values);            // TTR_min = 5
  EXPECT_DOUBLE_EQ(policy->next_ttr(5.0, values), 10.0);
  EXPECT_DOUBLE_EQ(policy->next_ttr(15.0, values), 20.0);
  EXPECT_DOUBLE_EQ(policy->next_ttr(35.0, values), 40.0);
}

TEST(VirtualObjectPolicy, ResetRestoresGammaAndTtr) {
  auto policy = make_policy(test_config());
  const double v0[] = {160.0, 36.0};
  policy->next_ttr(0.0, v0);
  const double v1[] = {170.0, 36.0};
  policy->next_ttr(10.0, v1);
  EXPECT_LT(policy->current_gamma(), 1.0);
  policy->reset();
  EXPECT_DOUBLE_EQ(policy->current_gamma(), 1.0);
  EXPECT_DOUBLE_EQ(policy->current_ttr(), 5.0);
}

TEST(VirtualObjectPolicy, ArityEnforced) {
  auto policy = make_policy(test_config());
  const double three[] = {1.0, 2.0, 3.0};
  EXPECT_THROW(policy->next_ttr(0.0, three), CheckFailure);
}

TEST(VirtualObjectPolicy, Validation) {
  EXPECT_THROW(VirtualObjectPolicy(nullptr, test_config()), CheckFailure);
  auto config = test_config();
  config.gamma_backoff = 1.0;
  EXPECT_THROW(make_policy(config), CheckFailure);
  config = test_config();
  config.gamma_recovery = 0.9;
  EXPECT_THROW(make_policy(config), CheckFailure);
  config = test_config();
  config.delta = 0.0;
  EXPECT_THROW(make_policy(config), CheckFailure);
}

}  // namespace
}  // namespace broadway

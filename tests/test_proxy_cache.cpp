#include "proxy/cache.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

CacheEntry entry(const std::string& uri, TimePoint snapshot) {
  CacheEntry out;
  out.uri = uri;
  out.snapshot_time = snapshot;
  out.stored_time = snapshot;
  out.body = "body@" + std::to_string(snapshot);
  return out;
}

TEST(ProxyCache, StoreAndFind) {
  ProxyCache cache;
  cache.store(entry("/a", 10.0));
  EXPECT_TRUE(cache.contains("/a"));
  EXPECT_EQ(cache.size(), 1u);
  const CacheEntry* found = cache.find("/a");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->snapshot_time, 10.0);
  EXPECT_EQ(cache.find("/missing"), nullptr);
}

TEST(ProxyCache, RefreshReplacesAndCountsRefreshes) {
  ProxyCache cache;
  cache.store(entry("/a", 10.0));
  cache.store(entry("/a", 20.0));
  cache.store(entry("/a", 30.0));
  const CacheEntry& current = cache.at("/a");
  EXPECT_DOUBLE_EQ(current.snapshot_time, 30.0);
  EXPECT_EQ(current.refresh_count, 2u);
}

TEST(ProxyCache, MonotonicityEnforced) {
  // Paper §2: cached versions must increase monotonically.
  ProxyCache cache;
  cache.store(entry("/a", 20.0));
  EXPECT_THROW(cache.store(entry("/a", 10.0)), CheckFailure);
  // Same-instant refresh is allowed (triggered poll at the same time).
  EXPECT_NO_THROW(cache.store(entry("/a", 20.0)));
}

TEST(ProxyCache, AtThrowsOnMiss) {
  ProxyCache cache;
  EXPECT_THROW(cache.at("/nope"), CheckFailure);
}

TEST(ProxyCache, HitMissAccounting) {
  ProxyCache cache;
  cache.store(entry("/a", 1.0));
  EXPECT_NE(cache.lookup_counted("/a"), nullptr);
  EXPECT_EQ(cache.lookup_counted("/b"), nullptr);
  EXPECT_NE(cache.lookup_counted("/a"), nullptr);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ProxyCache, UrisAndClear) {
  ProxyCache cache;
  cache.store(entry("/b", 1.0));
  cache.store(entry("/a", 1.0));
  EXPECT_EQ(cache.uris(), (std::vector<std::string>{"/a", "/b"}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains("/a"));
}

TEST(ProxyCache, RejectsAnonymousEntry) {
  ProxyCache cache;
  CacheEntry anonymous;
  EXPECT_THROW(cache.store(anonymous), CheckFailure);
}

}  // namespace
}  // namespace broadway

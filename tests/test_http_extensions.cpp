#include "http/extensions.h"

#include <gtest/gtest.h>

namespace broadway {
namespace {

TEST(Extensions, LastModifiedPrefersPreciseHeader) {
  Headers headers;
  set_last_modified(headers, 3661.125);
  // Both headers stamped.
  EXPECT_TRUE(headers.has(kHdrLastModified));
  EXPECT_TRUE(headers.has(kHdrLastModifiedPrecise));
  EXPECT_NEAR(*get_last_modified(headers), 3661.125, 1e-3);
  // Without the precise header we fall back to whole seconds.
  headers.remove(kHdrLastModifiedPrecise);
  EXPECT_DOUBLE_EQ(*get_last_modified(headers), 3661.0);
}

TEST(Extensions, IfModifiedSinceRoundTrip) {
  Headers headers;
  set_if_modified_since(headers, 42.75);
  EXPECT_NEAR(*get_if_modified_since(headers), 42.75, 1e-3);
  Headers empty;
  EXPECT_FALSE(get_if_modified_since(empty).has_value());
}

TEST(Extensions, ModificationHistoryRoundTrip) {
  Headers headers;
  set_modification_history(headers, {10.5, 20.25, 30.0});
  const auto history = get_modification_history(headers);
  ASSERT_TRUE(history.has_value());
  ASSERT_EQ(history->size(), 3u);
  EXPECT_NEAR((*history)[0], 10.5, 1e-3);
  EXPECT_NEAR((*history)[2], 30.0, 1e-3);
}

TEST(Extensions, EmptyHistoryRoundTrip) {
  Headers headers;
  set_modification_history(headers, {});
  const auto history = get_modification_history(headers);
  ASSERT_TRUE(history.has_value());
  EXPECT_TRUE(history->empty());
}

TEST(Extensions, AbsentHistoryDecodesEmpty) {
  Headers headers;
  const auto history = get_modification_history(headers);
  ASSERT_TRUE(history.has_value());
  EXPECT_TRUE(history->empty());
}

TEST(Extensions, MalformedHistoryRejected) {
  Headers headers;
  headers.set(kHdrModificationHistory, "1.0, banana, 3.0");
  EXPECT_FALSE(get_modification_history(headers).has_value());
  headers.set(kHdrModificationHistory, "5.0, 3.0");  // descending
  EXPECT_FALSE(get_modification_history(headers).has_value());
}

TEST(Extensions, DeltaToleranceRoundTrip) {
  Headers headers;
  set_delta_tolerance(headers, 600.0);
  EXPECT_NEAR(*get_delta_tolerance(headers), 600.0, 1e-3);
  Headers empty;
  EXPECT_FALSE(get_delta_tolerance(empty).has_value());
}

TEST(Extensions, GroupDirectives) {
  Headers headers;
  set_group(headers, "breaking-news", 300.0);
  EXPECT_EQ(*get_group_id(headers), "breaking-news");
  EXPECT_NEAR(*get_group_delta(headers), 300.0, 1e-3);
  Headers empty;
  EXPECT_FALSE(get_group_id(empty).has_value());
  EXPECT_FALSE(get_group_delta(empty).has_value());
}

TEST(Extensions, ObjectValueFullPrecision) {
  Headers headers;
  set_object_value(headers, 160.0625);  // a sixteenth: exact in binary
  EXPECT_DOUBLE_EQ(*get_object_value(headers), 160.0625);
  set_object_value(headers, 36.11);
  EXPECT_DOUBLE_EQ(*get_object_value(headers), 36.11);
  Headers empty;
  EXPECT_FALSE(get_object_value(empty).has_value());
}

TEST(Extensions, ObjectValueMalformed) {
  Headers headers;
  headers.set(kHdrObjectValue, "not-a-price");
  EXPECT_FALSE(get_object_value(headers).has_value());
}

}  // namespace
}  // namespace broadway

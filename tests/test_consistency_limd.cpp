// LIMD case-by-case behaviour (paper §3.1).
#include "consistency/limd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "consistency/fixed_poll.h"
#include "util/check.h"

namespace broadway {
namespace {

LimdPolicy::Config test_config() {
  // Δ = 60 s, TTR in [60, 600], paper's l/eps, fixed m for predictability.
  LimdPolicy::Config config;
  config.delta = 60.0;
  config.bounds = TtrBounds::from_delta(60.0, 600.0);
  config.linear_increase = 0.2;
  config.epsilon = 0.02;
  config.adaptive_m = false;
  config.multiplicative_decrease = 0.5;
  return config;
}

TemporalPollObservation unchanged(TimePoint prev, TimePoint now) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = false;
  return obs;
}

TemporalPollObservation changed(TimePoint prev, TimePoint now,
                                std::vector<TimePoint> history) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = true;
  obs.last_modified = history.back();
  obs.history = std::move(history);
  return obs;
}

TEST(LimdPolicy, StartsAtTtrMin) {
  LimdPolicy policy(test_config());
  EXPECT_DOUBLE_EQ(policy.initial_ttr(), 60.0);
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 60.0);
}

TEST(LimdPolicy, Case1LinearIncreaseOnNoChange) {
  LimdPolicy policy(test_config());
  const Duration ttr = policy.next_ttr(unchanged(0.0, 60.0));
  EXPECT_DOUBLE_EQ(ttr, 60.0 * 1.2);  // Eq. 6
  EXPECT_EQ(policy.last_case(), LimdCase::kNoChange);
}

TEST(LimdPolicy, Case1GrowthIsClampedAtTtrMax) {
  LimdPolicy policy(test_config());
  TimePoint t = 0.0;
  Duration ttr = policy.initial_ttr();
  for (int i = 0; i < 30; ++i) {
    const TimePoint next = t + ttr;
    ttr = policy.next_ttr(unchanged(t, next));
    t = next;
    EXPECT_LE(ttr, 600.0);
    EXPECT_GE(ttr, 60.0);
  }
  EXPECT_DOUBLE_EQ(ttr, 600.0);  // static object converges to TTR_max
}

TEST(LimdPolicy, Case2MultiplicativeDecreaseOnViolation) {
  LimdPolicy policy(test_config());
  // Grow a little first.
  Duration ttr = policy.next_ttr(unchanged(0.0, 60.0));  // 72
  ttr = policy.next_ttr(unchanged(60.0, 132.0));         // 86.4
  // Violation: update at 140, next poll at 280 -> out-sync 140 > 60.
  ttr = policy.next_ttr(changed(132.0, 280.0, {140.0}));
  EXPECT_EQ(policy.last_case(), LimdCase::kViolation);
  // Eq. 7 gives 86.4 * 0.5 = 43.2, clamped up to TTR_min = 60.
  EXPECT_DOUBLE_EQ(ttr, 60.0);
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 60.0);
}

TEST(LimdPolicy, Case2AdaptiveMScalesWithOutSyncDepth) {
  LimdPolicy::Config config = test_config();
  config.adaptive_m = true;
  config.bounds = TtrBounds::from_delta(60.0, 6000.0);
  // Disable Case 4 so the long quiet spell below exercises Case 2.
  config.idle_reset_threshold = 1e9;
  LimdPolicy policy(config);
  // Grow to a large TTR with quiet polls.
  TimePoint t = 0.0;
  Duration ttr = policy.initial_ttr();
  for (int i = 0; i < 20; ++i) {
    const TimePoint next = t + ttr;
    ttr = policy.next_ttr(unchanged(t, next));
    t = next;
  }
  const Duration before = ttr;
  // Deep violation: out-sync = 120 -> m = 60/120 = 0.5 exactly.
  ttr = policy.next_ttr(changed(t, t + 200.0, {t + 80.0}));
  EXPECT_EQ(policy.last_case(), LimdCase::kViolation);
  EXPECT_NEAR(ttr, before * 0.5, 1e-9);
}

TEST(LimdPolicy, Case3EpsilonFineTuneOnChangeWithoutViolation) {
  LimdPolicy policy(test_config());
  // Update at 70, poll at 120: out-sync 50 < 60, no violation.
  const Duration ttr = policy.next_ttr(changed(60.0, 120.0, {70.0}));
  EXPECT_EQ(policy.last_case(), LimdCase::kChangeNoViolation);
  EXPECT_DOUBLE_EQ(ttr, 60.0 * 1.02);  // Eq. 8
}

TEST(LimdPolicy, Case4IdleResetAfterLongQuietSpell) {
  LimdPolicy::Config config = test_config();
  config.idle_reset_threshold = 500.0;
  LimdPolicy policy(config);
  // Quiet growth.
  Duration ttr = policy.initial_ttr();
  TimePoint t = 0.0;
  for (int i = 0; i < 10; ++i) {
    const TimePoint next = t + ttr;
    ttr = policy.next_ttr(unchanged(t, next));
    t = next;
  }
  EXPECT_GT(policy.current_ttr(), 200.0);
  // First update after > 500 s of silence: reset to TTR_min even though
  // this is also a violation.
  const TimePoint update = t + 50.0;
  ttr = policy.next_ttr(changed(t, t + 300.0, {update}));
  EXPECT_EQ(policy.last_case(), LimdCase::kIdleReset);
  EXPECT_DOUBLE_EQ(ttr, 60.0);
}

TEST(LimdPolicy, Case4DefaultThresholdIsTtrMax) {
  LimdPolicy policy(test_config());  // TTR_max = 600
  // Update after 700 s of quiet: idle reset.
  const Duration ttr = policy.next_ttr(changed(650.0, 710.0, {700.0}));
  EXPECT_EQ(policy.last_case(), LimdCase::kIdleReset);
  EXPECT_DOUBLE_EQ(ttr, 60.0);
}

TEST(LimdPolicy, QuickUpdateIsNotIdleReset) {
  LimdPolicy policy(test_config());
  // Updates 100 s apart — below the 600 s idle threshold.
  policy.next_ttr(changed(60.0, 120.0, {100.0}));
  EXPECT_EQ(policy.last_case(), LimdCase::kChangeNoViolation);
  policy.next_ttr(changed(120.0, 230.0, {200.0}));
  EXPECT_NE(policy.last_case(), LimdCase::kIdleReset);
}

TEST(LimdPolicy, ResetRestoresInitialState) {
  LimdPolicy policy(test_config());
  policy.next_ttr(unchanged(0.0, 60.0));
  policy.next_ttr(unchanged(60.0, 132.0));
  EXPECT_GT(policy.current_ttr(), 60.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 60.0);
  EXPECT_FALSE(policy.last_case().has_value());
}

TEST(LimdPolicy, TtrAlwaysWithinBoundsProperty) {
  // Sweep a mix of observations; the TTR must never escape its bounds.
  LimdPolicy::Config config = test_config();
  config.adaptive_m = true;
  LimdPolicy policy(config);
  TimePoint t = 0.0;
  TimePoint update = 30.0;
  for (int i = 0; i < 200; ++i) {
    const Duration ttr_before = policy.current_ttr();
    const TimePoint next = t + ttr_before;
    Duration ttr;
    if (i % 3 == 0) {
      ttr = policy.next_ttr(unchanged(t, next));
    } else {
      update = std::min(next - 1.0, update + 40.0 + (i % 7) * 25.0);
      if (update <= t) update = t + 1.0;
      ttr = policy.next_ttr(changed(t, next, {update}));
    }
    EXPECT_GE(ttr, config.bounds.min);
    EXPECT_LE(ttr, config.bounds.max);
    t = next;
  }
}

TEST(LimdPolicy, ConfigValidation) {
  LimdPolicy::Config config = test_config();
  config.linear_increase = 0.0;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
  config = test_config();
  config.linear_increase = 1.5;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
  config = test_config();
  config.multiplicative_decrease = 1.0;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
  config = test_config();
  config.epsilon = -0.1;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
  config = test_config();
  config.delta = 0.0;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
}

// Closed-loop demand feedback (Config::read_boost): client reads served
// since the previous poll shrink the TTR; the default 0 keeps the paper's
// open-loop LIMD bit-for-bit regardless of the observed read counts.
TEST(LimdPolicy, ReadBoostShrinksTtrForClientHotObjects) {
  LimdPolicy::Config config = test_config();
  config.read_boost = 1.0;
  LimdPolicy boosted(config);
  LimdPolicy open_loop(test_config());

  // No client reads: the boosted policy matches the open loop exactly.
  TemporalPollObservation quiet = unchanged(0.0, 60.0);
  EXPECT_DOUBLE_EQ(boosted.next_ttr(quiet), open_loop.next_ttr(quiet));

  // A client-hot quiet poll damps the Case-1 growth by
  // 1 + read_boost * ln(1 + reads).
  LimdPolicy::Config soft = test_config();
  soft.read_boost = 0.1;
  LimdPolicy softly(soft);
  TemporalPollObservation hot = unchanged(0.0, 60.0);
  hot.client_reads = 2;
  const double expected = (60.0 * 1.2) / (1.0 + 0.1 * std::log1p(2.0));
  ASSERT_GT(expected, 60.0);  // above TTR_min, so the division is visible
  EXPECT_DOUBLE_EQ(softly.next_ttr(hot), expected);

  // read_boost = 0 (the default) ignores the read count entirely.
  LimdPolicy ignore(test_config());
  TemporalPollObservation busy = unchanged(0.0, 60.0);
  busy.client_reads = 1'000'000;
  EXPECT_DOUBLE_EQ(ignore.next_ttr(busy), 60.0 * 1.2);

  // The damped TTR still respects the bounds.
  LimdPolicy::Config hard = test_config();
  hard.read_boost = 50.0;
  LimdPolicy hardly(hard);
  TemporalPollObservation storm = unchanged(0.0, 60.0);
  storm.client_reads = 100;
  EXPECT_DOUBLE_EQ(hardly.next_ttr(storm), 60.0);  // clamped to TTR_min
}

TEST(LimdPolicy, NegativeReadBoostFailsFastAtConstruction) {
  LimdPolicy::Config config = test_config();
  config.read_boost = -0.1;
  EXPECT_THROW(LimdPolicy{config}, CheckFailure);
}

TEST(LimdPolicy, PaperDefaultsMatchSection621) {
  const auto config = LimdPolicy::Config::paper_defaults(600.0);
  EXPECT_DOUBLE_EQ(config.delta, 600.0);
  EXPECT_DOUBLE_EQ(config.bounds.min, 600.0);
  EXPECT_DOUBLE_EQ(config.bounds.max, 3600.0);
  EXPECT_DOUBLE_EQ(config.linear_increase, 0.2);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.02);
  EXPECT_TRUE(config.adaptive_m);
}

TEST(FixedPollPolicy, AlwaysReturnsPeriod) {
  FixedPollPolicy policy(60.0);
  EXPECT_DOUBLE_EQ(policy.initial_ttr(), 60.0);
  EXPECT_DOUBLE_EQ(policy.next_ttr(unchanged(0.0, 60.0)), 60.0);
  EXPECT_DOUBLE_EQ(policy.next_ttr(changed(60.0, 120.0, {90.0})), 60.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.current_ttr(), 60.0);
}

TEST(FixedPollPolicy, RejectsNonPositivePeriod) {
  EXPECT_THROW(FixedPollPolicy(0.0), CheckFailure);
}

}  // namespace
}  // namespace broadway

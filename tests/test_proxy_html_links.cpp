#include "proxy/html_links.h"

#include <gtest/gtest.h>

namespace broadway {
namespace {

TEST(HtmlLinks, ExtractsImgSrc) {
  const auto links = extract_embedded_links(
      "<html><body><img src=\"/photo.jpg\"/></body></html>");
  EXPECT_EQ(links, (std::vector<std::string>{"/photo.jpg"}));
}

TEST(HtmlLinks, QuoteStylesAndUnquoted) {
  const auto links = extract_embedded_links(
      "<img src=\"/a.png\"><img src='/b.png'><img src=/c.png>");
  EXPECT_EQ(links,
            (std::vector<std::string>{"/a.png", "/b.png", "/c.png"}));
}

TEST(HtmlLinks, NewsStoryExample) {
  // The paper's motivating case: a breaking-news page with embedded
  // images and clips.
  const std::string html = R"(
    <html><head>
      <link rel="stylesheet" href="/style/news.css">
      <link rel="alternate" href="/rss">
      <script src="/js/ticker.js"></script>
    </head><body>
      <h1>Breaking</h1>
      <img src="/images/scene.jpg" alt="scene">
      <embed src="/clips/report.rm">
      <a href="/other/story.html">related</a>
    </body></html>)";
  const auto links = extract_embedded_links(html);
  EXPECT_EQ(links, (std::vector<std::string>{
                       "/style/news.css", "/js/ticker.js",
                       "/images/scene.jpg", "/clips/report.rm"}));
  const auto anchors = extract_anchor_links(html);
  EXPECT_EQ(anchors, (std::vector<std::string>{"/other/story.html"}));
}

TEST(HtmlLinks, NonStylesheetLinkIgnored) {
  const auto links = extract_embedded_links(
      "<link rel=\"prefetch\" href=\"/x\"><link rel=stylesheet href=/y.css>");
  EXPECT_EQ(links, (std::vector<std::string>{"/y.css"}));
}

TEST(HtmlLinks, DuplicatesCollapsed) {
  const auto links = extract_embedded_links(
      "<img src=\"/a.png\"><img src=\"/a.png\"><img src=\"/b.png\">");
  EXPECT_EQ(links, (std::vector<std::string>{"/a.png", "/b.png"}));
}

TEST(HtmlLinks, CommentsSkipped) {
  const auto links = extract_embedded_links(
      "<!-- <img src=\"/ghost.png\"> --><img src=\"/real.png\">");
  EXPECT_EQ(links, (std::vector<std::string>{"/real.png"}));
}

TEST(HtmlLinks, CaseInsensitiveTagsAndAttributes) {
  const auto links = extract_embedded_links(
      "<IMG SRC=\"/upper.png\"><Img Src='/mixed.png'>");
  EXPECT_EQ(links, (std::vector<std::string>{"/upper.png", "/mixed.png"}));
}

TEST(HtmlLinks, ClosingTagsAndBareText) {
  const auto links = extract_embedded_links(
      "plain text < not a tag <img src=\"/a.png\"></img> more");
  EXPECT_EQ(links, (std::vector<std::string>{"/a.png"}));
}

TEST(HtmlLinks, MalformedInputIsTolerated) {
  EXPECT_TRUE(extract_embedded_links("").empty());
  EXPECT_TRUE(extract_embedded_links("<img src=").empty());
  EXPECT_TRUE(extract_embedded_links("<img src=\"unterminated").empty());
  EXPECT_TRUE(extract_embedded_links("<<<>>>").empty());
  // Valueless attribute before the one we want.
  const auto links =
      extract_embedded_links("<img ismap src=\"/map.png\">");
  EXPECT_EQ(links, (std::vector<std::string>{"/map.png"}));
}

TEST(HtmlLinks, OtherEmbeddedKinds) {
  const auto links = extract_embedded_links(
      "<iframe src=\"/frame.html\"></iframe>"
      "<audio src=\"/clip.mp3\"></audio>"
      "<video src=\"/clip.mpg\"></video>"
      "<source src=\"/alt.ogv\">"
      "<frame src=\"/old.html\">");
  EXPECT_EQ(links, (std::vector<std::string>{"/frame.html", "/clip.mp3",
                                             "/clip.mpg", "/alt.ogv",
                                             "/old.html"}));
}

}  // namespace
}  // namespace broadway

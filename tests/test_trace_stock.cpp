#include "trace/stock.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace broadway {
namespace {

StockWalkConfig test_config() {
  StockWalkConfig config;
  config.name = "TEST";
  config.duration = hours(3.0);
  config.updates = 500;
  config.initial_value = 100.0;
  config.min_value = 95.0;
  config.max_value = 105.0;
  config.tick_size = 0.05;
  config.step_sigma = 0.2;
  return config;
}

TEST(StockWalk, ExactTickCount) {
  Rng rng(1);
  const ValueTrace trace = generate_stock_walk(rng, test_config());
  EXPECT_EQ(trace.count(), 500u);
  EXPECT_EQ(trace.name(), "TEST");
  EXPECT_DOUBLE_EQ(trace.duration(), hours(3.0));
}

TEST(StockWalk, ValuesStayInBand) {
  Rng rng(2);
  const ValueTrace trace = generate_stock_walk(rng, test_config());
  for (const auto& step : trace.steps()) {
    EXPECT_GE(step.value, 95.0);
    EXPECT_LE(step.value, 105.0);
  }
}

TEST(StockWalk, ValuesQuantisedToTick) {
  Rng rng(3);
  const StockWalkConfig config = test_config();
  const ValueTrace trace = generate_stock_walk(rng, config);
  for (const auto& step : trace.steps()) {
    const double ticks = (step.value - config.min_value) / config.tick_size;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6) << "at value " << step.value;
  }
}

TEST(StockWalk, Deterministic) {
  Rng a(7);
  Rng b(7);
  const ValueTrace ta = generate_stock_walk(a, test_config());
  const ValueTrace tb = generate_stock_walk(b, test_config());
  ASSERT_EQ(ta.count(), tb.count());
  for (std::size_t i = 0; i < ta.count(); ++i) {
    EXPECT_DOUBLE_EQ(ta.steps()[i].time, tb.steps()[i].time);
    EXPECT_DOUBLE_EQ(ta.steps()[i].value, tb.steps()[i].value);
  }
}

TEST(StockWalk, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  const ValueTrace ta = generate_stock_walk(a, test_config());
  const ValueTrace tb = generate_stock_walk(b, test_config());
  std::size_t identical = 0;
  for (std::size_t i = 0; i < std::min(ta.count(), tb.count()); ++i) {
    if (ta.steps()[i].time == tb.steps()[i].time) ++identical;
  }
  EXPECT_LT(identical, ta.count() / 10);
}

TEST(StockWalk, ActuallyMoves) {
  Rng rng(11);
  const ValueTrace trace = generate_stock_walk(rng, test_config());
  EXPECT_GT(trace.max_value() - trace.min_value(), 1.0);
}

TEST(StockWalk, HigherSigmaMovesMore) {
  StockWalkConfig calm = test_config();
  calm.step_sigma = 0.02;
  StockWalkConfig wild = test_config();
  wild.step_sigma = 0.5;
  Rng rng_a(13);
  Rng rng_b(13);
  const ValueTrace calm_trace = generate_stock_walk(rng_a, calm);
  const ValueTrace wild_trace = generate_stock_walk(rng_b, wild);

  auto mean_move = [](const ValueTrace& trace) {
    double total = 0.0;
    double prev = trace.initial_value();
    for (const auto& step : trace.steps()) {
      total += std::abs(step.value - prev);
      prev = step.value;
    }
    return total / static_cast<double>(trace.count());
  };
  EXPECT_GT(mean_move(wild_trace), 3.0 * mean_move(calm_trace));
}

TEST(StockWalk, Validation) {
  Rng rng(1);
  StockWalkConfig bad = test_config();
  bad.min_value = 200.0;  // band inverted
  EXPECT_THROW(generate_stock_walk(rng, bad), CheckFailure);
  bad = test_config();
  bad.initial_value = 0.0;  // outside band
  EXPECT_THROW(generate_stock_walk(rng, bad), CheckFailure);
  bad = test_config();
  bad.updates = 0;
  EXPECT_THROW(generate_stock_walk(rng, bad), CheckFailure);
}

}  // namespace
}  // namespace broadway

#include "trace/diurnal.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(DiurnalProfile, FlatIsConstant) {
  const DiurnalProfile flat = DiurnalProfile::flat();
  for (double h = 0.0; h < 24.0; h += 0.7) {
    EXPECT_NEAR(flat.intensity(h), 1.0, 1e-9);
  }
}

TEST(DiurnalProfile, FlatCumulativeIsLinear) {
  const DiurnalProfile flat = DiurnalProfile::flat();
  const double one_hour = flat.cumulative(hours(1.0), 0.0);
  EXPECT_NEAR(flat.cumulative(hours(5.0), 0.0), 5.0 * one_hour, 1e-6);
  EXPECT_NEAR(flat.cumulative(days(2.0), 3.5), 48.0 * one_hour, 1e-6);
}

TEST(DiurnalProfile, NewsroomQuietAtNight) {
  const DiurnalProfile news = DiurnalProfile::newsroom();
  EXPECT_LT(news.intensity(3.0), 0.1);
  EXPECT_GT(news.intensity(14.0), 1.0);
  // Night hours at least 10x quieter than mid-day.
  EXPECT_GT(news.intensity(14.0) / news.intensity(3.0), 10.0);
}

TEST(DiurnalProfile, IntensityWrapsMidnight) {
  const DiurnalProfile news = DiurnalProfile::newsroom();
  EXPECT_NEAR(news.intensity(0.0), news.intensity(24.0), 1e-9);
  EXPECT_NEAR(news.intensity(-1.0), news.intensity(23.0), 1e-9);
}

TEST(DiurnalProfile, CumulativeIsMonotone) {
  const DiurnalProfile news = DiurnalProfile::newsroom();
  double prev = 0.0;
  for (double t = 0.0; t <= days(2.0); t += hours(0.5)) {
    const double c = news.cumulative(t, 13.0);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(DiurnalProfile, CumulativeRespectsStartHourPhase) {
  const DiurnalProfile news = DiurnalProfile::newsroom();
  // Starting at 2am, the first 3 hours are quiet; starting at 1pm they are
  // busy.
  const double quiet = news.cumulative(hours(3.0), 2.0);
  const double busy = news.cumulative(hours(3.0), 13.0);
  EXPECT_LT(quiet * 5.0, busy);
}

TEST(DiurnalProfile, InverseCumulativeInverts) {
  const DiurnalProfile news = DiurnalProfile::newsroom();
  const double start_hour = 13.0;
  const Duration duration = days(2.0);
  const double total = news.cumulative(duration, start_hour);
  for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double target = frac * total;
    const TimePoint t =
        news.inverse_cumulative(target, start_hour, duration);
    EXPECT_NEAR(news.cumulative(t, start_hour), target, total * 1e-6);
  }
}

TEST(DiurnalProfile, InverseCumulativeRejectsOverflow) {
  const DiurnalProfile flat = DiurnalProfile::flat();
  const double total = flat.cumulative(hours(1.0), 0.0);
  EXPECT_THROW(flat.inverse_cumulative(total * 2.0, 0.0, hours(1.0)),
               CheckFailure);
}

TEST(DiurnalProfile, RejectsInvalidWeights) {
  std::array<double, 24> zero{};
  EXPECT_THROW(DiurnalProfile{zero}, CheckFailure);
  std::array<double, 24> negative{};
  negative.fill(1.0);
  negative[5] = -0.5;
  EXPECT_THROW(DiurnalProfile{negative}, CheckFailure);
}

}  // namespace
}  // namespace broadway

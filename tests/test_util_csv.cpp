#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace broadway {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<std::string>{"a", "b,c", "d"});
  writer.write_row(std::vector<double>{1.5, 2.0});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n1.5,2\n");
}

TEST(ParseCsv, SimpleDocument) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, QuotedFields) {
  const auto rows = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "multi\nline");
}

TEST(ParseCsv, CrLfTolerated) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsv, EmptyFields) {
  const auto rows = parse_csv(",\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", ""}));
}

TEST(ParseCsv, RoundTripThroughWriter) {
  std::ostringstream os;
  CsvWriter writer(os);
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with\"quote", "multi\nline"};
  writer.write_row(original);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

TEST(ParseCsv, MalformedQuoting) {
  EXPECT_THROW(parse_csv("a\"b\n"), std::runtime_error);
  EXPECT_THROW(parse_csv("\"unterminated"), std::runtime_error);
}

TEST(ParseCsv, EmptyDocument) {
  EXPECT_TRUE(parse_csv("").empty());
}

}  // namespace
}  // namespace broadway

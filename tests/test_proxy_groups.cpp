#include "proxy/group_registry.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/uri_table.h"

namespace broadway {
namespace {

TEST(GroupRegistry, AddAndFind) {
  GroupRegistry registry;
  registry.add_group("scores", {"/score/home", "/score/away"}, 30.0);
  const ObjectGroup* group = registry.find("scores");
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->members.size(), 2u);
  EXPECT_DOUBLE_EQ(group->delta_mutual, 30.0);
  EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(GroupRegistry, Validation) {
  GroupRegistry registry;
  EXPECT_THROW(registry.add_group("", {"/a", "/b"}, 1.0), CheckFailure);
  EXPECT_THROW(registry.add_group("g", {"/only"}, 1.0), CheckFailure);
  EXPECT_THROW(registry.add_group("g", {"/a", "/a"}, 1.0), CheckFailure);
  EXPECT_THROW(registry.add_group("g", {"/a", "/b"}, -1.0), CheckFailure);
  registry.add_group("g", {"/a", "/b"}, 1.0);
  EXPECT_THROW(registry.add_group("g", {"/c", "/d"}, 1.0), CheckFailure);
}

TEST(GroupRegistry, MembershipIndex) {
  GroupRegistry registry;
  registry.add_group("news", {"/page", "/img1", "/img2"}, 60.0);
  registry.add_group("finance", {"/page", "/ticker"}, 30.0);
  const auto groups = registry.groups_containing("/page");
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(registry.groups_containing("/img1").size(), 1u);
  EXPECT_TRUE(registry.groups_containing("/unrelated").empty());
}

TEST(GroupRegistry, TableBoundRegistryInternsMembers) {
  UriTable table;
  GroupRegistry registry(table);
  const ObjectGroup& news =
      registry.add_group("news", {"/page", "/img"}, 60.0);
  const ObjectGroup& finance =
      registry.add_group("finance", {"/page", "/ticker"}, 30.0);
  // Member ids parallel the member uris, interned into the bound table.
  ASSERT_EQ(news.member_ids.size(), 2u);
  EXPECT_EQ(news.member_ids[0], table.find("/page"));
  EXPECT_EQ(news.member_ids[1], table.find("/img"));
  ASSERT_EQ(finance.member_ids.size(), 2u);
  EXPECT_EQ(finance.member_ids[0], news.member_ids[0]);  // shared member

  // The dependency-graph fan-out answers by id without re-hashing uris.
  const auto by_id = registry.groups_containing(table.find("/page"));
  EXPECT_EQ(by_id.size(), 2u);
  EXPECT_EQ(registry.groups_containing(table.find("/ticker")).size(), 1u);
  EXPECT_TRUE(registry.groups_containing(kInvalidObjectId).empty());
  EXPECT_EQ(registry.uri_table(), &table);
}

TEST(GroupRegistry, UnboundRegistryHasNoIds) {
  GroupRegistry registry;
  const ObjectGroup& group = registry.add_group("g", {"/a", "/b"}, 1.0);
  EXPECT_TRUE(group.member_ids.empty());
  EXPECT_EQ(registry.uri_table(), nullptr);
  EXPECT_THROW(registry.groups_containing(ObjectId{0}), CheckFailure);
}

TEST(GroupRegistry, AllMembersDeduplicated) {
  GroupRegistry registry;
  registry.add_group("g1", {"/a", "/b"}, 1.0);
  registry.add_group("g2", {"/b", "/c"}, 1.0);
  EXPECT_EQ(registry.all_members(),
            (std::vector<std::string>{"/a", "/b", "/c"}));
}

TEST(GroupRegistry, SyntacticGroupFromHtml) {
  GroupRegistry registry;
  const std::string html =
      "<html><img src=\"/images/a.jpg\"><img src=\"/images/b.jpg\"></html>";
  const ObjectGroup* group =
      registry.add_syntactic_group("/story.html", html, 120.0);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->id, "/story.html");
  EXPECT_EQ(group->members,
            (std::vector<std::string>{"/story.html", "/images/a.jpg",
                                      "/images/b.jpg"}));
  EXPECT_DOUBLE_EQ(group->delta_mutual, 120.0);
  // The page itself is indexed too.
  EXPECT_EQ(registry.groups_containing("/story.html").size(), 1u);
}

TEST(GroupRegistry, SyntacticGroupEmptyPageRegistersNothing) {
  GroupRegistry registry;
  EXPECT_EQ(registry.add_syntactic_group("/bare.html",
                                         "<html>no images</html>", 60.0),
            nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace broadway

#include "util/time.h"

#include <gtest/gtest.h>

namespace broadway {
namespace {

TEST(TimeUnits, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(minutes(1.0), 60.0);
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(days(1.0), 86400.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(26.0)), 26.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(49.5)), 49.5);
}

TEST(TimeUnits, SecondsIsIdentity) {
  EXPECT_DOUBLE_EQ(seconds(12.25), 12.25);
}

TEST(FormatDuration, SecondsRange) {
  EXPECT_EQ(format_duration(45.0), "45.0 s");
  EXPECT_EQ(format_duration(0.0), "0.0 s");
}

TEST(FormatDuration, MinutesRange) {
  EXPECT_EQ(format_duration(minutes(26.0)), "26.0 min");
  EXPECT_EQ(format_duration(minutes(4.9)), "4.9 min");
}

TEST(FormatDuration, HoursRange) {
  EXPECT_EQ(format_duration(hours(1.0)), "1h 00m");
  EXPECT_EQ(format_duration(hours(2.0) + minutes(30.0)), "2h 30m");
}

TEST(FormatDuration, DaysRange) {
  EXPECT_EQ(format_duration(days(2.0) + hours(1.0) + minutes(30.0)),
            "2d 1h 30m");
}

TEST(FormatDuration, Negative) {
  EXPECT_EQ(format_duration(-45.0), "-45.0 s");
  EXPECT_EQ(format_duration(-minutes(5.0)), "-5.0 min");
}

TEST(FormatWallclock, DayZero) {
  EXPECT_EQ(format_wallclock(0.0), "day 0, 00:00");
  EXPECT_EQ(format_wallclock(hours(13.0) + minutes(4.0)), "day 0, 13:04");
}

TEST(FormatWallclock, LaterDays) {
  EXPECT_EQ(format_wallclock(days(2.0) + hours(14.0) + minutes(34.0)),
            "day 2, 14:34");
}

TEST(HourOfDay, WrapsDaily) {
  EXPECT_DOUBLE_EQ(hour_of_day(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hour_of_day(hours(13.0)), 13.0);
  EXPECT_DOUBLE_EQ(hour_of_day(days(1.0) + hours(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(hour_of_day(days(3.0)), 0.0);
}

TEST(HourOfDay, FractionalHours) {
  EXPECT_NEAR(hour_of_day(hours(9.0) + minutes(30.0)), 9.5, 1e-12);
}

TEST(TimeInfinity, ComparesAboveEverything) {
  EXPECT_GT(kTimeInfinity, days(365 * 100));
}

}  // namespace
}  // namespace broadway

// End-to-end polling-engine behaviour on small deterministic scenarios.
#include "proxy/polling_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "consistency/fixed_poll.h"
#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "consistency/virtual_object.h"
#include "origin/origin_server.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

struct Rig {
  Simulator sim;
  OriginServer origin{sim};
  PollingEngine engine{sim, origin};
};

TEST(PollingEngine, InitialFetchPopulatesCache) {
  Rig rig;
  rig.origin.add_object("/a");
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(10.0));
  rig.engine.start();
  EXPECT_TRUE(rig.engine.cache().contains("/a"));
  ASSERT_EQ(rig.engine.poll_log().size(), 1u);
  EXPECT_EQ(rig.engine.poll_log()[0].cause, PollCause::kInitial);
  EXPECT_EQ(rig.engine.polls_performed(), 0u);  // initial excluded
}

TEST(PollingEngine, FixedPolicyPollsOnSchedule) {
  Rig rig;
  rig.origin.add_object("/a");
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(10.0));
  rig.engine.start();
  rig.sim.run_until(35.0);
  // Initial at 0, then polls at 10, 20, 30.
  const auto times = rig.engine.poll_completion_times("/a");
  EXPECT_EQ(times, (std::vector<TimePoint>{0.0, 10.0, 20.0, 30.0}));
  EXPECT_EQ(rig.engine.polls_performed("/a"), 3u);
}

TEST(PollingEngine, ModifiedFlagTracksServerUpdates) {
  Rig rig;
  const UpdateTrace trace("/a", {15.0}, 100.0);
  rig.origin.attach_update_trace("/a", trace);
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(10.0));
  rig.engine.start();
  rig.sim.run_until(100.0);
  const auto& log = rig.engine.poll_log();
  // Poll at 10: unchanged; poll at 20: modified; poll at 30: unchanged.
  ASSERT_GE(log.size(), 4u);
  EXPECT_FALSE(log[1].modified);
  EXPECT_TRUE(log[2].modified);
  EXPECT_FALSE(log[3].modified);
}

TEST(PollingEngine, CacheReflectsLatestFetchedVersion) {
  Rig rig;
  const UpdateTrace trace("/a", {15.0, 25.0}, 100.0);
  rig.origin.attach_update_trace("/a", trace);
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(10.0));
  rig.engine.start();
  rig.sim.run_until(100.0);
  const CacheEntry& entry = rig.engine.cache().at("/a");
  EXPECT_DOUBLE_EQ(*entry.last_modified, 25.0);
  EXPECT_GT(entry.refresh_count, 0u);
}

TEST(PollingEngine, LimdBacksOffOnQuietObject) {
  Rig rig;
  rig.origin.add_object("/quiet");
  rig.engine.add_temporal_object(
      "/quiet", std::make_unique<LimdPolicy>(
                    LimdPolicy::Config::paper_defaults(60.0, 600.0)));
  rig.engine.start();
  rig.sim.run_until(3600.0);
  // LIMD grows TTR toward max: strictly fewer polls than fixed-Δ (60).
  EXPECT_LT(rig.engine.polls_performed("/quiet"), 30u);
  const auto& series = rig.engine.ttr_series("/quiet");
  ASSERT_GE(series.size(), 3u);
  EXPECT_GT(series.back().second, series.front().second);
}

TEST(PollingEngine, TriggeredCoordinatorForcesRelatedPoll) {
  Rig rig;
  const UpdateTrace trace_a("/a", {95.0}, 1000.0);
  rig.origin.attach_update_trace("/a", trace_a);
  rig.origin.add_object("/b");
  // a polls every 100; b polls every 400 (slow).  δ = 50.
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(100.0));
  rig.engine.add_temporal_object("/b",
                                 std::make_unique<FixedPollPolicy>(400.0));
  rig.engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/a", "/b"}, 50.0));
  rig.engine.start();
  rig.sim.run_until(150.0);
  // At t=100 the poll of /a sees the update at 95 and triggers /b (whose
  // last poll was 0, next at 400 — both more than δ=50 away).
  EXPECT_EQ(rig.engine.triggered_polls("/b"), 1u);
  const auto times = rig.engine.poll_completion_times("/b");
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 100.0);
}

TEST(PollingEngine, TriggeredPollReschedulesVictimsTimer) {
  Rig rig;
  const UpdateTrace trace_a("/a", {95.0}, 1000.0);
  rig.origin.attach_update_trace("/a", trace_a);
  rig.origin.add_object("/b");
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(100.0));
  rig.engine.add_temporal_object("/b",
                                 std::make_unique<FixedPollPolicy>(400.0));
  rig.engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/a", "/b"}, 50.0));
  rig.engine.start();
  rig.sim.run_until(1000.0);
  // After the triggered poll at 100, /b's schedule continues from there:
  // 500, 900 — not the original 400/800.
  const auto times = rig.engine.poll_completion_times("/b");
  EXPECT_EQ(times,
            (std::vector<TimePoint>{0.0, 100.0, 500.0, 900.0}));
}

TEST(PollingEngine, ValueObjectObservesValues) {
  Rig rig;
  const ValueTrace trace("/stock", 100.0, {{12.0, 101.0}, {40.0, 99.0}},
                         300.0);
  rig.origin.attach_value_trace("/stock", trace);
  AdaptiveValueTtrPolicy::Config config;
  config.delta = 0.5;
  config.bounds = {10.0, 100.0};
  rig.engine.add_value_object("/stock", config);
  rig.engine.start();
  rig.sim.run_until(300.0);
  EXPECT_GT(rig.engine.polls_performed("/stock"), 2u);
  const CacheEntry& entry = rig.engine.cache().at("/stock");
  ASSERT_TRUE(entry.value.has_value());
  EXPECT_DOUBLE_EQ(*entry.value, 99.0);
}

TEST(PollingEngine, VirtualGroupPollsAllMembersJointly) {
  Rig rig;
  const ValueTrace ta("/s1", 100.0, {{50.0, 101.0}}, 300.0);
  const ValueTrace tb("/s2", 50.0, {{60.0, 50.5}}, 300.0);
  rig.origin.attach_value_trace("/s1", ta);
  rig.origin.attach_value_trace("/s2", tb);
  VirtualObjectPolicy::Config config;
  config.delta = 0.5;
  config.bounds = {20.0, 100.0};
  rig.engine.add_virtual_group(
      {"/s1", "/s2"},
      std::make_unique<VirtualObjectPolicy>(
          std::make_unique<DifferenceFunction>(), config));
  rig.engine.start();
  rig.sim.run_until(300.0);
  // Joint polls: equal counts for both members, same instants.
  const auto t1 = rig.engine.poll_completion_times("/s1");
  const auto t2 = rig.engine.poll_completion_times("/s2");
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1.size(), 2u);
}

TEST(PollingEngine, RegistrationValidation) {
  Rig rig;
  rig.origin.add_object("/a");
  rig.engine.add_temporal_object("/a",
                                 std::make_unique<FixedPollPolicy>(10.0));
  // Duplicate registration rejected.
  EXPECT_THROW(rig.engine.add_temporal_object(
                   "/a", std::make_unique<FixedPollPolicy>(10.0)),
               CheckFailure);
  rig.engine.start();
  EXPECT_THROW(rig.engine.start(), CheckFailure);  // double start
  // Late registration rejected.
  EXPECT_THROW(rig.engine.add_temporal_object(
                   "/late", std::make_unique<FixedPollPolicy>(10.0)),
               CheckFailure);
}

TEST(PollingEngine, PollingUnknownObjectFailsLoudly) {
  Rig rig;
  rig.engine.add_temporal_object("/ghost",
                                 std::make_unique<FixedPollPolicy>(10.0));
  EXPECT_THROW(rig.engine.start(), CheckFailure);  // 404 from origin
}

TEST(PollingEngine, RttShiftsCompletionTimes) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig config;
  config.rtt = 2.5;
  PollingEngine engine(sim, origin, config);
  origin.add_object("/a");
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(10.0));
  engine.start();
  sim.run_until(25.0);
  const auto snapshots = engine.poll_snapshot_times("/a");
  const auto completions = engine.poll_completion_times("/a");
  ASSERT_EQ(snapshots.size(), completions.size());
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_DOUBLE_EQ(completions[i], snapshots[i] + 2.5);
  }
}

}  // namespace
}  // namespace broadway

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace broadway {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 1.0), CheckFailure);
  EXPECT_THROW(rng.uniform(2.0, 1.0), CheckFailure);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all ten values appear in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  OnlineStats stats;
  const double rate = 0.25;  // mean 4
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), CheckFailure);
  EXPECT_THROW(rng.exponential(-1.0), CheckFailure);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), CheckFailure);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), CheckFailure);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent_a(99);
  Rng parent_b(99);
  Rng child_a = parent_a.fork();
  Rng child_b = parent_b.fork();
  // Same lineage -> same stream.
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(child_a.uniform01(), child_b.uniform01());
  }
  // Child and parent streams differ.
  Rng parent_c(99);
  Rng child_c = parent_c.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent_c.uniform01() == child_c.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace broadway

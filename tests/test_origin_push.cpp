#include "origin/push.h"

#include <gtest/gtest.h>

#include "http/extensions.h"
#include "metrics/fidelity.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

struct PushRig {
  Simulator sim;
  OriginServer origin{sim};
  std::vector<std::pair<TimePoint, std::string>> deliveries;

  PushChannel::Delivery recorder() {
    return [this](const std::string& uri, const Response& response) {
      EXPECT_TRUE(response.ok());
      deliveries.emplace_back(sim.now(), uri);
    };
  }
};

TEST(PushChannel, DeliversEveryUpdateImmediately) {
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 0.0);
  rig.origin.add_object("/a");
  channel.subscribe("/a", rig.recorder());
  const UpdateTrace trace("/a", {10.0, 20.0, 30.0}, 100.0);
  channel.attach_pushed_trace("/a", trace);
  rig.sim.run_until(100.0);
  ASSERT_EQ(rig.deliveries.size(), 3u);
  EXPECT_DOUBLE_EQ(rig.deliveries[0].first, 10.0);
  EXPECT_DOUBLE_EQ(rig.deliveries[2].first, 30.0);
  EXPECT_EQ(channel.pushes_delivered(), 3u);
  EXPECT_EQ(channel.updates_coalesced(), 0u);
}

TEST(PushChannel, PushCarriesCurrentVersion) {
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 0.0);
  rig.origin.add_object("/a");
  std::vector<TimePoint> last_modified_seen;
  channel.subscribe("/a", [&](const std::string&, const Response& response) {
    last_modified_seen.push_back(*get_last_modified(response.headers));
  });
  const UpdateTrace trace("/a", {10.0, 20.0}, 100.0);
  channel.attach_pushed_trace("/a", trace);
  rig.sim.run_until(100.0);
  ASSERT_EQ(last_modified_seen.size(), 2u);
  EXPECT_DOUBLE_EQ(last_modified_seen[0], 10.0);
  EXPECT_DOUBLE_EQ(last_modified_seen[1], 20.0);
}

TEST(PushChannel, CoalescesBursts) {
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 30.0);
  rig.origin.add_object("/a");
  channel.subscribe("/a", rig.recorder());
  // A burst of four updates within one coalescing window, then a lone one.
  const UpdateTrace trace("/a", {10.0, 12.0, 20.0, 35.0, 80.0}, 200.0);
  channel.attach_pushed_trace("/a", trace);
  rig.sim.run_until(200.0);
  // Burst: push pending from t=10 delivers at 40 carrying 10/12/20/35;
  // t=80 update delivers at 110.
  ASSERT_EQ(rig.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(rig.deliveries[0].first, 40.0);
  EXPECT_DOUBLE_EQ(rig.deliveries[1].first, 110.0);
  EXPECT_EQ(channel.updates_coalesced(), 3u);
}

TEST(PushChannel, CoalescedPushPreservesDeltaBound) {
  // With a coalescing window w <= Delta, the first unseen update is always
  // delivered within Delta: fidelity stays perfect.
  PushRig rig;
  const Duration delta = 50.0;
  PushChannel channel(rig.sim, rig.origin, 0.9 * delta);
  rig.origin.add_object("/a");
  std::vector<PollInstant> deliveries = {{0.0, 0.0}};
  channel.subscribe("/a", [&](const std::string&, const Response&) {
    deliveries.push_back(PollInstant{rig.sim.now(), rig.sim.now()});
  });
  const UpdateTrace trace(
      "/a", {10.0, 15.0, 100.0, 300.0, 301.0, 302.0, 500.0}, 1000.0);
  channel.attach_pushed_trace("/a", trace);
  rig.sim.run_until(1000.0);
  const auto report =
      evaluate_temporal_fidelity(trace, deliveries, delta, 1000.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
}

TEST(PushChannel, CoalescedPushDeliversHistoryNewestLast) {
  // Delivery-ordering pin: a coalesced push must carry every update that
  // rode along, newest-last in X-Modification-History — exactly what a
  // poll at the delivery instant would have returned.
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 30.0);
  rig.origin.add_object("/a");
  std::vector<std::vector<TimePoint>> histories;
  channel.subscribe("/a", [&](const std::string&, const Response& response) {
    const auto history = get_modification_history(response.headers);
    ASSERT_TRUE(history.has_value());
    histories.push_back(*history);
  });
  const UpdateTrace trace("/a", {10.0, 12.0, 20.0, 35.0, 80.0}, 200.0);
  channel.attach_pushed_trace("/a", trace);
  rig.sim.run_until(200.0);

  // Push 1 (delivered at 40) coalesces 10/12/20/35; push 2 (at 110)
  // additionally reports 80.  Each history is strictly ascending — the
  // newest update is last, never first.
  ASSERT_EQ(histories.size(), 2u);
  EXPECT_EQ(histories[0], (std::vector<TimePoint>{10.0, 12.0, 20.0, 35.0}));
  for (const auto& history : histories) {
    for (std::size_t i = 1; i < history.size(); ++i) {
      EXPECT_LT(history[i - 1], history[i]);
    }
  }

  // Cross-check against a poll at the same instant: the delivered payload
  // must match what the origin would have answered.
  Request request;
  request.uri = "/a";
  const Response polled = rig.origin.handle(request);
  const auto poll_history = get_modification_history(polled.headers);
  ASSERT_TRUE(poll_history.has_value());
  EXPECT_EQ(histories.back().back(), poll_history->back());
}

TEST(PushChannel, UnsubscribedObjectsIgnored) {
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 0.0);
  rig.origin.add_object("/quiet");
  // No subscription: updates flow to the origin but no pushes happen.
  const UpdateTrace trace("/quiet", {10.0}, 100.0);
  channel.attach_pushed_trace("/quiet", trace);
  rig.sim.run_until(100.0);
  EXPECT_EQ(channel.pushes_delivered(), 0u);
  EXPECT_EQ(rig.origin.store().at("/quiet").version(), 1u);
}

TEST(PushChannel, Validation) {
  PushRig rig;
  PushChannel channel(rig.sim, rig.origin, 0.0);
  EXPECT_THROW(channel.subscribe("/missing", rig.recorder()), CheckFailure);
  rig.origin.add_object("/a");
  channel.subscribe("/a", rig.recorder());
  EXPECT_THROW(channel.subscribe("/a", rig.recorder()), CheckFailure);
}

}  // namespace
}  // namespace broadway
